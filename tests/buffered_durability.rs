//! E12: buffered durability (§8 future work) — the `BufferedEpoch`
//! transformation provides *buffered* durable linearizability, strictly
//! weaker than FliT's guarantee and strictly cheaper on the fast path.
//!
//! The three-way relationship checked here:
//!
//! * histories from `BufferedEpoch` runs with a crash **fail** the strict
//!   durable-linearizability checker (completed post-sync ops are lost)…
//! * …but **pass** the buffered checker, which finds the sync point as its
//!   consistent cut;
//! * FliT histories pass both (a strictly durable history is a buffered
//!   one with zero drops).

use std::sync::Arc;

use cxl0::dlcheck::buffered::check_buffered_durably_linearizable;
use cxl0::dlcheck::spec::{QueueOp, QueueRet, QueueSpec, RegisterOp, RegisterRet, RegisterSpec};
use cxl0::dlcheck::{check_durably_linearizable, Recorder, ThreadId};
use cxl0::model::{MachineId, SystemConfig};
use cxl0::runtime::alloc::Allocator;
use cxl0::runtime::{
    BufferedEpoch, DurableQueue, DurableRegister, FlitCxl0, Persistence, SharedHeap, SimFabric,
};

const MEM: MachineId = MachineId(1);

fn setup() -> (Arc<SimFabric>, Arc<SharedHeap>) {
    let fabric = SimFabric::new(SystemConfig::symmetric_nvm(2, 1 << 14));
    let heap = Arc::new(SharedHeap::new(fabric.config(), MEM));
    (fabric, heap)
}

#[test]
fn buffered_queue_fails_strict_but_passes_buffered() {
    let (fabric, heap) = setup();
    let b = Arc::new(BufferedEpoch::create(&heap, 512, 0).unwrap());
    // The epoch machinery bumped the front of the region; the allocator
    // takes the untouched upper half.
    let alloc = Arc::new(Allocator::with_range(
        fabric.config(),
        MEM,
        1 << 13,
        1 << 13,
        Arc::clone(&b) as Arc<dyn Persistence>,
    ));
    let node = fabric.node(MachineId(0));
    let queue = DurableQueue::create(&alloc, &node).unwrap().unwrap();
    let rec: Recorder<QueueOp, QueueRet> = Recorder::new();

    b.sync(&node).unwrap(); // checkpoint 1: the empty queue

    // Two enqueues inside the durable window...
    for v in [1u64, 2] {
        let id = rec.invoke(ThreadId(0), 0, QueueOp::Enq(v));
        assert!(queue.enqueue(&node, v).unwrap());
        rec.respond(id, QueueRet::Ok);
    }
    b.sync(&node).unwrap(); // checkpoint 2

    // ...and two more that will be lost with the crash.
    for v in [3u64, 4] {
        let id = rec.invoke(ThreadId(0), 0, QueueOp::Enq(v));
        assert!(queue.enqueue(&node, v).unwrap());
        rec.respond(id, QueueRet::Ok);
    }

    fabric.crash(MEM);
    rec.crash(MEM.index());
    fabric.recover(MEM);
    b.recover(&node).unwrap();
    queue.recover(&node).unwrap();

    // Post-crash drain observes exactly the checkpoint-2 state.
    let mut drained = Vec::new();
    loop {
        let id = rec.invoke(ThreadId(1), 0, QueueOp::Deq);
        let v = queue.dequeue(&node).unwrap();
        rec.respond(id, QueueRet::Deqd(v));
        match v {
            Some(v) => drained.push(v),
            None => break,
        }
    }
    assert_eq!(drained, vec![1, 2]);

    let h = rec.finish();
    let strict = check_durably_linearizable(&QueueSpec, &h);
    assert!(
        !strict.is_ok(),
        "two completed enqueues were dropped: strict DL must fail"
    );
    let buffered = check_buffered_durably_linearizable(&QueueSpec, &h);
    assert!(buffered.is_ok(), "{buffered}");
    assert_eq!(buffered.dropped(), Some(2));
}

#[test]
fn crash_right_after_sync_drops_nothing() {
    let (fabric, heap) = setup();
    let b = Arc::new(BufferedEpoch::create(&heap, 64, 0).unwrap());
    let reg = DurableRegister::create(&heap, Arc::clone(&b) as Arc<dyn Persistence>).unwrap();
    let node = fabric.node(MachineId(0));
    let rec: Recorder<RegisterOp, RegisterRet> = Recorder::new();

    let id = rec.invoke(ThreadId(0), 0, RegisterOp::Write(7));
    reg.write(&node, 7).unwrap();
    rec.respond(id, RegisterRet::Ok);
    b.sync(&node).unwrap();

    fabric.crash(MEM);
    rec.crash(MEM.index());
    fabric.recover(MEM);
    b.recover(&node).unwrap();

    let id = rec.invoke(ThreadId(1), 0, RegisterOp::Read);
    let v = reg.read(&node).unwrap();
    rec.respond(id, RegisterRet::Value(v));
    assert_eq!(v, 7);

    let h = rec.finish();
    assert!(check_durably_linearizable(&RegisterSpec, &h).is_ok());
    let buffered = check_buffered_durably_linearizable(&RegisterSpec, &h);
    assert!(buffered.is_ok());
    assert_eq!(buffered.dropped(), Some(0));
}

#[test]
fn rollback_beats_partial_eviction() {
    // The scenario a naive "just skip the flushes" design gets wrong:
    // between syncs, cache eviction persists the *second* write but not
    // the first. Recovery must not expose that torn state — BufferedEpoch
    // rolls both back to the checkpoint.
    let (fabric, heap) = setup();
    let b = Arc::new(BufferedEpoch::create(&heap, 64, 0).unwrap());
    let r1 = DurableRegister::create(&heap, Arc::clone(&b) as Arc<dyn Persistence>).unwrap();
    let r2 = DurableRegister::create(&heap, Arc::clone(&b) as Arc<dyn Persistence>).unwrap();
    let node = fabric.node(MachineId(0));

    r1.write(&node, 10).unwrap();
    r2.write(&node, 20).unwrap();
    b.sync(&node).unwrap();

    r1.write(&node, 11).unwrap();
    r2.write(&node, 21).unwrap();
    // Evict only r2's line: home memory now holds a torn pair — r2's
    // post-checkpoint value next to r1's pre-write value (r1's 11 is
    // still cached; its checkpointed 10 lives in the shadow region).
    node.rflush(r2.cell()).unwrap();
    assert_eq!(fabric.peek_memory(r2.cell()), 21);
    assert_ne!(fabric.peek_memory(r1.cell()), 11);

    fabric.crash(MEM);
    fabric.recover(MEM);
    b.recover(&node).unwrap();

    // Rollback restored the consistent checkpoint, not the torn state.
    assert_eq!(r1.read(&node).unwrap(), 10);
    assert_eq!(r2.read(&node).unwrap(), 20);
}

#[test]
fn flit_history_passes_both_checkers() {
    let (fabric, heap) = setup();
    let p = Arc::new(FlitCxl0::default());
    let reg = DurableRegister::create(&heap, Arc::clone(&p) as Arc<dyn Persistence>).unwrap();
    let node = fabric.node(MachineId(0));
    let rec: Recorder<RegisterOp, RegisterRet> = Recorder::new();

    for v in [1u64, 2, 3] {
        let id = rec.invoke(ThreadId(0), 0, RegisterOp::Write(v));
        reg.write(&node, v).unwrap();
        rec.respond(id, RegisterRet::Ok);
    }
    fabric.crash(MEM);
    rec.crash(MEM.index());
    fabric.recover(MEM);
    let id = rec.invoke(ThreadId(1), 0, RegisterOp::Read);
    let v = reg.read(&node).unwrap();
    rec.respond(id, RegisterRet::Value(v));
    assert_eq!(v, 3);

    let h = rec.finish();
    assert!(check_durably_linearizable(&RegisterSpec, &h).is_ok());
    let buffered = check_buffered_durably_linearizable(&RegisterSpec, &h);
    assert!(buffered.is_ok());
    assert_eq!(buffered.dropped(), Some(0));
}

#[test]
fn buffered_fast_path_is_cheaper_than_flit() {
    // 500 writes: FliT pays a remote flush per write; BufferedEpoch pays
    // nothing until one sync at the end.
    const WRITES: u64 = 500;

    let (fabric_b, heap_b) = setup();
    let b = Arc::new(BufferedEpoch::create(&heap_b, 64, 0).unwrap());
    let reg_b = DurableRegister::create(&heap_b, Arc::clone(&b) as Arc<dyn Persistence>).unwrap();
    let node_b = fabric_b.node(MachineId(0));
    let before = fabric_b.stats().snapshot();
    for v in 0..WRITES {
        reg_b.write(&node_b, v).unwrap();
    }
    b.sync(&node_b).unwrap();
    let buffered_ns = fabric_b.stats().snapshot().since(&before).sim_ns;

    let (fabric_f, heap_f) = setup();
    let p = Arc::new(FlitCxl0::default());
    let reg_f = DurableRegister::create(&heap_f, Arc::clone(&p) as Arc<dyn Persistence>).unwrap();
    let node_f = fabric_f.node(MachineId(0));
    let before = fabric_f.stats().snapshot();
    for v in 0..WRITES {
        reg_f.write(&node_f, v).unwrap();
    }
    let flit_ns = fabric_f.stats().snapshot().since(&before).sim_ns;

    assert!(
        buffered_ns * 3 < flit_ns,
        "buffered {buffered_ns} should be well under a third of flit {flit_ns}"
    );
}
