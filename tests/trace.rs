//! Tier-1 coverage for the runtime tracer (`cxl0::trace`): histogram
//! merge correctness against a single-threaded oracle, crash-coherent
//! export (parseable Chrome JSON, per-thread simulated-time
//! monotonicity, incarnation separation), the tracing-off no-op
//! contract, percentile gauges through the stats snapshot, and the
//! recovery-phase breakdown.

use std::sync::Arc;

use cxl0::api::{ApiError, Cluster, PersistMode};
use cxl0::model::{MachineId, SystemConfig};
use cxl0::trace::{LatencyHistogram, OpKind, RecoveryPhase, TraceConfig};
use proptest::prelude::*;

// ---- a minimal JSON reader --------------------------------------------
//
// The workspace has no JSON dependency (exports are hand-rolled), so the
// test brings its own recursive-descent parser: enough JSON to fully
// validate the Chrome trace-event output, strict about syntax.

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn num(&self, key: &str) -> f64 {
        match self.get(key) {
            Some(Json::Num(n)) => *n,
            other => panic!("expected number at {key:?}, got {other:?}"),
        }
    }

    fn str(&self, key: &str) -> &str {
        match self.get(key) {
            Some(Json::Str(s)) => s,
            other => panic!("expected string at {key:?}, got {other:?}"),
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Json {
        let mut p = Parser {
            s: text.as_bytes(),
            i: 0,
        };
        let v = p.value();
        p.ws();
        assert_eq!(p.i, p.s.len(), "trailing bytes after JSON value");
        v
    }

    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, b: u8) {
        self.ws();
        assert!(
            self.i < self.s.len() && self.s[self.i] == b,
            "expected {:?} at byte {}",
            b as char,
            self.i
        );
        self.i += 1;
    }

    fn peek(&mut self) -> u8 {
        self.ws();
        assert!(self.i < self.s.len(), "unexpected end of JSON");
        self.s[self.i]
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Json {
        assert!(
            self.s[self.i..].starts_with(word.as_bytes()),
            "bad literal at byte {}",
            self.i
        );
        self.i += word.len();
        v
    }

    fn object(&mut self) -> Json {
        self.eat(b'{');
        let mut kv = Vec::new();
        if self.peek() == b'}' {
            self.i += 1;
            return Json::Obj(kv);
        }
        loop {
            self.ws();
            let k = self.string();
            self.eat(b':');
            kv.push((k, self.value()));
            match self.peek() {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Json::Obj(kv);
                }
                c => panic!("expected ',' or '}}', got {:?}", c as char),
            }
        }
    }

    fn array(&mut self) -> Json {
        self.eat(b'[');
        let mut vs = Vec::new();
        if self.peek() == b']' {
            self.i += 1;
            return Json::Arr(vs);
        }
        loop {
            vs.push(self.value());
            match self.peek() {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Json::Arr(vs);
                }
                c => panic!("expected ',' or ']', got {:?}", c as char),
            }
        }
    }

    fn string(&mut self) -> String {
        self.eat(b'"');
        let mut out = String::new();
        loop {
            assert!(self.i < self.s.len(), "unterminated string");
            match self.s[self.i] {
                b'"' => {
                    self.i += 1;
                    return out;
                }
                b'\\' => {
                    self.i += 1;
                    match self.s[self.i] {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = std::str::from_utf8(&self.s[self.i + 1..self.i + 5]).unwrap();
                            let code = u32::from_str_radix(hex, 16).unwrap();
                            out.push(char::from_u32(code).unwrap());
                            self.i += 4;
                        }
                        e => panic!("bad escape \\{:?}", e as char),
                    }
                    self.i += 1;
                }
                c if c < 0x20 => panic!("raw control byte in string"),
                _ => {
                    let start = self.i;
                    while self.i < self.s.len()
                        && self.s[self.i] != b'"'
                        && self.s[self.i] != b'\\'
                        && self.s[self.i] >= 0x20
                    {
                        self.i += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.s[start..self.i]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Json {
        self.ws();
        let start = self.i;
        while self.i < self.s.len()
            && matches!(
                self.s[self.i],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).unwrap();
        Json::Num(
            text.parse()
                .unwrap_or_else(|_| panic!("bad number {text:?}")),
        )
    }
}

// ---- histogram merge vs. single-threaded oracle ------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Recording samples split across arbitrary per-thread histograms and
    /// merging gives exactly the histogram of recording them all in one —
    /// the property the cross-thread percentile gauges rely on.
    #[test]
    fn merged_histograms_match_single_threaded_oracle(
        samples in proptest::collection::vec((any::<u64>(), 0usize..8), 0..300),
    ) {
        let mut oracle = LatencyHistogram::new();
        let mut shards = vec![LatencyHistogram::new(); 8];
        for &(v, thread) in &samples {
            oracle.record(v);
            shards[thread].record(v);
        }
        let mut merged = LatencyHistogram::new();
        for shard in &shards {
            merged.merge(shard);
        }
        prop_assert_eq!(merged, oracle);
        prop_assert_eq!(merged.count(), samples.len() as u64);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            prop_assert_eq!(merged.quantile(q), oracle.quantile(q));
        }
    }
}

// ---- end-to-end trace tests -------------------------------------------

const MEM: MachineId = MachineId(2);

fn traced_cluster() -> Arc<Cluster> {
    Cluster::builder(SystemConfig::symmetric_nvm(3, 1 << 14))
        .persist(PersistMode::FlitCxl0)
        .with_tracing(TraceConfig::default())
        .build()
        .unwrap()
}

/// Crash mid-workload, keep working after recovery, and validate the
/// Chrome export end to end: it parses, events are grouped by
/// incarnation (`pid`) with the crash separating them, and each
/// thread's (`pid`, `tid`) op lane is monotonic in simulated time.
#[test]
fn crash_mid_trace_export_is_coherent() {
    let cluster = traced_cluster();
    let session = cluster.session(MachineId(0));
    let queue = session.create_queue::<u64>("q").unwrap();
    for i in 0..40 {
        queue.enqueue(&session, i).unwrap();
    }

    cluster.crash(MEM);
    cluster.recover(MEM);
    let session = cluster.session(MachineId(0));
    session.recover_roots().unwrap();
    let queue = session.open_queue::<u64>("q").unwrap();
    queue.recover(&session).unwrap();
    while queue.dequeue(&session).unwrap().is_some() {}

    let tracer = cluster.tracer().unwrap();
    assert_eq!(tracer.incarnation(), 1);
    let text = tracer.export_chrome_json();
    let events = match Parser::parse(&text) {
        Json::Arr(evs) => evs,
        other => panic!("Chrome export must be a JSON array, got {other:?}"),
    };
    assert!(!events.is_empty());

    let mut last_pid = 0.0f64;
    let mut last_sim: std::collections::HashMap<(u64, u64), u64> = std::collections::HashMap::new();
    let mut pids = std::collections::HashSet::new();
    for e in &events {
        // Schema: every event has the Chrome-required fields.
        let ph = e.str("ph");
        assert!(ph == "X" || ph == "i", "unexpected phase {ph:?}");
        assert!(!e.str("name").is_empty());
        assert!(e.get("ts").is_some());
        let pid = e.num("pid");
        pids.insert(pid as u64);
        // Crash sealing: the export is grouped by incarnation — no
        // crashed-incarnation event interleaves after a newer one.
        assert!(pid >= last_pid, "incarnations interleave in the export");
        last_pid = pid;
        // Per-thread simulated time is cumulative rail time, so within
        // one incarnation each (pid, tid) op lane is monotonic.
        if e.str("cat") == "op" {
            let args = e.get("args").expect("op spans carry args");
            let sim = args.num("sim_start_ns") as u64;
            let key = (pid as u64, e.num("tid") as u64);
            if let Some(&prev) = last_sim.get(&key) {
                assert!(
                    sim >= prev,
                    "sim time went backwards on pid/tid {key:?}: {prev} -> {sim}"
                );
            }
            last_sim.insert(key, sim);
        }
    }
    assert_eq!(
        pids,
        [0u64, 1u64].into_iter().collect(),
        "both incarnations must appear"
    );
    // Both sides of the crash produced op spans.
    let recovery: Vec<&Json> = events
        .iter()
        .filter(|e| e.str("cat") == "recovery")
        .collect();
    assert_eq!(recovery.len(), RecoveryPhase::ALL.len());
    for r in &recovery {
        assert_eq!(
            r.num("pid") as u64,
            1,
            "recovery runs in the new incarnation"
        );
    }
}

/// Without arming, tracing must be a strict no-op: no tracer handle, no
/// gauge movement, and `export_trace` refuses cleanly.
#[test]
fn tracing_off_is_a_no_op() {
    let cluster = Cluster::builder(SystemConfig::symmetric_nvm(3, 1 << 14))
        .persist(PersistMode::FlitCxl0)
        .build()
        .unwrap();
    let session = cluster.session(MachineId(0));
    let queue = session.create_queue::<u64>("q").unwrap();
    for i in 0..10 {
        queue.enqueue(&session, i).unwrap();
    }
    assert!(cluster.tracer().is_none());
    let snap = session.stats_delta();
    assert_eq!(snap.trace_events, 0);
    assert_eq!(snap.trace_dropped, 0);
    assert_eq!(snap.trace_p99_sim_ns, 0);
    assert_eq!(
        cluster.export_trace("should-not-exist.json"),
        Err(ApiError::NoTracer)
    );
    assert!(!std::path::Path::new("should-not-exist.json").exists());
}

/// Percentile gauges surface through the ordinary stats snapshot, and
/// per-kind histograms record what actually ran.
#[test]
fn percentiles_flow_through_stats_snapshot() {
    let cluster = traced_cluster();
    let session = cluster.session(MachineId(0));
    let stack = session.create_stack::<u64>("s").unwrap();
    for i in 0..50 {
        stack.push(&session, i).unwrap();
    }
    for _ in 0..50 {
        stack.pop(&session).unwrap();
    }
    let tracer = cluster.tracer().unwrap();
    assert_eq!(tracer.histogram(OpKind::Push).count(), 50);
    assert_eq!(tracer.histogram(OpKind::Pop).count(), 50);
    assert_eq!(tracer.histogram(OpKind::Enqueue).count(), 0);
    // Durable ops take simulated time, so the percentiles are non-zero
    // and ordered.
    let h = tracer.histogram(OpKind::Push);
    assert!(h.p50() > 0);
    assert!(h.p50() <= h.p99() && h.p99() <= h.p999());

    let snap = session.stats_delta();
    assert!(snap.trace_events >= 100);
    assert!(snap.trace_p50_sim_ns > 0);
    assert!(snap.trace_p50_sim_ns <= snap.trace_p99_sim_ns);
    assert!(snap.trace_p99_sim_ns <= snap.trace_p999_sim_ns);

    // Push ops under FliT persist something: amplification counters land
    // in the exported spans.
    let evs = tracer.events();
    assert!(evs
        .iter()
        .any(|e| e.persist_acks > 0 || e.flushes > 0 || e.barriers > 0));
}

/// `recover_roots` produces a full, ordered phase breakdown every time,
/// even when phases have nothing to do.
#[test]
fn recovery_breakdown_has_every_phase() {
    let cluster = traced_cluster();
    let session = cluster.session(MachineId(0));
    session.create_counter("c").unwrap();
    let tracer = cluster.tracer().unwrap();
    assert!(tracer.recovery_breakdown().is_empty());

    cluster.crash(MEM);
    cluster.recover(MEM);
    let session = cluster.session(MachineId(0));
    session.recover_roots().unwrap();

    let phases: Vec<RecoveryPhase> = tracer
        .recovery_breakdown()
        .iter()
        .map(|t| t.phase)
        .collect();
    assert_eq!(phases, RecoveryPhase::ALL);

    // A second pass replaces, not appends: the breakdown stays one row
    // per phase.
    session.recover_roots().unwrap();
    assert_eq!(tracer.recovery_breakdown().len(), RecoveryPhase::ALL.len());
}

/// The JSONL export is one parseable object per line with the
/// self-describing schema.
#[test]
fn jsonl_export_is_line_parseable() {
    let cluster = traced_cluster();
    let session = cluster.session(MachineId(0));
    let queue = session.create_queue::<u64>("q").unwrap();
    for i in 0..5 {
        queue.enqueue(&session, i).unwrap();
    }
    let text = cluster.tracer().unwrap().export_jsonl();
    let mut enqueues = 0;
    for line in text.lines() {
        let obj = Parser::parse(line);
        assert!(matches!(obj, Json::Obj(_)));
        if obj.str("name") == "enqueue" {
            enqueues += 1;
            assert_eq!(obj.str("cat"), "op");
            assert!(obj.num("sim_dur_ns") >= 0.0);
        }
    }
    assert_eq!(enqueues, 5);
}
