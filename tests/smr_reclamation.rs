//! Acceptance suite for `cxl0::smr`, the epoch-based reclamation layer:
//!
//! * the traversal structures (list, map) run **10×-capacity churn in
//!   bounded memory with reader threads traversing throughout** — no
//!   quiesce points anywhere — under every sound `PersistMode`;
//! * a proptest drives random pin/retire/collect/crash/recover
//!   interleavings against an exact single-threaded model of the epoch
//!   algebra and limbo bags: the allocator's free list always holds
//!   exactly the blocks the model says are reclaimed, and no block is
//!   ever handed out while the model still counts it live or in limbo.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cxl0::model::{Loc, MachineId, SystemConfig};
use cxl0::runtime::alloc::META_CELLS;
use cxl0::runtime::api::{Cluster, PersistMode};
use cxl0::runtime::{Allocator, FlitCxl0, NaiveMStore, Persistence, SimFabric, SmrDomain};
use proptest::prelude::*;

/// Every mode the reclamation layer must be sound under: the strict
/// per-operation modes plus the no-durability baseline (reclamation is
/// orthogonal to durability; only the deliberately unsound `FlitX86`
/// and the capacity-bounded `Buffered` rig are excluded).
fn sound_modes() -> Vec<PersistMode> {
    let mut modes: Vec<PersistMode> = PersistMode::comparison_set()
        .into_iter()
        .filter(|m| m.is_strict())
        .collect();
    modes.push(PersistMode::None);
    modes
}

fn tiny_cluster(mode: PersistMode) -> Arc<Cluster> {
    // A deliberately tiny memory node: registry + allocator metadata
    // leave room for only a few dozen node blocks, so any reclamation
    // gap exhausts the heap well before the loops finish.
    Cluster::builder(SystemConfig::symmetric_nvm(2, META_CELLS + 256))
        .persist(mode)
        .root_capacity(4)
        .build()
        .unwrap()
}

/// The list acceptance scenario: insert/remove churn allocating ≥ 10×
/// the region's capacity, while reader threads traverse the whole time.
/// Retirement + amortized collection alone must keep the region
/// serviceable and the free-list hit rate ≥ 90%.
#[test]
fn list_churn_10x_with_concurrent_readers_all_sound_modes() {
    for mode in sound_modes() {
        let cluster = tiny_cluster(mode);
        let s = cluster.session(MachineId(0));
        let list = s.create_list::<u64>("ls").unwrap();
        // Permanent residents the readers traverse over; churn keys sort
        // after them so every traversal crosses the churn region... and
        // before them (500+) so removals splice mid-list too.
        for k in [100u64, 900, 1800] {
            list.insert(&s, k).unwrap();
        }
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&cluster);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let s = c.session(MachineId(0));
                    let list = s.open_list::<u64>("ls").unwrap();
                    let mut sweeps = 0u64;
                    loop {
                        for k in [100u64, 900, 1800] {
                            assert!(list.contains(&s, k).unwrap(), "resident key {k} lost");
                        }
                        sweeps += 1;
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    sweeps
                })
            })
            .collect();

        // A fresh session so the stats delta covers exactly the churn.
        let sc = cluster.session(MachineId(0));
        // Each pair allocates one 3-cell block: 900 pairs ≈ 2700 cells
        // through a 256-cell region — > 10× its capacity.
        let target = 900u64;
        for i in 0..target {
            let k = 500 + i % 16;
            assert!(list.insert(&sc, k).unwrap(), "op {i} ({mode:?})");
            assert!(list.remove(&sc, k).unwrap(), "op {i} ({mode:?})");
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0, "reader did no sweeps");
        }

        let d = sc.stats_delta();
        assert_eq!(
            d.allocs,
            d.frees + d.smr_limbo,
            "every churn block is freed or awaiting its grace period"
        );
        let hit_rate = d.freelist_hits as f64 / d.allocs as f64;
        assert!(
            hit_rate >= 0.9,
            "free-list hit rate {hit_rate:.2} < 0.9 under {mode:?} \
             ({} hits / {} allocs)",
            d.freelist_hits,
            d.allocs
        );
        assert!(d.smr_retires >= target, "churn retires every removal");
        assert_eq!(d.smr_limbo, d.smr_retires - d.smr_reclaims);
    }
}

/// The map acceptance scenario: recycle churn allocating ≥ 10× the
/// region's capacity in fresh tables, while reader threads look up live
/// entries throughout (lock-free — recycling excludes mutators, never
/// lookups).
#[test]
fn map_recycle_churn_10x_with_concurrent_readers_all_sound_modes() {
    for mode in sound_modes() {
        let cluster = tiny_cluster(mode);
        let s = cluster.session(MachineId(0));
        let map = s.create_map::<u64, u64>("m", 8).unwrap();
        for k in 1..=4u64 {
            map.insert(&s, k, k * 10).unwrap();
        }
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&cluster);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let s = c.session(MachineId(0));
                    let map = s.open_map::<u64, u64>("m").unwrap();
                    let mut sweeps = 0u64;
                    loop {
                        for k in 1..=4u64 {
                            assert_eq!(map.get(&s, k).unwrap(), Some(k * 10), "key {k} lost");
                        }
                        sweeps += 1;
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    sweeps
                })
            })
            .collect();

        // A fresh session so the stats delta covers exactly the churn.
        let sc = cluster.session(MachineId(0));
        // Each round kills a churn key and recycles: a fresh 17-cell
        // table block per round, ≥ 10× the 256-cell region across 160
        // rounds.
        for round in 0..160u64 {
            let k = 100 + round;
            assert!(map.insert(&sc, k, k).unwrap().is_some(), "round {round}");
            map.remove(&sc, k).unwrap();
            assert_eq!(map.recycle(&sc).unwrap(), 4, "round {round} ({mode:?})");
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0, "reader did no sweeps");
        }

        let d = sc.stats_delta();
        let hit_rate = d.freelist_hits as f64 / d.allocs as f64;
        assert!(
            hit_rate >= 0.9,
            "free-list hit rate {hit_rate:.2} < 0.9 under {mode:?} \
             ({} hits / {} allocs)",
            d.freelist_hits,
            d.allocs
        );
        assert!(d.smr_retires >= 160, "every recycle retires a table");
        for k in 1..=4u64 {
            assert_eq!(map.get(&s, k).unwrap(), Some(k * 10));
        }
    }
}

// ---------------------------------------------------------------------
// Proptest: the epoch algebra against an exact single-threaded model.
// ---------------------------------------------------------------------

/// Mirror of the domain's constants (pinned here on purpose: changing
/// the protocol constants is a semantic change this suite must notice).
const GRACE_EPOCHS: u64 = 2;
const COLLECT_EVERY: u64 = 8;

/// An exact model of one single-threaded client of an `SmrDomain`: the
/// global epoch, the one slot the thread pins through, the limbo bags,
/// and which blocks have drained to the free list. Deterministic because
/// the real domain is driven from one thread.
#[derive(Default)]
struct Model {
    /// 0 = fresh domain offset; the real domain starts at epoch 1.
    epoch: u64,
    /// Nesting count and the epoch recorded when the outermost pin
    /// published.
    pin_count: u64,
    pin_epoch: u64,
    /// Blocks handed out and not yet retired.
    live: Vec<Loc>,
    /// Limbo bags, oldest first.
    bags: Vec<(u64, Vec<Loc>)>,
    /// Blocks the domain has handed back to the allocator.
    freed: BTreeSet<Loc>,
    /// Lifetime retire count (drives the amortized collect).
    retires: u64,
}

impl Model {
    fn pin(&mut self) {
        if self.pin_count == 0 {
            self.pin_epoch = self.epoch;
        }
        self.pin_count += 1;
    }

    fn unpin(&mut self) {
        self.pin_count -= 1;
    }

    fn try_advance(&mut self) -> bool {
        if self.pin_count > 0 && self.pin_epoch != self.epoch {
            return false;
        }
        self.epoch += 1;
        true
    }

    fn drain_ripe(&mut self) {
        while let Some((e, _)) = self.bags.first() {
            if e + GRACE_EPOCHS > self.epoch {
                break;
            }
            let (_, blocks) = self.bags.remove(0);
            self.freed.extend(blocks);
        }
    }

    fn collect(&mut self) {
        for _ in 0..GRACE_EPOCHS {
            self.drain_ripe();
            if !self.try_advance() {
                break;
            }
        }
        self.drain_ripe();
    }

    /// `retire` as issued through a transient guard: pin, file, maybe
    /// amortized-collect, unpin.
    fn retire(&mut self, loc: Loc) {
        self.pin();
        match self.bags.last_mut() {
            Some((e, blocks)) if *e >= self.epoch => blocks.push(loc),
            _ => self.bags.push((self.epoch, vec![loc])),
        }
        self.retires += 1;
        if self.retires.is_multiple_of(COLLECT_EVERY) {
            self.collect();
        }
        self.unpin();
    }

    fn recover(&mut self) {
        self.pin_count = 0;
        for (_, blocks) in self.bags.drain(..) {
            self.freed.extend(blocks);
        }
    }

    fn limbo_len(&self) -> u64 {
        self.bags.iter().map(|(_, b)| b.len() as u64).sum()
    }
}

#[derive(Debug, Clone)]
enum SmrOp {
    /// Allocate a block into the live set.
    Alloc,
    /// Retire the i-th live block through a transient guard.
    Retire(u8),
    /// Pin (the outer long-lived guard; nests).
    Pin,
    /// Drop one outer pin, if any.
    Unpin,
    /// Explicit collect pass.
    Collect,
    /// Crash the memory node, recover it, run the recovery sweeps
    /// (dropping all pins first — recovery is quiesced by contract).
    CrashRecover,
}

fn arb_smr_op() -> impl Strategy<Value = SmrOp> {
    // The vendored prop_oneof! is unweighted; repeated arms bias the
    // distribution toward alloc/retire so limbo actually populates.
    prop_oneof![
        Just(SmrOp::Alloc),
        Just(SmrOp::Alloc),
        Just(SmrOp::Alloc),
        (0..8u8).prop_map(SmrOp::Retire),
        (0..8u8).prop_map(SmrOp::Retire),
        (0..8u8).prop_map(SmrOp::Retire),
        Just(SmrOp::Pin),
        Just(SmrOp::Unpin),
        Just(SmrOp::Collect),
        Just(SmrOp::CrashRecover),
    ]
}

fn run_smr_interleaving(persist: Arc<dyn Persistence>, ops: Vec<SmrOp>) {
    let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 4096));
    let mem = MachineId(1);
    let alloc = Arc::new(Allocator::over_region(f.config(), mem, persist));
    let smr = SmrDomain::new(Arc::clone(&alloc));
    let node = f.node(MachineId(0));
    let mut model = Model {
        epoch: smr.epoch(),
        ..Model::default()
    };
    let mut outer: Vec<cxl0::runtime::SmrGuard> = Vec::new();
    const CELLS: u32 = 2;

    for op in ops {
        match op {
            SmrOp::Alloc => {
                if let Some(b) = alloc.alloc(&node, CELLS).unwrap() {
                    // THE safety property: nothing live or in limbo is
                    // ever handed out again.
                    assert!(!model.live.contains(&b.loc), "live block re-granted");
                    assert!(
                        !model.bags.iter().any(|(_, bag)| bag.contains(&b.loc)),
                        "limbo block re-granted before its grace period"
                    );
                    model.freed.remove(&b.loc);
                    model.live.push(b.loc);
                }
            }
            SmrOp::Retire(i) => {
                if model.live.is_empty() {
                    continue;
                }
                let loc = model.live.remove(usize::from(i) % model.live.len());
                smr.pin().retire(&node, loc).unwrap();
                model.retire(loc);
            }
            SmrOp::Pin => {
                outer.push(smr.pin());
                model.pin();
            }
            SmrOp::Unpin => {
                if outer.pop().is_some() {
                    model.unpin();
                }
            }
            SmrOp::Collect => {
                smr.collect(&node).unwrap();
                model.collect();
            }
            SmrOp::CrashRecover => {
                // Quiesce (recovery contract), then crash + recover.
                outer.clear();
                model.pin_count = 0;
                f.crash(mem);
                f.recover(mem);
                alloc.recover(&node).unwrap();
                smr.recover(&node).unwrap();
                model.recover();
            }
        }
        // The domain must agree with the model exactly, every step.
        assert_eq!(smr.epoch(), model.epoch, "epoch diverged");
        assert_eq!(smr.limbo_len(), model.limbo_len(), "limbo diverged");
        let listed: BTreeSet<Loc> = alloc
            .debug_free_list(&node, CELLS)
            .unwrap()
            .into_iter()
            .collect();
        assert_eq!(listed, model.freed, "free list diverged from the model");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random pin/retire/collect/crash/recover interleavings: the
    /// domain's epoch, limbo population and the allocator's free list
    /// track an exact model, under a strict FliT strategy and the naive
    /// all-`MStore` one.
    #[test]
    fn epochs_limbo_and_free_lists_track_the_model(
        ops in proptest::collection::vec(arb_smr_op(), 0..64)
    ) {
        run_smr_interleaving(Arc::new(FlitCxl0::default()), ops.clone());
        run_smr_interleaving(Arc::new(NaiveMStore), ops);
    }
}
