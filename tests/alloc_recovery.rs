//! Crash consistency of the `cxl0::alloc` allocator subsystem, under
//! randomized interleavings of alloc/free/torn-op/crash/recover and
//! under every [`PersistMode`]: **no block is ever lost, and no block
//! is ever handed out twice** — plus the headline acceptance scenario,
//! a `DurableQueue` churn loop of ≥ 10× the region's bump capacity that
//! completes because reclaimed nodes are reused.

use std::collections::BTreeSet;
use std::sync::Arc;

use cxl0::model::{Loc, MachineId, SystemConfig};
use cxl0::runtime::alloc::{TornAlloc, TornFree, META_CELLS};
use cxl0::runtime::api::{Cluster, PersistMode};
use cxl0::runtime::FreeError;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Allocate a block (all allocations share one size class, so the
    /// model's free set maps onto exactly one free list).
    Alloc,
    /// Free the i-th oldest live block, if any.
    Free(u8),
    /// Double-free the i-th oldest *freed* block — must be refused.
    DoubleFree(u8),
    /// Tear an allocation pop at the given stage, then crash + recover.
    TornAllocCrash(u8),
    /// Tear a free of the i-th oldest live block, then crash + recover.
    TornFreeCrash(u8, u8),
    /// Crash the memory node and run recovery (clean — nothing torn).
    CrashRecover,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Alloc),
        (0..8u8).prop_map(Op::Free),
        (0..8u8).prop_map(Op::DoubleFree),
        (0..4u8).prop_map(Op::TornAllocCrash),
        (0..8u8, 0..4u8).prop_map(|(i, s)| Op::TornFreeCrash(i, s)),
        Just(Op::CrashRecover),
    ]
}

const ALLOC_STAGES: [TornAlloc; 4] = [
    TornAlloc::Claimed,
    TornAlloc::Recorded,
    TornAlloc::Swung,
    TornAlloc::Marked,
];
const FREE_STAGES: [TornFree; 4] = [
    TornFree::Latched,
    TornFree::Claimed,
    TornFree::Linked,
    TornFree::Pushed,
];

/// The single-threaded reference model: which blocks the application
/// owns, and which it has returned. (Block size is fixed at one class
/// so the model's free set maps onto exactly one free list.)
#[derive(Default)]
struct Model {
    /// Blocks handed out and not yet freed (insertion order).
    live: Vec<Loc>,
    /// Blocks returned to the allocator (the class free set).
    freed: BTreeSet<Loc>,
}

fn run_interleaving(mode: PersistMode, ops: Vec<Op>) {
    let cluster = Cluster::builder(SystemConfig::symmetric_nvm(2, 4096))
        .persist(mode)
        .root_capacity(0)
        .build()
        .unwrap();
    let mem = cluster.memory_node();
    let session = cluster.session(MachineId(0));
    let alloc = Arc::clone(session.allocator());
    let mut model = Model::default();
    // All blocks share one size class, so the model's `freed` set must
    // equal that class's free list after every recovery.
    const CELLS: u32 = 2;

    let crash_recover = |model: &Model| {
        cluster.crash(mem);
        cluster.recover(mem);
        let s = cluster.session(MachineId(0));
        s.recover_roots().unwrap();
        // Invariant: after recovery the free list holds *exactly* the
        // model's freed set (no block lost, none twice).
        let list: Vec<Loc> = alloc.debug_free_list(&s, CELLS).unwrap();
        let listed: BTreeSet<Loc> = list.iter().copied().collect();
        assert_eq!(listed.len(), list.len(), "a block is on the list twice");
        assert_eq!(listed, model.freed, "free list diverged from the model");
        for b in &model.live {
            assert!(!listed.contains(b), "live block {b:?} is on the free list");
        }
    };

    for op in ops {
        match op {
            Op::Alloc => {
                if let Some(b) = alloc.alloc(&session, CELLS).unwrap() {
                    assert!(
                        !model.live.contains(&b.loc),
                        "block {0:?} handed out while live",
                        b.loc
                    );
                    model.freed.remove(&b.loc);
                    model.live.push(b.loc);
                }
            }
            Op::Free(i) => {
                if model.live.is_empty() {
                    continue;
                }
                let loc = model.live.remove(usize::from(i) % model.live.len());
                alloc.free(&session, loc).unwrap().unwrap();
                assert!(model.freed.insert(loc));
            }
            Op::DoubleFree(i) => {
                let Some(loc) = model
                    .freed
                    .iter()
                    .nth(usize::from(i) % model.freed.len().max(1))
                else {
                    continue;
                };
                assert_eq!(
                    alloc.free(&session, *loc).unwrap(),
                    Err(FreeError::DoubleFree)
                );
            }
            Op::TornAllocCrash(stage) => {
                // Tears mid-pop (a no-op if the free list is empty),
                // then crashes: the popped block must be restored.
                let torn = alloc
                    .torn_alloc(&session, CELLS, ALLOC_STAGES[usize::from(stage) % 4])
                    .unwrap();
                if let Some(loc) = torn {
                    assert!(model.freed.contains(&loc), "tore a non-free block");
                }
                crash_recover(&model);
            }
            Op::TornFreeCrash(i, stage) => {
                if model.live.is_empty() {
                    crash_recover(&model);
                    continue;
                }
                let loc = model.live.remove(usize::from(i) % model.live.len());
                alloc
                    .torn_free(&session, loc, FREE_STAGES[usize::from(stage) % 4])
                    .unwrap()
                    .unwrap();
                // The free was invoked and the caller no longer owns the
                // block; recovery must complete it exactly once.
                assert!(model.freed.insert(loc));
                crash_recover(&model);
            }
            Op::CrashRecover => crash_recover(&model),
        }
    }
    crash_recover(&model);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The acceptance-criterion proptest: random alloc/free/torn-op/
    /// crash/recover interleavings, under every *sound* durability mode
    /// plus the no-durability baseline (whose state survives a
    /// memory-node crash in the issuing node's cache). The one
    /// exclusion is `FlitX86`, the deliberately unsound x86 port the
    /// paper's §6 keeps for comparison: its "flushes" park lines in the
    /// memory node's cache, so a memory-node crash loses acknowledged
    /// writes below the allocator — see
    /// [`flit_x86_unsoundness_reaches_the_allocator`] for that claim,
    /// pinned.
    #[test]
    fn no_block_lost_or_doubly_granted(ops in proptest::collection::vec(arb_op(), 0..48)) {
        for mode in PersistMode::comparison_set() {
            if mode != PersistMode::FlitX86 {
                run_interleaving(mode, ops.clone());
            }
        }
    }
}

/// The §6 motivating claim, reproduced at subsystem scale: no recovery
/// sweep can make allocation crash-consistent over an unsound flush
/// layer. Under the unadapted x86 FliT, a *completed* free is lost by a
/// memory-node crash (the freed block vanishes from the durable free
/// list), while the identical program under `FlitCxl0` keeps it.
#[test]
fn flit_x86_unsoundness_reaches_the_allocator() {
    let survivors = |mode: PersistMode| {
        let cluster = Cluster::builder(SystemConfig::symmetric_nvm(2, 4096))
            .persist(mode)
            .root_capacity(0)
            .build()
            .unwrap();
        let mem = cluster.memory_node();
        let s = cluster.session(MachineId(0));
        let alloc = Arc::clone(s.allocator());
        let b = alloc.alloc(&s, 2).unwrap().unwrap();
        alloc.free(&s, b.loc).unwrap().unwrap();
        cluster.crash(mem);
        cluster.recover(mem);
        s.recover_roots().unwrap();
        alloc.debug_free_list(&s, 2).unwrap().len()
    };
    assert_eq!(survivors(PersistMode::FlitCxl0), 1);
    assert_eq!(
        survivors(PersistMode::FlitX86),
        0,
        "the unsound port must lose the completed free — if this starts \
         passing, the FlitX86 ablation no longer demonstrates §6"
    );
}

#[test]
fn torn_ops_recover_under_buffered_mode_after_sync() {
    // Buffered durability rolls unsynced epochs back wholesale; with a
    // sync point after the tear, the recovery sweep sees the torn state
    // and completes it, exactly like the strict modes.
    let cluster = Cluster::builder(SystemConfig::symmetric_nvm(2, 4096))
        .persist(PersistMode::Buffered {
            capacity: 512,
            sync_interval: 0,
        })
        .root_capacity(0)
        .build()
        .unwrap();
    let mem = cluster.memory_node();
    let s = cluster.session(MachineId(0));
    let alloc = Arc::clone(s.allocator());

    let a = alloc.alloc(&s, 2).unwrap().unwrap();
    let b = alloc.alloc(&s, 2).unwrap().unwrap();
    alloc.free(&s, a.loc).unwrap().unwrap();
    alloc
        .torn_free(&s, b.loc, TornFree::Claimed)
        .unwrap()
        .unwrap();
    s.sync().unwrap();

    cluster.crash(mem);
    cluster.recover(mem);
    s.recover_roots().unwrap();
    let listed: Vec<Loc> = alloc.debug_free_list(&s, 2).unwrap();
    let set: BTreeSet<Loc> = listed.iter().copied().collect();
    assert_eq!(set.len(), listed.len());
    assert_eq!(set, [a.loc, b.loc].into_iter().collect());
}

/// The headline acceptance scenario: an enqueue/dequeue churn loop of
/// ≥ 10× the region's bump capacity completes without exhausting the
/// heap, because dequeued nodes are reclaimed and reused.
#[test]
fn queue_churn_runs_10x_past_bump_capacity() {
    // A deliberately tiny memory node: the registry + allocator
    // metadata + a queue leave room for only a few dozen node blocks.
    let cells = META_CELLS + 256;
    let cluster = Cluster::builder(SystemConfig::symmetric_nvm(2, cells))
        .root_capacity(4)
        .build()
        .unwrap();
    let setup = cluster.session(MachineId(0));
    let q = setup.create_queue::<u64>("churn").unwrap();
    // A fresh session so the stats delta covers the churn loop only.
    let s = cluster.session(MachineId(0));

    // Every enqueue allocates a 3-cell block: without reclamation the
    // region would be exhausted after < 256 / 3 operations. Run > 10×
    // the whole region's capacity.
    let target = u64::from(cells) * 10;
    for i in 0..target {
        assert!(
            q.enqueue(&s, i + 1).unwrap(),
            "op {i}: heap exhausted — reclaimed nodes were not reused"
        );
        assert_eq!(q.dequeue(&s).unwrap(), Some(i + 1));
    }

    let d = s.stats_delta();
    assert_eq!(d.allocs - d.frees, 0, "churn must be allocation-neutral");
    assert!(
        d.freelist_hits > target - 100,
        "steady-state churn must be served by reuse ({} hits)",
        d.freelist_hits
    );
    assert!(
        d.hw_cells < 32,
        "steady-state churn must run in a constant handful of cells \
         (high-water {})",
        d.hw_cells
    );
}

/// Same bounded-memory property for the other reclaiming structures.
#[test]
fn stack_and_list_churn_run_past_bump_capacity() {
    let cells = META_CELLS + 256;
    let cluster = Cluster::builder(SystemConfig::symmetric_nvm(2, cells))
        .root_capacity(4)
        .build()
        .unwrap();
    let s = cluster.session(MachineId(0));
    let stack = s.create_stack::<u64>("st").unwrap();
    let list = s.create_list::<u64>("ls").unwrap();
    for i in 0..1500u64 {
        assert!(stack.push(&s, i + 1).unwrap(), "op {i}");
        assert_eq!(stack.pop(&s).unwrap(), Some(i + 1));
        assert!(list.insert(&s, i % 9 + 1).unwrap(), "op {i}");
        assert!(list.remove(&s, i % 9 + 1).unwrap(), "op {i}");
        // No reclaim calls: the list retires unlinked nodes through the
        // SMR domain, whose amortized collection must keep this tiny
        // region serviceable on its own.
    }
    let d = s.stats_delta();
    assert!(d.smr_retires >= 1500, "retires {}", d.smr_retires);
    assert!(
        d.smr_reclaims > d.smr_retires - 64,
        "limbo must stay bounded ({} retired, {} reclaimed)",
        d.smr_retires,
        d.smr_reclaims
    );
}

/// Allocator recovery is wired into the session API: a torn allocator
/// op plus `Session::recover_roots` leaves the heap fully serviceable.
#[test]
fn recover_roots_runs_the_allocator_sweep() {
    let cluster = Cluster::symmetric(1, 4096).unwrap();
    let mem = cluster.memory_node();
    let s = cluster.session(MachineId(0));
    let alloc = Arc::clone(s.allocator());

    let b = alloc.alloc(&s, 2).unwrap().unwrap();
    alloc
        .torn_free(&s, b.loc, TornFree::Linked)
        .unwrap()
        .unwrap();

    cluster.crash(mem);
    cluster.recover(mem);
    s.recover_roots().unwrap();

    // The torn free completed: the block is reusable, exactly once.
    let again = alloc.alloc(&s, 2).unwrap().unwrap();
    assert_eq!(again.loc, b.loc);
    assert!(alloc.debug_free_list(&s, 2).unwrap().is_empty());
}
