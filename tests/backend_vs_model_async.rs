//! Refinement of the executable runtime against the `CXL0_AF` extension:
//! every behavior `SimFabric` produces with `aflush`/`barrier` in the mix
//! must be a behavior of the asynchronous-flush semantics
//! (`cxl0_model::asyncflush`), labels interleaved with `τ*` — where `τ`
//! now includes persistency-buffer retirement.
//!
//! The backend implements `barrier` by *forcing* the write-backs its
//! blocking rule waits for, exactly like `RFlush`; the explorer's
//! τ-closure before each label shows the resulting state is one the
//! blocking rule admits.

use cxl0::explore::{AsyncExplorer, AsyncStateSet};
use cxl0::model::asyncflush::{AsyncLabel, AsyncSemantics};
use cxl0::model::{Label, Loc, MachineConfig, MachineId, StoreKind, SystemConfig, Val};
use cxl0::runtime::{CostModel, SimFabric};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Load(usize, usize),
    Store(StoreKind, usize, usize, u64),
    AFlush(usize, usize),
    Barrier(usize),
    RFlush(usize, usize),
    Crash(usize),
    Recover(usize),
    Propagate(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    let m = 0..2usize;
    let l = 0..2usize;
    let v = 1..3u64;
    let kind = prop_oneof![
        Just(StoreKind::Local),
        Just(StoreKind::Remote),
        Just(StoreKind::Memory)
    ];
    prop_oneof![
        (m.clone(), l.clone()).prop_map(|(m, l)| Op::Load(m, l)),
        (kind, m.clone(), l.clone(), v).prop_map(|(k, m, l, v)| Op::Store(k, m, l, v)),
        (m.clone(), l.clone()).prop_map(|(m, l)| Op::AFlush(m, l)),
        m.clone().prop_map(Op::Barrier),
        (m.clone(), l.clone()).prop_map(|(m, l)| Op::RFlush(m, l)),
        m.clone().prop_map(Op::Crash),
        m.clone().prop_map(Op::Recover),
        any::<u64>().prop_map(Op::Propagate),
    ]
}

fn config() -> SystemConfig {
    SystemConfig::new(vec![
        MachineConfig::non_volatile(2),
        MachineConfig::volatile(2),
    ])
}

fn loc(owner: usize, addr: usize) -> Loc {
    Loc::new(MachineId(owner), addr as u32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn backend_with_async_flushes_refines_cxl0_af(
        ops in proptest::collection::vec(arb_op(), 0..35),
    ) {
        let cfg = config();
        let fabric = SimFabric::with_options(
            cfg.clone(),
            cxl0::model::ModelVariant::Base,
            CostModel::free(),
        );
        let sem = AsyncSemantics::new(cfg);
        let exp = AsyncExplorer::new(&sem);
        let mut states: AsyncStateSet = exp.initial_set();
        let nodes: Vec<_> = (0..2).map(|m| fabric.node(MachineId(m))).collect();

        for op in ops {
            match op {
                Op::Load(m, l) => {
                    let Ok(v) = nodes[m].load(loc(l % 2, l)) else { continue };
                    states = exp.after_label(
                        &states,
                        &Label::load(MachineId(m), loc(l % 2, l), Val(v)).into(),
                    );
                }
                Op::Store(kind, m, l, v) => {
                    let target = loc((m + l) % 2, l);
                    if nodes[m].store(kind, target, v).is_err() {
                        continue;
                    }
                    states = exp.after_label(
                        &states,
                        &Label::store(kind, MachineId(m), target, Val(v)).into(),
                    );
                }
                Op::AFlush(m, l) => {
                    let target = loc(l % 2, l);
                    if nodes[m].aflush(target).is_err() {
                        continue;
                    }
                    states = exp.after_label(&states, &AsyncLabel::aflush(MachineId(m), target));
                }
                Op::Barrier(m) => {
                    if nodes[m].barrier().is_err() {
                        continue;
                    }
                    states = exp.after_label(&states, &AsyncLabel::barrier(MachineId(m)));
                }
                Op::RFlush(m, l) => {
                    let target = loc(l % 2, l);
                    if nodes[m].rflush(target).is_err() {
                        continue;
                    }
                    states =
                        exp.after_label(&states, &Label::rflush(MachineId(m), target).into());
                }
                Op::Crash(m) => {
                    if fabric.is_crashed(MachineId(m)) {
                        continue;
                    }
                    fabric.crash(MachineId(m));
                    states = exp.after_label(&states, &Label::crash(MachineId(m)).into());
                }
                Op::Recover(m) => fabric.recover(MachineId(m)),
                Op::Propagate(seed) => fabric.propagate_randomly(seed, 3),
            }
            prop_assert!(
                !states.is_empty(),
                "backend produced a behavior CXL0_AF forbids"
            );
        }

        // The backend's pending-buffer sizes must be admitted by some
        // model state (the model may hold more pending entries — the
        // backend retires eagerly at barriers, never more lazily).
        let buffers_match = states.iter().any(|st| {
            (0..2).all(|m| st.pending_of(MachineId(m)).len() >= fabric.pending_flushes(MachineId(m)))
        });
        prop_assert!(buffers_match, "no model state admits the backend's buffers");
    }
}

/// The motivating end-to-end scenario, deterministic: batching under one
/// barrier behaves identically in model and backend.
#[test]
fn deterministic_batching_scenario_matches_model() {
    let cfg = SystemConfig::symmetric_nvm(2, 2);
    let fabric = SimFabric::with_options(
        cfg.clone(),
        cxl0::model::ModelVariant::Base,
        CostModel::free(),
    );
    let n0 = fabric.node(MachineId(0));
    let x = Loc::new(MachineId(1), 0);
    let y = Loc::new(MachineId(1), 1);

    n0.lstore(x, 1).unwrap();
    n0.lstore(y, 2).unwrap();
    n0.aflush(x).unwrap();
    n0.aflush(y).unwrap();
    assert_eq!(fabric.pending_flushes(MachineId(0)), 2);
    assert_eq!(n0.barrier().unwrap(), 2);
    fabric.crash(MachineId(1));
    fabric.recover(MachineId(1));
    assert_eq!(n0.load(x).unwrap(), 1);
    assert_eq!(n0.load(y).unwrap(), 2);

    let sem = AsyncSemantics::new(cfg);
    let exp = AsyncExplorer::new(&sem);
    let trace: Vec<AsyncLabel> = vec![
        Label::lstore(MachineId(0), x, Val(1)).into(),
        Label::lstore(MachineId(0), y, Val(2)).into(),
        AsyncLabel::aflush(MachineId(0), x),
        AsyncLabel::aflush(MachineId(0), y),
        AsyncLabel::barrier(MachineId(0)),
        Label::crash(MachineId(1)).into(),
        Label::load(MachineId(0), x, Val(1)).into(),
        Label::load(MachineId(0), y, Val(2)).into(),
    ];
    assert!(exp.is_allowed(&trace));

    // And the lossy observation is forbidden after the barrier:
    let mut lossy = trace;
    lossy[6] = Label::load(MachineId(0), x, Val(0)).into();
    assert!(!exp.is_allowed(&lossy));
}
