//! E5: Figure 5 — the latency sweep must reproduce the *shape* the paper
//! reports (we do not chase absolute nanoseconds; the substrate is a
//! simulator, not the authors' testbed):
//!
//! * local ≈ 2× faster than remote (host 2.34×, device 1.94×);
//! * host and device remote accesses cost about the same;
//! * device→HM ladder `LStore < RStore < MStore` at ≈ 1 : 2.08 : 3.0;
//! * `RFlush ≈ MStore` wherever both exist;
//! * exactly seven "not measurable" cells.

use cxl0::fabric::{run_figure5, AccessPath, Figure5, LatencyConfig};
use cxl0::protocol::CxlOp;

fn fig() -> Figure5 {
    run_figure5(&LatencyConfig::testbed(), 1000, 2024)
}

fn med(f: &Figure5, path: AccessPath, op: CxlOp) -> f64 {
    f.median(path, op)
        .unwrap_or_else(|| panic!("{path:?}/{op} missing")) as f64
}

#[test]
fn host_local_vs_remote_read_ratio() {
    let f = fig();
    let ratio =
        med(&f, AccessPath::HostToHdm, CxlOp::Read) / med(&f, AccessPath::HostToHm, CxlOp::Read);
    assert!(
        (2.0..2.7).contains(&ratio),
        "host read ratio {ratio:.2} (paper: 2.34)"
    );
}

#[test]
fn device_local_vs_remote_read_ratio() {
    let f = fig();
    let ratio = med(&f, AccessPath::DeviceToHm, CxlOp::Read)
        / med(&f, AccessPath::DeviceToHdmDeviceBias, CxlOp::Read);
    assert!(
        (1.6..2.4).contains(&ratio),
        "device read ratio {ratio:.2} (paper: 1.94)"
    );
}

#[test]
fn remote_reads_symmetric_across_protocols() {
    // "accesses from the host and the device to their respective remote
    // CXL memory yield the same latency, despite using different CXL
    // sub-protocols."
    let f = fig();
    let h = med(&f, AccessPath::HostToHdm, CxlOp::Read);
    let d = med(&f, AccessPath::DeviceToHm, CxlOp::Read);
    let asym = h.max(d) / h.min(d);
    assert!(asym < 1.3, "remote read asymmetry {asym:.2}");
}

#[test]
fn device_store_ladder_to_hm() {
    let f = fig();
    let ls = med(&f, AccessPath::DeviceToHm, CxlOp::LStore);
    let rs = med(&f, AccessPath::DeviceToHm, CxlOp::RStore);
    let ms = med(&f, AccessPath::DeviceToHm, CxlOp::MStore);
    let r1 = rs / ls;
    let r2 = ms / rs;
    assert!(
        (1.7..2.5).contains(&r1),
        "RStore/LStore {r1:.2} (paper: 2.08)"
    );
    assert!(
        (1.2..1.7).contains(&r2),
        "MStore/RStore {r2:.2} (paper: 1.45)"
    );
}

#[test]
fn rflush_approximates_mstore_everywhere() {
    let f = fig();
    for path in AccessPath::ALL {
        let ms = med(&f, path, CxlOp::MStore);
        let rf = med(&f, path, CxlOp::RFlush);
        let ratio = ms.max(rf) / ms.min(rf);
        assert!(ratio < 1.2, "{path:?}: MStore {ms} vs RFlush {rf}");
    }
}

#[test]
fn lstores_are_cheap_everywhere() {
    let f = fig();
    for path in AccessPath::ALL {
        let ls = med(&f, path, CxlOp::LStore);
        let rd = med(&f, path, CxlOp::Read);
        assert!(ls < rd, "{path:?}: LStore {ls} should undercut Read {rd}");
    }
    // And the host's write buffer makes its LStore the cheapest bar in
    // the figure:
    let host = med(&f, AccessPath::HostToHm, CxlOp::LStore);
    for path in [
        AccessPath::DeviceToHm,
        AccessPath::DeviceToHdmHostBias,
        AccessPath::DeviceToHdmDeviceBias,
    ] {
        assert!(host < med(&f, path, CxlOp::LStore));
    }
}

#[test]
fn device_lstore_to_hm_slower_than_to_hdm() {
    // §5.2: the IP's two caches differ; green LStore > purple/orange.
    let f = fig();
    let hm = med(&f, AccessPath::DeviceToHm, CxlOp::LStore);
    assert!(med(&f, AccessPath::DeviceToHdmHostBias, CxlOp::LStore) < hm);
    assert!(med(&f, AccessPath::DeviceToHdmDeviceBias, CxlOp::LStore) < hm);
}

#[test]
fn seven_cells_not_measurable() {
    assert_eq!(fig().not_measurable(), 7);
}

#[test]
fn device_bias_is_never_slower_than_host_bias() {
    let f = fig();
    for op in [
        CxlOp::Read,
        CxlOp::LStore,
        CxlOp::RStore,
        CxlOp::MStore,
        CxlOp::RFlush,
    ] {
        let hb = med(&f, AccessPath::DeviceToHdmHostBias, op);
        let db = med(&f, AccessPath::DeviceToHdmDeviceBias, op);
        assert!(db <= hb, "{op}: device-bias {db} > host-bias {hb}");
    }
}
