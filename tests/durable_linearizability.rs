//! E7: the §6 transformation — FliT-wrapped objects are durably
//! linearizable under partial crashes; the unadapted x86 FliT is not.
//!
//! Concurrent workers on two compute machines drive each durable object
//! hosted on an NVM memory node; a nemesis crashes the memory node
//! mid-run; recovery re-attaches and the full history (crash included) is
//! checked with `cxl0-dlcheck`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cxl0::dlcheck::spec::{
    CounterOp, CounterSpec, MapOp, MapRet, MapSpec, QueueOp, QueueRet, QueueSpec, RegisterOp,
    RegisterRet, RegisterSpec, StackOp, StackRet, StackSpec,
};
use cxl0::dlcheck::{check_durably_linearizable, Recorder, ThreadId};
use cxl0::model::{MachineId, SystemConfig};
use cxl0::runtime::{
    DurableCounter, DurableMap, DurableQueue, DurableRegister, DurableStack, FlitCxl0,
    FlitOwnerOpt, FlitX86, NaiveMStore, Persistence, SharedHeap, SimFabric,
};

const MEM: MachineId = MachineId(2);

fn setup(p: Arc<dyn Persistence>) -> (Arc<SimFabric>, Arc<SharedHeap>, Arc<dyn Persistence>) {
    let fabric = SimFabric::new(SystemConfig::symmetric_nvm(3, 1 << 15));
    let heap = Arc::new(SharedHeap::new(fabric.config(), MEM));
    (fabric, heap, p)
}

/// Drives `threads` workers, each issuing `ops_per_thread` operations via
/// `work`, crashing the memory node once in the middle.
fn crash_workload<F>(fabric: &Arc<SimFabric>, threads: usize, work: F)
where
    F: Fn(usize, &cxl0::runtime::NodeHandle, &AtomicBool) + Send + Sync + 'static,
{
    let work = Arc::new(work);
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..threads {
        let node = fabric.node(MachineId(t % 2));
        let stop = Arc::clone(&stop);
        let work = Arc::clone(&work);
        handles.push(std::thread::spawn(move || work(t, &node, &stop)));
    }
    std::thread::sleep(std::time::Duration::from_millis(15));
    fabric.crash(MEM);
    std::thread::sleep(std::time::Duration::from_millis(2));
    fabric.recover(MEM);
    std::thread::sleep(std::time::Duration::from_millis(10));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn flit_register_durably_linearizable_under_crash() {
    let (fabric, heap, p) = setup(Arc::new(FlitCxl0::default()));
    let reg = DurableRegister::create(&heap, p).unwrap();
    let recorder: Recorder<RegisterOp, RegisterRet> = Recorder::new();
    {
        let reg = reg.clone();
        let rec = recorder.clone();
        crash_workload(&fabric, 4, move |t, node, stop| {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let machine = node.machine().index();
                if (t + i as usize).is_multiple_of(2) {
                    let v = (t as u64) * 1000 + i + 1;
                    let id = rec.invoke(ThreadId(t), machine, RegisterOp::Write(v));
                    match reg.write(node, v) {
                        Ok(()) => rec.respond(id, RegisterRet::Ok),
                        Err(_) => break,
                    }
                } else {
                    let id = rec.invoke(ThreadId(t), machine, RegisterOp::Read);
                    match reg.read(node) {
                        Ok(v) => rec.respond(id, RegisterRet::Value(v)),
                        Err(_) => break,
                    }
                }
                i += 1;
                // Keep histories small enough for the checker.
                if i > 40 {
                    break;
                }
            }
        });
    }
    // The memory node crash interrupts nobody's thread (workers run on
    // m0/m1), but ops in flight at the crash may have failed... they
    // cannot: the memory node holds no threads. Record the crash event
    // for the checker anyway — completed ops must still read
    // consistently afterwards.
    recorder.crash(MEM.index());
    let node = fabric.node(MachineId(0));
    let id = recorder.invoke(ThreadId(99), 0, RegisterOp::Read);
    let v = reg.read(&node).unwrap();
    recorder.respond(id, RegisterRet::Value(v));
    let result = check_durably_linearizable(&RegisterSpec, &recorder.finish());
    assert!(result.is_ok(), "{result}");
}

#[test]
fn flit_queue_durably_linearizable_under_crash() {
    let (fabric, heap, p) = setup(Arc::new(FlitCxl0::default()));
    let queue = DurableQueue::create(&heap, p).unwrap();
    queue.init(&fabric.node(MachineId(0))).unwrap();
    let recorder: Recorder<QueueOp, QueueRet> = Recorder::new();
    {
        let queue = queue.clone();
        let rec = recorder.clone();
        crash_workload(&fabric, 4, move |t, node, stop| {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) && i < 30 {
                let machine = node.machine().index();
                if t.is_multiple_of(2) {
                    let v = (t as u64) * 1000 + i + 1;
                    let id = rec.invoke(ThreadId(t), machine, QueueOp::Enq(v));
                    match queue.enqueue(node, v) {
                        Ok(true) => rec.respond(id, QueueRet::Ok),
                        _ => break,
                    }
                } else {
                    let id = rec.invoke(ThreadId(t), machine, QueueOp::Deq);
                    match queue.dequeue(node) {
                        Ok(v) => rec.respond(id, QueueRet::Deqd(v)),
                        Err(_) => break,
                    }
                }
                i += 1;
            }
        });
    }
    recorder.crash(MEM.index());
    let node = fabric.node(MachineId(0));
    queue.recover(&node).unwrap();
    loop {
        let id = recorder.invoke(ThreadId(98), 0, QueueOp::Deq);
        let v = queue.dequeue(&node).unwrap();
        recorder.respond(id, QueueRet::Deqd(v));
        if v.is_none() {
            break;
        }
    }
    let result = check_durably_linearizable(&QueueSpec, &recorder.finish());
    assert!(result.is_ok(), "{result}");
}

#[test]
fn flit_map_durably_linearizable_under_crash() {
    let (fabric, heap, p) = setup(Arc::new(FlitOwnerOpt::default()));
    let map = DurableMap::create(&heap, 64, p).unwrap();
    let recorder: Recorder<MapOp, MapRet> = Recorder::new();
    {
        let map = map.clone();
        let rec = recorder.clone();
        crash_workload(&fabric, 4, move |t, node, stop| {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) && i < 25 {
                let machine = node.machine().index();
                let key = (i % 8) + 1;
                match (t + i as usize) % 3 {
                    0 => {
                        let v = (t as u64) * 1000 + i + 1;
                        let id = rec.invoke(ThreadId(t), machine, MapOp::Insert(key, v));
                        match map.insert(node, key, v) {
                            Ok(Some(prev)) => rec.respond(id, MapRet::Value(prev)),
                            _ => break,
                        }
                    }
                    1 => {
                        let id = rec.invoke(ThreadId(t), machine, MapOp::Get(key));
                        match map.get(node, key) {
                            Ok(v) => rec.respond(id, MapRet::Value(v)),
                            Err(_) => break,
                        }
                    }
                    _ => {
                        let id = rec.invoke(ThreadId(t), machine, MapOp::Remove(key));
                        match map.remove(node, key) {
                            Ok(v) => rec.respond(id, MapRet::Value(v)),
                            Err(_) => break,
                        }
                    }
                }
                i += 1;
            }
        });
    }
    recorder.crash(MEM.index());
    let result = check_durably_linearizable(&MapSpec, &recorder.finish());
    assert!(result.is_ok(), "{result}");
}

#[test]
fn flit_stack_and_counter_survive_compute_node_crash() {
    // Crash a *compute* node mid-operation: its threads die with pending
    // ops; everything completed must persist.
    let (fabric, heap, p) = setup(Arc::new(FlitCxl0::default()));
    let stack = DurableStack::create(&heap, Arc::clone(&p)).unwrap();
    let counter = DurableCounter::create(&heap, p).unwrap();
    let node0 = fabric.node(MachineId(0));
    let node1 = fabric.node(MachineId(1));

    for v in 1..=20u64 {
        stack.push(&node0, v).unwrap();
        counter.add(&node0, 1).unwrap();
    }
    fabric.crash(MachineId(0));
    // m1 continues unaffected; every completed push/add is visible.
    assert_eq!(counter.get(&node1).unwrap(), 20);
    assert_eq!(stack.len(&node1).unwrap(), 20);
    // And the memory node's crash does not lose them either:
    fabric.crash(MEM);
    fabric.recover(MEM);
    assert_eq!(counter.get(&node1).unwrap(), 20);
    let drained = stack.drain(&node1).unwrap();
    assert_eq!(drained.len(), 20);
    assert_eq!(drained[0], 20); // LIFO
}

#[test]
fn unadapted_x86_flit_loses_completed_operations() {
    // The negative result that motivates §6.1: Algorithm 1 ported with
    // local flushes only is NOT durably linearizable under partial
    // crashes — a completed write vanishes with the owner's cache.
    let (fabric, heap, p) = setup(Arc::new(FlitX86::default()));
    let reg = DurableRegister::create(&heap, p).unwrap();
    let recorder: Recorder<RegisterOp, RegisterRet> = Recorder::new();
    let node = fabric.node(MachineId(0));

    let id = recorder.invoke(ThreadId(0), 0, RegisterOp::Write(7));
    reg.write(&node, 7).unwrap();
    recorder.respond(id, RegisterRet::Ok);
    // Drain nothing: the LFlush left the line in the owner's cache only.
    fabric.crash(MEM);
    recorder.crash(MEM.index());
    fabric.recover(MEM);
    let id = recorder.invoke(ThreadId(1), 0, RegisterOp::Read);
    let v = reg.read(&node).unwrap();
    recorder.respond(id, RegisterRet::Value(v));

    assert_eq!(v, 0, "the completed write must have been lost");
    let result = check_durably_linearizable(&RegisterSpec, &recorder.finish());
    assert!(
        !result.is_ok(),
        "history with a lost completed write must be rejected"
    );
}

#[test]
fn flit_list_durably_linearizable_under_crash() {
    use cxl0::dlcheck::spec::{SetOp, SetSpec};
    use cxl0::runtime::DurableList;
    let (fabric, heap, p) = setup(Arc::new(FlitCxl0::default()));
    let list = DurableList::create(&heap, p).unwrap();
    let recorder: Recorder<SetOp, bool> = Recorder::new();
    {
        let list = list.clone();
        let rec = recorder.clone();
        crash_workload(&fabric, 4, move |t, node, stop| {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) && i < 25 {
                let machine = node.machine().index();
                let key = (i * 3 + t as u64) % 12 + 1;
                match (t + i as usize) % 3 {
                    0 => {
                        let id = rec.invoke(ThreadId(t), machine, SetOp::Insert(key));
                        match list.insert(node, key) {
                            Ok(r) => rec.respond(id, r),
                            Err(_) => break,
                        }
                    }
                    1 => {
                        let id = rec.invoke(ThreadId(t), machine, SetOp::Remove(key));
                        match list.remove(node, key) {
                            Ok(r) => rec.respond(id, r),
                            Err(_) => break,
                        }
                    }
                    _ => {
                        let id = rec.invoke(ThreadId(t), machine, SetOp::Contains(key));
                        match list.contains(node, key) {
                            Ok(r) => rec.respond(id, r),
                            Err(_) => break,
                        }
                    }
                }
                i += 1;
            }
        });
    }
    recorder.crash(MEM.index());
    // Post-crash reads must observe a consistent set.
    let node = fabric.node(MachineId(0));
    for key in 1..=12u64 {
        let id = recorder.invoke(ThreadId(97), 0, SetOp::Contains(key));
        let r = list.contains(&node, key).unwrap();
        recorder.respond(id, r);
    }
    let result = check_durably_linearizable(&SetSpec, &recorder.finish());
    assert!(result.is_ok(), "{result}");
}

#[test]
fn flit_log_durably_linearizable_under_crash() {
    use cxl0::dlcheck::spec::{LogOp, LogRet, LogSpec};
    use cxl0::runtime::DurableLog;
    let (fabric, heap, p) = setup(Arc::new(FlitCxl0::default()));
    let log = DurableLog::create(&heap, 512, p).unwrap();
    let recorder: Recorder<LogOp, LogRet> = Recorder::new();
    {
        let log = log.clone();
        let rec = recorder.clone();
        crash_workload(&fabric, 4, move |t, node, stop| {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) && i < 20 {
                let machine = node.machine().index();
                let v = (t as u64) * 1000 + i + 1;
                let id = rec.invoke(ThreadId(t), machine, LogOp::Append(v));
                match log.append(node, v) {
                    Ok(Some(idx)) => rec.respond(id, LogRet::Index(idx)),
                    _ => break,
                }
                i += 1;
            }
        });
    }
    recorder.crash(MEM.index());
    // Post-crash: no producers crashed, so recovery seals no holes and
    // the read-back of every committed slot must linearize with the
    // appends' returned indices.
    let node = fabric.node(MachineId(0));
    let (committed, sealed) = log.recover(&node).unwrap();
    assert_eq!(sealed, 0);
    for i in 0..committed {
        let id = recorder.invoke(ThreadId(96), 0, LogOp::Read(i));
        match log.read(&node, i).unwrap() {
            cxl0::runtime::SlotState::Value(v) => recorder.respond(id, LogRet::Slot(Some(v))),
            other => panic!("slot {i} should be committed, found {other:?}"),
        }
    }
    let result = check_durably_linearizable(&LogSpec, &recorder.finish());
    assert!(result.is_ok(), "{result}");
}

#[test]
fn naive_mstore_is_durable_but_flushless() {
    let (fabric, heap, p) = setup(Arc::new(NaiveMStore));
    let counter = DurableCounter::create(&heap, p).unwrap();
    let node = fabric.node(MachineId(0));
    for _ in 0..10 {
        counter.add(&node, 3).unwrap();
    }
    fabric.crash(MEM);
    fabric.recover(MEM);
    assert_eq!(counter.get(&node).unwrap(), 30);
    let s = fabric.stats().snapshot();
    assert_eq!(s.flushes(), 0, "naive transform never flushes");
    assert!(s.rmws > 0);
}

#[test]
fn counter_spec_checked_history_with_crash() {
    let (fabric, heap, p) = setup(Arc::new(FlitCxl0::default()));
    let counter = DurableCounter::create(&heap, p).unwrap();
    let rec: Recorder<CounterOp, u64> = Recorder::new();
    let node = fabric.node(MachineId(0));
    for i in 0..12u64 {
        let id = rec.invoke(ThreadId(0), 0, CounterOp::Add(2));
        let prev = counter.add(&node, 2).unwrap();
        rec.respond(id, prev);
        assert_eq!(prev, i * 2);
    }
    fabric.crash(MEM);
    rec.crash(MEM.index());
    fabric.recover(MEM);
    let id = rec.invoke(ThreadId(1), 0, CounterOp::Get);
    let v = counter.get(&node).unwrap();
    rec.respond(id, v);
    let result = check_durably_linearizable(&CounterSpec, &rec.finish());
    assert!(result.is_ok(), "{result}");
}

#[test]
fn stack_spec_checked_history_with_crash() {
    let (fabric, heap, p) = setup(Arc::new(FlitCxl0::default()));
    let stack = DurableStack::create(&heap, p).unwrap();
    let rec: Recorder<StackOp, StackRet> = Recorder::new();
    let node = fabric.node(MachineId(0));
    for v in [5u64, 6, 7] {
        let id = rec.invoke(ThreadId(0), 0, StackOp::Push(v));
        stack.push(&node, v).unwrap();
        rec.respond(id, StackRet::Ok);
    }
    fabric.crash(MEM);
    rec.crash(MEM.index());
    fabric.recover(MEM);
    for expect in [7u64, 6, 5] {
        let id = rec.invoke(ThreadId(1), 0, StackOp::Pop);
        let v = stack.pop(&node).unwrap();
        rec.respond(id, StackRet::Popped(v));
        assert_eq!(v, Some(expect));
    }
    let result = check_durably_linearizable(&StackSpec, &rec.finish());
    assert!(result.is_ok(), "{result}");
}
