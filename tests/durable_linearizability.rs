//! E7: the §6 transformation — FliT-wrapped objects are durably
//! linearizable under partial crashes; the unadapted x86 FliT is not.
//!
//! Concurrent workers on two compute machines drive each durable object
//! hosted on an NVM memory node; a nemesis crashes the memory node
//! mid-run; recovery *reattaches by name* through the session API and the
//! full history (crash included) is checked with `cxl0-dlcheck`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cxl0::api::{Cluster, PersistMode, Session};
use cxl0::dlcheck::spec::{
    CounterOp, CounterSpec, MapOp, MapRet, MapSpec, QueueOp, QueueRet, QueueSpec, RegisterOp,
    RegisterRet, RegisterSpec, StackOp, StackRet, StackSpec,
};
use cxl0::dlcheck::{check_durably_linearizable, Recorder, ThreadId};
use cxl0::model::{MachineId, SystemConfig};

const MEM: MachineId = MachineId(2);

fn setup(mode: PersistMode) -> Arc<Cluster> {
    Cluster::builder(SystemConfig::symmetric_nvm(3, 1 << 15))
        .persist(mode)
        .build()
        .unwrap()
}

/// Drives `threads` workers, each with its own [`Session`], issuing
/// operations via `work`, crashing the memory node once in the middle.
fn crash_workload<F>(cluster: &Arc<Cluster>, threads: usize, work: F)
where
    F: Fn(usize, &Session, &AtomicBool) + Send + Sync + 'static,
{
    let work = Arc::new(work);
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..threads {
        let session = cluster.session(MachineId(t % 2));
        let stop = Arc::clone(&stop);
        let work = Arc::clone(&work);
        handles.push(std::thread::spawn(move || work(t, &session, &stop)));
    }
    std::thread::sleep(std::time::Duration::from_millis(15));
    cluster.crash(MEM);
    std::thread::sleep(std::time::Duration::from_millis(2));
    cluster.recover(MEM);
    std::thread::sleep(std::time::Duration::from_millis(10));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn flit_register_durably_linearizable_under_crash() {
    let cluster = setup(PersistMode::FlitCxl0);
    let reg = cluster
        .session(MachineId(0))
        .create_register::<u64>("reg")
        .unwrap();
    let recorder: Recorder<RegisterOp, RegisterRet> = Recorder::new();
    {
        let reg = reg.clone();
        let rec = recorder.clone();
        crash_workload(&cluster, 4, move |t, session, stop| {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let machine = session.machine().index();
                if (t + i as usize).is_multiple_of(2) {
                    let v = (t as u64) * 1000 + i + 1;
                    let id = rec.invoke(ThreadId(t), machine, RegisterOp::Write(v));
                    match reg.write(session, v) {
                        Ok(()) => rec.respond(id, RegisterRet::Ok),
                        Err(_) => break,
                    }
                } else {
                    let id = rec.invoke(ThreadId(t), machine, RegisterOp::Read);
                    match reg.read(session) {
                        Ok(v) => rec.respond(id, RegisterRet::Value(v)),
                        Err(_) => break,
                    }
                }
                i += 1;
                // Keep histories small enough for the checker.
                if i > 40 {
                    break;
                }
            }
        });
    }
    // The memory node crash interrupts nobody's thread (workers run on
    // m0/m1). Record the crash event for the checker; reattach the
    // register by name and read — completed ops must still be visible.
    recorder.crash(MEM.index());
    let session = cluster.session(MachineId(0));
    let reg = session.open_register::<u64>("reg").unwrap();
    let id = recorder.invoke(ThreadId(99), 0, RegisterOp::Read);
    let v = reg.read(&session).unwrap();
    recorder.respond(id, RegisterRet::Value(v));
    let result = check_durably_linearizable(&RegisterSpec, &recorder.finish());
    assert!(result.is_ok(), "{result}");
}

#[test]
fn flit_queue_durably_linearizable_under_crash() {
    let cluster = setup(PersistMode::FlitCxl0);
    let queue = cluster
        .session(MachineId(0))
        .create_queue::<u64>("q")
        .unwrap();
    let recorder: Recorder<QueueOp, QueueRet> = Recorder::new();
    {
        let queue = queue.clone();
        let rec = recorder.clone();
        crash_workload(&cluster, 4, move |t, session, stop| {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) && i < 30 {
                let machine = session.machine().index();
                if t.is_multiple_of(2) {
                    let v = (t as u64) * 1000 + i + 1;
                    let id = rec.invoke(ThreadId(t), machine, QueueOp::Enq(v));
                    match queue.enqueue(session, v) {
                        Ok(true) => rec.respond(id, QueueRet::Ok),
                        _ => break,
                    }
                } else {
                    let id = rec.invoke(ThreadId(t), machine, QueueOp::Deq);
                    match queue.dequeue(session) {
                        Ok(v) => rec.respond(id, QueueRet::Deqd(v)),
                        Err(_) => break,
                    }
                }
                i += 1;
            }
        });
    }
    recorder.crash(MEM.index());
    let session = cluster.session(MachineId(0));
    let queue = session.open_queue::<u64>("q").unwrap();
    queue.recover(&session).unwrap();
    loop {
        let id = recorder.invoke(ThreadId(98), 0, QueueOp::Deq);
        let v = queue.dequeue(&session).unwrap();
        recorder.respond(id, QueueRet::Deqd(v));
        if v.is_none() {
            break;
        }
    }
    let result = check_durably_linearizable(&QueueSpec, &recorder.finish());
    assert!(result.is_ok(), "{result}");
}

#[test]
fn flit_map_durably_linearizable_under_crash() {
    let cluster = setup(PersistMode::OwnerOpt);
    let map = cluster
        .session(MachineId(0))
        .create_map::<u64, u64>("m", 64)
        .unwrap();
    let recorder: Recorder<MapOp, MapRet> = Recorder::new();
    {
        let map = map.clone();
        let rec = recorder.clone();
        crash_workload(&cluster, 4, move |t, session, stop| {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) && i < 25 {
                let machine = session.machine().index();
                let key = (i % 8) + 1;
                match (t + i as usize) % 3 {
                    0 => {
                        let v = (t as u64) * 1000 + i + 1;
                        let id = rec.invoke(ThreadId(t), machine, MapOp::Insert(key, v));
                        match map.insert(session, key, v) {
                            Ok(Some(prev)) => rec.respond(id, MapRet::Value(prev)),
                            _ => break,
                        }
                    }
                    1 => {
                        let id = rec.invoke(ThreadId(t), machine, MapOp::Get(key));
                        match map.get(session, key) {
                            Ok(v) => rec.respond(id, MapRet::Value(v)),
                            Err(_) => break,
                        }
                    }
                    _ => {
                        let id = rec.invoke(ThreadId(t), machine, MapOp::Remove(key));
                        match map.remove(session, key) {
                            Ok(v) => rec.respond(id, MapRet::Value(v)),
                            Err(_) => break,
                        }
                    }
                }
                i += 1;
            }
        });
    }
    recorder.crash(MEM.index());
    let result = check_durably_linearizable(&MapSpec, &recorder.finish());
    assert!(result.is_ok(), "{result}");
}

#[test]
fn flit_stack_and_counter_survive_compute_node_crash() {
    // Crash a *compute* node mid-operation: its threads die with pending
    // ops; everything completed must persist.
    let cluster = setup(PersistMode::FlitCxl0);
    let s0 = cluster.session(MachineId(0));
    let s1 = cluster.session(MachineId(1));
    let stack = s0.create_stack::<u64>("s").unwrap();
    let counter = s0.create_counter("c").unwrap();

    for v in 1..=20u64 {
        stack.push(&s0, v).unwrap();
        counter.add(&s0, 1).unwrap();
    }
    cluster.crash(MachineId(0));
    // m1 continues unaffected; every completed push/add is visible —
    // including through fresh by-name handles.
    let counter = s1.open_counter("c").unwrap();
    let stack = s1.open_stack::<u64>("s").unwrap();
    assert_eq!(counter.get(&s1).unwrap(), 20);
    assert_eq!(stack.len(&s1).unwrap(), 20);
    // And the memory node's crash does not lose them either:
    cluster.crash(MEM);
    cluster.recover(MEM);
    assert_eq!(counter.get(&s1).unwrap(), 20);
    let drained = stack.drain(&s1).unwrap();
    assert_eq!(drained.len(), 20);
    assert_eq!(drained[0], 20); // LIFO
}

#[test]
fn unadapted_x86_flit_loses_completed_operations() {
    // The negative result that motivates §6.1: Algorithm 1 ported with
    // local flushes only is NOT durably linearizable under partial
    // crashes — a completed write vanishes with the owner's cache.
    let cluster = setup(PersistMode::FlitX86);
    let session = cluster.session(MachineId(0));
    let reg = session.create_register::<u64>("r").unwrap();
    let recorder: Recorder<RegisterOp, RegisterRet> = Recorder::new();

    let id = recorder.invoke(ThreadId(0), 0, RegisterOp::Write(7));
    reg.write(&session, 7).unwrap();
    recorder.respond(id, RegisterRet::Ok);
    // Drain nothing: the LFlush left the line in the owner's cache only.
    cluster.crash(MEM);
    recorder.crash(MEM.index());
    cluster.recover(MEM);
    let id = recorder.invoke(ThreadId(1), 0, RegisterOp::Read);
    let v = reg.read(&session).unwrap();
    recorder.respond(id, RegisterRet::Value(v));

    assert_eq!(v, 0, "the completed write must have been lost");
    let result = check_durably_linearizable(&RegisterSpec, &recorder.finish());
    assert!(
        !result.is_ok(),
        "history with a lost completed write must be rejected"
    );
}

#[test]
fn flit_list_durably_linearizable_under_crash() {
    use cxl0::dlcheck::spec::{SetOp, SetSpec};
    let cluster = setup(PersistMode::FlitCxl0);
    let list = cluster
        .session(MachineId(0))
        .create_list::<u64>("l")
        .unwrap();
    let recorder: Recorder<SetOp, bool> = Recorder::new();
    {
        let list = list.clone();
        let rec = recorder.clone();
        crash_workload(&cluster, 4, move |t, session, stop| {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) && i < 25 {
                let machine = session.machine().index();
                let key = (i * 3 + t as u64) % 12 + 1;
                match (t + i as usize) % 3 {
                    0 => {
                        let id = rec.invoke(ThreadId(t), machine, SetOp::Insert(key));
                        match list.insert(session, key) {
                            Ok(r) => rec.respond(id, r),
                            Err(_) => break,
                        }
                    }
                    1 => {
                        let id = rec.invoke(ThreadId(t), machine, SetOp::Remove(key));
                        match list.remove(session, key) {
                            Ok(r) => rec.respond(id, r),
                            Err(_) => break,
                        }
                    }
                    _ => {
                        let id = rec.invoke(ThreadId(t), machine, SetOp::Contains(key));
                        match list.contains(session, key) {
                            Ok(r) => rec.respond(id, r),
                            Err(_) => break,
                        }
                    }
                }
                i += 1;
            }
        });
    }
    recorder.crash(MEM.index());
    // Post-crash reads must observe a consistent set.
    let session = cluster.session(MachineId(0));
    let list = session.open_list::<u64>("l").unwrap();
    for key in 1..=12u64 {
        let id = recorder.invoke(ThreadId(97), 0, SetOp::Contains(key));
        let r = list.contains(&session, key).unwrap();
        recorder.respond(id, r);
    }
    let result = check_durably_linearizable(&SetSpec, &recorder.finish());
    assert!(result.is_ok(), "{result}");
}

#[test]
fn flit_log_durably_linearizable_under_crash() {
    use cxl0::dlcheck::spec::{LogOp, LogRet, LogSpec};
    let cluster = setup(PersistMode::FlitCxl0);
    let log = cluster
        .session(MachineId(0))
        .create_log::<u64>("log", 512)
        .unwrap();
    let recorder: Recorder<LogOp, LogRet> = Recorder::new();
    {
        let log = log.clone();
        let rec = recorder.clone();
        crash_workload(&cluster, 4, move |t, session, stop| {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) && i < 20 {
                let machine = session.machine().index();
                let v = (t as u64) * 1000 + i + 1;
                let id = rec.invoke(ThreadId(t), machine, LogOp::Append(v));
                match log.append(session, v) {
                    Ok(Some(idx)) => rec.respond(id, LogRet::Index(idx)),
                    _ => break,
                }
                i += 1;
            }
        });
    }
    recorder.crash(MEM.index());
    // Post-crash: no producers crashed, so recovery seals no holes and
    // the read-back of every committed slot must linearize with the
    // appends' returned indices.
    let session = cluster.session(MachineId(0));
    let log = session.open_log::<u64>("log").unwrap();
    let (committed, sealed) = log.recover(&session).unwrap();
    assert_eq!(sealed, 0);
    for i in 0..committed {
        let id = recorder.invoke(ThreadId(96), 0, LogOp::Read(i));
        match log.read(&session, i).unwrap() {
            cxl0::runtime::SlotState::Value(v) => recorder.respond(id, LogRet::Slot(Some(v))),
            other => panic!("slot {i} should be committed, found {other:?}"),
        }
    }
    let result = check_durably_linearizable(&LogSpec, &recorder.finish());
    assert!(result.is_ok(), "{result}");
}

#[test]
fn naive_mstore_is_durable_but_flushless() {
    let cluster = setup(PersistMode::NaiveMStore);
    let session = cluster.session(MachineId(0));
    let counter = session.create_counter("c").unwrap();
    let before = session.stats_delta();
    for _ in 0..10 {
        counter.add(&session, 3).unwrap();
    }
    cluster.crash(MEM);
    cluster.recover(MEM);
    assert_eq!(counter.get(&session).unwrap(), 30);
    let s = session.stats_delta().since(&before);
    assert_eq!(s.flushes(), 0, "naive transform never flushes");
    assert!(s.rmws > 0);
}

#[test]
fn counter_spec_checked_history_with_crash() {
    let cluster = setup(PersistMode::FlitCxl0);
    let session = cluster.session(MachineId(0));
    let counter = session.create_counter("c").unwrap();
    let rec: Recorder<CounterOp, u64> = Recorder::new();
    for i in 0..12u64 {
        let id = rec.invoke(ThreadId(0), 0, CounterOp::Add(2));
        let prev = counter.add(&session, 2).unwrap();
        rec.respond(id, prev);
        assert_eq!(prev, i * 2);
    }
    cluster.crash(MEM);
    rec.crash(MEM.index());
    cluster.recover(MEM);
    let counter = session.open_counter("c").unwrap();
    let id = rec.invoke(ThreadId(1), 0, CounterOp::Get);
    let v = counter.get(&session).unwrap();
    rec.respond(id, v);
    let result = check_durably_linearizable(&CounterSpec, &rec.finish());
    assert!(result.is_ok(), "{result}");
}

#[test]
fn stack_spec_checked_history_with_crash() {
    let cluster = setup(PersistMode::FlitCxl0);
    let session = cluster.session(MachineId(0));
    let stack = session.create_stack::<u64>("s").unwrap();
    let rec: Recorder<StackOp, StackRet> = Recorder::new();
    for v in [5u64, 6, 7] {
        let id = rec.invoke(ThreadId(0), 0, StackOp::Push(v));
        stack.push(&session, v).unwrap();
        rec.respond(id, StackRet::Ok);
    }
    cluster.crash(MEM);
    rec.crash(MEM.index());
    cluster.recover(MEM);
    let stack = session.open_stack::<u64>("s").unwrap();
    for expect in [7u64, 6, 5] {
        let id = rec.invoke(ThreadId(1), 0, StackOp::Pop);
        let v = stack.pop(&session).unwrap();
        rec.respond(id, StackRet::Popped(v));
        assert_eq!(v, Some(expect));
    }
    let result = check_durably_linearizable(&StackSpec, &rec.finish());
    assert!(result.is_ok(), "{result}");
}
