//! E11: the `CXL0_AF` asynchronous-flush extension (§3.2's persistency-
//! buffer sketch, implemented end-to-end).
//!
//! Three layers are checked together here:
//!
//! 1. **Model** — the `A1`–`A8` litmus suite and the exhaustive
//!    `AFlush;Barrier ≡ RFlush` equivalence over reachable states;
//! 2. **Runtime** — `SimFabric`'s persistency buffers agree with the model
//!    (deferral, batching, crash-discard);
//! 3. **Transformation** — `FlitAsync` (Algorithm 1 on `CXL0_AF`) yields
//!    durably linearizable objects under partial crashes, and its deferred
//!    helping flushes beat synchronous helping in simulated time.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cxl0::dlcheck::spec::{QueueOp, QueueRet, QueueSpec, RegisterOp, RegisterRet, RegisterSpec};
use cxl0::dlcheck::{check_durably_linearizable, Recorder, ThreadId};
use cxl0::explore::paper_async::{async_flush_tests, check_aflush_barrier_equivalence};
use cxl0::model::{MachineId, SystemConfig};
use cxl0::runtime::alloc::Allocator;
use cxl0::runtime::{
    DurableQueue, DurableRegister, FlitAsync, FlitCxl0, Persistence, SharedHeap, SimFabric,
};

const MEM: MachineId = MachineId(2);

#[test]
fn async_litmus_suite_matches_expected_verdicts() {
    for t in async_flush_tests() {
        assert!(
            t.passes(),
            "{}: expected {} observed {} — {}",
            t.name,
            t.expected,
            t.run(),
            t.description
        );
    }
}

#[test]
fn aflush_barrier_is_equivalent_to_rflush() {
    if let Some(cex) = check_aflush_barrier_equivalence() {
        panic!("equivalence violated:\n{cex}");
    }
}

#[test]
fn runtime_buffers_agree_with_the_model() {
    // The same scenario as model litmus A1/A2, on the concurrent backend.
    let fabric = SimFabric::new(SystemConfig::symmetric_nvm(2, 4));
    let n0 = fabric.node(MachineId(0));
    let x = cxl0::model::Loc::new(MachineId(1), 0);

    // A1 analogue: un-barriered AFlush, then the issuer crashes → lost.
    n0.lstore(x, 1).unwrap();
    n0.aflush(x).unwrap();
    fabric.crash(MachineId(0));
    fabric.recover(MachineId(0));
    assert_eq!(fabric.pending_flushes(MachineId(0)), 0);
    // The line may survive in the owner's cache here, but memory is stale:
    assert_eq!(fabric.peek_memory(x), 0);

    // A3 analogue: AFlush + Barrier, then the *owner* crashes → durable.
    n0.lstore(x, 2).unwrap();
    n0.aflush(x).unwrap();
    n0.barrier().unwrap();
    fabric.crash(MachineId(1));
    fabric.recover(MachineId(1));
    assert_eq!(fabric.peek_memory(x), 2);
    assert_eq!(n0.load(x).unwrap(), 2);
}

fn crash_workload<F>(fabric: &Arc<SimFabric>, threads: usize, work: F)
where
    F: Fn(usize, &cxl0::runtime::NodeHandle, &AtomicBool) + Send + Sync + 'static,
{
    let work = Arc::new(work);
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..threads {
        let node = fabric.node(MachineId(t % 2));
        let stop = Arc::clone(&stop);
        let work = Arc::clone(&work);
        handles.push(std::thread::spawn(move || work(t, &node, &stop)));
    }
    std::thread::sleep(std::time::Duration::from_millis(15));
    fabric.crash(MEM);
    std::thread::sleep(std::time::Duration::from_millis(2));
    fabric.recover(MEM);
    std::thread::sleep(std::time::Duration::from_millis(10));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn flit_async_register_durably_linearizable_under_crash() {
    let fabric = SimFabric::new(SystemConfig::symmetric_nvm(3, 1 << 15));
    let heap = Arc::new(SharedHeap::new(fabric.config(), MEM));
    let p: Arc<dyn Persistence> = Arc::new(FlitAsync::default());
    let reg = DurableRegister::create(&heap, p).unwrap();
    let recorder: Recorder<RegisterOp, RegisterRet> = Recorder::new();
    {
        let reg = reg.clone();
        let rec = recorder.clone();
        crash_workload(&fabric, 4, move |t, node, stop| {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) && i <= 40 {
                let machine = node.machine().index();
                if (t + i as usize).is_multiple_of(2) {
                    let v = (t as u64) * 1000 + i + 1;
                    let id = rec.invoke(ThreadId(t), machine, RegisterOp::Write(v));
                    match reg.write(node, v) {
                        Ok(()) => rec.respond(id, RegisterRet::Ok),
                        Err(_) => break,
                    }
                } else {
                    let id = rec.invoke(ThreadId(t), machine, RegisterOp::Read);
                    match reg.read(node) {
                        Ok(v) => rec.respond(id, RegisterRet::Value(v)),
                        Err(_) => break,
                    }
                }
                i += 1;
            }
        });
    }
    recorder.crash(MEM.index());
    let node = fabric.node(MachineId(0));
    let id = recorder.invoke(ThreadId(99), 0, RegisterOp::Read);
    let v = reg.read(&node).unwrap();
    recorder.respond(id, RegisterRet::Value(v));
    let result = check_durably_linearizable(&RegisterSpec, &recorder.finish());
    assert!(result.is_ok(), "{result}");
}

#[test]
fn flit_async_queue_durably_linearizable_under_crash() {
    let fabric = SimFabric::new(SystemConfig::symmetric_nvm(3, 1 << 15));
    let p: Arc<dyn Persistence> = Arc::new(FlitAsync::default());
    let alloc = Arc::new(Allocator::over_region(fabric.config(), MEM, p));
    let queue = DurableQueue::create(&alloc, &fabric.node(MachineId(0)))
        .unwrap()
        .unwrap();
    let recorder: Recorder<QueueOp, QueueRet> = Recorder::new();
    {
        let queue = queue.clone();
        let rec = recorder.clone();
        crash_workload(&fabric, 4, move |t, node, stop| {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) && i < 30 {
                let machine = node.machine().index();
                if t.is_multiple_of(2) {
                    let v = (t as u64) * 1000 + i + 1;
                    let id = rec.invoke(ThreadId(t), machine, QueueOp::Enq(v));
                    match queue.enqueue(node, v) {
                        Ok(true) => rec.respond(id, QueueRet::Ok),
                        _ => break,
                    }
                } else {
                    let id = rec.invoke(ThreadId(t), machine, QueueOp::Deq);
                    match queue.dequeue(node) {
                        Ok(v) => rec.respond(id, QueueRet::Deqd(v)),
                        Err(_) => break,
                    }
                }
                i += 1;
            }
        });
    }
    recorder.crash(MEM.index());
    let node = fabric.node(MachineId(0));
    queue.recover(&node).unwrap();
    loop {
        let id = recorder.invoke(ThreadId(98), 0, QueueOp::Deq);
        let v = queue.dequeue(&node).unwrap();
        recorder.respond(id, QueueRet::Deqd(v));
        if v.is_none() {
            break;
        }
    }
    let result = check_durably_linearizable(&QueueSpec, &recorder.finish());
    assert!(result.is_ok(), "{result}");
}

#[test]
fn deferred_helping_beats_synchronous_helping_in_sim_time() {
    // An operation that reads an 8-cell structure while in-flight writers
    // keep the FliT counters positive on every cell (the worst case for
    // helping). FlitAsync defers all 8 helping flushes to one overlapped
    // barrier per op; FlitCxl0 pays 8 synchronous remote flushes per op.
    const CELLS: usize = 8;
    const OPS: usize = 50;

    fn run_ops(
        fabric: &Arc<SimFabric>,
        p: &Arc<dyn Persistence>,
        cells: &[cxl0::model::Loc],
    ) -> u64 {
        let node = fabric.node(MachineId(0));
        let before = fabric.stats().snapshot();
        for _ in 0..OPS {
            for &c in cells {
                p.shared_load(&node, c, true).unwrap();
            }
            p.complete_op(&node).unwrap();
        }
        fabric.stats().snapshot().since(&before).sim_ns
    }

    let fabric_a = SimFabric::new(SystemConfig::symmetric_nvm(3, 1 << 10));
    let heap_a = Arc::new(SharedHeap::new(fabric_a.config(), MEM));
    let cells_a: Vec<_> = (0..CELLS).map(|_| heap_a.alloc(1).unwrap()).collect();
    let pa = Arc::new(FlitAsync::default());
    for &c in &cells_a {
        pa.raise_counter(c);
    }
    let async_ns = run_ops(
        &fabric_a,
        &(Arc::clone(&pa) as Arc<dyn Persistence>),
        &cells_a,
    );

    let fabric_s = SimFabric::new(SystemConfig::symmetric_nvm(3, 1 << 10));
    let heap_s = Arc::new(SharedHeap::new(fabric_s.config(), MEM));
    let cells_s: Vec<_> = (0..CELLS).map(|_| heap_s.alloc(1).unwrap()).collect();
    let ps = Arc::new(FlitCxl0::default());
    for &c in &cells_s {
        ps.raise_counter(c);
    }
    let sync_ns = run_ops(
        &fabric_s,
        &(Arc::clone(&ps) as Arc<dyn Persistence>),
        &cells_s,
    );

    assert!(
        (async_ns as f64) < 0.75 * sync_ns as f64,
        "deferred helping should be at least 25% cheaper: async {async_ns} vs sync {sync_ns}"
    );
}
