//! PR 6: the flat-combining/elimination fronts keep the durability
//! story intact — combined queues and stacks are durably linearizable
//! under crashes in every *sound* `PersistMode`, batched persistence
//! never acknowledges an op that is not durable, and an un-barriered
//! batch dies wholesale (no partial ops, no torn nodes).
//!
//! The volatile announcement boards add no durable state, so every test
//! recovers through the unchanged `Session::recover_roots` +
//! `recover()` path.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cxl0::api::{Cluster, PersistMode, Session};
use cxl0::dlcheck::spec::{QueueOp, QueueRet, QueueSpec, StackOp, StackRet, StackSpec};
use cxl0::dlcheck::{check_durably_linearizable, Recorder, ThreadId};
use cxl0::model::{MachineId, SystemConfig};
use proptest::prelude::*;

const MEM: MachineId = MachineId(2);

fn setup(mode: PersistMode) -> Arc<Cluster> {
    Cluster::builder(SystemConfig::symmetric_nvm(3, 1 << 15))
        .persist(mode)
        .build()
        .unwrap()
}

/// The strict strategies: an acknowledged operation is durable before
/// it returns, so the combined fronts owe durable linearizability.
fn sound_modes() -> Vec<PersistMode> {
    PersistMode::comparison_set()
        .into_iter()
        .filter(PersistMode::is_strict)
        .collect()
}

/// Drives `threads` workers on the two compute machines, crashing the
/// memory node once mid-run (the combined-front twin of the plain
/// suite's `crash_workload`).
fn crash_workload<F>(cluster: &Arc<Cluster>, threads: usize, work: F)
where
    F: Fn(usize, &Session, &AtomicBool) + Send + Sync + 'static,
{
    let work = Arc::new(work);
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..threads {
        let session = cluster.session(MachineId(t % 2));
        let stop = Arc::clone(&stop);
        let work = Arc::clone(&work);
        handles.push(std::thread::spawn(move || work(t, &session, &stop)));
    }
    std::thread::sleep(std::time::Duration::from_millis(15));
    cluster.crash(MEM);
    std::thread::sleep(std::time::Duration::from_millis(2));
    cluster.recover(MEM);
    std::thread::sleep(std::time::Duration::from_millis(10));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
}

/// Combined queue, memory-node crash mid-run, full history checked for
/// durable linearizability — under every sound durability strategy.
#[test]
fn combined_queue_durably_linearizable_under_crash_all_sound_modes() {
    for mode in sound_modes() {
        let cluster = setup(mode);
        let queue = cluster
            .session(MachineId(0))
            .create_queue_combined::<u64>("q")
            .unwrap();
        let recorder: Recorder<QueueOp, QueueRet> = Recorder::new();
        {
            let queue = queue.clone();
            let rec = recorder.clone();
            crash_workload(&cluster, 4, move |t, session, stop| {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) && i < 25 {
                    let machine = session.machine().index();
                    if t.is_multiple_of(2) {
                        let v = (t as u64) * 1000 + i + 1;
                        let id = rec.invoke(ThreadId(t), machine, QueueOp::Enq(v));
                        match queue.enqueue(session, v) {
                            Ok(true) => rec.respond(id, QueueRet::Ok),
                            // Heap exhaustion or crash: the op stays
                            // pending in the history (outcome unknown).
                            _ => break,
                        }
                    } else {
                        let id = rec.invoke(ThreadId(t), machine, QueueOp::Deq);
                        match queue.dequeue(session) {
                            Ok(v) => rec.respond(id, QueueRet::Deqd(v)),
                            Err(_) => break,
                        }
                    }
                    i += 1;
                }
            });
        }
        recorder.crash(MEM.index());
        // Reattach by name through the unchanged recovery path and
        // drain through the front: everything acknowledged before the
        // crash must still come out, in FIFO order.
        let session = cluster.session(MachineId(0));
        session.recover_roots().unwrap();
        let queue = session.open_queue_combined::<u64>("q").unwrap();
        queue.recover(&session).unwrap();
        loop {
            let id = recorder.invoke(ThreadId(98), 0, QueueOp::Deq);
            let v = queue.dequeue(&session).unwrap();
            recorder.respond(id, QueueRet::Deqd(v));
            if v.is_none() {
                break;
            }
        }
        let result = check_durably_linearizable(&QueueSpec, &recorder.finish());
        assert!(result.is_ok(), "{}: {result}", mode.name());
    }
}

/// Combined stack (with elimination), memory-node crash mid-run, full
/// history checked — under every sound durability strategy. Eliminated
/// push/pop pairs never touch NVM, which is exactly why they must still
/// linearize in the checked history.
#[test]
fn combined_stack_durably_linearizable_under_crash_all_sound_modes() {
    for mode in sound_modes() {
        let cluster = setup(mode);
        let stack = cluster
            .session(MachineId(0))
            .create_stack_combined::<u64>("s")
            .unwrap();
        let recorder: Recorder<StackOp, StackRet> = Recorder::new();
        {
            let stack = stack.clone();
            let rec = recorder.clone();
            crash_workload(&cluster, 4, move |t, session, stop| {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) && i < 25 {
                    let machine = session.machine().index();
                    if (t + i as usize).is_multiple_of(2) {
                        let v = (t as u64) * 1000 + i + 1;
                        let id = rec.invoke(ThreadId(t), machine, StackOp::Push(v));
                        match stack.push(session, v) {
                            Ok(true) => rec.respond(id, StackRet::Ok),
                            _ => break,
                        }
                    } else {
                        let id = rec.invoke(ThreadId(t), machine, StackOp::Pop);
                        match stack.pop(session) {
                            Ok(v) => rec.respond(id, StackRet::Popped(v)),
                            Err(_) => break,
                        }
                    }
                    i += 1;
                }
            });
        }
        recorder.crash(MEM.index());
        let session = cluster.session(MachineId(0));
        session.recover_roots().unwrap();
        let stack = session.open_stack_combined::<u64>("s").unwrap();
        stack.recover(&session).unwrap();
        loop {
            let id = recorder.invoke(ThreadId(98), 0, StackOp::Pop);
            let v = stack.pop(&session).unwrap();
            recorder.respond(id, StackRet::Popped(v));
            if v.is_none() {
                break;
            }
        }
        let result = check_durably_linearizable(&StackSpec, &recorder.finish());
        assert!(result.is_ok(), "{}: {result}", mode.name());
    }
}

/// A crash landing while combiners are mid-batch must never surface a
/// partial operation: per producer, the recovered queue holds exactly a
/// gapless prefix of what that producer sent, covering at least every
/// acknowledged enqueue (acknowledged ⇒ durable; an un-barriered batch
/// suffix dies wholesale; in-flight ops may land either way).
#[test]
fn mid_batch_crash_leaves_no_partial_batch() {
    let cluster = setup(PersistMode::FlitAsync);
    let queue = cluster
        .session(MachineId(0))
        .create_queue_combined::<u64>("q")
        .unwrap();
    let threads = 6usize;
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..threads {
        let queue = queue.clone();
        let session = cluster.session(MachineId(t % 2));
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            // Enqueue 1, 2, 3, … until the crash (or stop); report how
            // many were acknowledged.
            let mut acked = 0u64;
            while !stop.load(Ordering::Relaxed) {
                match queue.enqueue(&session, (t as u64) * 100_000 + acked + 1) {
                    Ok(true) => acked += 1,
                    _ => break,
                }
            }
            acked
        }));
    }
    // Continuous 6-thread traffic: the crash lands while batches are in
    // flight (acknowledgement waits on the batch flush, so there are
    // always announced-but-unflushed ops to interrupt).
    std::thread::sleep(std::time::Duration::from_millis(25));
    cluster.crash(MEM);
    stop.store(true, Ordering::Relaxed);
    let acked: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    cluster.recover(MEM);

    let session = cluster.session(MachineId(0));
    session.recover_roots().unwrap();
    let queue = session.open_queue_combined::<u64>("q").unwrap();
    queue.recover(&session).unwrap();
    // The drain itself would fail on a torn node (a head swing persisted
    // without its node's contents).
    let drained = queue.drain(&session).unwrap();

    let mut per_thread: Vec<Vec<u64>> = vec![Vec::new(); threads];
    for v in drained {
        per_thread[(v / 100_000) as usize].push(v % 100_000);
    }
    for (t, got) in per_thread.iter().enumerate() {
        let expect: Vec<u64> = (1..=got.len() as u64).collect();
        assert_eq!(
            got, &expect,
            "thread {t}: recovered enqueues must be a gapless FIFO prefix"
        );
        assert!(
            got.len() as u64 >= acked[t],
            "thread {t}: {} acknowledged enqueues but only {} recovered — \
             an acknowledged op was lost",
            acked[t],
            got.len()
        );
    }
}

/// 8-thread stress through a combined front, with the combiner counters
/// from `Session::stats_delta` checked for *exact* op accounting.
#[test]
fn stress_counts_every_op_exactly_once() {
    let cluster = setup(PersistMode::FlitAsync);
    let session0 = cluster.session(MachineId(0));
    let queue = session0.create_queue_combined::<u64>("q").unwrap();
    let before = session0.stats_delta();

    let threads = 8usize;
    let per = 150u64;
    let mut handles = Vec::new();
    for t in 0..threads {
        let queue = queue.clone();
        let session = cluster.session(MachineId(t % 2));
        handles.push(std::thread::spawn(move || {
            let mut popped = 0u64;
            for i in 0..per {
                assert!(queue.enqueue(&session, (t as u64) * 1000 + i + 1).unwrap());
                if queue.dequeue(&session).unwrap().is_some() {
                    popped += 1;
                }
            }
            popped
        }));
    }
    let popped: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();

    let rest = queue.drain(&session0).unwrap().len() as u64;
    // Element conservation across combining and elimination.
    assert_eq!(popped + rest, per * threads as u64);

    let delta = session0.stats_delta().since(&before);
    let issued = 2 * per * threads as u64;
    // Every front op is completed by exactly one combiner pass (its own
    // or another thread's) and counted exactly once. The post-stress
    // drain goes through the plain path, so it does not perturb the
    // combiner counters.
    assert_eq!(delta.combine_ops, issued, "combiner ops must be exact");
    assert!(delta.combine_batches >= 1);
    assert!(delta.combine_batches <= delta.combine_ops);
    // Eliminations come in insert/remove pairs, and each saves its two
    // ops' persistence syncs; batching can only add to the saving under
    // a deferring strategy like FlitAsync.
    assert!(delta.combine_eliminations.is_multiple_of(2));
    assert!(delta.combine_barriers_saved >= delta.combine_eliminations);
    assert!(delta.combine_elections >= delta.combine_batches);
}

// ---- proptest: random crash/recover interleavings ----------------------

#[derive(Debug, Clone)]
enum Step {
    Enq(u8),
    Deq,
    Push(u8),
    Pop,
    CrashRecover,
}

fn arb_step() -> impl Strategy<Value = Step> {
    // Crash/recover on roughly one step in nine; the rest split evenly.
    (any::<u8>(), any::<u8>()).prop_map(|(sel, v)| match sel % 9 {
        0 | 1 => Step::Enq(v),
        2 | 3 => Step::Deq,
        4 | 5 => Step::Push(v),
        6 | 7 => Step::Pop,
        _ => Step::CrashRecover,
    })
}

/// One deterministic interleaving: combined queue + stack driven from
/// one session against in-memory reference models, with memory-node
/// crash/recover cycles at arbitrary points. Quiesced single-threaded
/// driving makes the expected state exact — every completed op must
/// read back precisely, across any number of crashes.
fn run_interleaving(mode: PersistMode, steps: Vec<Step>) {
    let cluster = Cluster::builder(SystemConfig::symmetric_nvm(3, 1 << 12))
        .persist(mode)
        .build()
        .unwrap();
    let session = cluster.session(MachineId(0));
    let queue = session.create_queue_combined::<u64>("q").unwrap();
    let stack = session.create_stack_combined::<u64>("s").unwrap();
    let mut qmodel: VecDeque<u64> = VecDeque::new();
    let mut smodel: Vec<u64> = Vec::new();
    let mut seq = 0u64;
    for step in steps {
        match step {
            Step::Enq(v) => {
                seq += 1;
                let v = u64::from(v) + seq * 1000;
                assert!(queue.enqueue(&session, v).unwrap());
                qmodel.push_back(v);
            }
            Step::Deq => {
                assert_eq!(queue.dequeue(&session).unwrap(), qmodel.pop_front());
            }
            Step::Push(v) => {
                seq += 1;
                let v = u64::from(v) + seq * 1000;
                assert!(stack.push(&session, v).unwrap());
                smodel.push(v);
            }
            Step::Pop => {
                assert_eq!(stack.pop(&session).unwrap(), smodel.pop());
            }
            Step::CrashRecover => {
                cluster.crash(MEM);
                cluster.recover(MEM);
                session.recover_roots().unwrap();
                queue.recover(&session).unwrap();
                stack.recover(&session).unwrap();
            }
        }
    }
    // Final drain: both structures must hold exactly the models.
    assert_eq!(queue.drain(&session).unwrap(), Vec::from(qmodel));
    smodel.reverse();
    assert_eq!(stack.drain(&session).unwrap(), smodel);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random op/crash/recover interleavings on combined structures,
    /// under every sound durability strategy: completed ops survive any
    /// crash pattern exactly (the spare-node cache, batched stores and
    /// recovery drains included).
    #[test]
    fn combined_ops_survive_random_crash_recover(
        steps in proptest::collection::vec(arb_step(), 0..40),
    ) {
        for mode in sound_modes() {
            run_interleaving(mode, steps.clone());
        }
    }
}
