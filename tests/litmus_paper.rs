//! E1/E2/E6: the paper's litmus tests — Figure 3 (1–9), the §3.5 variant
//! triples (10–12), and the §6 motivating example (13) — must all match
//! the published verdicts, under every model variant where the paper
//! states one.

use cxl0::explore::litmus::run_suite;
use cxl0::explore::Explorer;
use cxl0::explore::{paper, Verdict};
use cxl0::model::{Label, Loc, MachineId, ModelVariant, Semantics, SystemConfig, Trace, Val};

#[test]
fn full_paper_suite_matches() {
    let report = run_suite(&paper::all_tests());
    assert!(report.all_pass(), "litmus mismatches:\n{report}");
    // 9 base verdicts + 3×3 variant verdicts + 1 motivating example.
    assert_eq!(report.outcomes.len(), 9 + 9 + 1);
}

#[test]
fn figure3_verdicts_individually() {
    let expected = [
        ("test-01", Verdict::Allowed),
        ("test-02", Verdict::Forbidden),
        ("test-03", Verdict::Forbidden),
        ("test-04", Verdict::Allowed),
        ("test-05", Verdict::Forbidden),
        ("test-06", Verdict::Forbidden),
        ("test-07", Verdict::Forbidden),
        ("test-08", Verdict::Allowed),
        ("test-09", Verdict::Forbidden),
    ];
    let tests = paper::figure3_tests();
    assert_eq!(tests.len(), expected.len());
    for (test, (name, verdict)) in tests.iter().zip(expected) {
        assert_eq!(test.name, name);
        assert_eq!(test.run(ModelVariant::Base), verdict, "{name}");
    }
}

#[test]
fn variant_triples_match_section_3_5() {
    use Verdict::{Allowed as A, Forbidden as F};
    let expected = [
        ("test-10", [A, F, A]),
        ("test-11", [A, F, A]),
        ("test-12", [A, A, F]),
    ];
    let order = [ModelVariant::Base, ModelVariant::Lwb, ModelVariant::Psn];
    for (test, (name, verdicts)) in paper::variant_tests().iter().zip(expected) {
        assert_eq!(test.name, name);
        for (&variant, verdict) in order.iter().zip(verdicts) {
            assert_eq!(test.run(variant), verdict, "{name} under {variant}");
        }
    }
}

/// Test 4's dual: with an extra flush by the *owner* the value persists —
/// exercising that litmus verdicts are sensitive to single labels.
#[test]
fn owner_flush_strengthens_test_4() {
    let m1 = MachineId(0);
    let m2 = MachineId(1);
    let x2 = Loc::new(m2, 0);
    let cfg = SystemConfig::symmetric_nvm(2, 1);
    let sem = Semantics::new(cfg);
    let exp = Explorer::new(&sem);
    let trace = Trace::from_labels([
        Label::lstore(m1, x2, Val(1)),
        Label::lflush(m1, x2),
        Label::lflush(m2, x2), // the owner's LFlush reaches memory
        Label::crash(m2),
        Label::load(m1, x2, Val(0)),
    ]);
    assert!(
        !exp.is_allowed(&trace),
        "owner LFlush must persist the value"
    );
}

/// GPF makes everything durable before a crash (the paper's snapshot
/// use case).
#[test]
fn gpf_drains_all_caches_before_crash() {
    let m1 = MachineId(0);
    let m2 = MachineId(1);
    let cfg = SystemConfig::symmetric_nvm(2, 1);
    let sem = Semantics::new(cfg);
    let exp = Explorer::new(&sem);
    let x1 = Loc::new(m1, 0);
    let x2 = Loc::new(m2, 0);
    let trace = Trace::from_labels([
        Label::lstore(m1, x1, Val(1)),
        Label::lstore(m1, x2, Val(2)),
        Label::gpf(m1),
        Label::crash(m1),
        Label::crash(m2),
        Label::load(m1, x1, Val(1)),
        Label::load(m1, x2, Val(2)),
    ]);
    assert!(exp.is_allowed(&trace));
    // And the complementary loss is impossible after the GPF:
    let lossy = Trace::from_labels([
        Label::lstore(m1, x1, Val(1)),
        Label::gpf(m1),
        Label::crash(m1),
        Label::load(m1, x1, Val(0)),
    ]);
    assert!(!exp.is_allowed(&lossy));
}

/// RMW variants obey the same durability ladder as stores.
#[test]
fn rmw_durability_mirrors_store_strengths() {
    use cxl0::model::StoreKind;
    let m1 = MachineId(0);
    let cfg = SystemConfig::symmetric_nvm(1, 1);
    let sem = Semantics::new(cfg);
    let exp = Explorer::new(&sem);
    let x = Loc::new(m1, 0);
    // L-RMW may be lost on crash:
    let t = Trace::from_labels([
        Label::rmw(StoreKind::Local, m1, x, Val(0), Val(1)),
        Label::crash(m1),
        Label::load(m1, x, Val(0)),
    ]);
    assert!(exp.is_allowed(&t));
    // M-RMW may not:
    let t = Trace::from_labels([
        Label::rmw(StoreKind::Memory, m1, x, Val(0), Val(1)),
        Label::crash(m1),
        Label::load(m1, x, Val(0)),
    ]);
    assert!(!exp.is_allowed(&t));
}
