//! Multi-threaded stress tests for the `SimFabric` hot path: the striped
//! statistics rails, the epoch-style crash gate, and the determinism of
//! simulated-time accounting.

use cxl0::model::{Loc, MachineId, StoreKind, SystemConfig};
use cxl0::runtime::{CostModel, SimFabric};

const M0: MachineId = MachineId(0);
const M1: MachineId = MachineId(1);

/// (a) The striped per-thread counters aggregate exactly to the op
/// counts each thread issued, across every counter class.
#[test]
fn striped_stats_aggregate_exactly_to_per_thread_counts() {
    let fabric = SimFabric::new(SystemConfig::symmetric_nvm(2, 64));
    let threads = 8usize;
    let mut handles = Vec::new();
    for t in 0..threads {
        let node = fabric.node(MachineId(t % 2));
        handles.push(std::thread::spawn(move || {
            // Every thread issues a distinct, known per-class mix.
            let rounds = 100 + t as u64;
            for i in 0..rounds {
                let loc = Loc::new(M1, (i % 32) as u32);
                node.lstore(loc, i).unwrap();
                node.load(loc).unwrap();
                node.rstore(loc, i).unwrap();
                node.mstore(loc, i).unwrap();
                node.lflush(loc).unwrap();
                node.rflush(loc).unwrap();
                node.faa(StoreKind::Local, loc, 1).unwrap();
                node.aflush(loc).unwrap();
            }
            node.barrier().unwrap();
            rounds
        }));
    }
    let per_thread: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let total_rounds: u64 = per_thread.iter().sum();

    let s = fabric.stats().snapshot();
    assert_eq!(s.lstores, total_rounds);
    assert_eq!(s.loads, total_rounds);
    assert_eq!(s.rstores, total_rounds);
    assert_eq!(s.mstores, total_rounds);
    assert_eq!(s.lflushes, total_rounds);
    assert_eq!(s.rflushes, total_rounds);
    assert_eq!(s.rmws, total_rounds);
    assert_eq!(s.aflushes, total_rounds);
    assert_eq!(s.barriers, threads as u64);
    assert_eq!(s.total_sync_ops(), 7 * total_rounds);
    assert_eq!(s.total_ops(), 8 * total_rounds + threads as u64);
    assert_eq!(fabric.stats().total_ops(), s.total_ops());
}

/// (b) A crash in the middle of a store storm is one atomic transition:
/// every storming thread observes `Crashed` (none wedge, none keep
/// writing), and the post-crash state is consistent — no cache entries
/// survive for the crashed machine and every persisted value is one
/// some thread actually wrote to that location.
#[test]
fn crash_mid_storm_is_atomic_and_all_threads_observe_crashed() {
    let locations = 16u32;
    let fabric = SimFabric::new(SystemConfig::symmetric_nvm(2, locations));
    let mut handles = Vec::new();
    for t in 0..6u64 {
        let node = fabric.node(M1);
        handles.push(std::thread::spawn(move || {
            let mut i = 0u64;
            loop {
                let loc = Loc::new(M1, (i % u64::from(locations)) as u32);
                // Tag values with the writing thread so provenance is
                // checkable after the crash.
                let v = (t + 1) * 1_000_000 + i;
                let r = node.lstore(loc, v).and_then(|()| node.rflush(loc));
                if r.is_err() {
                    // The only way out of the loop: observing Crashed.
                    return i;
                }
                i += 1;
            }
        }));
    }
    // Let the storm run, then pull the plug. Every thread must exit via
    // Crashed — join() would hang forever otherwise.
    std::thread::sleep(std::time::Duration::from_millis(20));
    fabric.crash(M1);
    let progress: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(fabric.is_crashed(M1));
    assert!(
        progress.iter().any(|&n| n > 0),
        "the storm should have made progress before the crash"
    );

    // Post-crash consistency: the crashed machine's cache entries are
    // gone, and memory holds only values some thread wrote to exactly
    // that location (or the initial 0) — never a torn/foreign value.
    for a in 0..locations {
        let loc = Loc::new(M1, a);
        assert!(!fabric.is_cached(loc), "cache entry survived the crash");
        let v = fabric.peek_memory(loc);
        if v != 0 {
            let i = v % 1_000_000;
            let t = v / 1_000_000;
            assert!((1..=6).contains(&t), "foreign writer tag in {v}");
            assert_eq!(
                i % u64::from(locations),
                u64::from(a),
                "value {v} persisted at the wrong location {a}"
            );
        }
    }

    // The gate reopened: the other machine still works, and the crashed
    // one comes back after recovery.
    let n0 = fabric.node(M0);
    n0.mstore(Loc::new(M0, 0), 7).unwrap();
    assert_eq!(n0.load(Loc::new(M0, 0)).unwrap(), 7);
    fabric.recover(M1);
    assert_eq!(
        fabric.node(M1).load(Loc::new(M1, 0)).unwrap() % 1_000_000 % 16,
        0
    );
}

/// Runs one deterministic single-threaded workload and returns the
/// fabric's final snapshot.
fn deterministic_run() -> cxl0::runtime::StatsSnapshot {
    let fabric = SimFabric::with_options(
        SystemConfig::symmetric_nvm(3, 256),
        cxl0::model::ModelVariant::Base,
        CostModel::figure5(),
    );
    let near = fabric.node(MachineId(2)); // owns the target region
    let far = fabric.node(M0);
    for i in 0..2_000u64 {
        let loc = Loc::new(MachineId(2), (i % 128) as u32);
        far.lstore(loc, i).unwrap();
        far.load(loc).unwrap();
        far.lflush(loc).unwrap();
        far.rflush(loc).unwrap();
        near.mstore(loc, i).unwrap();
        near.load(loc).unwrap();
        far.cas(StoreKind::Memory, loc, i, i + 1).unwrap().unwrap();
        far.aflush(loc).unwrap();
        if i % 8 == 7 {
            far.barrier().unwrap();
        }
    }
    far.barrier().unwrap();
    fabric.stats().snapshot()
}

/// (c) Simulated time is deterministic: the same single-threaded
/// workload under `CostModel::figure5()` produces bit-identical
/// `sim_ns` totals (and counters) on every run. This pins the cost
/// accounting: a perf change to the backend must not change it.
#[test]
fn single_threaded_sim_ns_is_deterministic() {
    let a = deterministic_run();
    let b = deterministic_run();
    assert_eq!(a, b, "sim_ns accounting must be bit-identical across runs");
    assert!(a.sim_ns > 0);
    // Locality split is part of the determinism contract: the same mix
    // must charge the same local/remote costs every time.
    assert_eq!(a.total_ops(), b.total_ops());
}
