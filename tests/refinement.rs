//! E10: the §3.5 refinement claims, checked with the bounded
//! trace-refinement engine (our FDR4 substitute):
//!
//! 1. every trace of `CXL0_PSN` and of `CXL0_LWB` is a trace of `CXL0`;
//! 2. the converse fails, with the paper's tests 10–12 as witnesses;
//! 3. `CXL0_PSN` and `CXL0_LWB` are incomparable.

use cxl0::explore::{check_refinement, incomparability_witnesses, AlphabetBuilder, Explorer};
use cxl0::model::{Label, MachineConfig, ModelVariant, Primitive, Semantics, SystemConfig, Val};

/// §3.5's configuration: machine 1 NVMM, machine 2 volatile.
fn cfg() -> SystemConfig {
    SystemConfig::new(vec![
        MachineConfig::non_volatile(1),
        MachineConfig::volatile(1),
    ])
}

fn alphabet(cfg: &SystemConfig) -> Vec<Label> {
    AlphabetBuilder::new(cfg)
        .values([Val(0), Val(1)])
        .primitives([
            Primitive::LStore,
            Primitive::RStore,
            Primitive::Load,
            Primitive::LFlush,
            Primitive::Crash,
        ])
        .build()
}

#[test]
fn variants_refine_base_to_depth_5() {
    let cfg = cfg();
    let alpha = alphabet(&cfg);
    let base = Semantics::new(cfg.clone());
    for v in [ModelVariant::Psn, ModelVariant::Lwb] {
        let var = Semantics::with_variant(cfg.clone(), v);
        let r = check_refinement(&var, &base, &alpha, 5);
        assert!(
            r.holds(),
            "{v} ⋢ CXL0, witness: {:?}",
            r.counterexample().map(ToString::to_string)
        );
    }
}

#[test]
fn base_refines_neither_variant() {
    let cfg = cfg();
    let alpha = alphabet(&cfg);
    let base = Semantics::new(cfg.clone());
    for v in [ModelVariant::Psn, ModelVariant::Lwb] {
        let var = Semantics::with_variant(cfg.clone(), v);
        let r = check_refinement(&base, &var, &alpha, 5);
        let witness = r
            .counterexample()
            .expect("CXL0 must not refine the variants");
        // The witness must itself be executable in base and not in the
        // variant — double-check against the interpreter.
        let base_exp = Explorer::new(&base);
        assert!(base_exp.is_allowed(witness));
        let var_exp = Explorer::new(&var);
        assert!(!var_exp.is_allowed(witness));
    }
}

#[test]
fn psn_and_lwb_incomparable_with_verified_witnesses() {
    let cfg = cfg();
    let alpha = alphabet(&cfg);
    let psn = Semantics::with_variant(cfg.clone(), ModelVariant::Psn);
    let lwb = Semantics::with_variant(cfg.clone(), ModelVariant::Lwb);
    let (p_not_l, l_not_p) = incomparability_witnesses(&psn, &lwb, &alpha, 5);
    let p_not_l = p_not_l.expect("PSN trace forbidden by LWB");
    let l_not_p = l_not_p.expect("LWB trace forbidden by PSN");
    assert!(Explorer::new(&psn).is_allowed(&p_not_l));
    assert!(!Explorer::new(&lwb).is_allowed(&p_not_l));
    assert!(Explorer::new(&lwb).is_allowed(&l_not_p));
    assert!(!Explorer::new(&psn).is_allowed(&l_not_p));
}

/// The paper's distinguishing tests are found by (and consistent with)
/// the automated search: each test 10–12 trace is a base trace, and is
/// rejected by exactly the variants the paper marks ✗.
#[test]
fn paper_tests_are_refinement_witnesses() {
    use cxl0::explore::paper;
    let tests = paper::variant_tests();
    for t in &tests {
        let base = Semantics::new(t.config.clone());
        assert!(
            Explorer::new(&base).is_allowed(&t.trace),
            "{} must be a base trace",
            t.name
        );
        for (variant, verdict) in &t.expected {
            let sem = Semantics::with_variant(t.config.clone(), *variant);
            let allowed = Explorer::new(&sem).is_allowed(&t.trace);
            assert_eq!(
                allowed,
                *verdict == cxl0::explore::Verdict::Allowed,
                "{} under {variant}",
                t.name
            );
        }
    }
}

/// Refinement is reflexive and reaches a fixpoint (HoldsUpToDepth(MAX))
/// on identical models — a soundness check of the product construction.
#[test]
fn reflexivity_reaches_fixpoint() {
    let cfg = cfg();
    let alpha = alphabet(&cfg);
    for v in ModelVariant::ALL {
        let sem = Semantics::with_variant(cfg.clone(), v);
        let r = check_refinement(&sem, &sem, &alpha, 64);
        assert_eq!(
            r,
            cxl0::explore::Refinement::HoldsUpToDepth(usize::MAX),
            "{v} self-refinement did not reach a fixpoint"
        );
    }
}
