//! E3: Proposition 1 — the eight simulation/strength relations between
//! primitive sequences, checked exhaustively over the reachable state
//! spaces of several small configurations (the paper proves these in
//! Rocq; we recheck them mechanically).
//!
//! Exploration budgets are profile-scaled: a debug `cargo test` runs a
//! fast smoke-scale subset of each state space, while
//! `cargo test --release` — and the authoritative E3 harness,
//! `cargo run -p cxl0-bench --bin prop1 --release` — explores the full
//! budget. Every reachable state explored is checked for all eight items
//! either way.

use cxl0::explore::{check_proposition1, Prop1Item};
use cxl0::model::{MachineConfig, Semantics, SystemConfig, Val};

/// Full budget in release builds; a 100× smaller smoke budget in debug.
fn budget(full: usize) -> usize {
    if cfg!(debug_assertions) {
        full / 100
    } else {
        full
    }
}

#[test]
fn all_items_two_machines_nvm() {
    let sem = Semantics::new(SystemConfig::symmetric_nvm(2, 1));
    let results = check_proposition1(&sem, &[Val(0), Val(1)], budget(200_000))
        .unwrap_or_else(|ce| panic!("counterexample:\n{ce}"));
    assert_eq!(results.len(), 8);
    for (item, checked) in results {
        assert!(checked > 100, "{item}: only {checked} instantiations");
    }
}

#[test]
fn all_items_mixed_volatility() {
    let cfg = SystemConfig::new(vec![
        MachineConfig::non_volatile(1),
        MachineConfig::volatile(1),
    ]);
    let sem = Semantics::new(cfg);
    check_proposition1(&sem, &[Val(0), Val(1)], budget(200_000))
        .unwrap_or_else(|ce| panic!("counterexample:\n{ce}"));
}

#[test]
fn all_items_three_machines_with_compute_only_node() {
    let cfg = SystemConfig::new(vec![
        MachineConfig::non_volatile(1),
        MachineConfig::volatile(1),
        MachineConfig::compute_only(),
    ]);
    let sem = Semantics::new(cfg);
    check_proposition1(&sem, &[Val(0), Val(1)], budget(400_000))
        .unwrap_or_else(|ce| panic!("counterexample:\n{ce}"));
}

#[test]
fn all_items_two_locations_per_machine() {
    // This configuration's reachable space explodes combinatorially (two
    // locations multiply cache/memory layouts), and every explored state
    // is checked for all 8 items; the budget caps the prefix explored.
    let sem = Semantics::new(SystemConfig::symmetric_nvm(2, 2));
    check_proposition1(&sem, &[Val(0), Val(1)], budget(20_000))
        .unwrap_or_else(|ce| panic!("counterexample:\n{ce}"));
}

/// Item 2 is stated one-way in the paper but is in fact an equivalence
/// (item 1 provides the converse); check the equality explicitly.
#[test]
fn owner_stores_are_fully_equivalent() {
    use cxl0::explore::{AlphabetBuilder, Explorer, StateSet};
    use cxl0::model::{Label, Loc, Trace};

    let cfg = SystemConfig::symmetric_nvm(2, 1);
    let sem = Semantics::new(cfg.clone());
    let exp = Explorer::new(&sem);
    let alphabet = AlphabetBuilder::new(&cfg).build();
    let states = cxl0::explore::space::reachable_states(&sem, &alphabet, budget(100_000));
    for st in states {
        let mut set = StateSet::new();
        set.insert(st);
        for m in cfg.machines() {
            let x = Loc::new(m, 0); // m owns x
            let ls = Trace::from_labels([Label::lstore(m, x, Val(1))]);
            let rs = Trace::from_labels([Label::rstore(m, x, Val(1))]);
            assert!(exp.same_outcomes(&set, &ls, &rs));
        }
    }
}

/// The converse directions of the strength items must *fail* — i.e. the
/// hierarchy is strict. A checker that accepted everything would be
/// useless; verify it can falsify.
#[test]
fn strength_hierarchy_is_strict() {
    use cxl0::explore::{Explorer, StateSet};
    use cxl0::model::{Label, Loc, MachineId, Trace};

    let sem = Semantics::new(SystemConfig::symmetric_nvm(2, 1));
    let exp = Explorer::new(&sem);
    let set: StateSet = exp.initial_set();
    let i = MachineId(0);
    let x = Loc::new(MachineId(1), 0);
    let lstore = Trace::from_labels([Label::lstore(i, x, Val(1))]);
    let rstore = Trace::from_labels([Label::rstore(i, x, Val(1))]);
    let mstore = Trace::from_labels([Label::mstore(i, x, Val(1))]);
    // LStore ⊄ RStore and RStore ⊄ MStore (strictness):
    assert!(!exp.simulates(&set, &lstore, &rstore));
    assert!(!exp.simulates(&set, &rstore, &mstore));
    // while the stated directions hold:
    assert!(exp.simulates(&set, &rstore, &lstore));
    assert!(exp.simulates(&set, &mstore, &rstore));
}

#[test]
fn item_display_lists_all_eight() {
    let shown: Vec<String> = Prop1Item::ALL.iter().map(|i| i.to_string()).collect();
    for (k, s) in shown.iter().enumerate() {
        assert!(s.starts_with(&format!("Prop1({})", k + 1)), "{s}");
    }
}
