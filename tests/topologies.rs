//! E9: §4's system-model variations — each topology grants exactly the
//! primitives the paper lists, the restricted semantics enforces them,
//! and the claimed equivalences (e.g. `LFlush ≡ RFlush` in the
//! partitioned pool) hold.

use cxl0::explore::{Explorer, StateSet};
use cxl0::model::{
    Label, Loc, MachineConfig, MachineId, Primitive, Semantics, StepError, SystemConfig, Topology,
    Trace, Val,
};

const HOST: MachineId = MachineId(0);
const DEVICE: MachineId = MachineId(1);

#[test]
fn host_device_pair_grants_match_paper() {
    let t = Topology::host_device_pair();
    let host_denied = [
        Primitive::RStore,
        Primitive::LFlush,
        Primitive::RRmw,
        Primitive::MRmw,
    ];
    let device_denied = [Primitive::LFlush, Primitive::RRmw, Primitive::MRmw];
    for p in Primitive::ISSUED {
        assert_eq!(t.allows(HOST, p), !host_denied.contains(&p), "host {p}");
        assert_eq!(
            t.allows(DEVICE, p),
            !device_denied.contains(&p),
            "device {p}"
        );
    }
}

#[test]
fn restricted_semantics_rejects_denied_primitives() {
    let cfg = SystemConfig::symmetric_nvm(2, 1);
    let sem = Semantics::new(cfg).restricted(Topology::host_device_pair());
    let st = sem.initial_state();
    let y = Loc::new(DEVICE, 0);
    // Host RStore: ??? in Table 1.
    assert!(matches!(
        sem.apply(&st, &Label::rstore(HOST, y, Val(1))),
        Err(StepError::NotAllowed {
            topology: "host-device-pair"
        })
    ));
    // Device RStore: fine.
    assert!(sem.apply(&st, &Label::rstore(DEVICE, y, Val(1))).is_ok());
    // LFlush: unavailable to both.
    for m in [HOST, DEVICE] {
        assert!(matches!(
            sem.apply(&st, &Label::lflush(m, y)),
            Err(StepError::NotAllowed { .. })
        ));
    }
    // Crashes are environment events and always allowed.
    assert!(sem.apply(&st, &Label::crash(DEVICE)).is_ok());
}

#[test]
fn partitioned_pool_disables_cache_to_cache_propagation() {
    let cfg = SystemConfig::symmetric_nvm(2, 1);
    let sem = Semantics::new(cfg).restricted(Topology::partitioned_pool(2));
    let st = sem.initial_state();
    let st = sem
        .apply(
            &st,
            &Label::lstore(MachineId(0), Loc::new(MachineId(1), 0), Val(1)),
        )
        .unwrap();
    // Without Propagate-C-C, the only silent step for a foreign-owned
    // line... does not exist; owner-held lines still drain C-M.
    let steps = sem.silent_steps(&st);
    assert!(steps.is_empty(), "C-C must be fabric-disabled: {steps:?}");
}

#[test]
fn partitioned_pool_lflush_equals_rflush() {
    // §4: "LFlush and RFlush are semantically equivalent in this setting".
    // The paper models the partitioned pool as "conceptually similar to
    // having a set of isolated machines with NVMM": each host owns its
    // partition's locations (NVM in an external failure domain) and —
    // this is the partition discipline — touches no other host's
    // partition. Under that discipline no foreign cache ever holds a
    // host's line, so RFlush's global-drain precondition degenerates to
    // LFlush's local one. Check outcome equality over every reachable
    // state of a partition-respecting program.
    let cfg = SystemConfig::symmetric_nvm(2, 1);
    let sem = Semantics::new(cfg.clone()).restricted(Topology::partitioned_pool(2));
    let exp = Explorer::new(&sem);

    // Partition-respecting alphabet: host i accesses only its own x_i.
    let mut alphabet = Vec::new();
    for m in 0..2 {
        let i = MachineId(m);
        let x = Loc::new(i, 0);
        for v in [Val(0), Val(1)] {
            alphabet.push(Label::lstore(i, x, v));
            alphabet.push(Label::mstore(i, x, v));
            alphabet.push(Label::load(i, x, v));
        }
        alphabet.push(Label::lflush(i, x));
        alphabet.push(Label::rflush(i, x));
        alphabet.push(Label::crash(i));
    }

    let states = cxl0::explore::space::reachable_states(&sem, &alphabet, 10_000);
    assert!(states.len() > 4, "exploration too small: {}", states.len());
    for st in states {
        let mut set = StateSet::new();
        set.insert(st);
        for m in 0..2 {
            let i = MachineId(m);
            let x = Loc::new(i, 0);
            let lf = Trace::from_labels([Label::lflush(i, x)]);
            let rf = Trace::from_labels([Label::rflush(i, x)]);
            assert!(exp.same_outcomes(&set, &lf, &rf));
        }
    }
}

#[test]
fn noncoherent_pool_allows_only_memory_primitives() {
    let t = Topology::shared_pool_noncoherent(3);
    for m in 0..3 {
        let granted = t.capabilities(MachineId(m)).granted();
        assert_eq!(
            granted,
            vec![Primitive::Load, Primitive::MStore, Primitive::MRmw]
        );
    }
}

#[test]
fn noncoherent_pool_programs_are_crash_consistent() {
    // With only MStore/M-RMW/memory loads, every completed write is
    // durable instantly: no trace can lose a stored value.
    let cfg = SystemConfig::new(vec![
        MachineConfig::compute_only(),
        MachineConfig::compute_only(),
        MachineConfig::non_volatile(1), // the pool
    ]);
    let sem = Semantics::new(cfg).restricted(Topology::shared_pool_noncoherent(3));
    let exp = Explorer::new(&sem);
    let x = Loc::new(MachineId(2), 0);
    let lossy = Trace::from_labels([
        Label::mstore(MachineId(0), x, Val(1)),
        Label::crash(MachineId(0)),
        Label::crash(MachineId(1)),
        Label::load(MachineId(1), x, Val(0)),
    ]);
    assert!(!exp.is_allowed(&lossy));
}

#[test]
fn coherent_pool_excludes_remote_cache_interaction() {
    let t = Topology::shared_pool_coherent(2);
    for m in 0..2 {
        let m = MachineId(m);
        assert!(!t.allows(m, Primitive::RStore));
        assert!(!t.allows(m, Primitive::LFlush));
        assert!(!t.allows(m, Primitive::RRmw));
        assert!(!t.allows(m, Primitive::MRmw));
        assert!(t.allows(m, Primitive::LStore));
        assert!(t.allows(m, Primitive::RFlush));
        assert!(t.allows(m, Primitive::Gpf));
    }
    assert!(!t.allows_prop_cc());
}

#[test]
fn unrestricted_topology_allows_everything() {
    let t = Topology::unrestricted(4);
    for m in 0..4 {
        for p in Primitive::ISSUED {
            assert!(t.allows(MachineId(m), p));
        }
    }
    assert!(t.allows_prop_cc());
}

#[test]
#[should_panic(expected = "machine count")]
fn topology_machine_count_mismatch_panics() {
    let cfg = SystemConfig::symmetric_nvm(3, 1);
    let _ = Semantics::new(cfg).restricted(Topology::host_device_pair());
}
