//! E4: Table 1 — the generated transaction mapping must equal the
//! paper's published cells exactly, for every (node, primitive, target).

use cxl0::protocol::{
    expected_paper_cells, generate_table1, Cell, CxlOp, MemTarget, Node, Transaction,
};

#[test]
fn generated_table_equals_paper() {
    let (table, _) = generate_table1();
    let expected = expected_paper_cells();
    assert_eq!(table.cells.len(), expected.len(), "cell count");
    for (key, want) in &expected {
        let got = &table.cells[key];
        assert_eq!(
            got,
            want,
            "{key:?}: generated `{}`, paper has `{}`",
            got.render(),
            want.render()
        );
    }
}

#[test]
fn exactly_three_unavailable_rows() {
    let (table, _) = generate_table1();
    let unavailable: Vec<_> = table
        .cells
        .iter()
        .filter(|(_, c)| matches!(c, Cell::Unavailable))
        .map(|(k, _)| *k)
        .collect();
    // Host RStore, host LFlush, device LFlush — each on both targets.
    assert_eq!(unavailable.len(), 6);
    for (node, op, _) in unavailable {
        assert!(
            matches!(
                (node, op),
                (Node::Host, CxlOp::RStore)
                    | (Node::Host, CxlOp::LFlush)
                    | (Node::Device, CxlOp::LFlush)
            ),
            "unexpected unavailable combination {node} {op}"
        );
    }
}

#[test]
fn mapping_is_many_to_one() {
    // The same CXL transaction appears under multiple primitives — the
    // "many-to-one" observation of §5.1. SnpInv serves host Read, LStore,
    // MStore and RFlush to HM.
    let (table, _) = generate_table1();
    let mut rows_with_snpinv = 0;
    for op in [CxlOp::Read, CxlOp::LStore, CxlOp::MStore, CxlOp::RFlush] {
        if let Cell::Sequences(seqs) = table.cell(Node::Host, op, MemTarget::HostMemory) {
            if seqs.iter().any(|s| s.contains(&Transaction::SNP_INV)) {
                rows_with_snpinv += 1;
            }
        }
    }
    assert_eq!(rows_with_snpinv, 4);
}

#[test]
fn narrative_state_enumeration_for_host_read() {
    // §5.1 narrates host Read to HM per state pair: (∗,I) → None, device
    // valid → SnpInv. Verify at observation granularity.
    use cxl0::protocol::MesiState;
    let (_, analyzer) = generate_table1();
    for obs in analyzer.observations() {
        if obs.node == Node::Host && obs.op == CxlOp::Read && obs.target == MemTarget::HostMemory {
            if obs.before.device == MesiState::I {
                assert!(obs.transactions.is_empty(), "{:?}", obs.before);
            } else {
                assert_eq!(
                    obs.transactions,
                    vec![Transaction::SNP_INV],
                    "{:?}",
                    obs.before
                );
            }
        }
    }
}

#[test]
fn table_text_round_trips_key_content() {
    let (table, _) = generate_table1();
    let text = table.to_text();
    for needle in [
        "Read",
        "LStore",
        "RStore",
        "MStore",
        "LFlush",
        "RFlush",
        "???",
        "SnpInv",
        "MemRdData",
        "MemWr",
        "MemInv",
        "RdShared",
        "RdOwn",
        "ItoMWr",
        "CleanEvict",
        "DirtyEvict",
        "WOWrInv/F",
        "WrInv",
        "None",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
}
