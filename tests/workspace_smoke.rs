//! Workspace smoke test: the umbrella crate can reach every layer of the
//! workspace through the `cxl0` facade, and the quickstart round-trip —
//! enqueue, crash the memory node, recover, reattach by name, dequeue —
//! really persists the enqueued value.

use cxl0::api::{ApiError, Cluster};
use cxl0::model::{MachineId, SystemConfig};

#[test]
fn durable_queue_survives_memory_node_crash() -> Result<(), ApiError> {
    // Two compute nodes + one NVM memory node, as in the cxl0 docs.
    let cluster = Cluster::symmetric(2, 1024)?;
    let session = cluster.session(MachineId(0));
    let queue = session.create_queue::<u64>("jobs")?;
    queue.enqueue(&session, 7)?;

    // The memory node crashes; NVM contents survive, caches do not — but
    // FliT persisted the enqueue before it returned. Reattach through
    // the named-root registry: no header Loc was kept anywhere volatile.
    cluster.crash(cluster.memory_node());
    cluster.recover(cluster.memory_node());
    let queue = session.open_queue::<u64>("jobs")?;
    queue.recover(&session)?;
    assert_eq!(queue.dequeue(&session)?, Some(7));

    // The queue is now empty again and stays usable.
    assert_eq!(queue.dequeue(&session)?, None);
    queue.enqueue(&session, 8)?;
    assert_eq!(queue.dequeue(&session)?, Some(8));
    Ok(())
}

#[test]
fn low_level_escape_hatch_still_reaches_primitives() {
    // The raw layer stays available for primitive-level tests. (Even a
    // registry-less cluster reserves the crash-consistent allocator's
    // metadata cells, so the segment cannot be arbitrarily tiny.)
    let cluster = Cluster::builder(SystemConfig::symmetric_nvm(2, 128))
        .root_capacity(0)
        .build()
        .unwrap();
    let session = cluster.session(MachineId(0));
    let x = cxl0::model::Loc::new(MachineId(1), 127);
    session.node().lstore(x, 9).unwrap();
    session.node().rflush(x).unwrap();
    assert_eq!(cluster.fabric().peek_memory(x), 9);
}

#[test]
fn facade_reaches_every_workspace_layer() {
    // model
    let cfg = SystemConfig::symmetric_nvm(2, 4);
    let sem = cxl0::model::Semantics::new(cfg.clone());
    let st = sem.initial_state();
    st.check_invariant().unwrap();

    // explore: the paper's litmus verdicts hold.
    let report = cxl0::explore::litmus::run_suite(&cxl0::explore::paper::figure3_tests());
    assert!(report.all_pass());

    // protocol: a host MStore to device memory writes through.
    {
        use cxl0::protocol::{host_op, CachePair, CxlOp, MemTarget, MesiState};
        let st = CachePair::new(MesiState::I, MesiState::M);
        assert!(host_op(CxlOp::MStore, MemTarget::DeviceMemory, st).is_some());
    }

    // fabric: remote reads cost more than local ones.
    {
        use cxl0::fabric::{run_figure5, AccessPath, LatencyConfig};
        use cxl0::protocol::CxlOp;
        let fig = run_figure5(&LatencyConfig::testbed(), 50, 42);
        let local = fig.median(AccessPath::HostToHm, CxlOp::Read).unwrap();
        let remote = fig.median(AccessPath::HostToHdm, CxlOp::Read).unwrap();
        assert!(remote > local);
    }

    // dlcheck: a completed write that survives a crash is durably readable.
    {
        use cxl0::dlcheck::spec::{RegisterOp, RegisterRet};
        use cxl0::dlcheck::{check_durably_linearizable, Recorder, ThreadId};
        let rec = Recorder::new();
        let w = rec.invoke(ThreadId(0), 0, RegisterOp::Write(7));
        rec.respond(w, RegisterRet::Ok);
        rec.crash(0);
        let r = rec.invoke(ThreadId(1), 0, RegisterOp::Read);
        rec.respond(r, RegisterRet::Value(7));
        assert!(
            check_durably_linearizable(&cxl0::dlcheck::spec::RegisterSpec, &rec.finish()).is_ok()
        );
    }

    // workloads: generated keys respect the distribution's bounds.
    {
        use cxl0::workloads::{KeyDist, OpMix, Workload};
        let mut w = Workload::new(KeyDist::zipfian(100, 0.99), OpMix::read_heavy(), 42);
        for _ in 0..50 {
            let op = w.next_op();
            assert!((1..=100).contains(&op.key()));
        }
    }
}
