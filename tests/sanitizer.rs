//! Persistency-sanitizer integration: every *sound* persistence mode
//! runs the durability/churn/recovery workloads violation-free under
//! the shadow-state checker, and the deliberately-unsound x86 FliT port
//! (§6.1's negative result) is caught with an
//! unpersisted-read-at-recovery — the sanitizer's dynamic counterpart
//! of the `cxl0-dlcheck` history rejection.

use std::sync::Arc;

use cxl0::api::{Cluster, PersistMode};
use cxl0::model::{MachineId, SystemConfig};
use cxl0::runtime::{CheckConfig, ViolationClass};

const MEM: MachineId = MachineId(2);

/// Every mode whose strategy actually promises per-operation
/// durability. `FlitX86` is excluded by design (unsound), `None` and
/// `Buffered` promise nothing per-operation.
const SOUND_MODES: [PersistMode; 4] = [
    PersistMode::FlitCxl0,
    PersistMode::OwnerOpt,
    PersistMode::FlitAsync,
    PersistMode::NaiveMStore,
];

fn sanitized(mode: PersistMode) -> Arc<Cluster> {
    Cluster::builder(SystemConfig::symmetric_nvm(3, 1 << 15))
        .persist(mode)
        // Record instead of panicking so a regression produces a
        // readable assertion with the violation list, not a crash.
        .with_checker(CheckConfig {
            fail_fast: false,
            ..CheckConfig::default()
        })
        .build()
        .unwrap()
}

fn assert_clean(cluster: &Cluster, mode: PersistMode, what: &str) {
    let ck = cluster.checker().expect("checker installed");
    assert_eq!(
        ck.total_violations(),
        0,
        "{mode:?} {what}: {:#?}",
        ck.violations()
    );
    let snap = cluster.stats_snapshot();
    assert_eq!(snap.check_durability_races, 0);
    assert_eq!(snap.check_unpersisted_reads, 0);
    assert_eq!(snap.check_use_after_retire, 0);
}

/// Queue churn (allocator reuse), list churn (SMR retire/reclaim), a
/// memory-node crash and by-name recovery: clean under every sound
/// mode.
#[test]
fn sound_modes_run_churn_and_recovery_clean() {
    for mode in SOUND_MODES {
        let cluster = sanitized(mode);
        let session = cluster.session(MachineId(0));
        let q = session.create_queue::<u64>("q").unwrap();
        let l = session.create_list::<u64>("l").unwrap();
        for i in 0..100u64 {
            assert!(q.enqueue(&session, i + 1).unwrap());
            assert_eq!(q.dequeue(&session).unwrap(), Some(i + 1));
            let k = i % 9 + 1;
            l.insert(&session, k).unwrap();
            l.remove(&session, k).unwrap();
        }
        for k in [3u64, 5, 7] {
            l.insert(&session, k).unwrap();
        }
        for v in [10u64, 20, 30] {
            q.enqueue(&session, v).unwrap();
        }
        assert_clean(&cluster, mode, "churn");

        cluster.crash(MEM);
        cluster.recover(MEM);
        let session = cluster.session(MachineId(1));
        session.recover_roots().unwrap();
        let q = session.open_queue::<u64>("q").unwrap();
        q.recover(&session).unwrap();
        assert_eq!(q.drain(&session).unwrap(), vec![10, 20, 30]);
        let l = session.open_list::<u64>("l").unwrap();
        for k in [3u64, 5, 7] {
            assert!(l.contains(&session, k).unwrap());
        }
        assert_clean(&cluster, mode, "crash recovery");
    }
}

/// Concurrent mixed workload: four threads on two compute machines
/// hammer one queue and one list — pins, retires, reclamation and
/// contention races all mirrored, all clean.
#[test]
fn sound_modes_run_concurrent_churn_clean() {
    for mode in [PersistMode::FlitCxl0, PersistMode::OwnerOpt] {
        let cluster = sanitized(mode);
        let s0 = cluster.session(MachineId(0));
        let q = s0.create_queue::<u64>("jobs").unwrap();
        let l = s0.create_list::<u64>("set").unwrap();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let session = cluster.session(MachineId((t % 2) as usize));
            let (q, l) = (q.clone(), l.clone());
            handles.push(std::thread::spawn(move || {
                for i in 0..150u64 {
                    assert!(q.enqueue(&session, t * 1000 + i + 1).unwrap());
                    let _ = q.dequeue(&session).unwrap();
                    let k = (i * 5 + t) % 16 + 1;
                    if (t + i).is_multiple_of(2) {
                        let _ = l.insert(&session, k).unwrap();
                    } else {
                        let _ = l.remove(&session, k).unwrap();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_clean(&cluster, mode, "concurrent churn");
    }
}

/// The pinned §6 unsoundness: Algorithm 1 ported with local flushes
/// only acknowledges writes that never reach the NVM node. The crash
/// loses the acknowledged value and the recovery read must trip the
/// sanitizer — the same scenario `cxl0-dlcheck` rejects by history
/// analysis in `durable_linearizability.rs`.
#[test]
fn unadapted_x86_flit_trips_unpersisted_read_at_recovery() {
    let cluster = Cluster::builder(SystemConfig::symmetric_nvm(3, 1 << 15))
        .persist(PersistMode::FlitX86)
        // Durability races are off: an always-local strategy never
        // claims publication-ordered persistence, so that check would
        // only produce noise. The lost-ack check is the sound one here.
        .with_checker(CheckConfig {
            durability_races: false,
            fail_fast: false,
            ..CheckConfig::default()
        })
        .build()
        .unwrap();
    let session = cluster.session(MachineId(0));
    let reg = session.create_register::<u64>("r").unwrap();
    reg.write(&session, 7).unwrap();
    cluster.crash(MEM);
    cluster.recover(MEM);
    let v = reg.read(&session).unwrap();
    assert_eq!(v, 0, "the acknowledged write is lost (that is the bug)");
    let ck = cluster.checker().unwrap();
    assert!(
        ck.unpersisted_reads() >= 1,
        "the recovery read of the lost cell must be reported"
    );
    let reports = ck.violations();
    assert!(reports
        .iter()
        .any(|v| v.class == ViolationClass::UnpersistedReadAtRecovery));
    assert_eq!(
        cluster.stats_snapshot().check_unpersisted_reads,
        ck.unpersisted_reads(),
        "violation counters surface through StatsSnapshot"
    );
}

/// The identical scenario under every sound mode stays silent: the
/// strategies either push the line to NVM before acknowledging or
/// survive the crash with the value intact.
#[test]
fn sound_modes_survive_the_x86_scenario_silently() {
    for mode in SOUND_MODES {
        let cluster = sanitized(mode);
        let session = cluster.session(MachineId(0));
        let reg = session.create_register::<u64>("r").unwrap();
        reg.write(&session, 7).unwrap();
        cluster.crash(MEM);
        cluster.recover(MEM);
        assert_eq!(reg.read(&session).unwrap(), 7, "{mode:?} must not lose");
        assert_clean(&cluster, mode, "crash round-trip");
    }
}

/// `CXL0_SANITIZE=1` CI runs lean on fail-fast: make sure an explicit
/// fail-fast checker actually panics on a violation (fired via the
/// documented seeded-bug path would need crate internals, so this just
/// asserts the arming surface: config round-trips through the cluster).
#[test]
fn with_checker_exposes_config_and_counters() {
    let cluster = sanitized(PersistMode::FlitCxl0);
    let ck = cluster.checker().unwrap();
    let cfg = ck.config();
    assert!(cfg.durability_races && cfg.unpersisted_reads && cfg.use_after_retire);
    assert!(!cfg.fail_fast);
    assert_eq!(ck.total_violations(), 0);
    assert!(ck.violations().is_empty());
}
