//! The `Cluster`/`Session` API and its named-root registry under
//! randomized interleavings of `create_*`/`open_*`/torn creates/crash/
//! recover: every *committed* name must reattach, after any number of
//! memory-node crashes, to a structure whose contents survived.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use cxl0::api::{ApiError, Cluster, PersistMode, RootKind};
use cxl0::model::{MachineId, SystemConfig};
use proptest::prelude::*;

const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

#[derive(Debug, Clone)]
enum Op {
    /// Create a structure of the given kind under `NAMES[name]`.
    Create(u8, u8),
    /// `counter.add` / `register.write` / `queue.enqueue` on the named
    /// structure (no-op when the name holds a different kind).
    Mutate(u8, u8),
    /// Claim the name in the registry without committing, as a creator
    /// crashing mid-`create` would.
    TornCreate(u8),
    /// Crash the memory node, recover it, seal pending roots, reattach
    /// every committed name and verify its contents.
    CrashRecover,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..NAMES.len() as u8, 0..3u8).prop_map(|(n, k)| Op::Create(n, k)),
        (0..NAMES.len() as u8, 1..100u8).prop_map(|(n, v)| Op::Mutate(n, v)),
        (0..NAMES.len() as u8).prop_map(Op::TornCreate),
        Just(Op::CrashRecover),
    ]
}

/// The single-threaded reference model of the committed registry state.
#[derive(Default)]
struct Model {
    kinds: HashMap<&'static str, RootKind>,
    pending: HashMap<&'static str, bool>,
    counters: HashMap<&'static str, u64>,
    registers: HashMap<&'static str, u64>,
    queues: HashMap<&'static str, VecDeque<u64>>,
}

/// Reattaches every committed name by `open_*` and checks its contents
/// against the model. Queues are drained (FIFO check) and re-enqueued,
/// leaving their durable state unchanged.
fn verify_all(cluster: &Arc<Cluster>, model: &Model) {
    let session = cluster.session(MachineId(0));
    let roots = session.roots().unwrap();
    assert_eq!(roots.len(), model.kinds.len(), "committed-root census");
    for (&name, &kind) in &model.kinds {
        match kind {
            RootKind::Counter => {
                let c = session.open_counter(name).unwrap();
                assert_eq!(c.get(&session).unwrap(), model.counters[name], "{name}");
            }
            RootKind::Register => {
                let r = session.open_register::<u64>(name).unwrap();
                assert_eq!(r.read(&session).unwrap(), model.registers[name], "{name}");
            }
            RootKind::Queue => {
                let q = session.open_queue::<u64>(name).unwrap();
                q.recover(&session).unwrap();
                let drained = q.drain(&session).unwrap();
                let expect: Vec<u64> = model.queues[name].iter().copied().collect();
                assert_eq!(drained, expect, "{name}");
                for v in drained {
                    assert!(q.enqueue(&session, v).unwrap());
                }
            }
            other => panic!("model never creates a {other}"),
        }
    }
}

fn run_interleaving(ops: Vec<Op>) {
    let cluster = Cluster::builder(SystemConfig::symmetric_nvm(3, 1 << 14))
        .persist(PersistMode::FlitCxl0)
        .root_capacity(8)
        .build()
        .unwrap();
    let mem = cluster.memory_node();
    let session = cluster.session(MachineId(0));
    let mut model = Model::default();

    for op in ops {
        match op {
            Op::Create(n, k) => {
                let name = NAMES[n as usize];
                let kind = [RootKind::Counter, RootKind::Register, RootKind::Queue][k as usize];
                let result = match kind {
                    RootKind::Counter => session.create_counter(name).map(|_| ()),
                    RootKind::Register => session.create_register::<u64>(name).map(|_| ()),
                    _ => session.create_queue::<u64>(name).map(|_| ()),
                };
                if model.pending.get(name).copied().unwrap_or(false) {
                    assert_eq!(result, Err(ApiError::PendingRoot(name.into())), "{name}");
                } else if model.kinds.contains_key(name) {
                    assert_eq!(result, Err(ApiError::AlreadyExists(name.into())), "{name}");
                } else {
                    result.unwrap();
                    model.kinds.insert(name, kind);
                    match kind {
                        RootKind::Counter => {
                            model.counters.insert(name, 0);
                        }
                        RootKind::Register => {
                            model.registers.insert(name, 0);
                        }
                        _ => {
                            model.queues.insert(name, VecDeque::new());
                        }
                    }
                }
            }
            Op::Mutate(n, v) => {
                let name = NAMES[n as usize];
                let v = u64::from(v);
                match model.kinds.get(name) {
                    Some(RootKind::Counter) => {
                        let c = session.open_counter(name).unwrap();
                        c.add(&session, v).unwrap();
                        *model.counters.get_mut(name).unwrap() += v;
                    }
                    Some(RootKind::Register) => {
                        let r = session.open_register::<u64>(name).unwrap();
                        r.write(&session, v).unwrap();
                        model.registers.insert(name, v);
                    }
                    Some(RootKind::Queue) => {
                        let q = session.open_queue::<u64>(name).unwrap();
                        assert!(q.enqueue(&session, v).unwrap());
                        model.queues.get_mut(name).unwrap().push_back(v);
                    }
                    Some(other) => panic!("model never creates a {other}"),
                    None => {
                        // Not committed: every open must miss, whatever
                        // the kind asked for.
                        assert_eq!(
                            session.open_counter(name).err(),
                            Some(ApiError::NotFound(name.into()))
                        );
                    }
                }
            }
            Op::TornCreate(n) => {
                let name = NAMES[n as usize];
                // Only exercise the torn state on otherwise-free names:
                // a pending claim for a committed name is legal but would
                // complicate the model's expected create errors.
                if !model.kinds.contains_key(name)
                    && !model.pending.get(name).copied().unwrap_or(false)
                {
                    session.simulate_torn_create(name).unwrap();
                    model.pending.insert(name, true);
                }
            }
            Op::CrashRecover => {
                cluster.crash(mem);
                cluster.recover(mem);
                let sealed = cluster.session(MachineId(0)).recover_roots().unwrap();
                let expected_sealed = model.pending.values().filter(|p| **p).count();
                assert_eq!(sealed, expected_sealed, "sealed-entry count");
                model.pending.clear();
                verify_all(&cluster, &model);
            }
        }
    }

    // Whatever the interleaving did, one final crash/recover cycle must
    // reattach every committed root with its contents intact.
    cluster.crash(mem);
    cluster.recover(mem);
    cluster.session(MachineId(0)).recover_roots().unwrap();
    verify_all(&cluster, &model);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn committed_roots_always_reattach(ops in proptest::collection::vec(arb_op(), 0..40)) {
        run_interleaving(ops);
    }
}

#[test]
fn open_queue_round_trip_needs_no_header_locs() {
    // The acceptance-criterion scenario in its plainest form: create on
    // one "process", crash the memory node, reattach purely by name.
    let cluster = Cluster::symmetric(2, 4096).unwrap();
    {
        let s = cluster.session(MachineId(0));
        let q = s.create_queue::<u64>("jobs").unwrap();
        for v in [1u64, 2, 3] {
            q.enqueue(&s, v).unwrap();
        }
    } // every volatile handle dropped here
    cluster.crash(cluster.memory_node());
    cluster.recover(cluster.memory_node());
    let s = cluster.session(MachineId(1));
    s.recover_roots().unwrap();
    let q = s.open_queue::<u64>("jobs").unwrap();
    q.recover(&s).unwrap();
    assert_eq!(q.drain(&s).unwrap(), vec![1, 2, 3]);
}

#[test]
fn registry_full_reports_cleanly() {
    let cluster = Cluster::builder(SystemConfig::symmetric_nvm(2, 4096))
        .root_capacity(2)
        .build()
        .unwrap();
    let s = cluster.session(MachineId(0));
    s.create_counter("a").unwrap();
    s.create_counter("b").unwrap();
    assert_eq!(s.create_counter("c").err(), Some(ApiError::RegistryFull));
    // The full registry still serves lookups.
    assert!(s.open_counter("a").is_ok());
    assert!(s.open_counter("b").is_ok());
}

#[test]
fn word_newtypes_are_fingerprinted() {
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Ticket(u64);
    cxl0::durable_word!(Ticket(u64));

    let cluster = Cluster::symmetric(1, 4096).unwrap();
    let s = cluster.session(MachineId(0));
    let q = s.create_queue::<Ticket>("t").unwrap();
    q.enqueue(&s, Ticket(9)).unwrap();
    // Same layout, different fingerprint: opening as u64 is refused.
    assert_eq!(
        s.open_queue::<u64>("t").err(),
        Some(ApiError::TypeMismatch { name: "t".into() })
    );
    assert_eq!(
        s.open_queue::<Ticket>("t").unwrap().dequeue(&s).unwrap(),
        Some(Ticket(9))
    );
}
