//! Refinement of the executable runtime against the formal model: every
//! behavior the `SimFabric` backend produces must be a behavior of the
//! CXL0 semantics (labels interleaved with `τ*`).
//!
//! Method: drive both with the same single-threaded operation sequence
//! (including flushes, random propagation and crashes); after each
//! backend operation, apply the corresponding label to the τ-closed model
//! state set. The set must never become empty, and every loaded value
//! must be admitted by the model.

use std::sync::Arc;

use cxl0::explore::{Explorer, StateSet};
use cxl0::model::{
    Label, Loc, MachineConfig, MachineId, ModelVariant, Semantics, StoreKind, SystemConfig, Val,
};
use cxl0::runtime::{CostModel, SimFabric};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Load(usize, usize),
    Store(StoreKind, usize, usize, u64),
    LFlush(usize, usize),
    RFlush(usize, usize),
    Faa(StoreKind, usize, usize, u64),
    Crash(usize),
    Recover(usize),
    Propagate(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    let m = 0..2usize;
    let l = 0..2usize;
    let v = 1..3u64;
    let kind = prop_oneof![
        Just(StoreKind::Local),
        Just(StoreKind::Remote),
        Just(StoreKind::Memory)
    ];
    prop_oneof![
        (m.clone(), l.clone()).prop_map(|(m, l)| Op::Load(m, l)),
        (kind.clone(), m.clone(), l.clone(), v.clone())
            .prop_map(|(k, m, l, v)| Op::Store(k, m, l, v)),
        (m.clone(), l.clone()).prop_map(|(m, l)| Op::LFlush(m, l)),
        (m.clone(), l.clone()).prop_map(|(m, l)| Op::RFlush(m, l)),
        (kind, m.clone(), l.clone(), v).prop_map(|(k, m, l, v)| Op::Faa(k, m, l, v)),
        m.clone().prop_map(Op::Crash),
        m.clone().prop_map(Op::Recover),
        any::<u64>().prop_map(Op::Propagate),
    ]
}

fn config() -> SystemConfig {
    SystemConfig::new(vec![
        MachineConfig::non_volatile(2),
        MachineConfig::volatile(2),
    ])
}

fn loc(owner: usize, addr: usize) -> Loc {
    Loc::new(MachineId(owner), addr as u32)
}

fn run_against_model(variant: ModelVariant, ops: Vec<Op>) {
    let cfg = config();
    let fabric = SimFabric::with_options(cfg.clone(), variant, CostModel::free());
    let sem = Semantics::with_variant(cfg, variant);
    let exp = Explorer::new(&sem);
    let mut states: StateSet = exp.initial_set();
    let nodes: Vec<_> = (0..2).map(|m| fabric.node(MachineId(m))).collect();

    for op in ops {
        match op {
            Op::Load(m, l) => {
                let Ok(v) = nodes[m].load(loc(l % 2, l)) else {
                    continue;
                };
                states =
                    exp.after_label(&states, &Label::load(MachineId(m), loc(l % 2, l), Val(v)));
            }
            Op::Store(kind, m, l, v) => {
                let target = loc((m + l) % 2, l);
                if nodes[m].store(kind, target, v).is_err() {
                    continue;
                }
                states =
                    exp.after_label(&states, &Label::store(kind, MachineId(m), target, Val(v)));
            }
            Op::LFlush(m, l) => {
                let target = loc(l % 2, l);
                if nodes[m].lflush(target).is_err() {
                    continue;
                }
                states = exp.after_label(&states, &Label::lflush(MachineId(m), target));
            }
            Op::RFlush(m, l) => {
                let target = loc(l % 2, l);
                if nodes[m].rflush(target).is_err() {
                    continue;
                }
                states = exp.after_label(&states, &Label::rflush(MachineId(m), target));
            }
            Op::Faa(kind, m, l, d) => {
                let target = loc(l % 2, l);
                let Ok(old) = nodes[m].faa(kind, target, d) else {
                    continue;
                };
                states = exp.after_label(
                    &states,
                    &Label::rmw(
                        kind,
                        MachineId(m),
                        target,
                        Val(old),
                        Val(old.wrapping_add(d)),
                    ),
                );
            }
            Op::Crash(m) => {
                if fabric.is_crashed(MachineId(m)) {
                    continue;
                }
                fabric.crash(MachineId(m));
                states = exp.after_label(&states, &Label::crash(MachineId(m)));
            }
            Op::Recover(m) => fabric.recover(MachineId(m)),
            Op::Propagate(seed) => {
                // Backend τ steps need no model label: the model set is
                // already τ-closed, so the backend state stays inside it.
                fabric.propagate_randomly(seed, 3);
            }
        }
        assert!(
            !states.is_empty(),
            "backend produced a behavior the model forbids (variant {variant})"
        );
    }

    // Final check: the backend's persistent image must be a memory
    // component of some admitted model state.
    let image_matches = states.iter().any(|st| {
        fabric
            .config()
            .all_locations()
            .all(|x| st.memory(x).raw() == fabric.peek_memory(x) || fabric.is_cached(x))
    });
    assert!(
        image_matches,
        "no model state matches the backend's memory image"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn base_backend_refines_base_model(ops in proptest::collection::vec(arb_op(), 0..40)) {
        run_against_model(ModelVariant::Base, ops);
    }

    #[test]
    fn psn_backend_refines_psn_model(ops in proptest::collection::vec(arb_op(), 0..40)) {
        run_against_model(ModelVariant::Psn, ops);
    }

    #[test]
    fn lwb_backend_refines_lwb_model(ops in proptest::collection::vec(arb_op(), 0..40)) {
        run_against_model(ModelVariant::Lwb, ops);
    }
}

/// A deterministic end-to-end scenario crossing all layers, checked
/// value-by-value.
#[test]
fn deterministic_scenario_matches_model() {
    let cfg = config();
    let fabric = SimFabric::with_options(cfg.clone(), ModelVariant::Base, CostModel::free());
    let n0 = fabric.node(MachineId(0));
    let n1 = fabric.node(MachineId(1));
    let x = Loc::new(MachineId(0), 0);
    let y = Loc::new(MachineId(1), 0);

    n0.lstore(y, 1).unwrap();
    assert_eq!(n1.load(y).unwrap(), 1);
    n1.rflush(y).unwrap();
    n0.mstore(x, 2).unwrap();
    fabric.crash(MachineId(1));
    fabric.recover(MachineId(1));
    // y was volatile... no: machine 1's memory is volatile in config(),
    // so even the flushed y is zeroed by its owner's crash.
    assert_eq!(n0.load(y).unwrap(), 0);
    // x is NVM on machine 0 and unaffected by machine 1's crash.
    assert_eq!(n0.load(x).unwrap(), 2);

    // The same trace is admitted by the model:
    let sem = Semantics::new(cfg);
    let exp = Explorer::new(&sem);
    let trace = cxl0::model::Trace::from_labels([
        Label::lstore(MachineId(0), y, Val(1)),
        Label::load(MachineId(1), y, Val(1)),
        Label::rflush(MachineId(1), y),
        Label::mstore(MachineId(0), x, Val(2)),
        Label::crash(MachineId(1)),
        Label::load(MachineId(0), y, Val(0)),
        Label::load(MachineId(0), x, Val(2)),
    ]);
    assert!(exp.is_allowed(&trace));
}

#[derive(Debug)]
struct Dummy;

#[test]
fn arc_requirements_hold() {
    // NodeHandle and SimFabric must be Send + Sync for the harness.
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SimFabric>();
    assert_send_sync::<cxl0::runtime::NodeHandle>();
    assert_send_sync::<Arc<SimFabric>>();
    let _ = Dummy;
}
