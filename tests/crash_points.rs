//! Crash-point enumeration over a recorded run.
//!
//! A scripted queue workload is recorded once on a sanitized cluster;
//! the checker's shadow-state fingerprint after each operation
//! identifies the *persist-state-distinct* points of the run (two
//! boundaries with equal fingerprints crash identically, so only one
//! is replayed). Each distinct point is then replayed on a fresh
//! cluster, the memory node is crashed there, and the recovered queue's
//! full history — completed prefix, crash event, post-recovery drain —
//! is cross-validated with `cxl0-dlcheck`. The sanitizer itself must
//! also stay silent across every replay: enumeration is a soundness
//! sweep, not just a liveness one.

use std::sync::Arc;

use cxl0::api::{Cluster, PersistMode, Session};
use cxl0::dlcheck::spec::{QueueOp, QueueRet, QueueSpec};
use cxl0::dlcheck::{check_durably_linearizable, Recorder, ThreadId};
use cxl0::model::{MachineId, SystemConfig};
use cxl0::runtime::CheckConfig;

const MEM: MachineId = MachineId(2);

/// The scripted run: enough enqueues/dequeues to cross every queue
/// persist phase (fresh node, linked node, swung tail, freed dummy,
/// recycled node) at least once.
const SCRIPT: [QueueOp; 12] = [
    QueueOp::Enq(1),
    QueueOp::Enq(2),
    QueueOp::Deq,
    QueueOp::Enq(3),
    QueueOp::Deq,
    QueueOp::Deq,
    QueueOp::Deq, // empty dequeue
    QueueOp::Enq(4),
    QueueOp::Enq(5),
    QueueOp::Deq,
    QueueOp::Enq(6),
    QueueOp::Deq,
];

fn sanitized_cluster() -> Arc<Cluster> {
    Cluster::builder(SystemConfig::symmetric_nvm(3, 1 << 14))
        .persist(PersistMode::FlitCxl0)
        .with_checker(CheckConfig {
            fail_fast: false,
            ..CheckConfig::default()
        })
        .build()
        .unwrap()
}

/// Runs `SCRIPT[..len]` against a fresh queue, recording the history
/// into `rec` when given. Returns the session for post-run access.
fn run_prefix(
    cluster: &Arc<Cluster>,
    len: usize,
    mut observe: impl FnMut(usize, QueueOp, QueueRet),
) -> Session {
    let session = cluster.session(MachineId(0));
    let q = session.create_queue::<u64>("q").unwrap();
    for (i, op) in SCRIPT[..len].iter().enumerate() {
        let ret = match *op {
            QueueOp::Enq(v) => {
                assert!(q.enqueue(&session, v).unwrap());
                QueueRet::Ok
            }
            QueueOp::Deq => QueueRet::Deqd(q.dequeue(&session).unwrap()),
        };
        observe(i, *op, ret);
    }
    session
}

#[test]
fn every_distinct_persist_state_crashes_durably_linearizable() {
    // Pass 1: record the run, fingerprinting the shadow state at every
    // op boundary (boundary 0 = before any op).
    let cluster = sanitized_cluster();
    let ck = Arc::clone(cluster.checker().unwrap());
    let mut fingerprints = vec![ck.fingerprint()];
    run_prefix(&cluster, SCRIPT.len(), |_, _, _| {
        fingerprints.push(ck.fingerprint());
    });
    assert_eq!(ck.total_violations(), 0, "{:#?}", ck.violations());

    // Dedup: keep the first boundary of each distinct persist state.
    let mut seen = std::collections::HashSet::new();
    let crash_points: Vec<usize> = (0..fingerprints.len())
        .filter(|&i| seen.insert(fingerprints[i]))
        .collect();
    assert!(
        crash_points.len() >= SCRIPT.len() / 2,
        "a run this varied must visit many distinct persist states, got {}",
        crash_points.len()
    );

    // Pass 2: replay each distinct point on a fresh cluster, crash the
    // memory node there, recover by name, drain, and hand the complete
    // history to the durable-linearizability checker.
    for &point in &crash_points {
        let cluster = sanitized_cluster();
        let rec: Recorder<QueueOp, QueueRet> = Recorder::new();
        run_prefix(&cluster, point, |i, op, ret| {
            let id = rec.invoke(ThreadId(0), 0, op);
            rec.respond(id, ret);
            let _ = i;
        });
        cluster.crash(MEM);
        rec.crash(MEM.index());
        cluster.recover(MEM);

        let session = cluster.session(MachineId(1));
        session.recover_roots().unwrap();
        let q = session.open_queue::<u64>("q").unwrap();
        q.recover(&session).unwrap();
        loop {
            let id = rec.invoke(ThreadId(1), 1, QueueOp::Deq);
            let v = q.dequeue(&session).unwrap();
            rec.respond(id, QueueRet::Deqd(v));
            if v.is_none() {
                break;
            }
        }
        let result = check_durably_linearizable(&QueueSpec, &rec.finish());
        assert!(result.is_ok(), "crash after op {point}: {result}");
        let ck = cluster.checker().unwrap();
        assert_eq!(
            ck.total_violations(),
            0,
            "crash after op {point}: {:#?}",
            ck.violations()
        );
    }
}

/// The enumerator's dedup is real: replaying the same prefix twice
/// yields the same fingerprint sequence (the scripted single-threaded
/// run is deterministic at op granularity for the shadow's
/// crash-relevant state).
#[test]
fn fingerprints_identify_repeat_states() {
    let mut runs = Vec::new();
    for _ in 0..2 {
        let cluster = sanitized_cluster();
        let ck = Arc::clone(cluster.checker().unwrap());
        let mut fps = vec![ck.fingerprint()];
        run_prefix(&cluster, SCRIPT.len(), |_, _, _| fps.push(ck.fingerprint()));
        runs.push(fps);
    }
    assert_eq!(runs[0], runs[1], "scripted runs fingerprint identically");
}
