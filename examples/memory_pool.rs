//! The §4 deployment roadmap: the same program under each system-model
//! topology, showing which primitives each configuration grants and how
//! the partitioned-pool setting behaves like per-host NVMM.
//!
//! Run with: `cargo run --example memory_pool`

use cxl0::explore::Explorer;
use cxl0::model::{
    Label, Loc, MachineConfig, MachineId, Primitive, Semantics, StepError, SystemConfig, Topology,
    Trace, Val,
};

fn main() {
    println!("=== §4: primitive availability per topology ===\n");
    for topo in [
        Topology::host_device_pair(),
        Topology::partitioned_pool(2),
        Topology::shared_pool_coherent(2),
        Topology::shared_pool_noncoherent(2),
        Topology::unrestricted(2),
    ] {
        println!("{topo}\n");
    }

    println!("=== Topology enforcement in the semantics ===\n");
    let host = MachineId(0);
    let device = MachineId(1);
    let cfg = SystemConfig::symmetric_nvm(2, 1);
    let sem = Semantics::new(cfg.clone()).restricted(Topology::host_device_pair());
    let y = Loc::new(device, 0);

    // The host may not RStore (Table 1: ???); the device may.
    let host_rstore = sem.apply(&sem.initial_state(), &Label::rstore(host, y, Val(1)));
    println!("host RStore  -> {:?}", host_rstore.as_ref().err());
    assert!(matches!(host_rstore, Err(StepError::NotAllowed { .. })));
    let device_rstore = sem.apply(&sem.initial_state(), &Label::rstore(device, y, Val(1)));
    println!("device RStore -> ok? {}\n", device_rstore.is_ok());

    println!("=== Partitioned pool: each host owns a disjoint partition ===\n");
    // Two compute hosts + two pool partitions in an external failure
    // domain (modeled as NVM nodes that never crash).
    let cfg = SystemConfig::new(vec![
        MachineConfig::compute_only(),
        MachineConfig::compute_only(),
        MachineConfig::non_volatile(4), // partition of host 0
        MachineConfig::non_volatile(4), // partition of host 1
    ]);
    let sem = Semantics::new(cfg);
    let exp = Explorer::new(&sem);
    let p0 = Loc::new(MachineId(2), 0);

    // Host 0 persists into its partition; its own crash loses nothing
    // that was flushed (the pool is a separate failure domain).
    let trace = Trace::from_labels([
        Label::lstore(MachineId(0), p0, Val(7)),
        Label::rflush(MachineId(0), p0),
        Label::crash(MachineId(0)),
        Label::load(MachineId(0), p0, Val(7)),
    ]);
    println!(
        "flushed value survives host crash: allowed = {}",
        exp.is_allowed(&trace)
    );
    assert!(exp.is_allowed(&trace));

    // Unflushed values may be lost with the host's cache:
    let trace = Trace::from_labels([
        Label::lstore(MachineId(0), p0, Val(7)),
        Label::crash(MachineId(0)),
        Label::load(MachineId(0), p0, Val(0)),
    ]);
    println!(
        "unflushed value may be lost:        allowed = {}",
        exp.is_allowed(&trace)
    );
    assert!(exp.is_allowed(&trace));

    // In this topology LFlush and RFlush coincide (§4): check it on a
    // sample of states via the explorer.
    let lf = Trace::from_labels([
        Label::lstore(MachineId(0), p0, Val(3)),
        Label::lflush(MachineId(0), p0),
        Label::crash(MachineId(0)),
        Label::load(MachineId(1), p0, Val(0)),
    ]);
    let rf = Trace::from_labels([
        Label::lstore(MachineId(0), p0, Val(3)),
        Label::rflush(MachineId(0), p0),
        Label::crash(MachineId(0)),
        Label::load(MachineId(1), p0, Val(0)),
    ]);
    println!(
        "LFlush ≡ RFlush here: losing the value is {} under LFlush and {} under RFlush",
        exp.is_allowed(&lf),
        exp.is_allowed(&rf)
    );
    assert_eq!(exp.is_allowed(&lf), exp.is_allowed(&rf));

    println!("\n=== Non-coherent pool: only MStore / memory loads / M-RMW ===\n");
    let topo = Topology::shared_pool_noncoherent(2);
    for p in Primitive::ISSUED {
        println!(
            "  {:<7} {}",
            p.to_string(),
            if topo.allows(MachineId(0), p) {
                "available"
            } else {
                "—"
            }
        );
    }
}
