//! Epoch-based reclamation under full concurrency: a `DurableList`
//! absorbs insert/remove churn of **10× the memory node's capacity**
//! while reader threads traverse the whole time — no quiesce points,
//! no explicit `reclaim` calls. Removed nodes are *retired* into the
//! cluster's `cxl0::smr` domain and drain back to the allocator's free
//! lists only after every traversal pinned at retirement has finished;
//! the amortized collection built into retirement alone keeps the tiny
//! region serviceable.
//!
//! Contrast with `alloc_churn.rs`, where the queue frees inline (its
//! CASes always compare generation-tagged words); the sorted list
//! dereferences interior nodes without a validating CAS, so it needs
//! the grace period. `docs/RECLAMATION.md` develops the argument.
//!
//! Run with: `cargo run --release --example smr_churn`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cxl0::api::Cluster;
use cxl0::model::{MachineId, SystemConfig};
use cxl0::runtime::alloc::META_CELLS;

fn main() {
    // A deliberately tiny memory node: past the registry and allocator
    // metadata there is room for only a few dozen 3-cell list nodes,
    // so any reclamation gap exhausts the heap almost immediately.
    let area = 256;
    let cluster = Cluster::builder(SystemConfig::symmetric_nvm(2, META_CELLS + area))
        .root_capacity(4)
        .build()
        .expect("segment fits registry + allocator metadata");
    let setup = cluster.session(MachineId(0));
    let list = setup.create_list::<u64>("members").expect("create list");

    // Permanent residents bracketing the churn range: every reader
    // sweep traverses across the keys being inserted and removed.
    for k in [100u64, 900, 1800] {
        list.insert(&setup, k).expect("insert resident");
    }

    // Readers traverse continuously while the writer churns. Each
    // `contains` pins the epoch for its duration — that pin is the
    // only thing standing between a concurrent traversal and a
    // recycled node, and this workload proves it is enough.
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let cluster = Arc::clone(&cluster);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let s = cluster.session(MachineId(0));
                let list = s.open_list::<u64>("members").expect("open list");
                let mut sweeps = 0u64;
                loop {
                    for k in [100u64, 900, 1800] {
                        assert!(
                            list.contains(&s, k).expect("no crash"),
                            "resident key {k} lost mid-churn"
                        );
                    }
                    sweeps += 1;
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
                sweeps
            })
        })
        .collect();

    // A fresh session so the stats delta covers exactly the churn.
    let session = cluster.session(MachineId(0));
    let pairs = 900u64; // 3 cells per insert ≈ 10× the region
    println!("=== smr churn: {pairs} insert/remove pairs over a {area}-cell area ===\n");
    for i in 0..pairs {
        let k = 500 + i % 16;
        assert!(
            list.insert(&session, k).expect("no crash"),
            "heap exhausted at pair {i} — reclamation failed"
        );
        assert!(list.remove(&session, k).expect("no crash"), "pair {i}");
    }
    stop.store(true, Ordering::Relaxed);
    let mut sweeps = 0u64;
    for r in readers {
        sweeps += r.join().expect("reader panicked");
    }

    let d = session.stats_delta();
    println!("churn          : {pairs} insert/remove pairs");
    println!("reader sweeps  : {sweeps} full traversals during the churn");
    println!(
        "allocations    : {} ({} served from free lists, {:.1}% hit rate)",
        d.allocs,
        d.freelist_hits,
        100.0 * d.freelist_hits as f64 / d.allocs.max(1) as f64
    );
    println!(
        "smr            : {} retires, {} reclaims, {} in limbo",
        d.smr_retires, d.smr_reclaims, d.smr_limbo
    );
    println!(
        "epoch          : {} ({} advances during the churn)",
        d.smr_epoch, d.smr_advances
    );

    // Boundedness: ten regions' worth of node traffic, every block
    // either back on a free list or awaiting its grace period.
    assert_eq!(d.allocs, d.frees + d.smr_limbo, "no block unaccounted for");
    assert!(d.smr_retires >= pairs, "every removal retires its node");
    assert!(
        d.freelist_hits * 10 >= d.allocs * 9,
        "steady-state churn must be served by reuse"
    );
    assert!(sweeps > 0, "readers must have traversed during the churn");
    println!("\nconcurrent reclamation under traversal: OK");
}
