//! Bounded-memory churn through the crash-consistent allocator: a
//! `DurableQueue` absorbs an insert/remove stream of **10× the memory
//! node's capacity** without exhausting the heap, because every dequeue
//! returns its node to the allocator's free lists for reuse — the
//! workload the original bump-only heap could not survive.
//!
//! Run with: `cargo run --release --example alloc_churn`

use cxl0::api::Cluster;
use cxl0::model::{MachineId, SystemConfig};
use cxl0::workloads::{KeyDist, OpMix, Workload, WorkloadOp};

fn main() {
    // A deliberately small memory node: once the registry, allocator
    // metadata and queue scaffolding are carved out, the bump tail has
    // room for only ~200 queue nodes.
    let cells = 1024;
    let cluster = Cluster::builder(SystemConfig::symmetric_nvm(2, cells))
        .build()
        .expect("segment fits registry + allocator metadata");
    let setup = cluster.session(MachineId(0));
    let jobs = setup.create_queue::<u64>("jobs").expect("create queue");

    // The alloc-churn preset: 50% inserts, 50% removes, no reads —
    // every operation allocates or reclaims a node.
    let mut workload = Workload::new(KeyDist::uniform(1 << 20), OpMix::alloc_churn(), 7);
    let session = cluster.session(MachineId(0));
    let target = u64::from(cells) * 10;

    println!("=== alloc churn: {target} ops over a {cells}-cell memory node ===\n");
    let mut enqueued = 0u64;
    let mut dequeued = 0u64;
    for op in workload.take_ops(target as usize) {
        match op {
            WorkloadOp::Insert(k, _) => {
                assert!(
                    jobs.enqueue(&session, k).expect("no crash"),
                    "heap exhausted after {enqueued} enqueues — reclamation failed"
                );
                enqueued += 1;
            }
            WorkloadOp::Remove(_) | WorkloadOp::Read(_) => {
                if jobs.dequeue(&session).expect("no crash").is_some() {
                    dequeued += 1;
                }
            }
        }
    }

    let d = session.stats_delta();
    println!("queue ops      : {enqueued} enqueues, {dequeued} dequeues");
    println!(
        "allocations    : {} ({} served from free lists)",
        d.allocs, d.freelist_hits
    );
    println!("frees          : {}", d.frees);
    println!(
        "free-list hit %: {:.1}",
        100.0 * d.freelist_hits as f64 / d.allocs.max(1) as f64
    );
    println!("live cells     : {}", d.live_cells);
    println!("high-water     : {} of {} cells", d.hw_cells, cells);

    // The proof of boundedness: ten regions' worth of traffic, yet the
    // high-water mark never approached even one region.
    assert!(enqueued > u64::from(cells), "churn must exceed the region");
    assert!(
        d.hw_cells < u64::from(cells),
        "reclamation must keep the footprint inside the region"
    );
    assert!(
        d.freelist_hits > d.allocs / 2,
        "steady-state churn must be served by reuse"
    );
    println!("\nbounded-memory churn: OK");
}
