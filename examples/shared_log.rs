//! A durable multi-producer shared log over a disaggregated memory node —
//! the kind of cloud data-management workload the paper's introduction
//! motivates, built entirely from the public API.
//!
//! Three compute nodes append concurrently to one log hosted on an NVM
//! memory node. One producer is killed mid-append (leaving a hole), then
//! the memory node itself crashes. Recovery seals the hole Corfu-style and
//! every append that completed — on any machine — is still there, in
//! order: durable linearizability at work on an application-shaped object.
//!
//! Run with: `cargo run --example shared_log`

use cxl0::api::Cluster;
use cxl0::model::{MachineId, StoreKind};
use cxl0::runtime::{DurableLog, SlotState};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three compute nodes + one NVM pool node: one builder call.
    let cluster = Cluster::symmetric(3, 4096)?;
    let mem = cluster.memory_node();
    let log = cluster
        .session(MachineId(0))
        .create_log::<u64>("events", 1024)?;

    println!("=== Phase 1: three producers append concurrently ===\n");
    let mut handles = Vec::new();
    for producer in 0..3usize {
        let session = cluster.session(MachineId(producer));
        let log = log.clone();
        handles.push(std::thread::spawn(move || {
            let mut appended = 0;
            for k in 0..20u64 {
                let payload = (producer as u64) * 1000 + k;
                if log.append(&session, payload).unwrap().is_some() {
                    appended += 1;
                }
            }
            appended
        }));
    }
    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let session = cluster.session(MachineId(0));
    println!(
        "{total} appends completed; frontier = {}",
        log.frontier(&session)?
    );

    println!("\n=== Phase 2: a producer dies mid-append, then the memory node crashes ===\n");
    // Producer 2 reserves a slot and crashes before its payload persists
    // (simulated with raw primitives: a persistent reservation + an
    // unflushed cached store).
    // The raw primitives live on the session's node handle — the
    // low-level escape hatch.
    let dying = cluster.session(MachineId(2));
    let hole_idx = dying.node().faa(StoreKind::Memory, log_tail(&log), 1)?;
    dying.node().lstore(log_slot(&log, hole_idx), 424243)?;
    println!("producer 2 reserved slot {hole_idx} and crashed before persisting");
    cluster.crash(MachineId(2));

    // A healthy producer appends after the hole.
    let after = log.append(&session, 777)?.expect("room");
    println!("producer 0 appended 777 at slot {after} (past the hole)");

    cluster.crash(mem);
    cluster.recover(mem);
    println!("memory node crashed and recovered");

    println!("\n=== Phase 3: recovery ===\n");
    // Reattach by name, then seal the hole Corfu-style.
    let log = session.open_log::<u64>("events")?;
    let (committed, sealed) = log.recover(&session)?;
    println!("recovery: {committed} committed entries, {sealed} hole(s) sealed as junk");
    assert_eq!(sealed, 1);
    assert_eq!(log.read(&session, hole_idx)?, SlotState::Junk);
    assert_eq!(log.read(&session, after)?, SlotState::Value(777));

    let entries = log.scan(&session)?;
    println!("first 10 recovered entries:");
    for (i, v) in entries.iter().take(10) {
        println!("  [{i:>3}] {v}");
    }
    println!(
        "... {} total; every completed append survived, the crashed one is junk",
        entries.len()
    );
    assert_eq!(entries.len() as u64, committed);
    Ok(())
}

// The example pokes one hole with raw primitives; these helpers expose the
// log's internal cells the same way a crashed producer's partial append
// would have touched them.
fn log_tail(log: &DurableLog) -> cxl0::model::Loc {
    log.tail_cell()
}

fn log_slot(log: &DurableLog, i: u64) -> cxl0::model::Loc {
    log.slot_cell(i)
}
