//! A durable multi-producer shared log over a disaggregated memory node —
//! the kind of cloud data-management workload the paper's introduction
//! motivates, built entirely from the public API.
//!
//! Three compute nodes append concurrently to one log hosted on an NVM
//! memory node. One producer is killed mid-append (leaving a hole), then
//! the memory node itself crashes. Recovery seals the hole Corfu-style and
//! every append that completed — on any machine — is still there, in
//! order: durable linearizability at work on an application-shaped object.
//!
//! Run with: `cargo run --example shared_log`

use std::sync::Arc;

use cxl0::model::{MachineId, StoreKind, SystemConfig};
use cxl0::runtime::{DurableLog, FlitCxl0, SharedHeap, SimFabric, SlotState};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const MEM: MachineId = MachineId(3);
    let fabric = SimFabric::new(SystemConfig::new(vec![
        cxl0::model::MachineConfig::compute_only(),
        cxl0::model::MachineConfig::compute_only(),
        cxl0::model::MachineConfig::compute_only(),
        cxl0::model::MachineConfig::non_volatile(4096),
    ]));
    let heap = Arc::new(SharedHeap::new(fabric.config(), MEM));
    let log =
        DurableLog::create(&heap, 1024, Arc::new(FlitCxl0::default())).expect("heap fits the log");

    println!("=== Phase 1: three producers append concurrently ===\n");
    let mut handles = Vec::new();
    for producer in 0..3usize {
        let node = fabric.node(MachineId(producer));
        let log = log.clone();
        handles.push(std::thread::spawn(move || {
            let mut appended = 0;
            for k in 0..20u64 {
                let payload = (producer as u64) * 1000 + k;
                if log.append(&node, payload).unwrap().is_some() {
                    appended += 1;
                }
            }
            appended
        }));
    }
    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let node = fabric.node(MachineId(0));
    println!(
        "{total} appends completed; frontier = {}",
        log.frontier(&node)?
    );

    println!("\n=== Phase 2: a producer dies mid-append, then the memory node crashes ===\n");
    // Producer 2 reserves a slot and crashes before its payload persists
    // (simulated with raw primitives: a persistent reservation + an
    // unflushed cached store).
    let dying = fabric.node(MachineId(2));
    let hole_idx = dying.faa(StoreKind::Memory, log_tail(&log), 1)?;
    dying.lstore(log_slot(&log, hole_idx), 424243)?;
    println!("producer 2 reserved slot {hole_idx} and crashed before persisting");
    fabric.crash(MachineId(2));

    // A healthy producer appends after the hole.
    let after = log.append(&node, 777)?.expect("room");
    println!("producer 0 appended 777 at slot {after} (past the hole)");

    fabric.crash(MEM);
    fabric.recover(MEM);
    println!("memory node crashed and recovered");

    println!("\n=== Phase 3: recovery ===\n");
    let (committed, sealed) = log.recover(&node)?;
    println!("recovery: {committed} committed entries, {sealed} hole(s) sealed as junk");
    assert_eq!(sealed, 1);
    assert_eq!(log.read(&node, hole_idx)?, SlotState::Junk);
    assert_eq!(log.read(&node, after)?, SlotState::Value(777));

    let entries = log.scan(&node)?;
    println!("first 10 recovered entries:");
    for (i, v) in entries.iter().take(10) {
        println!("  [{i:>3}] {v}");
    }
    println!(
        "... {} total; every completed append survived, the crashed one is junk",
        entries.len()
    );
    assert_eq!(entries.len() as u64, committed);
    Ok(())
}

// The example pokes one hole with raw primitives; these helpers expose the
// log's internal cells the same way a crashed producer's partial append
// would have touched them.
fn log_tail(log: &DurableLog) -> cxl0::model::Loc {
    log.tail_cell()
}

fn log_slot(log: &DurableLog, i: u64) -> cxl0::model::Loc {
    log.slot_cell(i)
}
