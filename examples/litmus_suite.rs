//! Reproduces the paper's litmus tests: Figure 3 (tests 1–9), the §3.5
//! variant-separating tests (10–12, reported as CXL0/LWB/PSN triples),
//! the §6 motivating example (test 13), and the A1–A8 suite of the
//! `CXL0_AF` asynchronous-flush extension.
//!
//! Run with: `cargo run --example litmus_suite`

use cxl0::explore::litmus::run_suite;
use cxl0::explore::{paper, paper_async, Verdict};
use cxl0::model::ModelVariant;

fn main() {
    println!("Figure 3 — litmus tests for CXL0\n");
    for test in paper::figure3_tests() {
        let verdict = test.run(ModelVariant::Base);
        let expected = test.expected_for(ModelVariant::Base).unwrap();
        println!(
            "{} {}  {}   [{}]",
            test.name,
            verdict,
            test.trace,
            if verdict == expected {
                "matches paper"
            } else {
                "MISMATCH"
            }
        );
        println!("         {}\n", test.description);
    }

    println!("\n§3.5 — model variant comparison (CXL0, CXL0_LWB, CXL0_PSN)\n");
    for test in paper::variant_tests() {
        let triple: Vec<String> = [ModelVariant::Base, ModelVariant::Lwb, ModelVariant::Psn]
            .iter()
            .map(|&v| test.run(v).symbol().to_string())
            .collect();
        println!("{}  ({})  {}", test.name, triple.join(","), test.trace);
        println!("         {}\n", test.description);
    }

    println!("\n§6 — motivating example (x=1; r1=x; r2=x; assert r1==r2)\n");
    let t13 = paper::motivating_example();
    let verdict = t13.run(ModelVariant::Base);
    println!("{} {}  {}", t13.name, verdict, t13.trace);
    println!(
        "         the assertion CAN fail under CXL0: verdict {} (expected {})\n",
        verdict,
        Verdict::Allowed
    );

    println!("\n§3.2 extension — CXL0_AF asynchronous flushes (tests A1–A8)\n");
    for test in paper_async::async_flush_tests() {
        let observed = test.run();
        println!(
            "{} {}   [{}]",
            test.name,
            observed,
            if observed == test.expected {
                "as designed"
            } else {
                "MISMATCH"
            }
        );
        println!("         {}\n", test.description);
    }

    let report = run_suite(&paper::all_tests());
    println!("==> {}", report);
    assert!(report.all_pass(), "litmus suite must match the paper");
    assert!(
        paper_async::async_flush_tests().iter().all(|t| t.passes()),
        "async suite must match its design"
    );
}
