//! The `CXL0_AF` asynchronous-flush extension, end to end.
//!
//! The paper (§3.2, *Limitations of CXL*) observes that CXL only specifies
//! *synchronous* flushes and sketches how asynchronous ones — x86's
//! `CLFLUSHOPT` + `SFENCE` pattern — could be added via persistency
//! buffers. This example walks that extension through all three layers of
//! the reproduction:
//!
//! 1. the **formal model** (`AFlush`/`Barrier` labels, retirement steps),
//! 2. the **litmus suite** (`A1`–`A8`) and the `AFlush;Barrier ≡ RFlush`
//!    equivalence,
//! 3. the **runtime** (`NodeHandle::aflush`/`barrier`) and the
//!    `flit-async` transformation's batching advantage.
//!
//! Run with: `cargo run --example async_flush`

use std::sync::Arc;

use cxl0::api::{Cluster, PersistMode};
use cxl0::explore::paper_async::{async_flush_tests, check_aflush_barrier_equivalence};
use cxl0::model::asyncflush::{AsyncLabel, AsyncSemantics};
use cxl0::model::{Label, Loc, MachineId, SystemConfig, Val};
use cxl0::runtime::{FlitAsync, FlitCxl0, Persistence};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m1 = MachineId(0);
    let m2 = MachineId(1);
    let x = Loc::new(m2, 0); // x lives on machine 2

    println!("=== Part 1: AFlush and Barrier in the abstract machine ===\n");
    let sem = AsyncSemantics::new(SystemConfig::symmetric_nvm(2, 1));
    let mut st = sem.initial_state();

    st = sem.apply(&st, &Label::lstore(m1, x, Val(7)).into())?;
    println!("LStore(x,7): the store sits in m1's cache\n{st}\n");

    st = sem.apply(&st, &AsyncLabel::aflush(m1, x))?;
    println!("AFlush(x): a request enters m1's persistency buffer — non-blocking\n{st}\n");

    match sem.apply(&st, &AsyncLabel::barrier(m1)) {
        Err(e) => println!("Barrier now would block: {e}"),
        Ok(_) => unreachable!("the line has not drained yet"),
    }

    println!("\ndriving the silent steps (propagation, then retirement):");
    loop {
        let steps = sem.silent_steps(&st);
        let Some(step) = steps.first() else { break };
        println!("  {step}");
        st = sem.apply_silent(&st, step)?;
    }
    st = sem.apply(&st, &AsyncLabel::barrier(m1))?;
    println!(
        "Barrier succeeds; x is persistent: M(x) = {}\n",
        st.memory(x)
    );

    println!("=== Part 2: the A1–A8 litmus suite ===\n");
    for t in async_flush_tests() {
        let observed = t.run();
        println!(
            "{:<8} {} expected {} observed {} — {}",
            t.name,
            if observed == t.expected {
                "PASS"
            } else {
                "FAIL"
            },
            t.expected,
            observed,
            t.description
        );
    }
    match check_aflush_barrier_equivalence() {
        None => println!("\nAFlush;Barrier ≡ RFlush: verified over all reachable states"),
        Some(cex) => println!("\nequivalence COUNTEREXAMPLE:\n{cex}"),
    }

    println!("\n=== Part 3: deferred helping on the runtime ===\n");
    // An operation that reads 8 hot cells (in-flight writers keep their
    // FliT counters positive) and completes. Compare helped-read cost.
    const CELLS: usize = 8;
    const OPS: usize = 500;

    let run = |name: &str, p: Arc<dyn Persistence>, raise: &dyn Fn(Loc)| -> u64 {
        // The cluster supplies fabric + heap; the strategies under
        // comparison are constructed concretely (their raise_counter
        // testing hooks are not on the Persistence trait).
        let cluster = Cluster::builder(SystemConfig::symmetric_nvm(3, 256))
            .persist(PersistMode::None)
            .root_capacity(0)
            .build()
            .unwrap();
        let cells: Vec<Loc> = (0..CELLS)
            .map(|_| cluster.heap().alloc(1).unwrap())
            .collect();
        for &c in &cells {
            raise(c);
        }
        let session = cluster.session(m1);
        for _ in 0..OPS {
            for &c in &cells {
                p.shared_load(session.node(), c, true).unwrap();
            }
            p.complete_op(session.node()).unwrap();
        }
        let ns = session.stats_delta().sim_ns / OPS as u64;
        println!("{name:<12} {ns:>8} simulated ns/op");
        ns
    };

    let sync = Arc::new(FlitCxl0::default());
    let sync_ns = run("flit-cxl0", Arc::clone(&sync) as _, &|c| {
        sync.raise_counter(c)
    });
    let asy = Arc::new(FlitAsync::default());
    let async_ns = run("flit-async", Arc::clone(&asy) as _, &|c| {
        asy.raise_counter(c)
    });
    println!(
        "\nbatching {CELLS} helping flushes under one Barrier: {:.2}x faster",
        sync_ns as f64 / async_ns as f64
    );
    Ok(())
}
