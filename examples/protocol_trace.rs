//! Watching the CXL link: drives the host–device pair simulator through
//! a coherence scenario and prints every transaction the protocol
//! analyzer observes — the §5.1 methodology — then regenerates Table 1
//! and the Figure-5 latency sweep.
//!
//! Run with: `cargo run --example protocol_trace`
//!
//! "Trace" here means the protocol analyzer's transaction log (and, in
//! the model crate, a sequence of visible labels) — not the runtime's
//! `cxl0::trace` observability layer; see `examples/trace_export.rs`
//! for that one.

use cxl0::fabric::{run_figure5, LatencyConfig};
use cxl0::protocol::{
    generate_table1, render_sequence, CxlOp, HostDevicePair, Line, MemTarget, Node,
};

fn main() {
    println!("=== A coherence ping-pong on the link ===\n");
    let mut sim = HostDevicePair::new();
    let line = Line::new(MemTarget::HostMemory, 0);
    let script = [
        (Node::Host, CxlOp::Read, "host warms the line"),
        (Node::Device, CxlOp::Read, "device reads it too (shared)"),
        (
            Node::Host,
            CxlOp::LStore,
            "host writes: snoop the device out",
        ),
        (
            Node::Device,
            CxlOp::LStore,
            "device writes: pulls ownership",
        ),
        (Node::Device, CxlOp::RFlush, "device flushes it back to HM"),
        (Node::Host, CxlOp::MStore, "host NT-stores over it"),
    ];
    for (node, op, why) in script {
        let before = sim.state(line);
        let txns = sim.perform(node, op, line).expect("available op");
        println!(
            "{node:>6} {op:<7} {why:<38} {} -> {}   link: {}",
            before,
            sim.state(line),
            render_sequence(&txns)
        );
    }
    println!(
        "\nanalyzer saw {} transactions across {} operations",
        sim.analyzer().total_transactions(),
        sim.analyzer().observations().len()
    );

    println!("\n=== Table 1, regenerated from the protocol engine ===\n");
    let (table, _) = generate_table1();
    println!("{}", table.to_text());

    println!("=== Figure 5, regenerated from the latency simulator ===\n");
    let fig = run_figure5(&LatencyConfig::testbed(), 1000, 42);
    println!("{fig}");
}
