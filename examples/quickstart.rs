//! Quickstart: the Figure-1 scenario of the paper, twice over.
//!
//! First with the **formal model** (`cxl0-model`): two machines, every
//! store/flush primitive, nondeterministic propagation and a crash — each
//! step printed with the resulting abstract state.
//!
//! Then with the **executable runtime** (`cxl0-runtime`): the same
//! primitives against the concurrent fabric, showing what survives a
//! crash of each machine.
//!
//! Run with: `cargo run --example quickstart`

use cxl0::api::{Cluster, PersistMode};
use cxl0::model::{Label, Loc, MachineId, Semantics, SystemConfig, Val};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let left = MachineId(0);
    let right = MachineId(1);
    // x lives on the left machine, y on the right one — as in Figure 1.
    let x = Loc::new(left, 0);
    let y = Loc::new(right, 0);

    println!("=== Part 1: the abstract CXL0 machine (Figure 1 / Figure 2) ===\n");
    let cfg = SystemConfig::symmetric_nvm(2, 1);
    let sem = Semantics::new(cfg.clone());
    let mut st = sem.initial_state();
    println!("initial:\n{st}\n");

    let steps = [
        (
            "① MStore(x): straight to local memory",
            Label::mstore(left, x, Val(1)),
        ),
        (
            "② LStore(y): only the local cache",
            Label::lstore(left, y, Val(2)),
        ),
        (
            "③ MStore(y): straight to remote memory",
            Label::mstore(left, y, Val(3)),
        ),
        (
            "④ RStore(y): into the remote owner's cache",
            Label::rstore(left, y, Val(4)),
        ),
    ];
    for (what, label) in steps {
        st = sem.apply(&st, &label)?;
        println!("{what}\n  {label}\n{st}\n");
    }

    // ⑦ RFlush(y) blocks until propagation has drained y — drive the
    // silent steps by hand, exactly like the cache daemon would.
    println!("⑦ RFlush(y) needs the owner's cache to drain first:");
    let rflush = Label::rflush(left, y);
    while sem.apply(&st, &rflush).is_err() {
        let taus = sem.silent_steps(&st);
        println!("  blocked; taking {}", taus[0]);
        st = sem.apply_silent(&st, &taus[0])?;
    }
    st = sem.apply(&st, &rflush)?;
    println!("  RFlush(y) done\n{st}\n");

    println!("E: the right machine crashes — its cache is lost, NVM survives:");
    st = sem.apply(&st, &Label::crash(right))?;
    println!("{st}\n");
    let observed = sem.load_value(&st, y);
    println!("Load(y) after crash observes {observed} (the RFlush made 4 durable)\n");

    println!("=== Part 2: the same story on the executable runtime ===\n");
    // A cluster owns the fabric; raw primitives are the session's
    // low-level escape hatch (`session.node()`). No durability strategy
    // here — this part drives the primitives themselves. The segment is
    // larger than part 1's single cell because every cluster reserves
    // the crash-consistent allocator's metadata; `y` sits above it.
    let cluster = Cluster::builder(SystemConfig::symmetric_nvm(2, 128))
        .persist(PersistMode::None)
        .root_capacity(0)
        .build()?;
    let y = Loc::new(right, 127);
    let session = cluster.session(left);
    let node = session.node();
    node.mstore(x, 1)?;
    node.lstore(y, 2)?;
    node.mstore(y, 3)?;
    node.rstore(y, 4)?;
    println!(
        "after ①–④: y's memory = {} (RStore still cached)",
        cluster.fabric().peek_memory(y)
    );
    node.rflush(y)?;
    println!(
        "after RFlush(y): y's memory = {}",
        cluster.fabric().peek_memory(y)
    );

    cluster.crash(right);
    println!(
        "right machine crashed; ops from it fail: {:?}",
        cluster.session(right).node().load(y)
    );
    cluster.recover(right);
    println!("after recovery, Load(y) = {} — durable", node.load(y)?);

    let s = session.stats_delta();
    println!(
        "\nsession stats: {} ops total ({} stores, {} flushes), {} simulated ns",
        s.total_ops(),
        s.lstores + s.rstores + s.mstores,
        s.flushes(),
        s.sim_ns
    );
    Ok(())
}
