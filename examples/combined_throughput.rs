//! Plain vs flat-combined durable queue, head to head — the §5 story
//! that batched persistence turns N per-op persist barriers into one
//! barrier per combined batch.
//!
//! Both fronts run the identical staggered pair workload (odd threads
//! lead with the dequeue so inserts and removes actually overlap) over
//! the same FliT-CXL0 durability strategy. For each front the example
//! prints wall-clock Mops/s, simulated fabric ns/op (the simulator's
//! primary metric), and persist barriers per operation; the combined
//! front additionally reports its batch/elimination/spare-node
//! counters from [`Session::stats_delta`].
//!
//! Run with: `cargo run --release --example combined_throughput`

use std::time::Instant;

use cxl0::api::{Cluster, PersistMode};
use cxl0::model::{MachineId, SystemConfig};
use cxl0::runtime::backend::StatsSnapshot;

const THREADS: usize = 8;
const PAIRS: u64 = 5_000;
// Keep the queue non-empty throughout: queue elimination only pairs
// opposite ops at observed-empty points, so a prefilled queue makes
// the rows measure *batched persistence* (real applied batches, one
// flush cascade + barrier per batch) rather than pure annihilation.
const PREFILL: u64 = 1_024;

/// One measured row: the staggered pair workload over a plain or
/// combined queue front on a fresh cluster. Returns the stats delta
/// for the timed window plus the wall-clock seconds it took.
fn run_front(combined: bool) -> (StatsSnapshot, f64) {
    let cluster = Cluster::builder(SystemConfig::symmetric_nvm(3, 1 << 18))
        .memory_node(MachineId(2))
        .persist(PersistMode::FlitCxl0)
        .build()
        .expect("example cluster configuration is valid");
    let setup = cluster.session(MachineId(0));

    // Session creation, root registration and handle cloning all stay
    // outside the timed region — the row measures queue operations.
    let mut workers: Vec<Box<dyn FnMut() + Send>> = Vec::new();
    if combined {
        let q = setup
            .create_queue_combined::<u64>("demo/q")
            .expect("heap fits");
        for v in 0..PREFILL {
            q.enqueue(&setup, v + 1).unwrap();
        }
        for t in 0..THREADS {
            let session = cluster.session(MachineId(t % 2));
            let q = q.clone();
            workers.push(Box::new(move || {
                for i in 0..PAIRS {
                    if t % 2 == 0 {
                        q.enqueue(&session, i + 1).unwrap();
                        q.dequeue(&session).unwrap();
                    } else {
                        q.dequeue(&session).unwrap();
                        q.enqueue(&session, i + 1).unwrap();
                    }
                }
            }));
        }
    } else {
        let q = setup.create_queue::<u64>("demo/q").expect("heap fits");
        for v in 0..PREFILL {
            q.enqueue(&setup, v + 1).unwrap();
        }
        for t in 0..THREADS {
            let session = cluster.session(MachineId(t % 2));
            let q = q.clone();
            workers.push(Box::new(move || {
                for i in 0..PAIRS {
                    if t % 2 == 0 {
                        q.enqueue(&session, i + 1).unwrap();
                        q.dequeue(&session).unwrap();
                    } else {
                        q.dequeue(&session).unwrap();
                        q.enqueue(&session, i + 1).unwrap();
                    }
                }
            }));
        }
    }

    // A fresh session's delta covers exactly the timed window.
    let meter = cluster.session(MachineId(0));
    let start = Instant::now();
    let handles: Vec<_> = workers.into_iter().map(std::thread::spawn).collect();
    for h in handles {
        h.join().unwrap();
    }
    let secs = start.elapsed().as_secs_f64();
    (meter.stats_delta(), secs)
}

fn main() {
    let ops = 2 * PAIRS * THREADS as u64;
    println!("staggered pair workload: {THREADS} threads x {PAIRS} enq/deq pairs = {ops} ops\n");

    let (plain, plain_secs) = run_front(false);
    let (comb, comb_secs) = run_front(true);

    // "Persist syncs" covers every primitive a strategy may persist
    // with: FliT-CXL0 flushes per store, the batched front flushes per
    // batch and fences once with a barrier.
    let syncs = |d: &StatsSnapshot| d.lflushes + d.rflushes + d.aflushes + d.barriers;
    let row = |name: &str, d: &StatsSnapshot, secs: f64| {
        println!(
            "{name:>8}: {:>6.3} Mops/s wall | {:>6} sim ns/op | {:.3} persist syncs/op",
            ops as f64 / secs / 1e6,
            d.sim_ns / ops,
            syncs(d) as f64 / ops as f64,
        );
    };
    row("plain", &plain, plain_secs);
    row("combined", &comb, comb_secs);

    println!(
        "\ncombined front: {} batches ({:.2} ops/batch), {} eliminated, \
         {} barriers saved, {} spare-node reuses",
        comb.combine_batches,
        comb.combine_ops as f64 / comb.combine_batches.max(1) as f64,
        comb.combine_eliminations,
        comb.combine_barriers_saved,
        comb.combine_spare_reuses,
    );
    println!(
        "persist syncs: {} -> {} ({:.1}x fewer)",
        syncs(&plain),
        syncs(&comb),
        syncs(&plain) as f64 / syncs(&comb).max(1) as f64,
    );

    // Every operation must have gone through the combining front, and
    // batched persistence must never cost syncs relative to plain.
    assert_eq!(comb.combine_ops, ops, "all ops route through the front");
    assert!(
        syncs(&comb) <= syncs(&plain),
        "batched persistence must not add persist syncs ({} > {})",
        syncs(&comb),
        syncs(&plain)
    );
}
