//! GPF-based checkpointing (§3.2): the Global Persistent Flush is too
//! blunt for per-operation durability, but its *global and blocking*
//! nature makes it exactly right for planned snapshots.
//!
//! A group of counters spread over two memory nodes is updated from two
//! compute nodes with plain (unflushed) stores; a GPF snapshot then
//! captures a consistent cut of the whole system. Both machines crash
//! immediately afterwards — and the recovered state equals the snapshot,
//! byte for byte. A second round shows `diff` between checkpoints.
//!
//! Run with: `cargo run --example gpf_snapshot`

use cxl0::api::{Cluster, PersistMode};
use cxl0::model::{Loc, MachineId, SystemConfig};
use cxl0::runtime::take_gpf_snapshot;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m0 = MachineId(0);
    let m1 = MachineId(1);
    // Raw (unflushed) stores are the point here, so build the cluster
    // without a durability strategy and drive the sessions' node handles.
    let cluster = Cluster::builder(SystemConfig::symmetric_nvm(2, 128))
        .persist(PersistMode::None)
        .root_capacity(0)
        .build()?;
    // Raw stores on the memory node stay above the crash-consistent
    // allocator's metadata cells (the escape hatch can scribble
    // anywhere, but clobbering allocator state is nobody's idea of a
    // walkthrough).
    const BASE: u32 = 120;
    let fabric = cluster.fabric();
    let s0 = cluster.session(m0);
    let s1 = cluster.session(m1);
    let (n0, n1) = (s0.node(), s1.node());

    println!("=== Round 1: unflushed stores from both machines ===\n");
    for a in 0..4 {
        n0.lstore(Loc::new(m1, BASE + a), 100 + u64::from(a))?; // m0 writes m1's memory
        n1.lstore(Loc::new(m0, a), 200 + u64::from(a))?; // m1 writes m0's memory
    }
    println!(
        "before GPF: x[m1:a0] cached-but-not-persistent? {}",
        fabric.is_cached(Loc::new(m1, BASE))
    );

    let checkpoint1 = take_gpf_snapshot(n0)?;
    println!("GPF snapshot taken: {checkpoint1}");
    println!(
        "after GPF: x[m1:a0] cached? {} (drained to memory)",
        fabric.is_cached(Loc::new(m1, BASE))
    );

    println!("\n=== Both machines crash right after the checkpoint ===\n");
    cluster.crash(m0);
    cluster.crash(m1);
    cluster.recover(m0);
    cluster.recover(m1);

    let mut intact = 0;
    for (loc, v) in checkpoint1.iter() {
        assert_eq!(fabric.peek_memory(loc), v, "{loc} diverged");
        intact += 1;
    }
    println!("all {intact} locations recovered exactly as snapshotted");

    println!("\n=== Round 2: more work, second checkpoint, diff ===\n");
    n0.lstore(Loc::new(m1, BASE), 999)?;
    n1.mstore(Loc::new(m0, 7), 42)?;
    let checkpoint2 = take_gpf_snapshot(n0)?;
    println!("changes between checkpoints:");
    for (loc, before, after) in checkpoint1.diff(&checkpoint2) {
        println!("  {loc}: {before} → {after}");
    }
    Ok(())
}
