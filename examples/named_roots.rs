//! The `Cluster`/`Session` programming model end to end: typed durable
//! handles, the durability-strategy switch, and named-root recovery.
//!
//! A tiny job-tracking service runs on a 2-compute + 1-NVM-pool cluster:
//! a queue of `JobId`s (a newtype with its own registry fingerprint), a
//! completed-jobs counter and an owner map. The memory node crashes
//! mid-run; a "fresh process" (holding nothing but the cluster handle)
//! reattaches every structure *by name* through the durable registry and
//! carries on. The same program then runs under the deliberately unsound
//! x86-FliT port — one changed line — and loses work, which is the
//! paper's §6 motivating comparison.
//!
//! Run with: `cargo run --example named_roots`

use cxl0::api::{Cluster, PersistMode};
use cxl0::durable_word;
use cxl0::model::{MachineId, SystemConfig};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct JobId(u64);
durable_word!(JobId(u64));

fn run(mode: PersistMode) -> Result<u64, Box<dyn std::error::Error>> {
    // The whole deployment in one builder; swapping durability
    // strategies is this line.
    let cluster = Cluster::builder(SystemConfig::new(vec![
        cxl0::model::MachineConfig::compute_only(),
        cxl0::model::MachineConfig::compute_only(),
        cxl0::model::MachineConfig::non_volatile(1 << 14),
    ]))
    .persist(mode)
    .build()?;

    // -- Process 1: create the service's durable roots and do some work.
    let s = cluster.session(MachineId(0));
    let pending = s.create_queue::<JobId>("jobs/pending")?;
    let done = s.create_counter("jobs/done")?;
    let owner = s.create_map::<u64, u64>("jobs/owner", 64)?;

    for id in 1..=8u64 {
        pending.enqueue(&s, JobId(id))?;
        owner.insert(&s, id, 100 + id % 2)?;
    }
    // A worker on the other compute node completes three jobs.
    let w = cluster.session(MachineId(1));
    let worker = w.open_queue::<JobId>("jobs/pending")?;
    for _ in 0..3 {
        let job = worker.dequeue(&w)?.expect("queued above");
        println!("  worker completed {job:?}");
        done.add(&w, 1)?;
    }

    // -- The memory node crashes: every cache is lost, NVM survives.
    cluster.crash(cluster.memory_node());
    cluster.recover(cluster.memory_node());

    // -- Process 2: a fresh session. Nothing volatile survived, so
    // reattachment goes through the named-root registry alone.
    let r = cluster.session(MachineId(0));
    r.recover_roots()?; // seal any half-committed creations
    println!("  committed roots after the crash:");
    for root in r.roots()? {
        println!("    {:<14} {} @ {}", root.name, root.kind, root.header);
    }

    let pending = r.open_queue::<JobId>("jobs/pending")?;
    pending.recover(&r)?; // M&S tail repair
    let done = r.open_counter("jobs/done")?;
    let owner = r.open_map::<u64, u64>("jobs/owner")?;

    // Opening under the wrong element type is an error, not a
    // reinterpretation:
    assert!(r.open_queue::<u64>("jobs/pending").is_err());

    let mut remaining = 0;
    while let Some(job) = pending.dequeue(&r)? {
        assert_eq!(owner.get(&r, job.0)?, Some(100 + job.0 % 2));
        remaining += 1;
    }
    let completed = done.get(&r)?;
    println!("  recovered: {remaining} pending jobs, {completed} completed");
    Ok(completed + remaining)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== FliT-CXL0 (Algorithm 2): everything survives ===");
    let survived = run(PersistMode::FlitCxl0)?;
    assert_eq!(survived, 8, "all 8 jobs accounted for");

    println!("\n=== unadapted x86 FliT (unsound under partial crashes) ===");
    match run(PersistMode::FlitX86) {
        Ok(survived) => {
            println!("  only {survived}/8 jobs survived — flushes that stop at the owner's");
            println!("  cache are not persistence; this is why Algorithm 2 exists");
            assert!(survived < 8, "the unsound port must lose work here");
        }
        Err(e) => {
            // The lost registry commits can also surface as open errors.
            println!("  recovery failed outright: {e}");
        }
    }
    Ok(())
}
