//! The runtime tracer end to end: arm `cxl0::trace`, run a mixed durable
//! workload across threads, crash and recover the memory node, then read
//! back latency percentiles, per-op persist amplification, the recovery
//! phase breakdown — and export the whole thing as a Chrome trace-event
//! file loadable in Perfetto / `chrome://tracing`.
//!
//! Run with: `cargo run --example trace_export`
//!
//! By default the trace lands in `trace_export.json`. Setting
//! `CXL0_TRACE=<path>` overrides that (the cluster builder arms the
//! tracer from the environment, exactly like `CXL0_SANITIZE`); the CI
//! trace-smoke job runs this example that way and validates the JSON.

use cxl0::api::Cluster;
use cxl0::model::{MachineId, SystemConfig};
use cxl0::trace::{OpKind, TraceConfig};

fn main() {
    // Explicit arming loses to `CXL0_TRACE` on purpose: the builder
    // prefers `with_tracing`, so only pass one when the env is silent.
    let mut builder = Cluster::builder(SystemConfig::symmetric_nvm(3, 1 << 16));
    let env_armed = std::env::var("CXL0_TRACE").is_ok_and(|v| !v.is_empty() && v != "0");
    if !env_armed {
        builder = builder.with_tracing(TraceConfig::to_path("trace_export.json"));
    }
    let cluster = builder.build().unwrap();
    let mem_node = cluster.memory_node();

    // A mixed workload so every op-kind histogram has samples.
    let s0 = cluster.session(MachineId(0));
    let queue = s0.create_queue::<u64>("jobs").unwrap();
    let stack = s0.create_stack::<u64>("undo").unwrap();
    let map = s0.create_map::<u64, u64>("index", 256).unwrap();

    let mut workers = Vec::new();
    for t in 0..4u64 {
        let session = cluster.session(MachineId((t % 2) as usize));
        let queue = queue.clone();
        let stack = stack.clone();
        let map = map.clone();
        workers.push(std::thread::spawn(move || {
            for i in 0..200u64 {
                let v = t * 1_000 + i + 1; // map key 0 is reserved
                queue.enqueue(&session, v).unwrap();
                stack.push(&session, v).unwrap();
                map.insert(&session, v, v * 2).unwrap();
                if i % 4 == 3 {
                    queue.dequeue(&session).unwrap();
                    stack.pop(&session).unwrap();
                    map.get(&session, v).unwrap();
                }
            }
        }));
    }
    for w in workers {
        w.join().unwrap();
    }

    // Crash the memory node (all caches lost), recover it, and run the
    // timed recovery pass — the tracer clocks each phase.
    println!("crashing memory node {mem_node} and recovering ...");
    cluster.crash(mem_node);
    cluster.recover(mem_node);
    let session = cluster.session(MachineId(0));
    let sealed = session.recover_roots().unwrap();
    println!("recovery sealed {sealed} pending registry entries\n");

    let tracer = cluster.tracer().expect("tracing is armed");

    println!("== op latency (simulated ns, log2-bucketed) ==");
    for kind in OpKind::ALL {
        let h = tracer.histogram(kind);
        if h.count() == 0 {
            continue;
        }
        println!(
            "{:>13}: n={:<5} p50={:<6} p99={:<6} p999={}",
            kind.name(),
            h.count(),
            h.p50(),
            h.p99(),
            h.p999()
        );
    }

    println!("\n== recovery breakdown ==");
    for t in tracer.recovery_breakdown() {
        println!(
            "{:>15}: {:>7} sim ns  ({} wall ns)",
            t.phase.name(),
            t.sim_ns,
            t.wall_ns
        );
    }

    println!(
        "\n{} events recorded ({} dropped), incarnation {}",
        tracer.events_recorded(),
        tracer.events_dropped(),
        tracer.incarnation()
    );
    let path = tracer
        .config()
        .export_path
        .clone()
        .unwrap_or_else(|| "trace_export.json".into());
    println!("exporting Chrome trace to {path} (open in Perfetto) ...");
    // The cluster also exports on drop when an export path is
    // configured; doing it explicitly keeps the example's output
    // ordering deterministic.
    cluster.export_trace(&path).unwrap();
}
