//! A durable Michael–Scott queue under concurrent producers/consumers
//! with an injected partial crash, checked for durable linearizability —
//! the end-to-end story of §6.
//!
//! Topology: machines m0, m1 are compute nodes; m2 is an NVM memory node
//! hosting the queue. Threads on m0/m1 hammer the queue; midway, the
//! memory node crashes (losing all caches); after recovery the queue is
//! repaired and drained. The recorded history — crash included — is then
//! checked against the sequential FIFO spec.
//!
//! Run with: `cargo run --example durable_queue`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cxl0::api::Cluster;
use cxl0::dlcheck::spec::{QueueOp, QueueRet, QueueSpec};
use cxl0::dlcheck::{check_durably_linearizable, Recorder, ThreadId};
use cxl0::model::MachineId;

fn main() {
    // Two compute nodes + one NVM memory node, FliT-CXL0 durability —
    // one builder call instead of fabric + heap + strategy assembly.
    let cluster = Cluster::symmetric(2, 1 << 16).unwrap();
    let mem_node = cluster.memory_node();
    let queue = cluster
        .session(MachineId(0))
        .create_queue::<u64>("jobs")
        .unwrap();

    let recorder: Recorder<QueueOp, QueueRet> = Recorder::new();
    let stop = Arc::new(AtomicBool::new(false));

    let mut workers = Vec::new();
    for t in 0..4usize {
        let machine = MachineId(t % 2);
        let session = cluster.session(machine);
        let queue = queue.clone();
        let recorder = recorder.clone();
        let stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            // Cap the per-worker op count: the linearizability check is
            // exponential in history width, so keep the recorded history
            // checker-sized no matter how fast this machine is.
            let mut produced = 0u64;
            let mut ops = 0u32;
            while !stop.load(Ordering::Relaxed) && ops < 25 {
                ops += 1;
                if t.is_multiple_of(2) {
                    let v = (t as u64) * 1_000_000 + produced + 1;
                    let id = recorder.invoke(ThreadId(t), machine.index(), QueueOp::Enq(v));
                    match queue.enqueue(&session, v) {
                        Ok(true) => recorder.respond(id, QueueRet::Ok),
                        Ok(false) => break, // heap exhausted
                        Err(_) => break,    // machine crashed mid-op: stays pending
                    }
                    produced += 1;
                } else {
                    let id = recorder.invoke(ThreadId(t), machine.index(), QueueOp::Deq);
                    match queue.dequeue(&session) {
                        Ok(v) => recorder.respond(id, QueueRet::Deqd(v)),
                        Err(_) => break,
                    }
                }
            }
        }));
    }

    // Let the workload run, then crash the memory node mid-flight.
    std::thread::sleep(std::time::Duration::from_millis(30));
    println!("injecting crash of the memory node {mem_node} ...");
    cluster.crash(mem_node);
    recorder.crash(mem_node.index());
    std::thread::sleep(std::time::Duration::from_millis(5));
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }

    // Recover: NVM survived; caches did not. Reattach the queue *by
    // name* — no header location was kept anywhere volatile — then
    // repair the tail and drain.
    cluster.recover(mem_node);
    let session = cluster.session(MachineId(0));
    let queue = session.open_queue::<u64>("jobs").unwrap();
    queue.recover(&session).unwrap();
    let mut drained = 0usize;
    loop {
        let id = recorder.invoke(ThreadId(100), 0, QueueOp::Deq);
        let v = queue.dequeue(&session).unwrap();
        recorder.respond(id, QueueRet::Deqd(v));
        if v.is_none() {
            break;
        }
        drained += 1;
    }

    let history = recorder.finish();
    println!(
        "history: {} operations, {} crash event(s); drained {} elements after recovery",
        history.num_ops(),
        history.num_crashes(),
        drained
    );

    let result = check_durably_linearizable(&QueueSpec, &history);
    println!("durable linearizability: {result}");
    assert!(
        result.is_ok(),
        "FliT-transformed queue must be durably linearizable"
    );
}
