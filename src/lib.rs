//! # `cxl0-repro` — workspace umbrella
//!
//! This package owns the repository-level integration tests (`tests/`)
//! and runnable walkthroughs (`examples/`); the implementation lives in
//! the `crates/` workspace members, all re-exported here through the
//! [`cxl0`] facade.
//!
//! Start with [`cxl0::model`] for the operational semantics and
//! [`cxl0::runtime`] for the executable fabric; `README.md` at the
//! repository root has the crate map.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cxl0;
