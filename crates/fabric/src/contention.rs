//! Link-contention simulation — an *extension* beyond the paper's
//! isolated-latency measurements (§5.2 measures one requester at a time).
//! Multiple requesters share the CXL link, whose serialization delay
//! queues overlapping messages; this sweep shows how per-request latency
//! degrades with offered load, using the discrete-event engine.

use cxl0_protocol::CxlOp;

use crate::event::{EventQueue, SharedLink};
use crate::latency::LatencyConfig;
use crate::sim::{AccessPath, FabricSim};

/// Result of one contention run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionPoint {
    /// Number of concurrent requesters.
    pub requesters: usize,
    /// Mean completion latency per request (ns).
    pub mean_latency: f64,
    /// Total simulated time to finish all requests (ns).
    pub makespan: u64,
}

#[derive(Debug, Clone, Copy)]
enum Phase {
    /// Request wants the link (requester id, remaining service ns).
    WantLink(usize, u64),
    /// Remote service completes; response wants the link back.
    ServiceDone(usize),
    /// Response delivered: request complete.
    Done(usize),
}

/// Simulates `requesters` concurrent streams each issuing `per_requester`
/// back-to-back accesses of `op` over `path`, sharing one link.
///
/// # Panics
///
/// Panics if the primitive is unavailable on the path.
pub fn run_contention(
    cfg: &LatencyConfig,
    op: CxlOp,
    path: AccessPath,
    requesters: usize,
    per_requester: usize,
) -> ContentionPoint {
    let sim = FabricSim::new(cfg.clone().without_jitter(), 0);
    let isolated = sim
        .access_deterministic(op, path)
        .expect("primitive must be available on this path");
    // Split the isolated latency into "link share" (serialized) and
    // "private share" (parallel across requesters): two link hops +
    // remote service are modeled explicitly; the remainder is local.
    let one_way = cfg.link_hop + cfg.link_serialize;
    let remote_service = isolated.saturating_sub(2 * one_way).max(1);

    let mut queue: EventQueue<Phase> = EventQueue::new();
    let mut link = SharedLink::new();
    let mut remaining = vec![per_requester; requesters];
    let mut issue_time = vec![0u64; requesters];
    let mut total_latency = 0u128;
    let mut completed = 0usize;

    for r in 0..requesters {
        queue.schedule_at(0, Phase::WantLink(r, remote_service));
    }

    while let Some(ev) = queue.pop() {
        match ev.payload {
            Phase::WantLink(r, service) => {
                let start = link.acquire(queue.now(), cfg.link_serialize);
                let arrive = start + cfg.link_serialize + cfg.link_hop;
                queue.schedule_at(arrive + service, Phase::ServiceDone(r));
            }
            Phase::ServiceDone(r) => {
                let start = link.acquire(queue.now(), cfg.link_serialize);
                let arrive = start + cfg.link_serialize + cfg.link_hop;
                queue.schedule_at(arrive, Phase::Done(r));
            }
            Phase::Done(r) => {
                total_latency += u128::from(queue.now() - issue_time[r]);
                completed += 1;
                remaining[r] -= 1;
                if remaining[r] > 0 {
                    issue_time[r] = queue.now();
                    queue.schedule_at(queue.now(), Phase::WantLink(r, remote_service));
                }
            }
        }
    }

    ContentionPoint {
        requesters,
        mean_latency: total_latency as f64 / completed as f64,
        makespan: queue.now(),
    }
}

/// Sweeps requester counts, returning one point per count.
pub fn contention_sweep(
    cfg: &LatencyConfig,
    op: CxlOp,
    path: AccessPath,
    counts: &[usize],
    per_requester: usize,
) -> Vec<ContentionPoint> {
    counts
        .iter()
        .map(|&k| run_contention(cfg, op, path, k, per_requester))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_requester_matches_isolated_shape() {
        let cfg = LatencyConfig::testbed();
        let p = run_contention(&cfg, CxlOp::Read, AccessPath::HostToHdm, 1, 100);
        let sim = FabricSim::new(cfg.clone().without_jitter(), 0);
        let isolated = sim
            .access_deterministic(CxlOp::Read, AccessPath::HostToHdm)
            .unwrap() as f64;
        // The decomposed chain must reproduce the isolated latency.
        assert!(
            (p.mean_latency - isolated).abs() / isolated < 0.05,
            "isolated {isolated} vs contention-model {}",
            p.mean_latency
        );
    }

    #[test]
    fn latency_grows_with_contention() {
        let cfg = LatencyConfig::testbed();
        let pts = contention_sweep(
            &cfg,
            CxlOp::Read,
            AccessPath::HostToHdm,
            &[1, 4, 16, 64],
            200,
        );
        for w in pts.windows(2) {
            assert!(
                w[1].mean_latency >= w[0].mean_latency,
                "latency should be monotone in load: {pts:?}"
            );
        }
        // At 64 requesters the link serialization must dominate.
        assert!(pts[3].mean_latency > pts[0].mean_latency * 1.5);
    }

    #[test]
    fn makespan_scales_sublinearly_until_saturation() {
        let cfg = LatencyConfig::testbed();
        let a = run_contention(&cfg, CxlOp::Read, AccessPath::DeviceToHm, 1, 100);
        let b = run_contention(&cfg, CxlOp::Read, AccessPath::DeviceToHm, 8, 100);
        // 8 requesters do 8× the work in far less than 8× the time.
        assert!(b.makespan < a.makespan * 4);
    }
}
