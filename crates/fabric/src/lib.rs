//! # `cxl0-fabric` — discrete-event CXL fabric latency simulation
//!
//! The paper's §5.2 measures the latency of each CXL0 primitive on a real
//! x86 + FPGA CXL 1.1 testbed (Figure 5). This crate substitutes a
//! simulator: every primitive is decomposed into the *same* link
//! transactions the `cxl0-protocol` engine generates for it, and each
//! transaction is costed on a parameterized link/cache/memory model
//! ([`LatencyConfig`]).
//!
//! * [`latency`] — the nanosecond cost parameters, calibrated to Figure
//!   5's reported *ratios* (local ≈ 2× remote; device `LStore` <
//!   `RStore` < `MStore` at ≈ 1 : 2.1 : 3; `RFlush` ≈ `MStore`);
//! * [`sim`] — per-primitive completion latency over the five access
//!   paths of Figure 5;
//! * [`measure`] — the Figure-5 sweep (median of `n` accesses, "not
//!   measurable" cells included);
//! * [`event`] / [`contention`] — a discrete-event engine and a
//!   link-contention extension beyond the paper's isolated measurements.
//!
//! ## Example
//!
//! ```
//! use cxl0_fabric::{run_figure5, LatencyConfig, AccessPath};
//! use cxl0_protocol::CxlOp;
//!
//! let fig = run_figure5(&LatencyConfig::testbed(), 1000, 42);
//! let local = fig.median(AccessPath::HostToHm, CxlOp::Read).unwrap();
//! let remote = fig.median(AccessPath::HostToHdm, CxlOp::Read).unwrap();
//! assert!(remote > 2 * local); // the paper's 2.34× shape
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod contention;
pub mod event;
pub mod latency;
pub mod measure;
pub mod sim;

pub use contention::{contention_sweep, run_contention, ContentionPoint};
pub use event::{Event, EventQueue, SharedLink};
pub use latency::LatencyConfig;
pub use measure::{run_figure5, Figure5, SeriesStats};
pub use sim::{AccessPath, FabricSim};
