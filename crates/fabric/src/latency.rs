//! Latency parameters of the simulated fabric.
//!
//! The defaults are calibrated so that the *shape* of Figure 5 emerges
//! from the transaction decomposition (see `sim.rs`): local ≈ 2× faster
//! than remote (host 2.34×, device 1.94×), device-to-HM
//! `LStore < RStore < MStore` with ratios ≈ 1 : 2.08 : 3.0, and
//! `RFlush ≈ MStore`. Absolute values are in nanoseconds and sit in the
//! range the paper reports for its CXL 1.1 testbed.

/// Nanosecond cost parameters for every component on an access path.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyConfig {
    /// Host cache hierarchy lookup (miss detection).
    pub host_cache_lookup: u64,
    /// Host DRAM read (row access + transfer).
    pub host_dram_read: u64,
    /// Host DRAM write.
    pub host_dram_write: u64,
    /// Host store buffer absorption (an `LStore` completes here).
    pub host_write_buffer: u64,
    /// Host fence/drain cost appended to non-temporal stores.
    pub host_fence: u64,
    /// One-way CXL link traversal (flit propagation + SerDes).
    pub link_hop: u64,
    /// Link serialization per message (bandwidth term).
    pub link_serialize: u64,
    /// Device cache lookup/insert for lines targeting host memory (the
    /// Intel IP uses a larger, slower cache for HM than for HDM).
    pub device_cache_hm: u64,
    /// Device cache lookup/insert for HDM-targeting lines.
    pub device_cache_hdm: u64,
    /// AXI request/response overhead between device logic and CXL IP.
    pub device_axi: u64,
    /// Device-attached memory read.
    pub device_mem_read: u64,
    /// Device-attached memory write.
    pub device_mem_write: u64,
    /// Host-side coherence engine processing a D2H request (snoop filter
    /// lookup, ownership bookkeeping).
    pub host_coherence: u64,
    /// Device-side processing of an H2D snoop / M2S request.
    pub device_coherence: u64,
    /// Extra cost for resolving host-bias ownership of an HDM line.
    pub bias_check: u64,
    /// Device-side bias-table lookup paid by every device access to HDM.
    pub bias_table_lookup: u64,
    /// Uniform jitter amplitude (± ns) applied per measurement.
    pub jitter: u64,
}

impl LatencyConfig {
    /// The calibrated testbed defaults (see module docs).
    pub fn testbed() -> Self {
        LatencyConfig {
            host_cache_lookup: 28,
            host_dram_read: 82,
            host_dram_write: 62,
            host_write_buffer: 12,
            host_fence: 28,
            link_hop: 48,
            link_serialize: 6,
            device_cache_hm: 52,
            device_cache_hdm: 36,
            device_axi: 18,
            device_mem_read: 62,
            device_mem_write: 54,
            host_coherence: 26,
            device_coherence: 22,
            bias_check: 30,
            bias_table_lookup: 8,
            jitter: 6,
        }
    }

    /// A zero-jitter copy (deterministic medians for tests).
    pub fn without_jitter(mut self) -> Self {
        self.jitter = 0;
        self
    }
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig::testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive_and_ordered() {
        let c = LatencyConfig::testbed();
        assert!(c.host_write_buffer < c.host_cache_lookup);
        assert!(c.host_cache_lookup < c.host_dram_read);
        assert!(c.device_cache_hdm < c.device_cache_hm);
        assert!(c.link_hop > 0);
    }

    #[test]
    fn without_jitter_zeroes_only_jitter() {
        let c = LatencyConfig::testbed().without_jitter();
        assert_eq!(c.jitter, 0);
        assert_eq!(c.link_hop, LatencyConfig::testbed().link_hop);
    }
}
