//! The fabric latency simulator: each CXL0 primitive is decomposed into
//! its intrinsic node-side costs plus the link transactions the
//! `cxl0-protocol` engine generates for it, and each transaction is
//! costed on the simulated link and target device.
//!
//! Completion semantics follow CXL0's definitions (§3.2): an `LStore`
//! completes at the issuer's cache/write buffer (its coherence traffic is
//! posted in the background), an `RStore` completes when the line lands
//! in the owner's cache, an `MStore`/`RFlush` completes only after the
//! memory write is acknowledged, and a `Read` completes at data return.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cxl0_protocol::{
    perform, CachePair, CxlOp, DeviceMStoreStrategy, MemTarget, MesiState, Node, Transaction,
};

use crate::latency::LatencyConfig;

/// The five access paths of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessPath {
    /// Host → host-attached memory (local).
    HostToHm,
    /// Host → host-managed device memory (remote, host-bias).
    HostToHdm,
    /// Device → host-attached memory (remote).
    DeviceToHm,
    /// Device → HDM in host-bias (local data, but host arbitrates).
    DeviceToHdmHostBias,
    /// Device → HDM in device-bias (fully local).
    DeviceToHdmDeviceBias,
}

impl AccessPath {
    /// All five paths in Figure-5 legend order.
    pub const ALL: [AccessPath; 5] = [
        AccessPath::HostToHm,
        AccessPath::HostToHdm,
        AccessPath::DeviceToHm,
        AccessPath::DeviceToHdmHostBias,
        AccessPath::DeviceToHdmDeviceBias,
    ];

    /// The issuing node.
    pub fn node(self) -> Node {
        match self {
            AccessPath::HostToHm | AccessPath::HostToHdm => Node::Host,
            _ => Node::Device,
        }
    }

    /// The memory targeted.
    pub fn target(self) -> MemTarget {
        match self {
            AccessPath::HostToHm | AccessPath::DeviceToHm => MemTarget::HostMemory,
            _ => MemTarget::DeviceMemory,
        }
    }

    /// The Figure-5 legend label.
    pub fn label(self) -> &'static str {
        match self {
            AccessPath::HostToHm => "Host to Host-attached Memory",
            AccessPath::HostToHdm => "Host to HDM",
            AccessPath::DeviceToHm => "Device to Host-attached Memory",
            AccessPath::DeviceToHdmHostBias => "Device to HDM in Host-Bias",
            AccessPath::DeviceToHdmDeviceBias => "Device to HDM in Device-Bias",
        }
    }
}

/// A single-requester latency simulator.
#[derive(Debug)]
pub struct FabricSim {
    cfg: LatencyConfig,
    rng: StdRng,
    mstore_strategy: DeviceMStoreStrategy,
}

impl FabricSim {
    /// Creates a simulator with the given parameters and RNG seed (the
    /// seed drives measurement jitter only). The device's `MStore`
    /// instruction variant defaults to the weakly-ordered full-line
    /// write-invalidate, which is what §5.2's full-cache-line store
    /// measurement exercises; see [`FabricSim::set_mstore_strategy`].
    pub fn new(cfg: LatencyConfig, seed: u64) -> Self {
        FabricSim {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            mstore_strategy: DeviceMStoreStrategy::WeakOrderedWriteInv,
        }
    }

    /// The configured latencies.
    pub fn config(&self) -> &LatencyConfig {
        &self.cfg
    }

    /// Selects the device `MStore` instruction variant (an ablation axis:
    /// the caching-write-plus-flush path costs an extra ownership round
    /// trip from invalid lines).
    pub fn set_mstore_strategy(&mut self, strategy: DeviceMStoreStrategy) {
        self.mstore_strategy = strategy;
    }

    /// One isolated access per §5.2's methodology: loads start from
    /// globally-invalid lines, stores write full lines, flushes target a
    /// line the issuer holds modified. Returns the completion latency in
    /// ns, or `None` for unavailable primitives (`???` in Table 1).
    pub fn access(&mut self, op: CxlOp, path: AccessPath) -> Option<u64> {
        let base = self.access_deterministic(op, path)?;
        let j = self.cfg.jitter;
        let noisy = if j == 0 {
            base
        } else {
            base + self.rng.gen_range(0..=2 * j) - j
        };
        Some(noisy.max(1))
    }

    /// The deterministic (jitter-free) latency of one isolated access.
    pub fn access_deterministic(&self, op: CxlOp, path: AccessPath) -> Option<u64> {
        match path.node() {
            Node::Host => self.host_access(op, path),
            Node::Device => self.device_access(op, path),
        }
    }

    fn host_access(&self, op: CxlOp, path: AccessPath) -> Option<u64> {
        let c = &self.cfg;
        let target = path.target();
        // Measurement-prep state per §5.2: loads/stores from invalid
        // lines, flushes from a host-modified line.
        let st = match op {
            CxlOp::RFlush => CachePair::new(MesiState::M, MesiState::I),
            _ => CachePair::invalid(),
        };
        let outcome = perform(Node::Host, op, target, st, self.mstore_strategy)?;
        let mut ns = match op {
            // An LStore completes in the store buffer; its coherence
            // traffic is posted in the background.
            CxlOp::LStore => return Some(c.host_write_buffer),
            // NT stores and CLFlush drain through the fence.
            CxlOp::MStore | CxlOp::RFlush => c.host_cache_lookup + c.host_fence,
            _ => c.host_cache_lookup,
        };
        for t in &outcome.transactions {
            ns += self.transaction_cost(Node::Host, target, op, *t);
        }
        // Local memory access for HM targets (no link transaction).
        if target == MemTarget::HostMemory {
            match op {
                CxlOp::Read => ns += c.host_dram_read,
                CxlOp::MStore | CxlOp::RFlush => ns += c.host_dram_write,
                _ => {}
            }
        }
        Some(ns)
    }

    fn device_access(&self, op: CxlOp, path: AccessPath) -> Option<u64> {
        let c = &self.cfg;
        let target = path.target();
        if op == CxlOp::LFlush {
            return None; // ??? in Table 1
        }
        // Every device access to HDM consults the bias table.
        let bias = if target == MemTarget::DeviceMemory {
            c.bias_table_lookup
        } else {
            0
        };
        let cache = if target == MemTarget::HostMemory {
            c.device_cache_hm
        } else {
            c.device_cache_hdm
        };

        if path == AccessPath::DeviceToHdmDeviceBias {
            // Device-bias: no host involvement, no link transactions.
            return Some(match op {
                CxlOp::Read => cache + c.device_axi + bias + c.device_mem_read,
                // Owner stores complete in the device cache.
                CxlOp::LStore | CxlOp::RStore => cache + c.device_axi + bias,
                CxlOp::MStore | CxlOp::RFlush => c.device_axi + bias + c.device_mem_write,
                CxlOp::LFlush => unreachable!(),
            });
        }

        let st = match op {
            CxlOp::RFlush => CachePair::new(MesiState::I, MesiState::M),
            _ => CachePair::invalid(),
        };
        let outcome = perform(Node::Device, op, target, st, self.mstore_strategy)?;

        // Intrinsic device-side cost: allocating ops (reads, caching
        // writes, owner stores) go through the IP's cache;
        // write-invalidate/evict flows bypass it.
        let allocating = matches!(op, CxlOp::Read | CxlOp::LStore)
            || (op == CxlOp::RStore && target == MemTarget::DeviceMemory);
        let mut ns = if allocating {
            cache + c.device_axi + bias
        } else {
            c.device_axi + bias
        };

        // Which transactions the completion waits for: an LStore's
        // ownership traffic is posted; an owner-RStore (to HDM) completes
        // in the device cache like an LStore.
        let posted = matches!(op, CxlOp::LStore)
            || (op == CxlOp::RStore && target == MemTarget::DeviceMemory);
        if !posted {
            for t in &outcome.transactions {
                ns += self.transaction_cost(Node::Device, target, op, *t);
            }
        }

        // Writes/flushes to the device's own memory end with a local
        // memory write; host-bias additionally pays the ownership check.
        if target == MemTarget::DeviceMemory && matches!(op, CxlOp::MStore | CxlOp::RFlush) {
            ns += c.device_mem_write + c.bias_check;
        }
        Some(ns)
    }

    /// The completion-path cost of one link transaction.
    fn transaction_cost(&self, node: Node, target: MemTarget, op: CxlOp, t: Transaction) -> u64 {
        let c = &self.cfg;
        let one_way = c.link_hop + c.link_serialize;
        let rt = 2 * one_way;
        match t {
            // Invalidating snoops are posted for stores/flushes (the
            // issuer does not wait); a read that snoops must wait for the
            // response before using the data.
            Transaction::CacheH2D(_) => {
                if op == CxlOp::Read {
                    rt + c.device_coherence
                } else {
                    0
                }
            }
            Transaction::CacheD2H(d2h) => {
                use cxl0_protocol::D2HReq::*;
                let data = match target {
                    MemTarget::HostMemory => c.host_dram_read,
                    MemTarget::DeviceMemory => c.device_mem_read,
                };
                match d2h {
                    RdShared => rt + c.host_coherence + data,
                    RdOwn => rt + c.host_coherence,
                    ItoMWr => rt + c.host_coherence,
                    CleanEvict => rt + c.host_coherence,
                    DirtyEvict | WOWrInvF | WrInv => rt + c.host_coherence + c.host_dram_write,
                }
            }
            Transaction::MemM2S(m2s) => {
                use cxl0_protocol::M2SReq::*;
                match m2s {
                    MemRdData | MemRd => rt + c.device_coherence + c.device_axi + c.device_mem_read,
                    // Writing into device-owned memory from the host also
                    // updates the host-bias ownership tracking.
                    MemWr if node == Node::Host => {
                        rt + c.bias_check + c.device_coherence + c.device_axi + c.device_mem_write
                    }
                    MemWr => rt + c.device_coherence + c.device_axi + c.device_mem_write,
                    MemInv => rt + c.device_coherence,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> FabricSim {
        FabricSim::new(LatencyConfig::testbed().without_jitter(), 1)
    }

    fn lat(op: CxlOp, path: AccessPath) -> u64 {
        sim().access_deterministic(op, path).unwrap()
    }

    #[test]
    fn unavailable_primitives_return_none() {
        let mut s = sim();
        for path in AccessPath::ALL {
            assert!(s.access(CxlOp::LFlush, path).is_none(), "{path:?}");
        }
        assert!(s.access(CxlOp::RStore, AccessPath::HostToHm).is_none());
        assert!(s.access(CxlOp::RStore, AccessPath::HostToHdm).is_none());
    }

    #[test]
    fn host_remote_read_ratio_near_paper() {
        let local = lat(CxlOp::Read, AccessPath::HostToHm) as f64;
        let remote = lat(CxlOp::Read, AccessPath::HostToHdm) as f64;
        let ratio = remote / local;
        assert!((2.0..2.7).contains(&ratio), "host read ratio {ratio:.2}");
    }

    #[test]
    fn device_remote_read_ratio_near_paper() {
        let local = lat(CxlOp::Read, AccessPath::DeviceToHdmDeviceBias) as f64;
        let remote = lat(CxlOp::Read, AccessPath::DeviceToHm) as f64;
        let ratio = remote / local;
        assert!((1.6..2.4).contains(&ratio), "device read ratio {ratio:.2}");
    }

    #[test]
    fn host_and_device_remote_reads_similar() {
        let h = lat(CxlOp::Read, AccessPath::HostToHdm) as f64;
        let d = lat(CxlOp::Read, AccessPath::DeviceToHm) as f64;
        let ratio = h.max(d) / h.min(d);
        assert!(ratio < 1.25, "remote read asymmetry {ratio:.2}");
    }

    #[test]
    fn device_to_hm_store_ladder() {
        let ls = lat(CxlOp::LStore, AccessPath::DeviceToHm) as f64;
        let rs = lat(CxlOp::RStore, AccessPath::DeviceToHm) as f64;
        let ms = lat(CxlOp::MStore, AccessPath::DeviceToHm) as f64;
        let r1 = rs / ls;
        let r2 = ms / rs;
        assert!((1.7..2.5).contains(&r1), "RStore/LStore {r1:.2}");
        assert!((1.2..1.7).contains(&r2), "MStore/RStore {r2:.2}");
    }

    #[test]
    fn rflush_tracks_mstore() {
        for path in AccessPath::ALL {
            let ms = lat(CxlOp::MStore, path) as f64;
            let rf = lat(CxlOp::RFlush, path) as f64;
            let ratio = ms.max(rf) / ms.min(rf);
            assert!(ratio < 1.2, "{path:?}: MStore {ms} vs RFlush {rf}");
        }
    }

    #[test]
    fn host_lstore_hits_write_buffer() {
        let wb = LatencyConfig::testbed().host_write_buffer;
        assert_eq!(lat(CxlOp::LStore, AccessPath::HostToHm), wb);
        assert_eq!(lat(CxlOp::LStore, AccessPath::HostToHdm), wb);
    }

    #[test]
    fn host_mstore_remote_ratio_near_paper() {
        let local = lat(CxlOp::MStore, AccessPath::HostToHm) as f64;
        let remote = lat(CxlOp::MStore, AccessPath::HostToHdm) as f64;
        let ratio = remote / local;
        assert!((2.0..2.7).contains(&ratio), "host MStore ratio {ratio:.2}");
    }

    #[test]
    fn device_bias_lstore_faster_than_hm_lstore() {
        // Figure 5: green LStore (HM cache) slower than purple/orange.
        let hm = lat(CxlOp::LStore, AccessPath::DeviceToHm);
        let hb = lat(CxlOp::LStore, AccessPath::DeviceToHdmHostBias);
        let db = lat(CxlOp::LStore, AccessPath::DeviceToHdmDeviceBias);
        assert!(hb < hm);
        assert!(db < hm);
    }

    #[test]
    fn jitter_is_bounded_and_seeded() {
        let cfg = LatencyConfig::testbed();
        let mut a = FabricSim::new(cfg.clone(), 7);
        let mut b = FabricSim::new(cfg.clone(), 7);
        let base = a
            .access_deterministic(CxlOp::Read, AccessPath::HostToHm)
            .unwrap();
        for _ in 0..100 {
            let x = a.access(CxlOp::Read, AccessPath::HostToHm).unwrap();
            let y = b.access(CxlOp::Read, AccessPath::HostToHm).unwrap();
            assert_eq!(x, y, "same seed, same sequence");
            assert!(x.abs_diff(base) <= cfg.jitter);
        }
    }
}
