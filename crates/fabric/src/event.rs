//! A minimal discrete-event engine: a time-ordered queue with stable FIFO
//! tie-breaking, plus a shared-resource (link) serialization helper.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduled event carrying a payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event<T> {
    /// Absolute simulation time (ns).
    pub time: u64,
    /// Insertion sequence (FIFO tie-break).
    pub seq: u64,
    /// Payload.
    pub payload: T,
}

/// A time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    payloads: std::collections::HashMap<(u64, u64), T>,
    next_seq: u64,
    now: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            payloads: std::collections::HashMap::new(),
            next_seq: 0,
            now: 0,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Schedules `payload` at absolute time `time` (clamped to now).
    pub fn schedule_at(&mut self, time: u64, payload: T) {
        let time = time.max(self.now);
        let key = (time, self.next_seq);
        self.next_seq += 1;
        self.heap.push(Reverse(key));
        self.payloads.insert(key, payload);
    }

    /// Schedules `payload` `delay` ns from now.
    pub fn schedule_in(&mut self, delay: u64, payload: T) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Pops the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<Event<T>> {
        let Reverse(key) = self.heap.pop()?;
        self.now = key.0;
        let payload = self.payloads.remove(&key).expect("payload for key");
        Some(Event {
            time: key.0,
            seq: key.1,
            payload,
        })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A serially-shared resource (the CXL link): requests occupy it for a
/// fixed serialization time; overlapping requests queue FIFO.
#[derive(Debug, Clone, Copy, Default)]
pub struct SharedLink {
    free_at: u64,
}

impl SharedLink {
    /// A link idle since time 0.
    pub fn new() -> Self {
        SharedLink { free_at: 0 }
    }

    /// Acquires the link at `now` for `serialize` ns; returns the time
    /// the message actually starts transmitting.
    pub fn acquire(&mut self, now: u64, serialize: u64) -> u64 {
        let start = self.free_at.max(now);
        self.free_at = start + serialize;
        start
    }

    /// The time the link next becomes free.
    pub fn free_at(&self) -> u64 {
        self.free_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        q.schedule_at(10, "b");
        q.schedule_at(5, "a");
        q.schedule_at(10, "c");
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.now(), 5);
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(100, ());
        q.pop();
        q.schedule_in(5, ());
        assert_eq!(q.pop().unwrap().time, 105);
    }

    #[test]
    fn past_times_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(50, 1);
        q.pop();
        q.schedule_at(10, 2); // in the past → now
        assert_eq!(q.pop().unwrap().time, 50);
    }

    #[test]
    fn link_serializes_overlapping_requests() {
        let mut link = SharedLink::new();
        assert_eq!(link.acquire(0, 10), 0);
        assert_eq!(link.acquire(5, 10), 10); // queued behind first
        assert_eq!(link.acquire(50, 10), 50); // idle again
        assert_eq!(link.free_at(), 60);
    }
}
