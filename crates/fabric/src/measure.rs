//! The Figure-5 measurement harness: for every `(access path, primitive)`
//! combination, run `n` isolated accesses and report the median — the
//! same methodology as §5.2 (1000 sequential accesses, median reported),
//! with "not measurable" entries for the primitives Table 1 marks `???`.

use std::collections::BTreeMap;
use std::fmt;

use cxl0_protocol::CxlOp;

use crate::latency::LatencyConfig;
use crate::sim::{AccessPath, FabricSim};

/// Summary statistics of one measurement series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesStats {
    /// Median latency (ns).
    pub median: u64,
    /// 25th percentile.
    pub p25: u64,
    /// 75th percentile.
    pub p75: u64,
    /// Minimum observed.
    pub min: u64,
    /// Maximum observed.
    pub max: u64,
    /// Number of samples.
    pub samples: usize,
}

impl SeriesStats {
    /// Computes stats from raw samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        samples.sort_unstable();
        let n = samples.len();
        SeriesStats {
            median: samples[n / 2],
            p25: samples[n / 4],
            p75: samples[(3 * n) / 4],
            min: samples[0],
            max: samples[n - 1],
            samples: n,
        }
    }
}

/// The regenerated Figure 5: median latency of each CXL0 primitive over
/// each access path (`None` = not measurable).
#[derive(Debug, Clone)]
pub struct Figure5 {
    /// Stats per `(path, primitive)`.
    pub entries: BTreeMap<(AccessPath, CxlOp), Option<SeriesStats>>,
    /// Samples per series.
    pub iterations: usize,
}

/// Runs the full Figure-5 sweep: `iterations` accesses per combination.
pub fn run_figure5(cfg: &LatencyConfig, iterations: usize, seed: u64) -> Figure5 {
    let mut entries = BTreeMap::new();
    for (i, path) in AccessPath::ALL.into_iter().enumerate() {
        for (j, op) in CxlOp::ALL.into_iter().enumerate() {
            let mut sim = FabricSim::new(cfg.clone(), seed ^ ((i as u64) << 32) ^ j as u64);
            let mut samples = Vec::with_capacity(iterations);
            for _ in 0..iterations {
                match sim.access(op, path) {
                    Some(ns) => samples.push(ns),
                    None => break,
                }
            }
            let stats = if samples.is_empty() {
                None
            } else {
                Some(SeriesStats::from_samples(samples))
            };
            entries.insert((path, op), stats);
        }
    }
    Figure5 {
        entries,
        iterations,
    }
}

impl Figure5 {
    /// The median for one combination (`None` = not measurable).
    pub fn median(&self, path: AccessPath, op: CxlOp) -> Option<u64> {
        self.entries
            .get(&(path, op))
            .copied()
            .flatten()
            .map(|s| s.median)
    }

    /// Number of "not measurable" combinations (the paper's figure shows
    /// seven).
    pub fn not_measurable(&self) -> usize {
        self.entries.values().filter(|v| v.is_none()).count()
    }

    /// Renders the figure as a table: rows = primitives, columns = paths.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 5: Latency of CXL0 primitives on host and device (median ns, {} samples)",
            self.iterations
        );
        let _ = write!(out, "  {:<8}", "");
        for path in AccessPath::ALL {
            let _ = write!(out, " | {:<28}", path.label());
        }
        let _ = writeln!(out);
        let _ = write!(out, "  {:-<8}", "");
        for _ in AccessPath::ALL {
            let _ = write!(out, "-+-{:-<28}", "");
        }
        let _ = writeln!(out);
        for op in CxlOp::ALL {
            let _ = write!(out, "  {:<8}", op.to_string());
            for path in AccessPath::ALL {
                match self.median(path, op) {
                    Some(ns) => {
                        let _ = write!(out, " | {:<28}", format!("{ns} ns"));
                    }
                    None => {
                        let _ = write!(out, " | {:<28}", "not measurable");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

impl fmt::Display for Figure5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_stats_on_known_data() {
        let s = SeriesStats::from_samples(vec![5, 1, 3, 2, 4]);
        assert_eq!(s.median, 3);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 5);
        assert_eq!(s.p25, 2);
        assert_eq!(s.p75, 4);
        assert_eq!(s.samples, 5);
    }

    #[test]
    fn figure5_has_seven_not_measurable_cells() {
        let fig = run_figure5(&LatencyConfig::testbed(), 100, 42);
        // Host RStore/LFlush on both paths (4) + device LFlush on three
        // paths (3) = 7, as in the paper's figure.
        assert_eq!(fig.not_measurable(), 7);
    }

    #[test]
    fn figure5_medians_are_deterministic_given_seed() {
        let a = run_figure5(&LatencyConfig::testbed(), 200, 1);
        let b = run_figure5(&LatencyConfig::testbed(), 200, 1);
        for (k, v) in &a.entries {
            assert_eq!(
                v.as_ref().map(|s| s.median),
                b.entries[k].as_ref().map(|s| s.median)
            );
        }
    }

    #[test]
    fn figure5_text_mentions_all_paths() {
        let fig = run_figure5(&LatencyConfig::testbed(), 50, 3);
        let text = fig.to_text();
        for path in AccessPath::ALL {
            assert!(text.contains(path.label()), "{}", path.label());
        }
        assert!(text.contains("not measurable"));
    }

    #[test]
    fn medians_track_deterministic_values() {
        let cfg = LatencyConfig::testbed();
        let fig = run_figure5(&cfg, 1001, 9);
        let sim = FabricSim::new(cfg.without_jitter(), 0);
        for path in AccessPath::ALL {
            for op in CxlOp::ALL {
                let det = sim.access_deterministic(op, path);
                let med = fig.median(path, op);
                match (det, med) {
                    (Some(d), Some(m)) => {
                        assert!(m.abs_diff(d) <= 6, "{path:?} {op}: {m} vs {d}")
                    }
                    (None, None) => {}
                    other => panic!("availability mismatch {path:?} {op}: {other:?}"),
                }
            }
        }
    }
}
