//! # `cxl0` — a complete reproduction of *"A Programming Model for
//! Disaggregated Memory over CXL"* (ASPLOS 2026)
//!
//! This facade re-exports the whole workspace behind one dependency:
//!
//! | Module | Crate | Paper artefact |
//! |---|---|---|
//! | [`api`] | `cxl0-runtime` | **the programming model**: `Cluster`/`Session`, typed durable handles (`Word`), `PersistMode`, the durable named-root registry |
//! | [`alloc`] | `cxl0-runtime` | the crash-consistent size-class allocator: durable free lists, allocation intents, generation-tagged pointers, recovery sweep |
//! | [`model`] | `cxl0-model` | the CXL0 operational semantics (§3, Fig. 2), variants (§3.5), topologies (§4), `CXL0_AF` async flushes (§3.2 extension) |
//! | [`explore`] | `cxl0-explore` | litmus tests (Fig. 3 + A1–A8), Proposition 1, variant refinement (FDR4 analogue) |
//! | [`protocol`] | `cxl0-protocol` | CXL.cache/CXL.mem transaction engine + Table 1 (§5.1), CXL 3.0 BISnp pool (§4) |
//! | [`fabric`] | `cxl0-fabric` | latency simulation + Figure 5 (§5.2) |
//! | [`runtime`] | `cxl0-runtime` | executable fabric, FliT (Alg. 2) + FliT-async (Alg. 1 on `CXL0_AF`) + buffered epochs (§8), durable data structures, shared log, GPF snapshots (§6) |
//! | [`dlcheck`] | `cxl0-dlcheck` | durable + buffered-durable linearizability checking (§6, §8) |
//! | [`trace`] | `cxl0-runtime` | opt-in observability: op-level spans, latency histograms, recovery-phase telemetry, Chrome/JSONL export (`CXL0_TRACE`) |
//! | [`workloads`] | `cxl0-workloads` | benchmark workload generation |
//!
//! ## Quickstart: the programming model
//!
//! ```
//! use cxl0::api::Cluster;
//! use cxl0::model::MachineId;
//!
//! // Two compute nodes + one NVM memory node, FliT-CXL0 durability.
//! let cluster = Cluster::symmetric(2, 4096)?;
//! let session = cluster.session(MachineId(0));
//!
//! let jobs = session.create_queue::<u64>("jobs")?;
//! jobs.enqueue(&session, 7)?;
//!
//! // The memory node crashes and recovers; reattach *by name* through
//! // the durable named-root registry — no header address bookkeeping.
//! cluster.crash(cluster.memory_node());
//! cluster.recover(cluster.memory_node());
//! let jobs = session.open_queue::<u64>("jobs")?;
//! jobs.recover(&session)?;
//! assert_eq!(jobs.dequeue(&session)?, Some(7));
//! # Ok::<(), cxl0::api::ApiError>(())
//! ```
//!
//! ## The formal side
//!
//! ```
//! use cxl0::explore::{paper, litmus::run_suite};
//!
//! // Reproduce the paper's litmus-test verdicts:
//! let report = run_suite(&paper::all_tests());
//! assert!(report.all_pass());
//! ```
//!
//! See `examples/` at the repository root for runnable walkthroughs and
//! `crates/bench` for the per-table/per-figure regeneration harnesses.
//! The low-level runtime layer (`runtime::backend`, `runtime::heap`,
//! `runtime::flit`) stays public for primitive-level experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use cxl0_dlcheck as dlcheck;
pub use cxl0_explore as explore;
pub use cxl0_fabric as fabric;
pub use cxl0_model as model;
pub use cxl0_protocol as protocol;
pub use cxl0_runtime as runtime;
pub use cxl0_workloads as workloads;

pub use cxl0_runtime::alloc;
pub use cxl0_runtime::api;
pub use cxl0_runtime::ds;
pub use cxl0_runtime::durable_word;
pub use cxl0_runtime::trace;
