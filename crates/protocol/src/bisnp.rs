//! CXL 3.0 **back-invalidation** flows for the coherent shared memory pool
//! of §4 — the configuration the paper calls out as *envisioned but not yet
//! buildable*: "Currently, there is no CPU or pool device that implements
//! CXL 3.0 back invalidation flows, so cache-coherent sharing is
//! unavailable."
//!
//! This module simulates that future device. A Type-3 pool exposes an
//! HDM-DB region (Host-managed Device Memory with Back-Invalidate) to `N`
//! hosts over CXL.mem. The pool runs an inclusive **snoop filter**
//! (directory): per line it tracks the set of sharers or the single owner.
//! When one host's request conflicts with another host's cached copy, the
//! pool issues **BISnp** (back-invalidate snoop) requests S2M→H and the
//! snooped hosts answer with **BIRsp** responses — the CXL 3.0 flows that
//! make multi-host coherence possible at all.
//!
//! Two layers:
//!
//! * [`pool_op`] — the value-free transaction-generation rules: which link
//!   transactions a CXL0 primitive triggers from a given (issuer state,
//!   directory state), and the resulting states. These regenerate the
//!   *envisioned* Table-1 analogue printed by the `future_pool` binary.
//! * [`CoherentPool`] — a stateful multi-host simulator with values, used
//!   to check that the envisioned device satisfies the CXL0 model's global
//!   cache invariant (§3.3) and single-writer/multiple-reader exclusion —
//!   the precondition for §4's claim that "CXL0 applies to the fully
//!   cache-coherent version".

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::mesi::MesiState;
use crate::transaction::M2SReq;

/// One of the `N` hosts attached to the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub usize);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A cache-line-sized location in the pool's HDM-DB region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineId(pub u32);

/// S2M back-invalidate snoop requests (CXL 3.0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BISnpReq {
    /// Demand the line's data and a downgrade to Shared.
    BISnpData,
    /// Demand invalidation (returning dirty data if any).
    BISnpInv,
}

/// M2S back-invalidate responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BIRsp {
    /// The host invalidated its copy.
    BIRspI,
    /// The host downgraded to Shared.
    BIRspS,
}

/// A transaction on the multi-host pool fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PoolTxn {
    /// A CXL.mem M2S request from `host` to the pool.
    M2S(HostId, M2SReq),
    /// A back-invalidate snoop from the pool to `host`.
    BISnp(HostId, BISnpReq),
    /// `host`'s response to a back-invalidate snoop; `dirty` indicates the
    /// response carried write-back data.
    BIRsp(HostId, BIRsp, bool),
}

impl fmt::Display for PoolTxn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolTxn::M2S(h, r) => {
                let name = match r {
                    M2SReq::MemRdData => "MemRdData",
                    M2SReq::MemRd => "MemRd",
                    M2SReq::MemWr => "MemWr",
                    M2SReq::MemInv => "MemInv",
                };
                write!(f, "{h}→pool {name}")
            }
            PoolTxn::BISnp(h, r) => write!(f, "pool→{h} {r:?}"),
            PoolTxn::BIRsp(h, r, dirty) => {
                write!(f, "{h}→pool {r:?}{}", if *dirty { "+data" } else { "" })
            }
        }
    }
}

/// The pool's directory (snoop-filter) entry for one line.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum DirState {
    /// No host caches the line.
    #[default]
    Invalid,
    /// The listed hosts hold Shared copies.
    Shared(BTreeSet<HostId>),
    /// One host holds the line Exclusive or Modified.
    Owned(HostId),
}

impl DirState {
    /// Every host with a valid copy.
    pub fn holders(&self) -> Vec<HostId> {
        match self {
            DirState::Invalid => Vec::new(),
            DirState::Shared(s) => s.iter().copied().collect(),
            DirState::Owned(h) => vec![*h],
        }
    }
}

impl fmt::Display for DirState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirState::Invalid => write!(f, "I"),
            DirState::Shared(s) => {
                write!(f, "S{{")?;
                for (i, h) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{h}")?;
                }
                write!(f, "}}")
            }
            DirState::Owned(h) => write!(f, "O({h})"),
        }
    }
}

/// The CXL0 primitives available to a pool host (§4's coherent-pool
/// restriction: no remote caches to target, so `RStore`, `LFlush` and
/// remote RMWs do not exist here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PoolOp {
    /// `Load`.
    Read,
    /// `LStore` (cacheable write: read-for-ownership first).
    LStore,
    /// `MStore` (write-through to pool memory).
    MStore,
    /// `RFlush` (drain the line to pool memory everywhere).
    RFlush,
}

impl PoolOp {
    /// All four, in Table order.
    pub const ALL: [PoolOp; 4] = [PoolOp::Read, PoolOp::LStore, PoolOp::MStore, PoolOp::RFlush];
}

impl fmt::Display for PoolOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PoolOp::Read => "Read",
            PoolOp::LStore => "LStore",
            PoolOp::MStore => "MStore",
            PoolOp::RFlush => "RFlush",
        };
        f.write_str(s)
    }
}

/// Outcome of one primitive against the directory: the link transactions
/// in order, the issuer's next MESI state, and the next directory state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolOutcome {
    /// Link transactions, in order.
    pub transactions: Vec<PoolTxn>,
    /// The issuer's cache state afterwards.
    pub issuer_next: MesiState,
    /// The directory entry afterwards.
    pub dir_next: DirState,
}

fn dirty(state: MesiState) -> bool {
    state == MesiState::M
}

/// The transaction-generation rules for the envisioned coherent pool:
/// what happens when `issuer` (whose current cache state for the line is
/// `issuer_state`) performs `op` while the directory holds `dir`.
///
/// `peer_states` supplies the MESI state of each non-issuer holder (used
/// to decide whether a back-invalidation carries dirty data).
///
/// # Panics
///
/// Panics if `issuer_state`/`peer_states` are inconsistent with `dir`
/// (e.g. the issuer claims M while the directory says another host owns
/// the line) — the stateful [`CoherentPool`] can never produce that.
pub fn pool_op(
    op: PoolOp,
    issuer: HostId,
    issuer_state: MesiState,
    dir: &DirState,
    peer_states: &BTreeMap<HostId, MesiState>,
) -> PoolOutcome {
    let mut txns = Vec::new();
    match op {
        PoolOp::Read => match issuer_state {
            MesiState::M | MesiState::E | MesiState::S => PoolOutcome {
                transactions: txns,
                issuer_next: issuer_state,
                dir_next: dir.clone(),
            },
            MesiState::I => {
                txns.push(PoolTxn::M2S(issuer, M2SReq::MemRdData));
                let mut sharers = BTreeSet::new();
                sharers.insert(issuer);
                match dir {
                    DirState::Invalid => {}
                    DirState::Shared(s) => sharers.extend(s.iter().copied()),
                    DirState::Owned(g) => {
                        assert_ne!(*g, issuer, "owner cannot be I");
                        let was_dirty = dirty(peer_states[g]);
                        txns.push(PoolTxn::BISnp(*g, BISnpReq::BISnpData));
                        txns.push(PoolTxn::BIRsp(*g, BIRsp::BIRspS, was_dirty));
                        sharers.insert(*g);
                    }
                }
                PoolOutcome {
                    transactions: txns,
                    issuer_next: MesiState::S,
                    dir_next: DirState::Shared(sharers),
                }
            }
        },
        PoolOp::LStore => match issuer_state {
            MesiState::M | MesiState::E => PoolOutcome {
                transactions: txns,
                issuer_next: MesiState::M,
                dir_next: DirState::Owned(issuer),
            },
            MesiState::S => {
                // Ownership upgrade: no data transfer, but every other
                // sharer must be back-invalidated.
                txns.push(PoolTxn::M2S(issuer, M2SReq::MemInv));
                if let DirState::Shared(s) = dir {
                    for h in s {
                        if *h != issuer {
                            txns.push(PoolTxn::BISnp(*h, BISnpReq::BISnpInv));
                            txns.push(PoolTxn::BIRsp(*h, BIRsp::BIRspI, false));
                        }
                    }
                }
                PoolOutcome {
                    transactions: txns,
                    issuer_next: MesiState::M,
                    dir_next: DirState::Owned(issuer),
                }
            }
            MesiState::I => {
                txns.push(PoolTxn::M2S(issuer, M2SReq::MemRd));
                match dir {
                    DirState::Invalid => {}
                    DirState::Shared(s) => {
                        for h in s {
                            txns.push(PoolTxn::BISnp(*h, BISnpReq::BISnpInv));
                            txns.push(PoolTxn::BIRsp(*h, BIRsp::BIRspI, false));
                        }
                    }
                    DirState::Owned(g) => {
                        let was_dirty = dirty(peer_states[g]);
                        txns.push(PoolTxn::BISnp(*g, BISnpReq::BISnpInv));
                        txns.push(PoolTxn::BIRsp(*g, BIRsp::BIRspI, was_dirty));
                    }
                }
                PoolOutcome {
                    transactions: txns,
                    issuer_next: MesiState::M,
                    dir_next: DirState::Owned(issuer),
                }
            }
        },
        PoolOp::MStore => {
            // Write-through: every cached copy (the issuer's included) is
            // invalidated, then pool memory is written.
            for h in dir.holders() {
                if h != issuer {
                    let was_dirty = dirty(peer_states[&h]);
                    txns.push(PoolTxn::BISnp(h, BISnpReq::BISnpInv));
                    txns.push(PoolTxn::BIRsp(h, BIRsp::BIRspI, was_dirty));
                }
            }
            txns.push(PoolTxn::M2S(issuer, M2SReq::MemWr));
            PoolOutcome {
                transactions: txns,
                issuer_next: MesiState::I,
                dir_next: DirState::Invalid,
            }
        }
        PoolOp::RFlush => {
            // Drain the line everywhere; dirty copies write back.
            for h in dir.holders() {
                if h == issuer {
                    continue;
                }
                let was_dirty = dirty(peer_states[&h]);
                txns.push(PoolTxn::BISnp(h, BISnpReq::BISnpInv));
                txns.push(PoolTxn::BIRsp(h, BIRsp::BIRspI, was_dirty));
            }
            if issuer_state != MesiState::I {
                // The issuer's own copy drains with an explicit write-back
                // (dirty) or silently (clean).
                if dirty(issuer_state) {
                    txns.push(PoolTxn::M2S(issuer, M2SReq::MemWr));
                }
            }
            PoolOutcome {
                transactions: txns,
                issuer_next: MesiState::I,
                dir_next: DirState::Invalid,
            }
        }
    }
}

/// A stateful multi-host coherent pool: per-host MESI + value, a directory
/// per line, and pool memory. Every operation returns the generated link
/// traffic; invariants are re-checked after each step in debug builds.
///
/// # Examples
///
/// ```
/// use cxl0_protocol::bisnp::{CoherentPool, HostId, LineId, PoolOp};
///
/// let mut pool = CoherentPool::new(3, 4);
/// let x = LineId(0);
/// // h0 writes 7 into its cache; h1's read triggers a back-invalidate
/// // snoop that downgrades h0 and fetches the dirty data.
/// pool.lstore(HostId(0), x, 7);
/// let (v, txns) = pool.read(HostId(1), x);
/// assert_eq!(v, 7);
/// assert!(txns.iter().any(|t| t.to_string().contains("BISnpData")));
/// pool.check_invariants().unwrap();
/// ```
#[derive(Debug)]
pub struct CoherentPool {
    hosts: usize,
    mem: Vec<u64>,
    dir: Vec<DirState>,
    /// `caches[h][line] = (state, value)`; absent = Invalid.
    caches: Vec<BTreeMap<LineId, (MesiState, u64)>>,
    log: Vec<PoolTxn>,
}

impl CoherentPool {
    /// A pool with `hosts` hosts and `lines` zero-initialized lines.
    pub fn new(hosts: usize, lines: u32) -> Self {
        CoherentPool {
            hosts,
            mem: vec![0; lines as usize],
            dir: vec![DirState::Invalid; lines as usize],
            caches: vec![BTreeMap::new(); hosts],
            log: Vec::new(),
        }
    }

    /// Number of attached hosts.
    pub fn hosts(&self) -> usize {
        self.hosts
    }

    /// The pool memory value of `line`.
    pub fn memory(&self, line: LineId) -> u64 {
        self.mem[line.0 as usize]
    }

    /// The directory entry for `line`.
    pub fn directory(&self, line: LineId) -> &DirState {
        &self.dir[line.0 as usize]
    }

    /// `host`'s cache state for `line` (`I` if absent).
    pub fn host_state(&self, host: HostId, line: LineId) -> MesiState {
        self.caches[host.0]
            .get(&line)
            .map(|(s, _)| *s)
            .unwrap_or(MesiState::I)
    }

    /// All link traffic so far, in order.
    pub fn log(&self) -> &[PoolTxn] {
        &self.log
    }

    /// Clears the traffic log (between experiment phases).
    pub fn clear_log(&mut self) {
        self.log.clear();
    }

    fn peer_states(&self, line: LineId, issuer: HostId) -> BTreeMap<HostId, MesiState> {
        (0..self.hosts)
            .map(HostId)
            .filter(|h| *h != issuer)
            .map(|h| (h, self.host_state(h, line)))
            .collect()
    }

    fn apply_outcome(&mut self, issuer: HostId, line: LineId, outcome: &PoolOutcome) {
        // Process back-invalidations: snooped hosts write back dirty data
        // and downgrade/invalidate.
        for t in &outcome.transactions {
            if let PoolTxn::BIRsp(h, rsp, dirty) = t {
                let entry = self.caches[h.0].get(&line).copied();
                if let Some((_, v)) = entry {
                    if *dirty {
                        self.mem[line.0 as usize] = v;
                    }
                    match rsp {
                        BIRsp::BIRspI => {
                            self.caches[h.0].remove(&line);
                        }
                        BIRsp::BIRspS => {
                            self.caches[h.0].insert(line, (MesiState::S, v));
                        }
                    }
                }
            }
        }
        let _ = issuer;
        self.log.extend(outcome.transactions.iter().copied());
        self.dir[line.0 as usize] = outcome.dir_next.clone();
    }

    /// `Load`: returns the value and the link traffic it generated.
    pub fn read(&mut self, host: HostId, line: LineId) -> (u64, Vec<PoolTxn>) {
        let st = self.host_state(host, line);
        let outcome = pool_op(
            PoolOp::Read,
            host,
            st,
            &self.dir[line.0 as usize].clone(),
            &self.peer_states(line, host),
        );
        self.apply_outcome(host, line, &outcome);
        let v = if st == MesiState::I {
            // Data came from the pool (possibly freshened by a BISnpData
            // write-back processed in apply_outcome).
            let v = self
                .holders_value(line)
                .unwrap_or(self.mem[line.0 as usize]);
            self.caches[host.0].insert(line, (outcome.issuer_next, v));
            v
        } else {
            self.caches[host.0][&line].1
        };
        (v, outcome.transactions)
    }

    fn holders_value(&self, line: LineId) -> Option<u64> {
        for c in &self.caches {
            if let Some((_, v)) = c.get(&line) {
                return Some(*v);
            }
        }
        None
    }

    /// `LStore`: cacheable write (read-for-ownership + modify).
    pub fn lstore(&mut self, host: HostId, line: LineId, v: u64) -> Vec<PoolTxn> {
        let st = self.host_state(host, line);
        let outcome = pool_op(
            PoolOp::LStore,
            host,
            st,
            &self.dir[line.0 as usize].clone(),
            &self.peer_states(line, host),
        );
        self.apply_outcome(host, line, &outcome);
        self.caches[host.0].insert(line, (MesiState::M, v));
        outcome.transactions
    }

    /// `MStore`: write-through to pool memory, invalidating every copy.
    pub fn mstore(&mut self, host: HostId, line: LineId, v: u64) -> Vec<PoolTxn> {
        let st = self.host_state(host, line);
        let outcome = pool_op(
            PoolOp::MStore,
            host,
            st,
            &self.dir[line.0 as usize].clone(),
            &self.peer_states(line, host),
        );
        self.apply_outcome(host, line, &outcome);
        self.caches[host.0].remove(&line);
        self.mem[line.0 as usize] = v;
        outcome.transactions
    }

    /// `RFlush`: drain the line to pool memory everywhere.
    pub fn rflush(&mut self, host: HostId, line: LineId) -> Vec<PoolTxn> {
        let st = self.host_state(host, line);
        let outcome = pool_op(
            PoolOp::RFlush,
            host,
            st,
            &self.dir[line.0 as usize].clone(),
            &self.peer_states(line, host),
        );
        self.apply_outcome(host, line, &outcome);
        if let Some((s, v)) = self.caches[host.0].remove(&line) {
            if s == MesiState::M {
                self.mem[line.0 as usize] = v;
            }
        }
        outcome.transactions
    }

    /// Crash of `host`: its cache vanishes; the pool poisons the
    /// directory entries it owned (CXL Isolation, the `CXL0_PSN` analogue:
    /// the pool device detects the dead host and cleans its tracking).
    pub fn crash_host(&mut self, host: HostId) {
        let lines: Vec<LineId> = self.caches[host.0].keys().copied().collect();
        self.caches[host.0].clear();
        for line in lines {
            let d = &mut self.dir[line.0 as usize];
            match d {
                DirState::Owned(h) if *h == host => *d = DirState::Invalid,
                DirState::Shared(s) => {
                    s.remove(&host);
                    if s.is_empty() {
                        *d = DirState::Invalid;
                    }
                }
                _ => {}
            }
        }
    }

    /// Checks the two §3.3/§4 invariants this device must uphold for CXL0
    /// to apply:
    ///
    /// 1. **global cache invariant** — all valid copies of a line agree on
    ///    one value;
    /// 2. **SWMR + directory accuracy** — an M/E copy is unique and the
    ///    directory entry matches the real holder sets exactly.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        for line in 0..self.mem.len() as u32 {
            let line = LineId(line);
            let mut value: Option<u64> = None;
            let mut holders = BTreeSet::new();
            let mut owner: Option<HostId> = None;
            for h in 0..self.hosts {
                if let Some(&(s, v)) = self.caches[h].get(&line) {
                    holders.insert(HostId(h));
                    if let Some(prev) = value {
                        if prev != v {
                            return Err(format!(
                                "cache invariant violated at {line:?}: {prev} vs {v}"
                            ));
                        }
                    }
                    value = Some(v);
                    if s == MesiState::M || s == MesiState::E {
                        if owner.is_some() {
                            return Err(format!("two owners for {line:?}"));
                        }
                        owner = Some(HostId(h));
                    }
                }
            }
            if owner.is_some() && holders.len() > 1 {
                return Err(format!("owner plus sharers for {line:?}"));
            }
            let expected = match (owner, holders.len()) {
                (Some(h), _) => DirState::Owned(h),
                (None, 0) => DirState::Invalid,
                (None, _) => DirState::Shared(holders.clone()),
            };
            if *self.directory(line) != expected {
                return Err(format!(
                    "directory mismatch at {line:?}: dir={} real={expected}",
                    self.directory(line)
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H0: HostId = HostId(0);
    const H1: HostId = HostId(1);
    const H2: HostId = HostId(2);
    const X: LineId = LineId(0);

    #[test]
    fn cold_read_is_a_plain_memrddata() {
        let mut p = CoherentPool::new(2, 1);
        let (v, txns) = p.read(H0, X);
        assert_eq!(v, 0);
        assert_eq!(txns, vec![PoolTxn::M2S(H0, M2SReq::MemRdData)]);
        assert_eq!(*p.directory(X), DirState::Shared([H0].into()));
        p.check_invariants().unwrap();
    }

    #[test]
    fn warm_read_generates_no_traffic() {
        let mut p = CoherentPool::new(2, 1);
        p.read(H0, X);
        let (_, txns) = p.read(H0, X);
        assert!(txns.is_empty());
    }

    #[test]
    fn read_of_modified_line_back_snoops_the_owner() {
        let mut p = CoherentPool::new(2, 1);
        p.lstore(H0, X, 7);
        assert_eq!(*p.directory(X), DirState::Owned(H0));
        let (v, txns) = p.read(H1, X);
        assert_eq!(v, 7);
        assert_eq!(
            txns,
            vec![
                PoolTxn::M2S(H1, M2SReq::MemRdData),
                PoolTxn::BISnp(H0, BISnpReq::BISnpData),
                PoolTxn::BIRsp(H0, BIRsp::BIRspS, true),
            ]
        );
        // The dirty data was written back and both hosts share it.
        assert_eq!(p.memory(X), 7);
        assert_eq!(p.host_state(H0, X), MesiState::S);
        assert_eq!(p.host_state(H1, X), MesiState::S);
        p.check_invariants().unwrap();
    }

    #[test]
    fn store_to_shared_line_back_invalidates_all_sharers() {
        let mut p = CoherentPool::new(3, 1);
        p.read(H0, X);
        p.read(H1, X);
        p.read(H2, X);
        p.clear_log();
        let txns = p.lstore(H0, X, 5);
        // Upgrade: MemInv + BISnpInv to the two other sharers.
        assert_eq!(txns[0], PoolTxn::M2S(H0, M2SReq::MemInv));
        let snoops = txns
            .iter()
            .filter(|t| matches!(t, PoolTxn::BISnp(_, BISnpReq::BISnpInv)))
            .count();
        assert_eq!(snoops, 2);
        assert_eq!(*p.directory(X), DirState::Owned(H0));
        assert_eq!(p.host_state(H1, X), MesiState::I);
        p.check_invariants().unwrap();
    }

    #[test]
    fn store_to_foreign_modified_line_fetches_and_invalidates() {
        let mut p = CoherentPool::new(2, 1);
        p.lstore(H0, X, 3);
        let txns = p.lstore(H1, X, 4);
        assert_eq!(
            txns,
            vec![
                PoolTxn::M2S(H1, M2SReq::MemRd),
                PoolTxn::BISnp(H0, BISnpReq::BISnpInv),
                PoolTxn::BIRsp(H0, BIRsp::BIRspI, true),
            ]
        );
        // h0's dirty 3 was written back before h1's 4 took over the line.
        assert_eq!(p.memory(X), 3);
        let (v, _) = p.read(H1, X);
        assert_eq!(v, 4);
        p.check_invariants().unwrap();
    }

    #[test]
    fn mstore_invalidates_everything_and_writes_through() {
        let mut p = CoherentPool::new(3, 1);
        p.lstore(H0, X, 3);
        let txns = p.mstore(H1, X, 9);
        assert!(txns.contains(&PoolTxn::BISnp(H0, BISnpReq::BISnpInv)));
        assert_eq!(*txns.last().unwrap(), PoolTxn::M2S(H1, M2SReq::MemWr));
        assert_eq!(p.memory(X), 9);
        assert_eq!(*p.directory(X), DirState::Invalid);
        for h in [H0, H1, H2] {
            assert_eq!(p.host_state(h, X), MesiState::I);
        }
        p.check_invariants().unwrap();
    }

    #[test]
    fn rflush_drains_dirty_owner_via_writeback() {
        let mut p = CoherentPool::new(2, 1);
        p.lstore(H0, X, 6);
        let txns = p.rflush(H0, X);
        assert_eq!(txns, vec![PoolTxn::M2S(H0, M2SReq::MemWr)]);
        assert_eq!(p.memory(X), 6);
        assert_eq!(*p.directory(X), DirState::Invalid);
        p.check_invariants().unwrap();
    }

    #[test]
    fn rflush_by_non_holder_back_invalidates_the_owner() {
        let mut p = CoherentPool::new(2, 1);
        p.lstore(H0, X, 6);
        let txns = p.rflush(H1, X);
        assert_eq!(
            txns,
            vec![
                PoolTxn::BISnp(H0, BISnpReq::BISnpInv),
                PoolTxn::BIRsp(H0, BIRsp::BIRspI, true),
            ]
        );
        assert_eq!(p.memory(X), 6);
        p.check_invariants().unwrap();
    }

    #[test]
    fn crash_poisons_directory_tracking() {
        let mut p = CoherentPool::new(2, 2);
        p.lstore(H0, X, 6);
        p.read(H1, LineId(1));
        p.crash_host(H0);
        assert_eq!(*p.directory(X), DirState::Invalid);
        // The dirty 6 never reached memory: exactly the model's lost
        // un-flushed LStore (litmus test 1's behavior, multi-host form).
        assert_eq!(p.memory(X), 0);
        p.check_invariants().unwrap();
        // The other host's state is untouched.
        assert_eq!(p.host_state(H1, LineId(1)), MesiState::S);
    }

    #[test]
    fn rflush_then_crash_is_durable() {
        let mut p = CoherentPool::new(2, 1);
        p.lstore(H0, X, 6);
        p.rflush(H0, X);
        p.crash_host(H0);
        assert_eq!(p.memory(X), 6); // litmus test 5's ✗, multi-host form
    }

    #[test]
    fn invariants_hold_under_random_traffic() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let mut p = CoherentPool::new(4, 4);
        for step in 0..2_000 {
            let h = HostId(rng.gen_range(0..4));
            let line = LineId(rng.gen_range(0..4));
            match rng.gen_range(0..5) {
                0 => {
                    p.read(h, line);
                }
                1 => {
                    p.lstore(h, line, step);
                }
                2 => {
                    p.mstore(h, line, step);
                }
                3 => {
                    p.rflush(h, line);
                }
                _ => p.crash_host(h),
            }
            p.check_invariants()
                .unwrap_or_else(|e| panic!("step {step}: {e}"));
        }
    }

    #[test]
    fn coherence_reads_see_last_write() {
        // The linear story the CXL0 model's Load rule promises.
        let mut p = CoherentPool::new(3, 1);
        p.lstore(H0, X, 1);
        assert_eq!(p.read(H1, X).0, 1);
        p.lstore(H2, X, 2);
        assert_eq!(p.read(H0, X).0, 2);
        p.mstore(H1, X, 3);
        assert_eq!(p.read(H2, X).0, 3);
        p.check_invariants().unwrap();
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            PoolTxn::M2S(H0, M2SReq::MemRdData).to_string(),
            "h0→pool MemRdData"
        );
        assert_eq!(
            PoolTxn::BISnp(H1, BISnpReq::BISnpInv).to_string(),
            "pool→h1 BISnpInv"
        );
        assert_eq!(
            PoolTxn::BIRsp(H1, BIRsp::BIRspI, true).to_string(),
            "h1→pool BIRspI+data"
        );
        assert_eq!(DirState::Owned(H0).to_string(), "O(h0)");
        assert_eq!(DirState::Invalid.to_string(), "I");
    }
}
