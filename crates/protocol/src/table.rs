//! Regenerating **Table 1**: for every CXL0 primitive, issuing node and
//! memory target, enumerate all legal MESI state pairs (and, for the
//! device's `MStore`, all instruction variants), collect the distinct
//! transaction sequences the protocol engine generates, and compare
//! against the cells printed in the paper.

use std::collections::BTreeMap;
use std::fmt;

use crate::analyzer::Analyzer;
use crate::mesi::CachePair;
use crate::ops::{perform, CxlOp, DeviceMStoreStrategy, MemTarget, Node};
use crate::transaction::{render_sequence, Transaction};

/// One row-cell of Table 1: the distinct transaction sequences a
/// primitive can generate, or `Unavailable` (`???` in the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cell {
    /// No instruction sequence generates this primitive from this node.
    Unavailable,
    /// The set of distinct transaction sequences (sorted).
    Sequences(Vec<Vec<Transaction>>),
}

impl Cell {
    /// Renders like the paper: `"???"`, or `"None, SnpInv"`, etc.
    pub fn render(&self) -> String {
        match self {
            Cell::Unavailable => "???".to_string(),
            Cell::Sequences(seqs) => seqs
                .iter()
                .map(|s| render_sequence(s))
                .collect::<Vec<_>>()
                .join(", "),
        }
    }

    /// Builds a sorted sequence cell.
    pub fn sequences<I>(seqs: I) -> Cell
    where
        I: IntoIterator<Item = Vec<Transaction>>,
    {
        let mut v: Vec<Vec<Transaction>> = seqs.into_iter().collect();
        v.sort();
        v.dedup();
        Cell::Sequences(v)
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// The regenerated Table 1.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Cells indexed by `(node, op, target)`.
    pub cells: BTreeMap<(Node, CxlOp, MemTarget), Cell>,
}

/// Enumerates every combination and produces the table. An [`Analyzer`]
/// observes all generated traffic (returned for inspection).
pub fn generate_table1() -> (Table1, Analyzer) {
    let mut analyzer = Analyzer::new();
    let mut cells = BTreeMap::new();
    for node in [Node::Host, Node::Device] {
        for op in CxlOp::ALL {
            for target in [MemTarget::HostMemory, MemTarget::DeviceMemory] {
                let mut seqs: Vec<Vec<Transaction>> = Vec::new();
                let mut available = false;
                for st in CachePair::legal_pairs() {
                    // The strategy dimension only matters for the device's
                    // MStore; enumerate it there, fix it elsewhere.
                    let strategies: &[DeviceMStoreStrategy] =
                        if node == Node::Device && op == CxlOp::MStore {
                            &DeviceMStoreStrategy::ALL
                        } else {
                            &[DeviceMStoreStrategy::CachingWriteFlush]
                        };
                    for &strategy in strategies {
                        if let Some(out) = perform(node, op, target, st, strategy) {
                            available = true;
                            analyzer.record(node, op, target, st, out.transactions.clone());
                            if !seqs.contains(&out.transactions) {
                                seqs.push(out.transactions);
                            }
                        }
                    }
                }
                let cell = if available {
                    Cell::sequences(seqs)
                } else {
                    Cell::Unavailable
                };
                cells.insert((node, op, target), cell);
            }
        }
    }
    (Table1 { cells }, analyzer)
}

impl Table1 {
    /// The cell for `(node, op, target)`.
    ///
    /// # Panics
    ///
    /// Panics if the combination is missing (cannot happen for generated
    /// tables).
    pub fn cell(&self, node: Node, op: CxlOp, target: MemTarget) -> &Cell {
        &self.cells[&(node, op, target)]
    }

    /// Formats the table in the paper's layout (one block per node, one
    /// row per primitive, columns HM / HDM-in-host-bias).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Table 1: Observable CXL transactions for all possible CXL0 primitives"
        );
        for node in [Node::Host, Node::Device] {
            let _ = writeln!(out, "\n[{node}]");
            let _ = writeln!(
                out,
                "  {:<8} | {:<45} | {:<45}",
                "CXL0", "to HM", "to HDM in Host-Bias"
            );
            let _ = writeln!(out, "  {:-<8}-+-{:-<45}-+-{:-<45}", "", "", "");
            for op in CxlOp::ALL {
                let hm = self.cell(node, op, MemTarget::HostMemory).render();
                let hdm = self.cell(node, op, MemTarget::DeviceMemory).render();
                let _ = writeln!(out, "  {:<8} | {:<45} | {:<45}", op.to_string(), hm, hdm);
            }
        }
        out
    }
}

/// The paper's Table 1, transcribed as expected cells (§5.1).
pub fn expected_paper_cells() -> BTreeMap<(Node, CxlOp, MemTarget), Cell> {
    use Transaction as T;
    let mut m = BTreeMap::new();
    fn seq(v: Vec<Vec<Transaction>>) -> Cell {
        Cell::sequences(v)
    }
    let none: Vec<Transaction> = vec![];

    // -------- Host --------
    m.insert(
        (Node::Host, CxlOp::Read, MemTarget::HostMemory),
        seq(vec![none.clone(), vec![T::SNP_INV]]),
    );
    m.insert(
        (Node::Host, CxlOp::Read, MemTarget::DeviceMemory),
        seq(vec![none.clone(), vec![T::MEM_RD_DATA]]),
    );
    m.insert(
        (Node::Host, CxlOp::LStore, MemTarget::HostMemory),
        seq(vec![none.clone(), vec![T::SNP_INV]]),
    );
    m.insert(
        (Node::Host, CxlOp::LStore, MemTarget::DeviceMemory),
        seq(vec![none.clone(), vec![T::MEM_RD_DATA], vec![T::MEM_RD]]),
    );
    m.insert(
        (Node::Host, CxlOp::RStore, MemTarget::HostMemory),
        Cell::Unavailable,
    );
    m.insert(
        (Node::Host, CxlOp::RStore, MemTarget::DeviceMemory),
        Cell::Unavailable,
    );
    m.insert(
        (Node::Host, CxlOp::MStore, MemTarget::HostMemory),
        seq(vec![vec![T::SNP_INV]]),
    );
    m.insert(
        (Node::Host, CxlOp::MStore, MemTarget::DeviceMemory),
        seq(vec![vec![T::MEM_WR]]),
    );
    m.insert(
        (Node::Host, CxlOp::LFlush, MemTarget::HostMemory),
        Cell::Unavailable,
    );
    m.insert(
        (Node::Host, CxlOp::LFlush, MemTarget::DeviceMemory),
        Cell::Unavailable,
    );
    m.insert(
        (Node::Host, CxlOp::RFlush, MemTarget::HostMemory),
        seq(vec![none.clone(), vec![T::SNP_INV]]),
    );
    m.insert(
        (Node::Host, CxlOp::RFlush, MemTarget::DeviceMemory),
        seq(vec![none.clone(), vec![T::MEM_INV], vec![T::MEM_WR]]),
    );

    // -------- Device --------
    m.insert(
        (Node::Device, CxlOp::Read, MemTarget::HostMemory),
        seq(vec![none.clone(), vec![T::RD_SHARED]]),
    );
    m.insert(
        (Node::Device, CxlOp::Read, MemTarget::DeviceMemory),
        seq(vec![none.clone(), vec![T::RD_SHARED]]),
    );
    m.insert(
        (Node::Device, CxlOp::LStore, MemTarget::HostMemory),
        seq(vec![none.clone(), vec![T::RD_OWN]]),
    );
    m.insert(
        (Node::Device, CxlOp::LStore, MemTarget::DeviceMemory),
        seq(vec![none.clone(), vec![T::RD_OWN]]),
    );
    m.insert(
        (Node::Device, CxlOp::RStore, MemTarget::HostMemory),
        seq(vec![vec![T::ITOM_WR]]),
    );
    m.insert(
        (Node::Device, CxlOp::RStore, MemTarget::DeviceMemory),
        seq(vec![none.clone(), vec![T::RD_OWN]]),
    );
    m.insert(
        (Node::Device, CxlOp::MStore, MemTarget::HostMemory),
        seq(vec![
            vec![T::DIRTY_EVICT],
            vec![T::RD_OWN, T::DIRTY_EVICT],
            vec![T::WO_WR_INV_F],
            vec![T::WR_INV],
        ]),
    );
    m.insert(
        (Node::Device, CxlOp::MStore, MemTarget::DeviceMemory),
        seq(vec![none.clone(), vec![T::MEM_RD]]),
    );
    m.insert(
        (Node::Device, CxlOp::LFlush, MemTarget::HostMemory),
        Cell::Unavailable,
    );
    m.insert(
        (Node::Device, CxlOp::LFlush, MemTarget::DeviceMemory),
        Cell::Unavailable,
    );
    m.insert(
        (Node::Device, CxlOp::RFlush, MemTarget::HostMemory),
        seq(vec![vec![T::CLEAN_EVICT], vec![T::DIRTY_EVICT]]),
    );
    m.insert(
        (Node::Device, CxlOp::RFlush, MemTarget::DeviceMemory),
        seq(vec![none, vec![T::MEM_RD]]),
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_table_matches_paper_exactly() {
        let (table, _analyzer) = generate_table1();
        let expected = expected_paper_cells();
        assert_eq!(table.cells.len(), expected.len());
        for (key, want) in &expected {
            let got = &table.cells[key];
            assert_eq!(
                got,
                want,
                "{:?}: generated `{}` but the paper reports `{}`",
                key,
                got.render(),
                want.render()
            );
        }
    }

    #[test]
    fn text_rendering_contains_key_cells() {
        let (table, _) = generate_table1();
        let text = table.to_text();
        assert!(text.contains("Table 1"));
        assert!(text.contains("???"));
        assert!(text.contains("ItoMWr"));
        assert!(text.contains("RdOwn + DirtyEvict"));
        assert!(text.contains("WOWrInv/F"));
    }

    #[test]
    fn analyzer_saw_every_enumerated_case() {
        let (_, analyzer) = generate_table1();
        // 2 nodes × 6 ops × 2 targets × 8 pairs, minus unavailable rows
        // (3 node-op combos × 2 targets × 8 pairs), plus the extra
        // MStore-strategy enumeration (device MStore: 2 targets × 8 pairs
        // × 2 extra strategies).
        let expected = 2 * 6 * 2 * 8 - 3 * 2 * 8 + 2 * 8 * 2;
        assert_eq!(analyzer.observations().len(), expected);
    }

    #[test]
    fn cell_rendering_matches_paper_style() {
        let c = Cell::sequences([vec![], vec![Transaction::SNP_INV]]);
        assert_eq!(c.render(), "None, SnpInv");
        assert_eq!(Cell::Unavailable.render(), "???");
    }
}
