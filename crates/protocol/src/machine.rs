//! A stateful host–device pair simulator: per-line MESI pairs driven
//! through the transaction-generation rules, with an attached
//! [`Analyzer`]. This is the component the latency experiments
//! (`cxl0-fabric`) and the Table-1 generator both drive.

use std::collections::BTreeMap;

use crate::analyzer::Analyzer;
use crate::mesi::CachePair;
use crate::ops::{perform, CxlOp, DeviceMStoreStrategy, MemTarget, Node};
use crate::transaction::Transaction;

/// Identifies a cache line within one of the two memories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Line {
    /// Which memory the line belongs to.
    pub target: MemTarget,
    /// The line index within that memory.
    pub index: u32,
}

impl Line {
    /// Constructs a line id.
    pub fn new(target: MemTarget, index: u32) -> Self {
        Line { target, index }
    }
}

/// The stateful pair simulator.
///
/// # Examples
///
/// ```
/// use cxl0_protocol::{HostDevicePair, Line, CxlOp, MemTarget, Node, Transaction};
///
/// let mut sim = HostDevicePair::new();
/// let line = Line::new(MemTarget::DeviceMemory, 0);
/// // Host read miss on HDM: one MemRdData on the link.
/// let txns = sim.perform(Node::Host, CxlOp::Read, line).unwrap();
/// assert_eq!(txns, vec![Transaction::MEM_RD_DATA]);
/// // Second read hits: silent.
/// let txns = sim.perform(Node::Host, CxlOp::Read, line).unwrap();
/// assert!(txns.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct HostDevicePair {
    lines: BTreeMap<Line, CachePair>,
    analyzer: Analyzer,
    strategy: DeviceMStoreStrategy,
}

impl HostDevicePair {
    /// A fresh pair with all lines invalid everywhere.
    pub fn new() -> Self {
        HostDevicePair {
            lines: BTreeMap::new(),
            analyzer: Analyzer::new(),
            strategy: DeviceMStoreStrategy::CachingWriteFlush,
        }
    }

    /// Selects the device's `MStore` instruction variant.
    pub fn set_mstore_strategy(&mut self, strategy: DeviceMStoreStrategy) {
        self.strategy = strategy;
    }

    /// The current MESI pair of `line`.
    pub fn state(&self, line: Line) -> CachePair {
        self.lines
            .get(&line)
            .copied()
            .unwrap_or_else(CachePair::invalid)
    }

    /// Forces a line into a specific state pair (test setup; Table-1
    /// enumeration).
    ///
    /// # Panics
    ///
    /// Panics if `pair` is illegal.
    pub fn set_state(&mut self, line: Line, pair: CachePair) {
        assert!(pair.is_legal(), "illegal MESI pair {pair}");
        self.lines.insert(line, pair);
    }

    /// Performs `op` by `node` on `line`, recording the link traffic.
    /// Returns the transactions, or `None` if the primitive is not
    /// available from that node (Table 1's `???`).
    pub fn perform(&mut self, node: Node, op: CxlOp, line: Line) -> Option<Vec<Transaction>> {
        let before = self.state(line);
        let outcome = perform(node, op, line.target, before, self.strategy)?;
        self.lines.insert(line, outcome.next);
        self.analyzer
            .record(node, op, line.target, before, outcome.transactions.clone());
        Some(outcome.transactions)
    }

    /// The attached analyzer.
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// Mutable access to the analyzer (e.g. to clear it between phases).
    pub fn analyzer_mut(&mut self) -> &mut Analyzer {
        &mut self.analyzer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesi::MesiState;

    #[test]
    fn read_miss_then_hit() {
        let mut sim = HostDevicePair::new();
        let line = Line::new(MemTarget::HostMemory, 0);
        // Device read miss: RdShared.
        assert_eq!(
            sim.perform(Node::Device, CxlOp::Read, line).unwrap(),
            vec![Transaction::RD_SHARED]
        );
        // Hit: silent.
        assert!(sim
            .perform(Node::Device, CxlOp::Read, line)
            .unwrap()
            .is_empty());
        assert_eq!(sim.state(line).device, MesiState::S);
    }

    #[test]
    fn write_after_remote_read_invalidates() {
        let mut sim = HostDevicePair::new();
        let line = Line::new(MemTarget::HostMemory, 3);
        sim.perform(Node::Device, CxlOp::Read, line).unwrap();
        // Host store snoops the device's shared copy out.
        assert_eq!(
            sim.perform(Node::Host, CxlOp::LStore, line).unwrap(),
            vec![Transaction::SNP_INV]
        );
        assert_eq!(sim.state(line), CachePair::new(MesiState::M, MesiState::I));
    }

    #[test]
    fn unavailable_op_returns_none_and_records_nothing() {
        let mut sim = HostDevicePair::new();
        let line = Line::new(MemTarget::HostMemory, 0);
        assert!(sim.perform(Node::Host, CxlOp::RStore, line).is_none());
        assert!(sim.analyzer().observations().is_empty());
    }

    #[test]
    fn states_remain_legal_across_random_sequences() {
        use proptest::prelude::*;
        let mut runner = proptest::test_runner::TestRunner::default();
        let strategy = proptest::collection::vec((0..2usize, 0..6usize, 0..2usize, 0..4u32), 0..60);
        runner
            .run(&strategy, |ops| {
                let mut sim = HostDevicePair::new();
                for (node, op, target, idx) in ops {
                    let node = if node == 0 { Node::Host } else { Node::Device };
                    let op = CxlOp::ALL[op];
                    let target = if target == 0 {
                        MemTarget::HostMemory
                    } else {
                        MemTarget::DeviceMemory
                    };
                    let line = Line::new(target, idx);
                    let _ = sim.perform(node, op, line);
                    prop_assert!(sim.state(line).is_legal());
                }
                Ok(())
            })
            .unwrap();
    }
}
