//! # `cxl0-protocol` — transaction-level CXL.cache / CXL.mem simulation
//!
//! The paper's §5 maps CXL0 primitives to the concrete CXL transactions
//! observed on a real x86 + FPGA (Type-2) link with a protocol analyzer.
//! This crate rebuilds that setup in simulation:
//!
//! * [`mesi`] — MESI states and the legal host/device state pairs;
//! * [`transaction`] — the CXL.cache (H2D, D2H) and CXL.mem (M2S)
//!   transaction vocabulary of Table 1;
//! * [`ops`] — the transaction-generation rules: which link transactions
//!   each CXL0 primitive emits from each node/target/state, and the next
//!   coherence state (a complete value-free protocol engine);
//! * [`machine`] — a stateful host–device pair driving sequences of
//!   primitives;
//! * [`analyzer`] — the protocol-analyzer stand-in, recording and
//!   aggregating link traffic;
//! * [`table`] — the **Table 1** generator and the paper's expected
//!   cells (compared exactly in tests);
//! * [`bisnp`] — the CXL 3.0 back-invalidation flows of §4's *envisioned*
//!   coherent shared pool (snoop-filter directory, `BISnp`/`BIRsp`
//!   traffic), with the invariants CXL0 needs checked mechanically.
//!
//! ## Example: observing a primitive's traffic
//!
//! ```
//! use cxl0_protocol::{host_op, CxlOp, MemTarget, CachePair, MesiState, Transaction};
//!
//! // Host MStore to HDM always writes through: one M2S MemWr.
//! let st = CachePair::new(MesiState::I, MesiState::M);
//! let out = host_op(CxlOp::MStore, MemTarget::DeviceMemory, st).unwrap();
//! assert_eq!(out.transactions, vec![Transaction::MEM_WR]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod analyzer;
pub mod bisnp;
pub mod machine;
pub mod mesi;
pub mod ops;
pub mod table;
pub mod transaction;

pub use analyzer::{Analyzer, Observation};
pub use bisnp::{BIRsp, BISnpReq, CoherentPool, DirState, HostId, LineId, PoolOp, PoolTxn};
pub use machine::{HostDevicePair, Line};
pub use mesi::{CachePair, MesiState};
pub use ops::{
    device_op, host_op, perform, Availability, CxlOp, DeviceMStoreStrategy, MemTarget, Node,
    OpOutcome,
};
pub use table::{expected_paper_cells, generate_table1, Cell, Table1};
pub use transaction::{render_sequence, D2HReq, H2DReq, M2SReq, Transaction};
