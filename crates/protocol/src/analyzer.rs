//! The protocol analyzer: records every transaction crossing the
//! simulated link, playing the role of §5's Teledyne LeCroy T516.

use std::collections::BTreeMap;

use crate::mesi::CachePair;
use crate::ops::{CxlOp, MemTarget, Node};
use crate::transaction::Transaction;

/// One observed operation: the context plus the transactions it emitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observation {
    /// The issuing node.
    pub node: Node,
    /// The primitive performed.
    pub op: CxlOp,
    /// The memory targeted.
    pub target: MemTarget,
    /// The MESI pair before the operation.
    pub before: CachePair,
    /// The transactions seen on the link, in order.
    pub transactions: Vec<Transaction>,
}

/// Records observations and aggregates them into Table-1-style cells.
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    observations: Vec<Observation>,
}

impl Analyzer {
    /// An empty analyzer.
    pub fn new() -> Self {
        Analyzer::default()
    }

    /// Records one operation's link traffic.
    pub fn record(
        &mut self,
        node: Node,
        op: CxlOp,
        target: MemTarget,
        before: CachePair,
        transactions: Vec<Transaction>,
    ) {
        self.observations.push(Observation {
            node,
            op,
            target,
            before,
            transactions,
        });
    }

    /// All raw observations.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Total transactions seen on the link.
    pub fn total_transactions(&self) -> usize {
        self.observations.iter().map(|o| o.transactions.len()).sum()
    }

    /// Aggregates into cells: for each `(node, op, target)`, the set of
    /// distinct transaction sequences observed (Table 1 reports exactly
    /// this many-to-one mapping).
    pub fn cells(&self) -> BTreeMap<(Node, CxlOp, MemTarget), Vec<Vec<Transaction>>> {
        let mut out: BTreeMap<(Node, CxlOp, MemTarget), Vec<Vec<Transaction>>> = BTreeMap::new();
        for o in &self.observations {
            let cell = out.entry((o.node, o.op, o.target)).or_default();
            if !cell.contains(&o.transactions) {
                cell.push(o.transactions.clone());
            }
        }
        for cell in out.values_mut() {
            cell.sort();
        }
        out
    }

    /// Clears recorded observations.
    pub fn clear(&mut self) {
        self.observations.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesi::MesiState;

    #[test]
    fn records_and_aggregates_distinct_sequences() {
        let mut a = Analyzer::new();
        let st = CachePair::new(MesiState::I, MesiState::I);
        a.record(Node::Host, CxlOp::Read, MemTarget::HostMemory, st, vec![]);
        a.record(
            Node::Host,
            CxlOp::Read,
            MemTarget::HostMemory,
            CachePair::new(MesiState::I, MesiState::S),
            vec![Transaction::SNP_INV],
        );
        // Duplicate sequence should not duplicate the cell entry.
        a.record(
            Node::Host,
            CxlOp::Read,
            MemTarget::HostMemory,
            CachePair::new(MesiState::I, MesiState::M),
            vec![Transaction::SNP_INV],
        );
        let cells = a.cells();
        let cell = &cells[&(Node::Host, CxlOp::Read, MemTarget::HostMemory)];
        assert_eq!(cell.len(), 2);
        assert!(cell.contains(&vec![]));
        assert!(cell.contains(&vec![Transaction::SNP_INV]));
        assert_eq!(a.total_transactions(), 2);
        assert_eq!(a.observations().len(), 3);
    }

    #[test]
    fn clear_resets() {
        let mut a = Analyzer::new();
        a.record(
            Node::Device,
            CxlOp::RStore,
            MemTarget::HostMemory,
            CachePair::invalid(),
            vec![Transaction::ITOM_WR],
        );
        a.clear();
        assert!(a.observations().is_empty());
        assert!(a.cells().is_empty());
    }
}
