//! MESI coherence states for the host–device pair of §5.
//!
//! Within the single coherence domain of a CXL 1.1 host + Type-2 device,
//! each cache line has a MESI state in the host's cache hierarchy and one
//! in the device's cache. Cross-cache compatibility is the standard MESI
//! matrix: `M` and `E` are exclusive of any valid remote state, `S` may
//! coexist with `S`.

use std::fmt;

/// A MESI cache-line state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MesiState {
    /// Modified: exclusive ownership, dirty.
    M,
    /// Exclusive: exclusive ownership, clean.
    E,
    /// Shared: read-only copy, possibly replicated.
    S,
    /// Invalid: no copy.
    I,
}

impl MesiState {
    /// All four states.
    pub const ALL: [MesiState; 4] = [MesiState::M, MesiState::E, MesiState::S, MesiState::I];

    /// True if this cache holds a usable copy (`M`/`E`/`S`).
    pub fn is_valid(self) -> bool {
        self != MesiState::I
    }

    /// True if this cache owns the line exclusively (`M`/`E`).
    pub fn is_exclusive(self) -> bool {
        matches!(self, MesiState::M | MesiState::E)
    }

    /// True if the line is dirty here (`M`).
    pub fn is_dirty(self) -> bool {
        self == MesiState::M
    }
}

impl fmt::Display for MesiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            MesiState::M => 'M',
            MesiState::E => 'E',
            MesiState::S => 'S',
            MesiState::I => 'I',
        };
        write!(f, "{c}")
    }
}

/// The pair of MESI states `(host, device)` for one cache line, as used
/// in Table 1's state enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CachePair {
    /// The host's state for the line.
    pub host: MesiState,
    /// The device's state for the line.
    pub device: MesiState,
}

impl CachePair {
    /// Constructs a pair.
    pub fn new(host: MesiState, device: MesiState) -> Self {
        CachePair { host, device }
    }

    /// Both caches invalid.
    pub fn invalid() -> Self {
        CachePair::new(MesiState::I, MesiState::I)
    }

    /// MESI cross-cache compatibility: `M`/`E` on one side forces `I` on
    /// the other; `S` tolerates `S` or `I`.
    pub fn is_legal(self) -> bool {
        match (self.host, self.device) {
            (MesiState::M | MesiState::E, d) => d == MesiState::I,
            (h, MesiState::M | MesiState::E) => h == MesiState::I,
            _ => true, // S/S, S/I, I/S, I/I
        }
    }

    /// The eight legal pairs, in a stable order:
    /// `(M,I) (E,I) (S,S) (S,I) (I,M) (I,E) (I,S) (I,I)`.
    pub fn legal_pairs() -> Vec<CachePair> {
        let mut out = Vec::new();
        for h in MesiState::ALL {
            for d in MesiState::ALL {
                let p = CachePair::new(h, d);
                if p.is_legal() {
                    out.push(p);
                }
            }
        }
        out
    }
}

impl fmt::Display for CachePair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.host, self.device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_eight_legal_pairs() {
        let pairs = CachePair::legal_pairs();
        assert_eq!(pairs.len(), 8);
        for p in &pairs {
            assert!(p.is_legal());
        }
        // The narrative's enumerations are all present:
        for (h, d) in [
            (MesiState::S, MesiState::S),
            (MesiState::I, MesiState::S),
            (MesiState::I, MesiState::E),
            (MesiState::I, MesiState::M),
        ] {
            assert!(pairs.contains(&CachePair::new(h, d)));
        }
    }

    #[test]
    fn illegal_pairs_rejected() {
        assert!(!CachePair::new(MesiState::M, MesiState::M).is_legal());
        assert!(!CachePair::new(MesiState::M, MesiState::S).is_legal());
        assert!(!CachePair::new(MesiState::S, MesiState::E).is_legal());
        assert!(!CachePair::new(MesiState::E, MesiState::E).is_legal());
    }

    #[test]
    fn state_predicates() {
        assert!(MesiState::M.is_dirty());
        assert!(!MesiState::E.is_dirty());
        assert!(MesiState::E.is_exclusive());
        assert!(MesiState::S.is_valid());
        assert!(!MesiState::I.is_valid());
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            CachePair::new(MesiState::S, MesiState::I).to_string(),
            "(S,I)"
        );
        assert_eq!(MesiState::M.to_string(), "M");
    }
}
