//! The CXL link transaction vocabulary observed in §5.1 (Table 1):
//! CXL.cache host-to-device (H2D) and device-to-host (D2H) requests, and
//! CXL.mem master-to-subordinate (M2S) requests.

use std::fmt;

/// CXL.cache host-to-device (H2D) requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum H2DReq {
    /// Snoop-invalidate: the host demands the device drop (and write back
    /// if dirty) its copy.
    SnpInv,
}

/// CXL.cache device-to-host (D2H) requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum D2HReq {
    /// Caching read for a shared copy.
    RdShared,
    /// Caching read for ownership (write intent).
    RdOwn,
    /// Push a full line into the host's cache without prior ownership
    /// ("invalid to modified, write": the device's `RStore` to HM).
    ItoMWr,
    /// Evict a clean line.
    CleanEvict,
    /// Evict a dirty line (with data).
    DirtyEvict,
    /// Weakly-ordered write-invalidate (full line, posted).
    WOWrInvF,
    /// Strongly-ordered write-invalidate.
    WrInv,
}

/// CXL.mem master-to-subordinate (M2S) requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum M2SReq {
    /// Read with data, no ownership tracking change.
    MemRdData,
    /// Read (with data) acquiring ownership.
    MemRd,
    /// Write a full line to device memory.
    MemWr,
    /// Invalidate device-side state without data transfer.
    MemInv,
}

/// Any transaction visible on the CXL link between host and device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Transaction {
    /// A CXL.cache H2D request.
    CacheH2D(H2DReq),
    /// A CXL.cache D2H request.
    CacheD2H(D2HReq),
    /// A CXL.mem M2S request.
    MemM2S(M2SReq),
}

impl Transaction {
    /// Shorthand constructors used pervasively by the op tables.
    pub const SNP_INV: Transaction = Transaction::CacheH2D(H2DReq::SnpInv);
    /// D2H `RdShared`.
    pub const RD_SHARED: Transaction = Transaction::CacheD2H(D2HReq::RdShared);
    /// D2H `RdOwn`.
    pub const RD_OWN: Transaction = Transaction::CacheD2H(D2HReq::RdOwn);
    /// D2H `ItoMWr`.
    pub const ITOM_WR: Transaction = Transaction::CacheD2H(D2HReq::ItoMWr);
    /// D2H `CleanEvict`.
    pub const CLEAN_EVICT: Transaction = Transaction::CacheD2H(D2HReq::CleanEvict);
    /// D2H `DirtyEvict`.
    pub const DIRTY_EVICT: Transaction = Transaction::CacheD2H(D2HReq::DirtyEvict);
    /// D2H `WOWrInv/F`.
    pub const WO_WR_INV_F: Transaction = Transaction::CacheD2H(D2HReq::WOWrInvF);
    /// D2H `WrInv`.
    pub const WR_INV: Transaction = Transaction::CacheD2H(D2HReq::WrInv);
    /// M2S `MemRdData`.
    pub const MEM_RD_DATA: Transaction = Transaction::MemM2S(M2SReq::MemRdData);
    /// M2S `MemRd`.
    pub const MEM_RD: Transaction = Transaction::MemM2S(M2SReq::MemRd);
    /// M2S `MemWr`.
    pub const MEM_WR: Transaction = Transaction::MemM2S(M2SReq::MemWr);
    /// M2S `MemInv`.
    pub const MEM_INV: Transaction = Transaction::MemM2S(M2SReq::MemInv);

    /// The sub-protocol this transaction travels on.
    pub fn channel(&self) -> &'static str {
        match self {
            Transaction::CacheH2D(_) => "CXL.cache H2D",
            Transaction::CacheD2H(_) => "CXL.cache D2H",
            Transaction::MemM2S(_) => "CXL.mem M2S",
        }
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Transaction::CacheH2D(H2DReq::SnpInv) => "SnpInv",
            Transaction::CacheD2H(D2HReq::RdShared) => "RdShared",
            Transaction::CacheD2H(D2HReq::RdOwn) => "RdOwn",
            Transaction::CacheD2H(D2HReq::ItoMWr) => "ItoMWr",
            Transaction::CacheD2H(D2HReq::CleanEvict) => "CleanEvict",
            Transaction::CacheD2H(D2HReq::DirtyEvict) => "DirtyEvict",
            Transaction::CacheD2H(D2HReq::WOWrInvF) => "WOWrInv/F",
            Transaction::CacheD2H(D2HReq::WrInv) => "WrInv",
            Transaction::MemM2S(M2SReq::MemRdData) => "MemRdData",
            Transaction::MemM2S(M2SReq::MemRd) => "MemRd",
            Transaction::MemM2S(M2SReq::MemWr) => "MemWr",
            Transaction::MemM2S(M2SReq::MemInv) => "MemInv",
        };
        f.write_str(s)
    }
}

/// Renders a transaction sequence as a Table-1 cell entry: `"None"` for
/// the empty sequence, `"A + B"` for multi-transaction flows.
pub fn render_sequence(seq: &[Transaction]) -> String {
    if seq.is_empty() {
        "None".to_string()
    } else {
        seq.iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_spec_names() {
        assert_eq!(Transaction::SNP_INV.to_string(), "SnpInv");
        assert_eq!(Transaction::WO_WR_INV_F.to_string(), "WOWrInv/F");
        assert_eq!(Transaction::MEM_RD_DATA.to_string(), "MemRdData");
        assert_eq!(Transaction::ITOM_WR.to_string(), "ItoMWr");
    }

    #[test]
    fn channels_classified() {
        assert_eq!(Transaction::SNP_INV.channel(), "CXL.cache H2D");
        assert_eq!(Transaction::RD_OWN.channel(), "CXL.cache D2H");
        assert_eq!(Transaction::MEM_WR.channel(), "CXL.mem M2S");
    }

    #[test]
    fn sequence_rendering() {
        assert_eq!(render_sequence(&[]), "None");
        assert_eq!(render_sequence(&[Transaction::SNP_INV]), "SnpInv");
        assert_eq!(
            render_sequence(&[Transaction::RD_OWN, Transaction::DIRTY_EVICT]),
            "RdOwn + DirtyEvict"
        );
    }
}
