//! A bump allocator over one machine's shared segment.
//!
//! Data-structure nodes live in the shared (usually non-volatile) segment
//! of a designated memory node; this allocator hands out fresh
//! cache-line-granular cells from that segment. Allocation metadata is a
//! process-local atomic, and the bump is monotonic — crash-safe by
//! construction (cells allocated by a crashed operation are simply
//! leaked). Reclamation and crash-consistent recovery live one layer up,
//! in [`crate::alloc`], which wraps a `SharedHeap` as its bump tail;
//! this raw layer remains for fixed-footprint roots (registers,
//! counters, logs, the registry and epoch machinery) and low-level
//! experiments. Failed allocations are side-effect-free: the bump only
//! advances when the request fits.

use std::sync::atomic::{AtomicU32, Ordering};

use cxl0_model::{Loc, MachineId, SystemConfig};

/// The bump counter on its own cache line: every allocation CAS-loops on
/// it, and without the padding that traffic would false-share with the
/// read-only `region`/`limit` fields (and whatever the allocator places
/// next to the heap).
#[repr(align(64))]
#[derive(Debug)]
struct PaddedCounter(AtomicU32);

/// A bump allocator over machine `region`'s shared locations.
///
/// # Examples
///
/// ```
/// use cxl0_runtime::SharedHeap;
/// use cxl0_model::{SystemConfig, MachineId};
///
/// let cfg = SystemConfig::symmetric_nvm(2, 64);
/// let heap = SharedHeap::new(&cfg, MachineId(1));
/// let a = heap.alloc(2).unwrap();  // two consecutive cells
/// let b = heap.alloc(1).unwrap();
/// assert_ne!(a.addr, b.addr);
/// assert_eq!(a.owner, MachineId(1));
/// ```
#[derive(Debug)]
pub struct SharedHeap {
    region: MachineId,
    next: PaddedCounter,
    limit: u32,
}

impl SharedHeap {
    /// An allocator over all of machine `region`'s locations.
    pub fn new(cfg: &SystemConfig, region: MachineId) -> Self {
        SharedHeap {
            region,
            next: PaddedCounter(AtomicU32::new(0)),
            limit: cfg.machine(region).locations,
        }
    }

    /// An allocator over a sub-range `[base, base + len)` of the region.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the region (including when `base + len`
    /// overflows `u32`).
    pub fn with_range(cfg: &SystemConfig, region: MachineId, base: u32, len: u32) -> Self {
        let limit = base
            .checked_add(len)
            .expect("heap range exceeds the region: base + len overflows");
        assert!(
            limit <= cfg.machine(region).locations,
            "heap range exceeds the region"
        );
        SharedHeap {
            region,
            next: PaddedCounter(AtomicU32::new(base)),
            limit,
        }
    }

    /// The machine whose memory this heap carves up.
    pub fn region(&self) -> MachineId {
        self.region
    }

    /// Allocates `n` consecutive cells, returning the first. Returns
    /// `None` when the region is exhausted.
    ///
    /// A failed allocation is side-effect-free: the bump counter only
    /// advances when the whole range fits, so the remaining tail cells
    /// stay allocatable and repeated failures can never overflow the
    /// counter into "successful" out-of-range allocations.
    pub fn alloc(&self, n: u32) -> Option<Loc> {
        let mut base = self.next.0.load(Ordering::Relaxed);
        loop {
            let end = base.checked_add(n)?;
            if end > self.limit {
                return None;
            }
            match self
                .next
                .0
                .compare_exchange_weak(base, end, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return Some(Loc::new(self.region, base)),
                Err(actual) => base = actual,
            }
        }
    }

    /// Cells remaining.
    pub fn remaining(&self) -> u32 {
        self.limit
            .saturating_sub(self.next.0.load(Ordering::Relaxed))
    }
}

/// Encodes a location as a non-zero pointer value for storage in shared
/// memory cells (`0` is the null pointer). Only locations within the
/// pointed-to structure's region are encoded, so the address alone
/// suffices. (The crash-consistent allocator layers a generation tag on
/// top of this scheme — see [`crate::alloc`]; this bare encoding serves
/// low-level code that manages its own cells.)
pub fn encode_ptr(loc: Loc) -> u64 {
    u64::from(loc.addr.0) + 1
}

/// Decodes [`encode_ptr`]'s encoding; `0` decodes to `None`, and so
/// does any address at or beyond `extent` (the region's cell count, or
/// the structure's own sub-range) — a stale or corrupted word can never
/// decode into another allocation's range and be silently dereferenced.
pub fn decode_ptr(region: MachineId, extent: u32, raw: u64) -> Option<Loc> {
    if raw == 0 || raw > u64::from(extent) {
        None
    } else {
        Some(Loc::new(region, (raw - 1) as u32))
    }
}

/// The null pointer encoding.
pub const NULL_PTR: u64 = 0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_until_exhaustion() {
        let cfg = SystemConfig::symmetric_nvm(1, 4);
        let heap = SharedHeap::new(&cfg, MachineId(0));
        assert_eq!(heap.remaining(), 4);
        assert!(heap.alloc(3).is_some());
        assert!(heap.alloc(2).is_none());
        // A failed alloc is side-effect-free: the tail cell stays usable.
        assert_eq!(heap.remaining(), 1);
        assert!(heap.alloc(1).is_some());
        assert!(heap.alloc(1).is_none());
        assert_eq!(heap.remaining(), 0);
    }

    #[test]
    fn repeated_failed_allocs_never_wrap_into_success() {
        let cfg = SystemConfig::symmetric_nvm(1, 4);
        let heap = SharedHeap::new(&cfg, MachineId(0));
        // With the old fetch_add bump, each failure advanced the counter;
        // enough failures wrapped base + n past u32::MAX back into range.
        for _ in 0..8 {
            assert!(heap.alloc(u32::MAX / 2).is_none());
        }
        assert!(heap.alloc(u32::MAX).is_none());
        let a = heap.alloc(4).expect("the full region is still intact");
        assert_eq!(a.addr.0, 0);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn with_range_overflow_panics() {
        let cfg = SystemConfig::symmetric_nvm(1, 4);
        let _ = SharedHeap::with_range(&cfg, MachineId(0), u32::MAX, 2);
    }

    #[test]
    fn with_range_respects_bounds() {
        let cfg = SystemConfig::symmetric_nvm(1, 10);
        let heap = SharedHeap::with_range(&cfg, MachineId(0), 4, 4);
        let a = heap.alloc(1).unwrap();
        assert_eq!(a.addr.0, 4);
        assert_eq!(heap.remaining(), 3);
    }

    #[test]
    #[should_panic(expected = "exceeds the region")]
    fn oversized_range_panics() {
        let cfg = SystemConfig::symmetric_nvm(1, 4);
        let _ = SharedHeap::with_range(&cfg, MachineId(0), 2, 8);
    }

    #[test]
    fn pointer_encoding_round_trips() {
        let m = MachineId(1);
        let loc = Loc::new(m, 42);
        let raw = encode_ptr(loc);
        assert_ne!(raw, NULL_PTR);
        assert_eq!(decode_ptr(m, 64, raw), Some(loc));
        assert_eq!(decode_ptr(m, 64, NULL_PTR), None);
    }

    #[test]
    fn decode_rejects_out_of_extent_addresses() {
        let m = MachineId(0);
        // The last in-extent address decodes; one past does not.
        assert_eq!(
            decode_ptr(m, 64, encode_ptr(Loc::new(m, 63))),
            Some(Loc::new(m, 63))
        );
        assert_eq!(decode_ptr(m, 64, encode_ptr(Loc::new(m, 64))), None);
        assert_eq!(decode_ptr(m, 64, u64::MAX), None);
        assert_eq!(decode_ptr(m, 0, 1), None);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Round trip: any in-extent location survives
            /// encode → decode; anything at or past the extent is
            /// rejected rather than aliased into range.
            #[test]
            fn encode_decode_round_trips_and_respects_extent(
                addr in proptest::arbitrary::any::<u32>(),
                extent in proptest::arbitrary::any::<u32>(),
            ) {
                let m = MachineId(2);
                let raw = encode_ptr(Loc::new(m, addr));
                prop_assert!(raw != NULL_PTR);
                let decoded = decode_ptr(m, extent, raw);
                if addr < extent {
                    prop_assert_eq!(decoded, Some(Loc::new(m, addr)));
                } else {
                    prop_assert_eq!(decoded, None);
                }
                prop_assert_eq!(decode_ptr(m, extent, NULL_PTR), None);
            }
        }
    }

    #[test]
    fn concurrent_allocation_never_overlaps() {
        let cfg = SystemConfig::symmetric_nvm(1, 10_000);
        let heap = std::sync::Arc::new(SharedHeap::new(&cfg, MachineId(0)));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let heap = std::sync::Arc::clone(&heap);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..1000 {
                    got.push(heap.alloc(2).unwrap().addr.0);
                }
                got
            }));
        }
        let mut all: Vec<u32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000);
    }
}
