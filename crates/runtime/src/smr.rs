//! # Epoch-based safe memory reclamation for traversal structures
//!
//! The queue and stack free unlinked nodes inline: their CASes always
//! compare a generation-tagged word remembered from the incarnation they
//! mean (the Michael–Scott counted-pointer scheme), so a recycled block
//! can never satisfy a stale CAS. Traversal structures cannot lean on
//! that: a Harris-list `search` dereferences interior nodes without a
//! validating CAS, and the hash map's probe sequence walks table cells
//! holding application-chosen words. For those, an unlink → free →
//! recycle racing an in-flight traversal would hand the traversal a
//! *different* structure's live cells — the classic reason linked
//! structures need hazard pointers or epochs where stacks and queues get
//! by with counted pointers.
//!
//! This module is the runtime's reclamation layer between the
//! crash-consistent allocator ([`crate::alloc`]) and the traversal
//! structures ([`DurableList`](crate::ds::DurableList),
//! [`DurableMap`](crate::ds::DurableMap)): **epoch-based reclamation**
//! (EBR) in the tradition of Fraser's epochs and crossbeam-epoch.
//!
//! ## Protocol
//!
//! An [`SmrDomain`] owns a global epoch counter and one
//! cache-line-padded *epoch slot* per leased thread slot (the same
//! process-wide leases that back the fabric's per-thread counter rails
//! and the combining fronts' announcement arrays — see
//! `backend::thread_slot_index`). A traversal [`pin`](SmrDomain::pin)s
//! the domain on entry: its slot publishes the observed global epoch
//! with the same Dekker-ordered store-then-recheck discipline the crash
//! gate uses, so an epoch advance either sees the pin or the pinner
//! sees the newer epoch and re-publishes. The returned [`SmrGuard`]
//! unpins on drop.
//!
//! Unlinked blocks are [`retire`](SmrGuard::retire)d — not freed — into
//! per-epoch **limbo bags**. The epoch advances from `e` to `e + 1`
//! only when every pinned slot has observed `e`; a bag retired at epoch
//! `e` drains back to the allocator once the global epoch reaches
//! `e + 2`, because by then every traversal that could have loaded a
//! pointer to its blocks (necessarily pinned at `e` or earlier, since
//! retirement follows durable unlinking) has unpinned. Draining is
//! amortized into `retire` itself (every few retirements) and available
//! explicitly through [`SmrDomain::collect`]; no quiescence is ever
//! required.
//!
//! ## Crash interaction
//!
//! Limbo is **volatile by design**, like the combining fronts'
//! announcement boards: a retired block is already durably unlinked
//! from its structure, so a crash loses no durable state — the blocks
//! are merely not yet on a free list. After recovery,
//! [`SmrDomain::recover`] (run from
//! [`Session::recover_roots`](crate::api::Session::recover_roots),
//! quiesced like every recovery) sweeps all limbo bags back to the free
//! lists through the allocator's normal free path and clears every
//! epoch slot. Nothing durable records the epochs themselves.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use cxl0_runtime::alloc::Allocator;
//! use cxl0_runtime::smr::SmrDomain;
//! use cxl0_runtime::{FlitCxl0, Persistence, SimFabric};
//! use cxl0_model::{MachineId, SystemConfig};
//!
//! let fabric = SimFabric::new(SystemConfig::symmetric_nvm(2, 1024));
//! let persist: Arc<dyn Persistence> = Arc::new(FlitCxl0::default());
//! let alloc = Arc::new(Allocator::over_region(fabric.config(), MachineId(1), persist));
//! let smr = SmrDomain::new(Arc::clone(&alloc));
//! let node = fabric.node(MachineId(0));
//!
//! let block = alloc.alloc(&node, 2)?.expect("heap fits");
//! {
//!     let guard = smr.pin();
//!     guard.retire(&node, block.loc)?; // durably unlinked elsewhere
//! } // traversal ends: the pin drops
//! let freed = smr.collect(&node)?;    // both grace epochs elapse
//! assert_eq!(freed, 1);
//! # Ok::<(), cxl0_runtime::Crashed>(())
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use cxl0_model::Loc;
use parking_lot::Mutex;

use crate::alloc::Allocator;
use crate::backend::{thread_slot_index, AsNode, NodeHandle, RAIL_SLOTS};
use crate::error::OpResult;
use crate::flit::Persistence;

/// Epoch bits in a slot word; the rest is the pin (nesting) count.
const EPOCH_BITS: u32 = 48;
/// Mask of the epoch bits of a slot word.
const EPOCH_MASK: u64 = (1 << EPOCH_BITS) - 1;
/// One pin in a slot word's count field.
const COUNT_ONE: u64 = 1 << EPOCH_BITS;

/// A retired block's bag drains once the global epoch is this far past
/// its retire epoch: one advance for traversals pinned at the retire
/// epoch, one more for traversals the first advance may have raced.
const GRACE_EPOCHS: u64 = 2;

/// Amortization: every this many retirements, the retiring thread runs
/// a [`SmrDomain::collect`] pass on the caller's node.
const COLLECT_EVERY: u64 = 8;

/// One per-thread-slot epoch slot, cache-line padded like the fabric's
/// counter rails: `(pin count << 48) | observed epoch`, zero when idle.
/// Exclusive slots are written by one thread with plain load + store
/// pairs (published `SeqCst`, the Dekker gate); the shared overflow
/// slot — used by threads beyond the lease pool — multiplexes several
/// pinners through CAS, conservatively keeping the first joiner's
/// epoch (an older recorded epoch only delays reclamation).
#[repr(align(128))]
#[derive(Debug)]
struct EpochSlot {
    word: AtomicU64,
    /// Pins published through this slot (exclusive: plain load + store).
    pins: AtomicU64,
}

impl EpochSlot {
    fn new() -> Self {
        EpochSlot {
            word: AtomicU64::new(0),
            pins: AtomicU64::new(0),
        }
    }
}

/// One limbo bag: blocks retired while the global epoch was `epoch`.
#[derive(Debug)]
struct Bag {
    epoch: u64,
    blocks: Vec<Loc>,
}

/// Plain-data snapshot of an [`SmrDomain`]'s counters (also overlaid
/// onto [`StatsSnapshot`](crate::backend::StatsSnapshot) by
/// [`Cluster::stats_snapshot`](crate::api::Cluster::stats_snapshot)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmrStats {
    /// Traversal pins (guard creations).
    pub pins: u64,
    /// Blocks retired into limbo.
    pub retires: u64,
    /// Blocks handed back to the allocator after their grace period.
    pub reclaims: u64,
    /// Successful global-epoch advances.
    pub advances: u64,
    /// Current global epoch (gauge).
    pub epoch: u64,
    /// Blocks currently in limbo (gauge).
    pub limbo: u64,
}

/// An epoch-based reclamation domain over one allocator.
///
/// One domain serves **all** traversal structures sharing an allocator
/// — a [`Cluster`](crate::api::Cluster) builds exactly one and every
/// session handle shares it. (Constructing two domains over one
/// allocator would let one domain reclaim blocks the other's pinned
/// traversals still reference; don't.)
///
/// See the [module docs](self) for the protocol.
#[derive(Debug)]
pub struct SmrDomain {
    alloc: Arc<Allocator>,
    /// The global epoch, on its own line (every pin reads it, every
    /// advance CASes it).
    global: EpochSlot,
    /// `slots[RAIL_SLOTS]` is the shared overflow slot.
    slots: Box<[EpochSlot]>,
    /// Per-epoch limbo bags, front = oldest; epochs strictly increase
    /// back-to-front.
    limbo: Mutex<VecDeque<Bag>>,
    /// Gauge mirror of the limbo population (readable without the lock).
    limbo_len: AtomicU64,
    retires: AtomicU64,
    reclaims: AtomicU64,
    advances: AtomicU64,
    /// The persistency sanitizer, when one is installed on this domain's
    /// cluster: pin/unpin are purely volatile (no [`NodeHandle`] in
    /// scope), so the domain carries its own handle instead of routing
    /// through the fabric.
    checker: OnceLock<Arc<crate::check::Checker>>,
}

impl SmrDomain {
    /// A fresh domain reclaiming through `alloc` (epoch 1, empty limbo).
    pub fn new(alloc: Arc<Allocator>) -> Self {
        let global = EpochSlot::new();
        global.word.store(1, Ordering::Relaxed);
        SmrDomain {
            alloc,
            global,
            slots: (0..=RAIL_SLOTS).map(|_| EpochSlot::new()).collect(),
            limbo: Mutex::new(VecDeque::new()),
            limbo_len: AtomicU64::new(0),
            retires: AtomicU64::new(0),
            reclaims: AtomicU64::new(0),
            advances: AtomicU64::new(0),
            checker: OnceLock::new(),
        }
    }

    /// Installs the persistency sanitizer (first installation wins;
    /// called from cluster construction).
    pub(crate) fn install_checker(&self, checker: Arc<crate::check::Checker>) {
        let _ = self.checker.set(checker);
    }

    /// The allocator retired blocks drain back into.
    pub fn allocator(&self) -> &Arc<Allocator> {
        &self.alloc
    }

    /// The allocator's durability strategy (traversal structures derive
    /// theirs from here, so the pair can never mismatch).
    pub fn persistence(&self) -> &Arc<dyn Persistence> {
        self.alloc.persistence()
    }

    /// The current global epoch.
    pub fn epoch(&self) -> u64 {
        self.global.word.load(Ordering::SeqCst)
    }

    /// Blocks currently awaiting their grace period.
    pub fn limbo_len(&self) -> u64 {
        self.limbo_len.load(Ordering::Relaxed)
    }

    /// Snapshot of the domain's counters and gauges.
    pub fn stats(&self) -> SmrStats {
        SmrStats {
            pins: self
                .slots
                .iter()
                .map(|s| s.pins.load(Ordering::Relaxed))
                .sum(),
            retires: self.retires.load(Ordering::Relaxed),
            reclaims: self.reclaims.load(Ordering::Relaxed),
            advances: self.advances.load(Ordering::Relaxed),
            epoch: self.epoch(),
            limbo: self.limbo_len(),
        }
    }

    /// Pins the current thread into the domain: the returned guard
    /// keeps every block retired from *now* on out of reuse until the
    /// guard drops. Pins nest (a slot counts them) and are purely
    /// volatile — no fabric operations, no errors.
    pub fn pin(&self) -> SmrGuard<'_> {
        let idx = thread_slot_index().min(RAIL_SLOTS);
        let slot = &self.slots[idx];
        if idx < RAIL_SLOTS {
            // Exclusive slot: only this thread writes it.
            let w = slot.word.load(Ordering::Relaxed);
            if w >= COUNT_ONE {
                slot.word.store(w + COUNT_ONE, Ordering::Relaxed);
            } else {
                // Dekker publish: store the observed epoch, then
                // re-read it. Either a concurrent advance's scan sees
                // this pin, or we see the newer epoch and re-publish —
                // the same discipline as the crash gate's rails.
                loop {
                    let e = self.global.word.load(Ordering::SeqCst);
                    slot.word
                        .store(COUNT_ONE | (e & EPOCH_MASK), Ordering::SeqCst);
                    if self.global.word.load(Ordering::SeqCst) == e {
                        break;
                    }
                }
            }
            let p = slot.pins.load(Ordering::Relaxed);
            slot.pins.store(p + 1, Ordering::Relaxed);
        } else {
            // Shared overflow slot: several threads multiplex through
            // CAS. Joining an existing pin keeps the first joiner's
            // (older or equal) epoch — conservative, so always safe.
            loop {
                let w = slot.word.load(Ordering::SeqCst);
                if w >= COUNT_ONE {
                    if slot
                        .word
                        .compare_exchange(w, w + COUNT_ONE, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        break;
                    }
                } else {
                    let e = self.global.word.load(Ordering::SeqCst);
                    if slot
                        .word
                        .compare_exchange(
                            w,
                            COUNT_ONE | (e & EPOCH_MASK),
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                        .is_ok()
                    {
                        // No re-check needed: if an advance raced this
                        // publish, the recorded epoch is merely stale
                        // (older), which only delays reclamation.
                        break;
                    }
                }
            }
            slot.pins.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(ck) = self.checker.get() {
            ck.on_pin(idx, slot.word.load(Ordering::SeqCst) & EPOCH_MASK);
        }
        SmrGuard {
            domain: self,
            slot: idx,
        }
    }

    fn unpin(&self, idx: usize) {
        let slot = &self.slots[idx];
        if idx < RAIL_SLOTS {
            let w = slot.word.load(Ordering::Relaxed);
            debug_assert!(w >= COUNT_ONE, "unpin without pin");
            if w >= 2 * COUNT_ONE {
                slot.word.store(w - COUNT_ONE, Ordering::Relaxed);
            } else {
                slot.word.store(0, Ordering::Release);
            }
        } else {
            // The epoch bits stay behind at count zero; scanners ignore
            // them and the next first pinner overwrites them.
            slot.word.fetch_sub(COUNT_ONE, Ordering::Release);
        }
        if let Some(ck) = self.checker.get() {
            ck.on_unpin(idx);
        }
    }

    /// Retires `payload` (the payload location of an allocator block
    /// that is already durably unreachable) into the current epoch's
    /// limbo bag. Prefer [`SmrGuard::retire`], which enforces that the
    /// retiring operation is pinned.
    fn retire(&self, node: &NodeHandle, payload: Loc) -> OpResult<()> {
        let e = self.global.word.load(Ordering::SeqCst);
        {
            let mut limbo = self.limbo.lock();
            match limbo.back_mut() {
                // `>=`: another retirer may have opened a newer bag
                // between our epoch read and taking the lock; filing
                // under the newer epoch only lengthens the grace wait.
                Some(bag) if bag.epoch >= e => bag.blocks.push(payload),
                _ => limbo.push_back(Bag {
                    epoch: e,
                    blocks: vec![payload],
                }),
            }
        }
        self.limbo_len.fetch_add(1, Ordering::Relaxed);
        node.check_retire(payload, e);
        let n = self.retires.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(COLLECT_EVERY) {
            self.collect_inner(node)?;
        }
        Ok(())
    }

    /// Tries to advance the global epoch by one: succeeds only if every
    /// pinned slot has observed the current epoch.
    fn try_advance(&self) -> bool {
        let e = self.global.word.load(Ordering::SeqCst);
        for slot in self.slots.iter() {
            let w = slot.word.load(Ordering::SeqCst);
            if w >= COUNT_ONE && (w & EPOCH_MASK) != (e & EPOCH_MASK) {
                return false;
            }
        }
        let ok = self
            .global
            .word
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok();
        if ok {
            self.advances.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// Frees every limbo bag whose grace period has elapsed, attempting
    /// epoch advances in between; returns the number of blocks handed
    /// back to the allocator. Safe to call concurrently with traversals
    /// (including from a pinned thread — its own pin merely caps how
    /// far the epoch can advance this call). Never required for safety;
    /// retirement amortizes collection automatically.
    ///
    /// An empty return does **not** mean the limbo blocks are lost: a
    /// traversal that pinned before this call legitimately holds the
    /// grace period open for its whole (finite) operation, and a bag
    /// needs `GRACE_EPOCHS` advances past its retire epoch to ripen.
    /// Allocation retry loops must therefore wait between empty
    /// attempts (see [`exhaustion_backoff`]) — spinning through any
    /// fixed attempt count can outpace a single concurrent reader
    /// sweep and misdiagnose transient pressure as true exhaustion.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed; blocks not yet freed
    /// stay in limbo for [`SmrDomain::recover`].
    pub fn collect(&self, at: &impl AsNode) -> OpResult<usize> {
        let _span = at.as_node().trace_span(crate::trace::OpKind::SmrCollect);
        self.collect_inner(at.as_node())
    }

    fn collect_inner(&self, node: &NodeHandle) -> OpResult<usize> {
        let mut freed = 0;
        // Unpinned callers can ripen a whole grace period; a pinned
        // caller's own slot stops the second advance and it drains
        // whatever is already ripe.
        for _ in 0..GRACE_EPOCHS {
            freed += self.drain_ripe(node)?;
            if !self.try_advance() {
                break;
            }
        }
        freed += self.drain_ripe(node)?;
        Ok(freed)
    }

    /// Frees every bag at least [`GRACE_EPOCHS`] behind the global
    /// epoch.
    fn drain_ripe(&self, node: &NodeHandle) -> OpResult<usize> {
        let mut freed = 0;
        loop {
            let bag = {
                let mut limbo = self.limbo.lock();
                let e = self.global.word.load(Ordering::SeqCst);
                match limbo.front() {
                    Some(front) if front.epoch + GRACE_EPOCHS <= e => limbo.pop_front(),
                    _ => None,
                }
            };
            let Some(mut bag) = bag else {
                return Ok(freed);
            };
            while let Some(loc) = bag.blocks.pop() {
                match self.alloc.free(node, loc) {
                    Ok(done) => {
                        debug_assert!(done.is_ok(), "retired blocks are allocated exactly once");
                        freed += 1;
                        self.reclaims.fetch_add(1, Ordering::Relaxed);
                        self.limbo_len.fetch_sub(1, Ordering::Relaxed);
                    }
                    Err(crashed) => {
                        // The machine crashed mid-drain. The in-flight
                        // free is the allocator's recovery problem
                        // (its intent seals); everything else goes back
                        // to limbo for `recover` to sweep.
                        bag.blocks.push(loc);
                        self.limbo.lock().push_front(bag);
                        return Err(crashed);
                    }
                }
            }
        }
    }

    /// Post-crash sweep, run from
    /// [`Session::recover_roots`](crate::api::Session::recover_roots)
    /// after [`Allocator::recover`]: hands **every** limbo bag straight
    /// back to the allocator (grace periods are moot — recovery is
    /// quiesced, so no traversal holds references) and clears every
    /// epoch slot. Returns the number of blocks swept. Frees that the
    /// allocator's own recovery already completed (a crash mid-drain)
    /// are recognized and skipped.
    ///
    /// **Must run quiesced**: no concurrent operations, no live guards
    /// — the same contract as every other `recover`.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn recover(&self, at: &impl AsNode) -> OpResult<usize> {
        let node = at.as_node();
        for slot in self.slots.iter() {
            slot.word.store(0, Ordering::SeqCst);
        }
        node.check_smr_recover();
        let bags: Vec<Bag> = self.limbo.lock().drain(..).collect();
        let mut swept = 0;
        for bag in bags {
            for loc in bag.blocks {
                self.limbo_len.fetch_sub(1, Ordering::Relaxed);
                // A block whose free was cut down mid-flight by the
                // crash may already be back on its list (the sealed
                // intent completed it): a double free is reported, not
                // performed, and tolerated here only.
                if self.alloc.free(node, loc)?.is_ok() {
                    swept += 1;
                    self.reclaims.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(swept)
    }
}

/// Waits between empty [`SmrDomain::collect`] attempts on an exhausted
/// heap. A concurrently pinned traversal holds the grace period open
/// for its whole operation — many fabric round-trips — while one
/// `collect` call is only a handful of atomics, so a retry loop that
/// doesn't wait burns through any attempt bound before the reader
/// finishes a *single* sweep and the epoch can ripen limbo. Yields
/// first (the common case: the reader just needs a time slice), then
/// sleeps with a linearly growing interval.
pub fn exhaustion_backoff(attempt: u32) {
    if attempt < 8 {
        std::thread::yield_now();
    } else {
        std::thread::sleep(std::time::Duration::from_micros(u64::from(attempt) * 20));
    }
}

/// An active pin on an [`SmrDomain`] (see [`SmrDomain::pin`]): while
/// any guard from before a block's retirement is live, that block stays
/// out of reuse. Dropping the guard unpins.
#[derive(Debug)]
pub struct SmrGuard<'a> {
    domain: &'a SmrDomain,
    slot: usize,
}

impl SmrGuard<'_> {
    /// The domain this guard pins.
    pub fn domain(&self) -> &SmrDomain {
        self.domain
    }

    /// Retires a block (by its payload location) that this operation
    /// has already durably unlinked: it joins the current epoch's limbo
    /// bag and returns to the allocator's free lists once every
    /// traversal pinned at retirement time has unpinned. Amortizes a
    /// [`SmrDomain::collect`] pass every few retirements.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed (the block stays in
    /// limbo for [`SmrDomain::recover`]).
    pub fn retire(&self, at: &impl AsNode, payload: Loc) -> OpResult<()> {
        self.domain.retire(at.as_node(), payload)
    }
}

impl Drop for SmrGuard<'_> {
    fn drop(&mut self) {
        self.domain.unpin(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimFabric;
    use crate::flit::FlitCxl0;
    use cxl0_model::{MachineId, SystemConfig};

    fn setup() -> (Arc<SimFabric>, Arc<Allocator>, SmrDomain) {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 4096));
        let alloc = Arc::new(Allocator::over_region(
            f.config(),
            MachineId(1),
            Arc::new(FlitCxl0::default()),
        ));
        let smr = SmrDomain::new(Arc::clone(&alloc));
        (f, alloc, smr)
    }

    #[test]
    fn unpinned_retire_reclaims_after_one_collect() {
        let (f, alloc, smr) = setup();
        let node = f.node(MachineId(0));
        let b = alloc.alloc(&node, 2).unwrap().unwrap();
        smr.pin().retire(&node, b.loc).unwrap();
        // No pins: one collect ripens both grace epochs.
        assert_eq!(smr.collect(&node).unwrap(), 1);
        let again = alloc.alloc(&node, 2).unwrap().unwrap();
        assert_eq!(again.loc, b.loc, "block recycled");
        assert_eq!(again.gen, b.gen + 1);
    }

    #[test]
    fn live_pin_blocks_reclamation_until_dropped() {
        let (f, alloc, smr) = setup();
        let node = f.node(MachineId(0));
        let reader = smr.pin(); // pinned before the retire
        let b = alloc.alloc(&node, 2).unwrap().unwrap();
        smr.pin().retire(&node, b.loc).unwrap();
        assert_eq!(smr.collect(&node).unwrap(), 0, "reader still pinned");
        assert_eq!(smr.limbo_len(), 1);
        drop(reader);
        assert_eq!(smr.collect(&node).unwrap(), 1);
        assert_eq!(smr.limbo_len(), 0);
    }

    #[test]
    fn pins_nest() {
        let (f, alloc, smr) = setup();
        let node = f.node(MachineId(0));
        let outer = smr.pin();
        {
            let _inner = smr.pin();
        }
        // The inner unpin must not have released the outer pin.
        let b = alloc.alloc(&node, 2).unwrap().unwrap();
        outer.retire(&node, b.loc).unwrap();
        assert_eq!(smr.collect(&node).unwrap(), 0, "outer pin still live");
        drop(outer);
        assert_eq!(smr.collect(&node).unwrap(), 1);
    }

    #[test]
    fn retirement_amortizes_collection() {
        let (f, alloc, smr) = setup();
        let node = f.node(MachineId(0));
        // Retire well past COLLECT_EVERY without ever calling collect:
        // limbo must stay bounded by the amortized passes.
        for _ in 0..64 {
            let b = alloc.alloc(&node, 2).unwrap().unwrap();
            smr.pin().retire(&node, b.loc).unwrap();
        }
        assert!(
            smr.limbo_len() < 32,
            "amortized collection fell behind: {} in limbo",
            smr.limbo_len()
        );
        assert!(smr.stats().reclaims > 32);
    }

    #[test]
    fn recover_sweeps_all_limbo_and_clears_pins() {
        let (f, alloc, smr) = setup();
        let node = f.node(MachineId(0));
        let mut locs = Vec::new();
        {
            let guard = smr.pin();
            for _ in 0..3 {
                let b = alloc.alloc(&node, 2).unwrap().unwrap();
                guard.retire(&node, b.loc).unwrap();
                locs.push(b.loc);
            }
        }
        f.crash(MachineId(1));
        f.recover(MachineId(1));
        alloc.recover(&node).unwrap();
        assert_eq!(smr.recover(&node).unwrap(), 3);
        assert_eq!(smr.limbo_len(), 0);
        // All three blocks are reusable again.
        for _ in 0..3 {
            let b = alloc.alloc(&node, 2).unwrap().unwrap();
            assert!(locs.contains(&b.loc));
        }
    }

    #[test]
    fn stats_track_pins_retires_reclaims_epoch() {
        let (f, alloc, smr) = setup();
        let node = f.node(MachineId(0));
        let before = smr.stats();
        let b = alloc.alloc(&node, 2).unwrap().unwrap();
        {
            let g = smr.pin();
            g.retire(&node, b.loc).unwrap();
        }
        smr.collect(&node).unwrap();
        let after = smr.stats();
        assert_eq!(after.pins - before.pins, 1);
        assert_eq!(after.retires - before.retires, 1);
        assert_eq!(after.reclaims - before.reclaims, 1);
        assert!(after.epoch > before.epoch);
        assert_eq!(after.limbo, 0);
    }

    #[test]
    fn concurrent_pinners_never_lose_protection() {
        // Hammer pin/retire/collect from several threads over a tiny
        // region; every allocation must succeed (blocks cycle through
        // limbo back to the free lists) and the allocator must never
        // double-free.
        let f = SimFabric::new(SystemConfig::symmetric_nvm(3, 1 << 12));
        let alloc = Arc::new(Allocator::over_region(
            f.config(),
            MachineId(2),
            Arc::new(FlitCxl0::default()),
        ));
        let smr = Arc::new(SmrDomain::new(Arc::clone(&alloc)));
        let mut handles = Vec::new();
        for t in 0..4usize {
            let smr = Arc::clone(&smr);
            let alloc = Arc::clone(&alloc);
            let node = f.node(MachineId(t % 2));
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let guard = smr.pin();
                    let b = alloc.alloc(&node, 2).unwrap().expect("region cycles");
                    guard.retire(&node, b.loc).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let node = f.node(MachineId(0));
        smr.collect(&node).unwrap();
        let s = smr.stats();
        assert_eq!(s.retires, 800);
        assert_eq!(s.reclaims, 800, "everything retired was reclaimed");
        assert_eq!(smr.limbo_len(), 0);
    }
}
