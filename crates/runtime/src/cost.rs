//! A simple cost model: simulated nanoseconds per CXL0 primitive,
//! distinguishing local (issuer owns the line) from remote accesses.
//!
//! The default table is calibrated to the *shape* of the paper's Figure 5
//! (see `cxl0-fabric` for the transaction-level derivation): local loads
//! ≈ 2.3× faster than remote, `LStore` ≈ write-buffer speed, and
//! `MStore`/`RFlush` paying the full memory round trip. The runtime
//! accumulates these costs so benchmarks can report deterministic
//! simulated time alongside wall-clock time.

use cxl0_model::Primitive;

/// Simulated per-primitive latencies in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Load served with the issuer owning the line's home.
    pub load_local: u64,
    /// Load of a line homed on another machine.
    pub load_remote: u64,
    /// `LStore` (write buffer / local cache).
    pub lstore: u64,
    /// `RStore` to a remote owner's cache.
    pub rstore_remote: u64,
    /// `MStore` to local memory.
    pub mstore_local: u64,
    /// `MStore` to remote memory.
    pub mstore_remote: u64,
    /// `LFlush` (drain one level).
    pub lflush: u64,
    /// `RFlush` of a locally-homed line.
    pub rflush_local: u64,
    /// `RFlush` of a remotely-homed line.
    pub rflush_remote: u64,
    /// RMW premium added on top of the matching store cost.
    pub rmw_extra: u64,
    /// Issuing an asynchronous flush request (`AFlush`, the `CLFLUSHOPT`
    /// analogue of the `CXL0_AF` extension): just a buffer enqueue.
    pub aflush_issue: u64,
    /// Fixed overhead of a `Barrier` (the `SFENCE` analogue), before any
    /// pending write-backs are waited for.
    pub barrier_base: u64,
    /// Incremental per-line cost of each *additional* write-back retired
    /// under one barrier: pending flushes overlap on the link, so `n`
    /// lines cost one full `RFlush` plus `n-1` of these, not `n` full
    /// round trips.
    pub flush_pipelined: u64,
}

impl CostModel {
    /// Calibrated to the ratios reported in §5.2 / Figure 5 of the paper
    /// (median ns; the absolute scale is the paper's CPU-side numbers).
    pub fn figure5() -> Self {
        CostModel {
            load_local: 110,
            load_remote: 258,   // ≈ 2.34× load_local (paper: host 2.34×)
            lstore: 12,         // write buffer
            rstore_remote: 115, // device RStore ≈ 2.08× its LStore
            mstore_local: 170,  // NT store + fence
            mstore_remote: 400, // ≈ 2.3× local MStore
            lflush: 60,
            rflush_local: 175, // ≈ MStore (paper: RFlush ≈ MStore)
            rflush_remote: 395,
            rmw_extra: 30,
            aflush_issue: 8,     // buffer enqueue, no link traffic
            barrier_base: 30,    // fence overhead
            flush_pipelined: 90, // overlapped write-backs ≪ a full RFlush
        }
    }

    /// A zero-cost model (no simulated time accounting).
    pub fn free() -> Self {
        CostModel {
            load_local: 0,
            load_remote: 0,
            lstore: 0,
            rstore_remote: 0,
            mstore_local: 0,
            mstore_remote: 0,
            lflush: 0,
            rflush_local: 0,
            rflush_remote: 0,
            rmw_extra: 0,
            aflush_issue: 0,
            barrier_base: 0,
            flush_pipelined: 0,
        }
    }

    /// The cost of one primitive; `local` is true when the issuer owns the
    /// target line.
    pub fn cost(&self, p: Primitive, local: bool) -> u64 {
        match (p, local) {
            (Primitive::Load, true) => self.load_local,
            (Primitive::Load, false) => self.load_remote,
            (Primitive::LStore, _) => self.lstore,
            (Primitive::RStore, true) => self.lstore, // owner RStore ≡ LStore
            (Primitive::RStore, false) => self.rstore_remote,
            (Primitive::MStore, true) => self.mstore_local,
            (Primitive::MStore, false) => self.mstore_remote,
            (Primitive::LFlush, _) => self.lflush,
            (Primitive::RFlush, true) => self.rflush_local,
            (Primitive::RFlush, false) => self.rflush_remote,
            (Primitive::Gpf, _) => self.rflush_remote * 4,
            (Primitive::LRmw, l) => self.cost(Primitive::LStore, l) + self.rmw_extra,
            (Primitive::RRmw, l) => self.cost(Primitive::RStore, l) + self.rmw_extra,
            (Primitive::MRmw, l) => self.cost(Primitive::MStore, l) + self.rmw_extra,
            (Primitive::Crash, _) => 0,
        }
    }

    /// The cost of a `Barrier` that retires write-backs for the given
    /// per-line full-`RFlush` costs: the slowest line is paid in full, the
    /// rest overlap at [`CostModel::flush_pipelined`] each.
    pub fn barrier_cost(&self, line_costs: &[u64]) -> u64 {
        self.barrier_cost_of(
            line_costs.iter().max().copied().unwrap_or(0),
            line_costs.len() as u64,
        )
    }

    /// Streaming form of [`CostModel::barrier_cost`]: the slowest line's
    /// full-`RFlush` cost and the retired-line count fully determine the
    /// barrier cost, so callers that visit lines one at a time need not
    /// collect them. This is the single definition of the formula.
    pub fn barrier_cost_of(&self, max_line: u64, lines: u64) -> u64 {
        if lines == 0 {
            self.barrier_base
        } else {
            self.barrier_base + max_line + self.flush_pipelined * (lines - 1)
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::figure5()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_ratios_hold() {
        let c = CostModel::figure5();
        let r = c.load_remote as f64 / c.load_local as f64;
        assert!((2.0..2.7).contains(&r), "remote/local load ratio {r}");
        assert!(c.rflush_local.abs_diff(c.mstore_local) < 20);
        assert!(c.rstore_remote > c.lstore);
        assert!(c.mstore_remote > c.rstore_remote);
    }

    #[test]
    fn owner_rstore_costs_like_lstore() {
        let c = CostModel::figure5();
        assert_eq!(
            c.cost(Primitive::RStore, true),
            c.cost(Primitive::LStore, true)
        );
    }

    #[test]
    fn free_model_is_zero() {
        let c = CostModel::free();
        for p in Primitive::ISSUED {
            assert_eq!(c.cost(p, true), 0);
            assert_eq!(c.cost(p, false), 0);
        }
    }

    #[test]
    fn rmw_adds_premium() {
        let c = CostModel::figure5();
        assert_eq!(
            c.cost(Primitive::MRmw, false),
            c.cost(Primitive::MStore, false) + c.rmw_extra
        );
    }

    #[test]
    fn barrier_cost_pipelines_after_the_slowest_line() {
        let c = CostModel::figure5();
        assert_eq!(c.barrier_cost(&[]), c.barrier_base);
        assert_eq!(
            c.barrier_cost(&[c.rflush_remote]),
            c.barrier_base + c.rflush_remote
        );
        let three = c.barrier_cost(&[c.rflush_remote, c.rflush_local, c.rflush_remote]);
        assert_eq!(
            three,
            c.barrier_base + c.rflush_remote + 2 * c.flush_pipelined
        );
        // Batching n lines under one barrier beats n synchronous RFlushes.
        assert!(three < 3 * c.rflush_remote);
    }
}
