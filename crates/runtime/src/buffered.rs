//! `BufferedEpoch` — a Montage/Romulus-flavored *buffered* durability
//! strategy (§8's "relaxing durability semantics ... can be explored here
//! as well").
//!
//! Where FliT persists every flagged store before its operation returns,
//! `BufferedEpoch` persists **nothing** on the fast path: flagged stores
//! are plain `LStore`s, recorded (deduplicated, last value wins) in a
//! volatile dirty map. An explicit (or interval-triggered)
//! [`BufferedEpoch::sync`] appends the dirty cells to a **redo log** on
//! the memory node — written with `AFlush` requests and retired by a
//! single overlapped `Barrier` (the `CXL0_AF` extension) — and then
//! commits the batch with one `MStore` to a commit cell. When the log
//! fills up, a full ping-pong snapshot of every tracked cell compacts it.
//! After a crash, [`BufferedEpoch::recover`] restores the last full
//! snapshot and replays the committed log — rolling *back* any effect that
//! leaked into memory through cache eviction after the last sync.
//!
//! The guarantee is exactly **buffered durable linearizability**
//! (`cxl0-dlcheck::buffered`): operations completed before the last `sync`
//! survive; operations after it are dropped *wholesale*, so recovery is
//! always a consistent real-time cut, never a torn state.
//!
//! Why it can beat FliT: persistence cost per sync is proportional to the
//! number of *distinct* cells written in the interval, not to the number
//! of stores — skewed workloads absorb repeated updates to hot cells —
//! and the log write-backs overlap under one barrier instead of paying a
//! full round trip each (`CostModel::flush_pipelined`).
//!
//! ## Scope and simplifications
//!
//! * The slot map and dirty map are host-side metadata of the writing
//!   side. The strategy tolerates crashes of the **memory node** (the E7
//!   scenario); tolerating a crash of the *writer* machine would require
//!   epoch-tagged payloads in shared memory as in Montage proper, which is
//!   beyond this reproduction's scope.
//! * Tracked mutations serialize briefly on the dirty-map lock so that
//!   the recorded value order matches the store order; `sync` should run
//!   at operation boundaries (the op-count interval in `completeOp` does
//!   this) so the cut is consistent.
//!
//! ## Lock order
//!
//! `sync_lock` → `slots` → `dirty`, always in that order, never holding
//! a later lock while acquiring an earlier one. The flagged fast path
//! takes `sync_lock` then records under `slots`/`dirty`; `sync` and
//! `recover` take `sync_lock` for their whole critical section and
//! acquire `slots` and `dirty` **once per batch** (a single
//! `mem::take`/snapshot each), not once per tracked cell.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

use cxl0_model::{Loc, MachineId, StoreKind};
use parking_lot::Mutex;

use crate::backend::NodeHandle;
use crate::error::OpResult;
use crate::flit::Persistence;
use crate::heap::SharedHeap;

const REGION_BITS: u64 = 1;
const LOG_BITS: u64 = 23;

/// Buffered-durability transformation: flush-free fast path, redo-log
/// syncs with overlapped write-backs, rollback recovery.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use cxl0_runtime::{SimFabric, SharedHeap, BufferedEpoch, DurableRegister, Persistence};
/// use cxl0_model::{SystemConfig, MachineId};
///
/// let fabric = SimFabric::new(SystemConfig::symmetric_nvm(2, 64));
/// let heap = Arc::new(SharedHeap::new(fabric.config(), MachineId(1)));
/// let buffered = Arc::new(BufferedEpoch::create(&heap, 8, 0).unwrap());
/// let reg = DurableRegister::create(&heap, Arc::clone(&buffered) as Arc<dyn Persistence>).unwrap();
/// let node = fabric.node(MachineId(0));
///
/// reg.write(&node, 1)?;
/// buffered.sync(&node)?;          // checkpoint: 1 is now durable
/// reg.write(&node, 2)?;           // NOT yet durable
///
/// fabric.crash(MachineId(1));
/// fabric.recover(MachineId(1));
/// buffered.recover(&node)?;       // roll back to the checkpoint
/// assert_eq!(reg.read(&node)?, 1);
/// # Ok::<(), cxl0_runtime::Crashed>(())
/// ```
#[derive(Debug)]
pub struct BufferedEpoch {
    region: MachineId,
    commit: Loc,
    shadow_a: Loc,
    shadow_b: Loc,
    log_base: Loc,
    capacity: u32,
    log_capacity: u32,
    /// Tracked cell → snapshot slot, assigned on first flagged write.
    slots: Mutex<HashMap<Loc, u32>>,
    /// Last value written per cell since the previous sync (the redo set).
    dirty: Mutex<BTreeMap<Loc, u64>>,
    epoch: AtomicU64,
    /// 0 = `shadow_a` holds the committed snapshot, 1 = `shadow_b`.
    committed_region: AtomicU64,
    /// Committed log length, in cells (2 per redo entry).
    log_len: AtomicU64,
    sync_interval: usize,
    ops_since_sync: AtomicU64,
    sync_lock: Mutex<()>,
}

impl BufferedEpoch {
    /// Allocates the commit cell, two `capacity`-cell shadow regions and a
    /// `2 * capacity`-cell redo log from `heap`. With `sync_interval > 0`,
    /// `completeOp` triggers an automatic [`BufferedEpoch::sync`] every
    /// `sync_interval` completed operations; with `0`, syncs are manual.
    ///
    /// Returns `None` if the heap cannot fit `4 * capacity + 1` cells.
    pub fn create(heap: &SharedHeap, capacity: u32, sync_interval: usize) -> Option<Self> {
        let log_capacity = 2 * capacity;
        assert!(
            u64::from(log_capacity) < (1 << LOG_BITS),
            "log capacity exceeds the commit encoding"
        );
        let commit = heap.alloc(1)?;
        let shadow_a = heap.alloc(capacity)?;
        let shadow_b = heap.alloc(capacity)?;
        let log_base = heap.alloc(log_capacity)?;
        Some(BufferedEpoch {
            region: heap.region(),
            commit,
            shadow_a,
            shadow_b,
            log_base,
            capacity,
            log_capacity,
            slots: Mutex::new(HashMap::new()),
            dirty: Mutex::new(BTreeMap::new()),
            epoch: AtomicU64::new(0),
            committed_region: AtomicU64::new(0),
            log_len: AtomicU64::new(0),
            sync_interval,
            ops_since_sync: AtomicU64::new(0),
            sync_lock: Mutex::new(()),
        })
    }

    /// The number of completed syncs.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Distinct cells written (with `pflag`) since the last sync.
    pub fn dirty_len(&self) -> usize {
        self.dirty.lock().len()
    }

    /// Cells tracked for snapshotting.
    pub fn tracked_len(&self) -> usize {
        self.slots.lock().len()
    }

    fn shadow(&self, region: u64, slot: u32) -> Loc {
        let base = if region == 0 {
            self.shadow_a
        } else {
            self.shadow_b
        };
        Loc::new(self.region, base.addr.0 + slot)
    }

    fn log_cell(&self, i: u64) -> Loc {
        Loc::new(self.region, self.log_base.addr.0 + i as u32)
    }

    fn encode_commit(epoch: u64, log_len: u64, region: u64) -> u64 {
        (epoch << (LOG_BITS + REGION_BITS)) | (log_len << REGION_BITS) | region
    }

    fn decode_commit(raw: u64) -> (u64, u64, u64) {
        (
            raw >> (LOG_BITS + REGION_BITS),
            (raw >> REGION_BITS) & ((1 << LOG_BITS) - 1),
            raw & 1,
        )
    }

    /// Registers `loc` with value `v`, assigning a snapshot slot on first
    /// use.
    ///
    /// # Panics
    ///
    /// Panics if more than `capacity` distinct cells are written, or if a
    /// cell outside the strategy's memory region is flagged persistent.
    fn record(&self, loc: Loc, v: u64) {
        assert_eq!(
            loc.owner, self.region,
            "BufferedEpoch tracks cells on its own region only"
        );
        let mut slots = self.slots.lock();
        let n = slots.len() as u32;
        slots.entry(loc).or_insert_with(|| {
            assert!(
                n < self.capacity,
                "BufferedEpoch capacity exhausted ({} cells)",
                self.capacity
            );
            n
        });
        drop(slots);
        self.dirty.lock().insert(loc, v);
    }

    /// Appends the dirty cells to the redo log (overlapped write-backs
    /// under one barrier) and commits; compacts into a full snapshot when
    /// the log is full. Returns the new epoch number.
    ///
    /// Everything completed before this call is durable afterwards;
    /// everything after it is exposed to rollback until the next sync.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed; the previously committed
    /// state remains intact in that case.
    pub fn sync(&self, node: &NodeHandle) -> OpResult<u64> {
        let _g = self.sync_lock.lock();
        // One `dirty` acquisition for the whole batch: take the map
        // wholesale instead of copying and clearing entry by entry.
        let dirty = std::mem::take(&mut *self.dirty.lock());
        let epoch = self.epoch.load(Ordering::Acquire) + 1;
        let mut len = self.log_len.load(Ordering::Acquire);
        let region = self.committed_region.load(Ordering::Acquire);

        if len + 2 * dirty.len() as u64 > u64::from(self.log_capacity) {
            // Compaction: full ping-pong snapshot, log reset. One
            // `slots` acquisition for the whole batch; the taken dirty
            // map doubles as the redo lookup (no second map build).
            let target = 1 - region;
            let snapshot: Vec<(Loc, u32)> = {
                let slots = self.slots.lock();
                slots.iter().map(|(&l, &s)| (l, s)).collect()
            };
            for (loc, slot) in snapshot {
                let v = match dirty.get(&loc) {
                    Some(&v) => v,
                    None => node.load(loc)?,
                };
                let cell = self.shadow(target, slot);
                node.lstore(cell, v)?;
                node.aflush(cell)?;
            }
            node.barrier()?;
            node.mstore(self.commit, Self::encode_commit(epoch, 0, target))?;
            self.committed_region.store(target, Ordering::Release);
            self.log_len.store(0, Ordering::Release);
        } else {
            // Redo-log append: two cells per entry, one barrier for all.
            for (loc, v) in &dirty {
                let id_cell = self.log_cell(len);
                let val_cell = self.log_cell(len + 1);
                node.lstore(id_cell, u64::from(loc.addr.0))?;
                node.aflush(id_cell)?;
                node.lstore(val_cell, *v)?;
                node.aflush(val_cell)?;
                len += 2;
            }
            node.barrier()?;
            node.mstore(self.commit, Self::encode_commit(epoch, len, region))?;
            self.log_len.store(len, Ordering::Release);
        }
        self.epoch.store(epoch, Ordering::Release);
        self.ops_since_sync.store(0, Ordering::Release);
        Ok(epoch)
    }

    /// Restores the last committed state: the full snapshot, then the
    /// committed redo log replayed over it. Cells first written after the
    /// last sync roll back to their value at that sync (or `0` if they
    /// did not exist yet). Call after the memory node recovers.
    ///
    /// Returns the epoch of the restored state (`0` if no sync ever
    /// committed — everything rolls back to the initial state).
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn recover(&self, node: &NodeHandle) -> OpResult<u64> {
        let _g = self.sync_lock.lock();
        let raw = node.load(self.commit)?;
        let (epoch, log_len, region) = Self::decode_commit(raw);
        let snapshot: Vec<(Loc, u32)> = {
            let slots = self.slots.lock();
            slots.iter().map(|(&l, &s)| (l, s)).collect()
        };
        for (loc, slot) in snapshot {
            let v = if raw == 0 {
                0 // no snapshot ever committed: the initial state
            } else {
                node.load(self.shadow(region, slot))?
            };
            node.mstore(loc, v)?;
        }
        let mut i = 0;
        while i + 1 < log_len {
            let addr = node.load(self.log_cell(i))?;
            let v = node.load(self.log_cell(i + 1))?;
            node.mstore(Loc::new(self.region, addr as u32), v)?;
            i += 2;
        }
        self.committed_region.store(region, Ordering::Release);
        self.log_len.store(log_len, Ordering::Release);
        self.epoch.store(epoch, Ordering::Release);
        self.dirty.lock().clear();
        self.ops_since_sync.store(0, Ordering::Release);
        Ok(epoch)
    }
}

impl Persistence for BufferedEpoch {
    fn name(&self) -> &'static str {
        "buffered-epoch"
    }

    fn shared_load(&self, node: &NodeHandle, loc: Loc, _pflag: bool) -> OpResult<u64> {
        // No helping: readers owe nothing, because nothing promises
        // persistence before the next sync anyway.
        node.load(loc)
    }

    fn shared_store(&self, node: &NodeHandle, loc: Loc, v: u64, pflag: bool) -> OpResult<()> {
        if !pflag {
            return node.lstore(loc, v);
        }
        // Hold the dirty lock across the store so the recorded last value
        // matches the store order under concurrency.
        let _serial = self.sync_lock.lock();
        node.lstore(loc, v)?;
        self.record(loc, v);
        Ok(())
    }

    fn private_load(&self, node: &NodeHandle, loc: Loc) -> OpResult<u64> {
        node.load(loc)
    }

    fn private_store(&self, node: &NodeHandle, loc: Loc, v: u64, pflag: bool) -> OpResult<()> {
        self.shared_store(node, loc, v, pflag)
    }

    fn shared_cas(
        &self,
        node: &NodeHandle,
        loc: Loc,
        old: u64,
        new: u64,
        pflag: bool,
    ) -> OpResult<Result<u64, u64>> {
        if !pflag {
            return node.cas(StoreKind::Local, loc, old, new);
        }
        let _serial = self.sync_lock.lock();
        let r = node.cas(StoreKind::Local, loc, old, new)?;
        if r.is_ok() {
            self.record(loc, new);
        }
        Ok(r)
    }

    fn shared_faa(&self, node: &NodeHandle, loc: Loc, delta: u64, pflag: bool) -> OpResult<u64> {
        if !pflag {
            return node.faa(StoreKind::Local, loc, delta);
        }
        let _serial = self.sync_lock.lock();
        let old = node.faa(StoreKind::Local, loc, delta)?;
        self.record(loc, old.wrapping_add(delta));
        Ok(old)
    }

    fn complete_op(&self, node: &NodeHandle) -> OpResult<()> {
        if self.sync_interval > 0 {
            let n = self.ops_since_sync.fetch_add(1, Ordering::AcqRel) + 1;
            if n as usize >= self.sync_interval {
                self.sync(node)?;
            }
        }
        Ok(())
    }

    // Rollback recovery replays the *redo log*: a batched store that
    // bypassed `record()` (the trait's `AFlush`-riding default) would be
    // rolled back to the last epoch snapshot without a log entry to
    // restore it. Keep combined batches on the logged store path; the
    // buffered promise (durable as of the last sync) already needs no
    // per-batch sync.
    fn defers_batches(&self) -> bool {
        false
    }

    fn batched_store(&self, node: &NodeHandle, loc: Loc, v: u64) -> OpResult<()> {
        self.shared_store(node, loc, v, true)
    }

    fn flush_batch(&self, node: &NodeHandle) -> OpResult<()> {
        let _ = node;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimFabric;
    use crate::ds::{DurableCounter, DurableQueue, DurableRegister};
    use cxl0_model::SystemConfig;
    use std::sync::Arc;

    const M0: MachineId = MachineId(0);
    const MEM: MachineId = MachineId(1);

    fn setup(interval: usize) -> (Arc<SimFabric>, Arc<SharedHeap>, Arc<BufferedEpoch>) {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 4096));
        let heap = Arc::new(SharedHeap::new(f.config(), MEM));
        let b = Arc::new(BufferedEpoch::create(&heap, 256, interval).unwrap());
        (f, heap, b)
    }

    #[test]
    fn unsynced_writes_roll_back() {
        let (f, heap, b) = setup(0);
        let reg = DurableRegister::create(&heap, Arc::clone(&b) as Arc<dyn Persistence>).unwrap();
        let node = f.node(M0);
        reg.write(&node, 1).unwrap();
        b.sync(&node).unwrap();
        reg.write(&node, 2).unwrap();
        // Force the post-sync value into memory: rollback must still win.
        node.rflush(reg.cell()).unwrap();
        f.crash(MEM);
        f.recover(MEM);
        b.recover(&node).unwrap();
        assert_eq!(reg.read(&node).unwrap(), 1);
    }

    #[test]
    fn synced_writes_survive() {
        let (f, heap, b) = setup(0);
        let reg = DurableRegister::create(&heap, Arc::clone(&b) as Arc<dyn Persistence>).unwrap();
        let node = f.node(M0);
        reg.write(&node, 7).unwrap();
        assert_eq!(b.sync(&node).unwrap(), 1);
        f.crash(MEM);
        f.recover(MEM);
        assert_eq!(b.recover(&node).unwrap(), 1);
        assert_eq!(reg.read(&node).unwrap(), 7);
    }

    #[test]
    fn no_sync_rolls_back_to_initial_state() {
        let (f, heap, b) = setup(0);
        let reg = DurableRegister::create(&heap, Arc::clone(&b) as Arc<dyn Persistence>).unwrap();
        let node = f.node(M0);
        reg.write(&node, 9).unwrap();
        f.crash(MEM);
        f.recover(MEM);
        assert_eq!(b.recover(&node).unwrap(), 0);
        assert_eq!(reg.read(&node).unwrap(), 0);
    }

    #[test]
    fn cells_first_written_after_sync_roll_back_to_zero() {
        let (f, heap, b) = setup(0);
        let r1 = DurableRegister::create(&heap, Arc::clone(&b) as Arc<dyn Persistence>).unwrap();
        let node = f.node(M0);
        r1.write(&node, 1).unwrap();
        b.sync(&node).unwrap();
        let r2 = DurableRegister::create(&heap, Arc::clone(&b) as Arc<dyn Persistence>).unwrap();
        r2.write(&node, 5).unwrap();
        f.crash(MEM);
        f.recover(MEM);
        b.recover(&node).unwrap();
        assert_eq!(r1.read(&node).unwrap(), 1);
        assert_eq!(r2.read(&node).unwrap(), 0); // was 0 at sync time
    }

    #[test]
    fn multiple_syncs_accumulate_in_the_log() {
        let (f, heap, b) = setup(0);
        let r1 = DurableRegister::create(&heap, Arc::clone(&b) as Arc<dyn Persistence>).unwrap();
        let r2 = DurableRegister::create(&heap, Arc::clone(&b) as Arc<dyn Persistence>).unwrap();
        let node = f.node(M0);
        r1.write(&node, 1).unwrap();
        b.sync(&node).unwrap();
        r2.write(&node, 2).unwrap();
        b.sync(&node).unwrap();
        r1.write(&node, 3).unwrap();
        b.sync(&node).unwrap();
        f.crash(MEM);
        f.recover(MEM);
        assert_eq!(b.recover(&node).unwrap(), 3);
        // Replay order: later log entries win.
        assert_eq!(r1.read(&node).unwrap(), 3);
        assert_eq!(r2.read(&node).unwrap(), 2);
    }

    #[test]
    fn log_compaction_preserves_state() {
        // Tiny capacity forces compaction quickly: capacity 4 → log of 8
        // cells → at most 4 redo entries between compactions.
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 256));
        let heap = Arc::new(SharedHeap::new(f.config(), MEM));
        let b = Arc::new(BufferedEpoch::create(&heap, 4, 0).unwrap());
        let regs: Vec<_> = (0..3)
            .map(|_| {
                DurableRegister::create(&heap, Arc::clone(&b) as Arc<dyn Persistence>).unwrap()
            })
            .collect();
        let node = f.node(M0);
        for round in 1..=5u64 {
            for (i, r) in regs.iter().enumerate() {
                r.write(&node, round * 10 + i as u64).unwrap();
            }
            b.sync(&node).unwrap();
        }
        f.crash(MEM);
        f.recover(MEM);
        assert_eq!(b.recover(&node).unwrap(), 5);
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(r.read(&node).unwrap(), 50 + i as u64);
        }
    }

    #[test]
    fn interval_triggers_automatic_syncs() {
        let (f, heap, b) = setup(4);
        let reg = DurableRegister::create(&heap, Arc::clone(&b) as Arc<dyn Persistence>).unwrap();
        let node = f.node(M0);
        for v in 1..=8u64 {
            reg.write(&node, v).unwrap(); // each write is one completed op
        }
        assert_eq!(b.epoch(), 2);
        f.crash(MEM);
        f.recover(MEM);
        b.recover(&node).unwrap();
        // The second auto-sync happened at op 8, so value 8 survived.
        assert_eq!(reg.read(&node).unwrap(), 8);
    }

    #[test]
    fn fast_path_issues_no_flushes_sync_batches() {
        let (f, heap, b) = setup(0);
        let reg = DurableRegister::create(&heap, Arc::clone(&b) as Arc<dyn Persistence>).unwrap();
        let node = f.node(M0);
        for v in 1..=50u64 {
            reg.write(&node, v).unwrap();
        }
        let s = f.stats().snapshot();
        assert_eq!(s.flushes(), 0);
        assert_eq!(s.mstores, 0);
        assert_eq!(s.aflushes, 0);
        // One sync: 50 deduplicated writes to one cell = one redo entry
        // (2 log cells), one barrier, one commit MStore.
        b.sync(&node).unwrap();
        let s2 = f.stats().snapshot();
        assert_eq!(s2.aflushes, 2);
        assert_eq!(s2.barriers, 1);
        assert_eq!(s2.mstores, 1);
    }

    #[test]
    fn queue_recovers_to_sync_point() {
        let (f, heap, b) = setup(0);
        // The epoch machinery bumped ~1k cells off the front of the
        // region; give the allocator the untouched upper half.
        let alloc = Arc::new(crate::alloc::Allocator::with_range(
            f.config(),
            heap.region(),
            2048,
            2048,
            Arc::clone(&b) as Arc<dyn Persistence>,
        ));
        let node = f.node(M0);
        let queue = DurableQueue::create(&alloc, &node).unwrap().unwrap();
        queue.enqueue(&node, 1).unwrap();
        queue.enqueue(&node, 2).unwrap();
        b.sync(&node).unwrap();
        queue.enqueue(&node, 3).unwrap(); // will be rolled back
        f.crash(MEM);
        f.recover(MEM);
        b.recover(&node).unwrap();
        queue.recover(&node).unwrap();
        assert_eq!(queue.dequeue(&node).unwrap(), Some(1));
        assert_eq!(queue.dequeue(&node).unwrap(), Some(2));
        assert_eq!(queue.dequeue(&node).unwrap(), None);
    }

    #[test]
    fn counter_faa_tracked_and_rolled_back() {
        let (f, heap, b) = setup(0);
        let counter =
            DurableCounter::create(&heap, Arc::clone(&b) as Arc<dyn Persistence>).unwrap();
        let node = f.node(M0);
        counter.add(&node, 5).unwrap();
        b.sync(&node).unwrap();
        counter.add(&node, 5).unwrap();
        f.crash(MEM);
        f.recover(MEM);
        b.recover(&node).unwrap();
        assert_eq!(counter.get(&node).unwrap(), 5);
    }

    #[test]
    fn dirty_and_tracked_counters() {
        let (f, heap, b) = setup(0);
        let reg = DurableRegister::create(&heap, Arc::clone(&b) as Arc<dyn Persistence>).unwrap();
        let node = f.node(M0);
        assert_eq!(b.dirty_len(), 0);
        reg.write(&node, 1).unwrap();
        assert_eq!(b.dirty_len(), 1);
        assert_eq!(b.tracked_len(), 1);
        b.sync(&node).unwrap();
        assert_eq!(b.dirty_len(), 0);
        assert_eq!(b.tracked_len(), 1); // tracking persists across syncs
    }

    #[test]
    fn sync_failure_keeps_previous_commit() {
        let (f, heap, b) = setup(0);
        let reg = DurableRegister::create(&heap, Arc::clone(&b) as Arc<dyn Persistence>).unwrap();
        let node = f.node(M0);
        reg.write(&node, 1).unwrap();
        b.sync(&node).unwrap();
        reg.write(&node, 2).unwrap();
        // The *issuer* crashes: sync cannot run.
        f.crash(M0);
        assert!(b.sync(&node).is_err());
        f.recover(M0);
        // Memory node state is unaffected; rollback target is epoch 1.
        f.crash(MEM);
        f.recover(MEM);
        b.recover(&node).unwrap();
        assert_eq!(reg.read(&node).unwrap(), 1);
        assert_eq!(b.epoch(), 1);
    }

    #[test]
    fn empty_sync_still_advances_the_epoch() {
        let (f, _heap, b) = setup(0);
        let node = f.node(M0);
        assert_eq!(b.sync(&node).unwrap(), 1);
        assert_eq!(b.sync(&node).unwrap(), 2);
    }

    #[test]
    fn commit_encoding_round_trips() {
        for (e, l, r) in [(0u64, 0u64, 0u64), (1, 6, 1), (901, 4096, 0)] {
            let raw = BufferedEpoch::encode_commit(e, l, r);
            assert_eq!(BufferedEpoch::decode_commit(raw), (e, l, r));
        }
    }

    #[test]
    #[should_panic(expected = "capacity exhausted")]
    fn capacity_overflow_panics() {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 64));
        let heap = Arc::new(SharedHeap::new(f.config(), MEM));
        let b = BufferedEpoch::create(&heap, 2, 0).unwrap();
        let node = f.node(M0);
        for _ in 0..3 {
            let loc = heap.alloc(1).unwrap();
            b.shared_store(&node, loc, 1, true).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "own region")]
    fn foreign_region_cell_rejected() {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 64));
        let heap = Arc::new(SharedHeap::new(f.config(), MEM));
        let b = BufferedEpoch::create(&heap, 2, 0).unwrap();
        let node = f.node(M0);
        b.shared_store(&node, Loc::new(M0, 0), 1, true).unwrap();
    }
}
