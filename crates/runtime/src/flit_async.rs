//! FliT over the `CXL0_AF` asynchronous-flush extension.
//!
//! The original FliT (Algorithm 1) was designed for x86's *asynchronous*
//! flushes: `CLFLUSHOPT` enqueues a write-back and a later `SFENCE` waits
//! for it. The paper's CXL0 adaptation (Algorithm 2) had to fall back to
//! synchronous `RFlush`es because CXL lacks asynchronous flushes — and its
//! §3.2 sketches how to add them via persistency buffers. [`FlitAsync`]
//! closes the loop: it is Algorithm 1 transplanted onto the `CXL0_AF`
//! extension (`AFlush` + `Barrier`), durably linearizable under partial
//! crashes:
//!
//! | Algorithm 1 (x86) | [`FlitAsync`] (`CXL0_AF`) |
//! |---|---|
//! | `FENCE()` at `shared_store` entry | leading `Barrier` |
//! | `Store` | `LStore` |
//! | `Flush` (`CLFLUSHOPT`) | `AFlush` |
//! | `MFENCE()` after the flush | trailing `Barrier` |
//! | helping `Flush` in `shared_load` (no fence) | helping `AFlush` (no barrier) |
//! | `completeOp`: `MFENCE()` | `completeOp`: `Barrier` |
//!
//! The crucial difference from a naive "defer all persistence to
//! `completeOp`" design: **stores persist synchronously** (the trailing
//! barrier inside `shared_store`), so per-thread persistence remains
//! prefix-ordered and a crash can never persist a later store of an
//! operation without an earlier one. Only the *helping* flushes performed
//! by readers are deferred — they protect another thread's store, whose
//! own writer still guarantees it; the reader merely must persist it
//! before *its own* operation completes (P-V condition 3/4), which the
//! `completeOp` barrier does.
//!
//! Where it wins: read-heavy contended workloads. A reader that observes a
//! positive FliT counter pays a buffer enqueue ([`CostModel::aflush_issue`])
//! instead of a synchronous remote flush, and all of an operation's helping
//! write-backs retire, overlapped, under one barrier.
//!
//! [`CostModel::aflush_issue`]: crate::cost::CostModel

use cxl0_model::{Loc, StoreKind};

use crate::backend::NodeHandle;
use crate::error::OpResult;
use crate::flit::{FlitTable, Persistence};

/// Algorithm 1 (the original, asynchronous-flush FliT) adapted to the
/// `CXL0_AF` extension: `LStore` + `AFlush` + `Barrier`, with deferred
/// helping flushes on the read path.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use cxl0_runtime::{SimFabric, DurableQueue, FlitAsync, Persistence};
/// use cxl0_runtime::alloc::Allocator;
/// use cxl0_model::{SystemConfig, MachineId};
///
/// let fabric = SimFabric::new(SystemConfig::symmetric_nvm(3, 1024));
/// let persist: Arc<dyn Persistence> = Arc::new(FlitAsync::default());
/// let alloc = Arc::new(Allocator::over_region(fabric.config(), MachineId(2), persist));
/// let node = fabric.node(MachineId(0));
/// let queue = DurableQueue::create(&alloc, &node)?.unwrap();
/// queue.enqueue(&node, 7)?;
///
/// fabric.crash(MachineId(2));
/// fabric.recover(MachineId(2));
/// queue.recover(&node)?;
/// assert_eq!(queue.dequeue(&node)?, Some(7));
/// # Ok::<(), cxl0_runtime::Crashed>(())
/// ```
#[derive(Debug)]
pub struct FlitAsync {
    table: FlitTable,
}

impl FlitAsync {
    /// Creates the transformation with a counter table of `stripes`.
    pub fn new(stripes: usize) -> Self {
        FlitAsync {
            table: FlitTable::new(stripes),
        }
    }
}

impl Default for FlitAsync {
    fn default() -> Self {
        FlitAsync::new(1024)
    }
}

impl Persistence for FlitAsync {
    fn name(&self) -> &'static str {
        "flit-async"
    }

    fn shared_load(&self, node: &NodeHandle, loc: Loc, pflag: bool) -> OpResult<u64> {
        let val = node.load(loc)?;
        if pflag && self.table.in_flight(loc) {
            // Help, but do not wait: the write-back retires under this
            // operation's completeOp barrier (Alg. 1 lines 12–15).
            node.aflush(loc)?;
        }
        Ok(val)
    }

    fn shared_store(&self, node: &NodeHandle, loc: Loc, v: u64, pflag: bool) -> OpResult<()> {
        if !pflag {
            return node.lstore(loc, v);
        }
        // Alg. 1 line 18: prior (helping) flushes must complete before the
        // store becomes visible, so dependencies persist before this store
        // linearizes (P-V condition 4).
        node.barrier()?;
        self.table.enter(loc);
        let result = node.lstore(loc, v).and_then(|()| {
            node.aflush(loc)?;
            // Alg. 1 line 23: the store is persistent before we return, so
            // per-thread persistence stays prefix-ordered.
            node.barrier()?;
            // The trailing barrier is this strategy's durability point:
            // acknowledge it to the sanitizer/tracer seam, as the
            // synchronous strategies do after their RFlush.
            node.ack_persist(loc);
            Ok(())
        });
        // On a crash the counter stays raised: a leaked positive counter
        // only causes conservative helper flushes, never a safety loss.
        if result.is_ok() {
            self.table.exit(loc);
        }
        result
    }

    fn private_load(&self, node: &NodeHandle, loc: Loc) -> OpResult<u64> {
        node.load(loc)
    }

    fn private_store(&self, node: &NodeHandle, loc: Loc, v: u64, pflag: bool) -> OpResult<()> {
        node.lstore(loc, v)?;
        if pflag {
            node.aflush(loc)?;
            node.barrier()?;
            node.ack_persist(loc);
        }
        Ok(())
    }

    fn shared_cas(
        &self,
        node: &NodeHandle,
        loc: Loc,
        old: u64,
        new: u64,
        pflag: bool,
    ) -> OpResult<Result<u64, u64>> {
        if !pflag {
            return node.cas(StoreKind::Local, loc, old, new);
        }
        node.barrier()?;
        self.table.enter(loc);
        let result = node.cas(StoreKind::Local, loc, old, new).and_then(|r| {
            // Success persists the installed value; failure acted as a
            // p-load and helps persist the observed one (condition 3).
            node.aflush(loc)?;
            node.barrier()?;
            node.ack_persist(loc);
            Ok(r)
        });
        if result.is_ok() {
            self.table.exit(loc);
        }
        result
    }

    fn shared_faa(&self, node: &NodeHandle, loc: Loc, delta: u64, pflag: bool) -> OpResult<u64> {
        if !pflag {
            return node.faa(StoreKind::Local, loc, delta);
        }
        node.barrier()?;
        self.table.enter(loc);
        let result = node.faa(StoreKind::Local, loc, delta).and_then(|old| {
            node.aflush(loc)?;
            node.barrier()?;
            node.ack_persist(loc);
            Ok(old)
        });
        if result.is_ok() {
            self.table.exit(loc);
        }
        result
    }

    fn complete_op(&self, node: &NodeHandle) -> OpResult<()> {
        // Alg. 1 line 29: retire this operation's helping flushes before
        // the operation returns.
        node.barrier()?;
        Ok(())
    }

    // The batched-store path (`Persistence::batched_store` /
    // `flush_batch`) keeps the trait default — LStore + AFlush per
    // store, one Barrier per batch — which *is* this strategy's own
    // discipline applied at batch rather than op granularity: §3.2's
    // persistency-buffer amortization.
}

impl FlitAsync {
    /// Testing hook: raises the FliT counter for `loc` as an in-flight
    /// writer would.
    #[doc(hidden)]
    pub fn raise_counter(&self, loc: Loc) {
        self.table.enter(loc);
    }

    /// Testing hook: lowers the FliT counter for `loc`.
    #[doc(hidden)]
    pub fn lower_counter(&self, loc: Loc) {
        self.table.exit(loc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimFabric;
    use cxl0_model::{MachineId, SystemConfig};

    const M0: MachineId = MachineId(0);
    const MEM: MachineId = MachineId(1);

    fn setup() -> (std::sync::Arc<SimFabric>, NodeHandle, Loc) {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 8));
        let node = f.node(M0);
        (f, node, Loc::new(MEM, 0))
    }

    #[test]
    fn store_is_persistent_before_returning() {
        let (f, node, x) = setup();
        let p = FlitAsync::default();
        p.shared_store(&node, x, 9, true).unwrap();
        // The trailing barrier inside shared_store persisted it already.
        assert_eq!(f.peek_memory(x), 9);
        assert_eq!(f.pending_flushes(M0), 0);
    }

    #[test]
    fn unflagged_store_is_not_persistent() {
        let (f, node, x) = setup();
        let p = FlitAsync::default();
        p.shared_store(&node, x, 9, false).unwrap();
        assert_eq!(f.peek_memory(x), 0);
    }

    #[test]
    fn helping_load_defers_until_complete_op() {
        let (f, node, x) = setup();
        let p = FlitAsync::default();
        // Simulate another thread's in-flight store.
        p.raise_counter(x);
        node.lstore(x, 7).unwrap();
        let v = p.shared_load(&node, x, true).unwrap();
        assert_eq!(v, 7);
        // Help was enqueued, not performed:
        assert_eq!(f.pending_flushes(M0), 1);
        assert_eq!(f.peek_memory(x), 0);
        // completeOp retires it.
        p.complete_op(&node).unwrap();
        assert_eq!(f.pending_flushes(M0), 0);
        assert_eq!(f.peek_memory(x), 7);
        p.lower_counter(x);
    }

    #[test]
    fn helping_load_skips_quiet_cells() {
        let (f, node, x) = setup();
        let p = FlitAsync::default();
        node.lstore(x, 7).unwrap();
        p.shared_load(&node, x, true).unwrap();
        assert_eq!(f.pending_flushes(M0), 0); // counter at zero: no help
    }

    #[test]
    fn leading_barrier_persists_prior_helps_before_store() {
        let (f, node, x) = setup();
        let y = Loc::new(MEM, 1);
        let p = FlitAsync::default();
        // A helped-but-unretired cell...
        p.raise_counter(y);
        node.lstore(y, 5).unwrap();
        p.shared_load(&node, y, true).unwrap();
        assert_eq!(f.peek_memory(y), 0);
        // ... persists before the next shared store linearizes.
        p.shared_store(&node, x, 1, true).unwrap();
        assert_eq!(f.peek_memory(y), 5);
        p.lower_counter(y);
    }

    #[test]
    fn cas_and_faa_persist_synchronously() {
        let (f, node, x) = setup();
        let p = FlitAsync::default();
        assert_eq!(p.shared_cas(&node, x, 0, 4, true).unwrap(), Ok(0));
        assert_eq!(f.peek_memory(x), 4);
        assert_eq!(p.shared_faa(&node, x, 3, true).unwrap(), 4);
        assert_eq!(f.peek_memory(x), 7);
    }

    #[test]
    fn private_store_persists_when_flagged() {
        let (f, node, x) = setup();
        let p = FlitAsync::default();
        p.private_store(&node, x, 2, true).unwrap();
        assert_eq!(f.peek_memory(x), 2);
        p.private_store(&node, x, 3, false).unwrap();
        assert_eq!(f.peek_memory(x), 2); // unflagged: cache only
        assert_eq!(p.private_load(&node, x).unwrap(), 3);
    }

    #[test]
    fn helped_reads_are_cheaper_than_sync_flit() {
        use crate::flit::FlitCxl0;
        // Same scenario under both transformations: a hot cell with a
        // permanently raised counter, N helped reads, one completeOp.
        let reads = 64;

        let (f_async, node_a, x_a) = setup();
        let pa = FlitAsync::default();
        pa.raise_counter(x_a);
        node_a.lstore(x_a, 1).unwrap();
        for _ in 0..reads {
            pa.shared_load(&node_a, x_a, true).unwrap();
        }
        pa.complete_op(&node_a).unwrap();

        let (f_sync, node_s, x_s) = setup();
        let ps = FlitCxl0::default();
        ps.shared_load(&node_s, x_s, false).unwrap(); // warm-up symmetry
        node_s.lstore(x_s, 1).unwrap();
        // FlitCxl0 has no public counter hook; emulate the helped path by
        // issuing the sync flush a helped read would perform.
        for _ in 0..reads {
            ps.shared_load(&node_s, x_s, true).unwrap();
            node_s.rflush(x_s).unwrap();
        }

        assert!(
            f_async.stats().sim_nanos() < f_sync.stats().sim_nanos() / 2,
            "async helping should be at least 2x cheaper: {} vs {}",
            f_async.stats().sim_nanos(),
            f_sync.stats().sim_nanos()
        );
    }

    #[test]
    fn name_is_reported() {
        assert_eq!(FlitAsync::default().name(), "flit-async");
    }
}
