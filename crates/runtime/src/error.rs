//! Runtime errors.

use std::fmt;

use cxl0_model::MachineId;

/// The issuing machine has crashed: the operation did not take place and
/// the calling thread must terminate (a new thread will be spawned on
/// recovery, per the paper's failure model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crashed {
    /// The machine whose crash interrupted the operation.
    pub machine: MachineId,
}

impl fmt::Display for Crashed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "machine {} has crashed", self.machine)
    }
}

impl std::error::Error for Crashed {}

/// Result alias for operations that fail only by machine crash.
pub type OpResult<T> = Result<T, Crashed>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_machine() {
        let e = Crashed {
            machine: MachineId(2),
        };
        assert_eq!(e.to_string(), "machine m2 has crashed");
    }
}
