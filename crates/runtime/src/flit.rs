//! The FliT transformation for CXL0 (§6, Algorithm 2), its ancestors and
//! its ablations, all behind one [`Persistence`] trait so that the same
//! data-structure code can run under any of them:
//!
//! | Strategy | Stores | Flush | Durably linearizable under CXL0? |
//! |---|---|---|---|
//! | [`FlitCxl0`] | `LStore` | `RFlush` | **yes** (Alg. 2, proven in §B) |
//! | [`FlitOwnerOpt`] | `LStore` | `LFlush` if issuer owns the line, else `RFlush` | yes (§6.1 optimisation) |
//! | [`FlitX86`] | `LStore` | `LFlush` | **no** — the original full-system-crash FliT (Alg. 1) ported naively; its flush only reaches the owner's *cache* |
//! | [`NaiveMStore`] | `MStore` | none needed | yes, but slower (§6.1) |
//! | [`NoPersistence`] | `LStore` | none | no — plain linearizable object |
//!
//! The per-cell *FliT counter* signals to readers that a store to the cell
//! may be globally visible but not yet persistent; a reader seeing a
//! positive counter helps by flushing before returning (Alg. 2 lines
//! 41–45). Counters are volatile metadata kept in a striped table
//! ([`FlitTable`]); a counter left positive by a crashed writer merely
//! causes conservative extra flushes, never a correctness loss.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use cxl0_model::{Loc, StoreKind};

use crate::backend::NodeHandle;
use crate::error::OpResult;

/// A striped table of FliT counters, hashed by location.
///
/// With `stripes >= number of cells` this behaves like a per-cell counter;
/// smaller tables trade false sharing of counters (spurious helper
/// flushes) for memory — the ablation benchmark `flit_overhead` measures
/// that tradeoff.
#[derive(Debug)]
pub struct FlitTable {
    counters: Vec<AtomicU64>,
    mask: usize,
}

impl FlitTable {
    /// Creates a table with `stripes` counters (rounded up to a power of
    /// two).
    ///
    /// # Panics
    ///
    /// Panics if `stripes` is zero.
    pub fn new(stripes: usize) -> Self {
        assert!(stripes > 0, "need at least one stripe");
        let n = stripes.next_power_of_two();
        FlitTable {
            counters: (0..n).map(|_| AtomicU64::new(0)).collect(),
            mask: n - 1,
        }
    }

    fn slot(&self, loc: Loc) -> &AtomicU64 {
        // Fibonacci hashing over (owner, addr).
        let h = (loc.owner.index() as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(u64::from(loc.addr.0).wrapping_mul(0xD1B54A32D192ED03));
        &self.counters[(h >> 32) as usize & self.mask]
    }

    /// Increment the counter for `loc` (a store is in flight).
    pub fn enter(&self, loc: Loc) {
        self.slot(loc).fetch_add(1, Ordering::SeqCst);
    }

    /// Decrement the counter for `loc` (the store has persisted).
    pub fn exit(&self, loc: Loc) {
        self.slot(loc).fetch_sub(1, Ordering::SeqCst);
    }

    /// True if a store to `loc` (or a stripe-mate) may be unpersisted.
    pub fn in_flight(&self, loc: Loc) -> bool {
        self.slot(loc).load(Ordering::SeqCst) > 0
    }

    /// Number of stripes.
    pub fn stripes(&self) -> usize {
        self.counters.len()
    }
}

/// The memory-access interface data structures program against: FliT's
/// `shared_*`/`private_*` wrappers plus RMWs, per Algorithm 2.
///
/// The `pflag` argument mirrors the paper's persistence flag: `false`
/// means the access needs no durability (it is compiled to the bare
/// primitive).
///
/// **Ack discipline.** A strategy must call `NodeHandle::ack_persist`
/// at the exact point a flagged store/RMW becomes durable (after the
/// `RFlush` here, after the trailing `Barrier` in
/// [`FlitAsync`](crate::flit_async::FlitAsync)): the persistency
/// sanitizer ([`crate::check`]) treats the ack as the durability claim
/// it audits, and the tracer ([`crate::trace`]) counts acks into each
/// op span's persist amplification. Strategies that make no per-store
/// durability claim (`NoPersistence`, the buffered relaxation) simply
/// never ack.
pub trait Persistence: Send + Sync + fmt::Debug {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// `shared_load` (Alg. 2 lines 41–45).
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    fn shared_load(&self, node: &NodeHandle, loc: Loc, pflag: bool) -> OpResult<u64>;

    /// `shared_store` (Alg. 2 lines 46–54).
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    fn shared_store(&self, node: &NodeHandle, loc: Loc, v: u64, pflag: bool) -> OpResult<()>;

    /// `private_load` (Alg. 2 lines 31–33).
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    fn private_load(&self, node: &NodeHandle, loc: Loc) -> OpResult<u64>;

    /// `private_store` (Alg. 2 lines 34–40).
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    fn private_store(&self, node: &NodeHandle, loc: Loc, v: u64, pflag: bool) -> OpResult<()>;

    /// Shared CAS: the RMW analogue of `shared_store`; a failed CAS is a
    /// shared load. Returns `Ok(old)` / `Err(actual)` inside the crash
    /// result.
    ///
    /// # Errors
    ///
    /// Fails with `Crashed` if the issuing machine has crashed.
    fn shared_cas(
        &self,
        node: &NodeHandle,
        loc: Loc,
        old: u64,
        new: u64,
        pflag: bool,
    ) -> OpResult<Result<u64, u64>>;

    /// Shared fetch-and-add; returns the previous value.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    fn shared_faa(&self, node: &NodeHandle, loc: Loc, delta: u64, pflag: bool) -> OpResult<u64>;

    /// `completeOp` (Alg. 2 line 55): a barrier at the end of every
    /// high-level operation. Empty for the CXL0 transformation
    /// (synchronous flushes); kept for interface fidelity.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    fn complete_op(&self, node: &NodeHandle) -> OpResult<()> {
        let _ = node;
        Ok(())
    }

    /// True when [`Persistence::batched_store`] defers its persistence
    /// work to the next [`Persistence::flush_batch`] instead of
    /// persisting synchronously; the combining front uses this to
    /// account how many per-operation sync points a batch amortized
    /// away. The default batched path defers.
    fn defers_batches(&self) -> bool {
        true
    }

    /// A store issued by a *combiner* — a thread that holds a
    /// structure's combining lock and is therefore the structure's sole
    /// mutator for the duration of the batch (see
    /// [`crate::ds::combine`]). Because no concurrent reader can observe
    /// the cell mid-batch, no FliT counter traffic is needed; because
    /// the batch ends with [`Persistence::flush_batch`], the per-store
    /// sync may be deferred.
    ///
    /// The default rides the `CXL0_AF` extension regardless of the
    /// strategy's *plain-path* flush policy: `LStore` + `AFlush` here,
    /// one `Barrier` in [`Persistence::flush_batch`]. That is durably
    /// sound for any strategy whose promise is "acknowledged ⇒
    /// durable": no batched op is acknowledged before the batch
    /// barrier, and a crash of the combiner's machine drops its cache
    /// lines *and* its persistency buffer wholesale, so an unflushed
    /// batch vanishes all-or-nothing — callers of its ops observe an
    /// error, never a half-persisted op reported complete. Strategies
    /// with a *weaker* plain-path promise (buffered epochs) or none at
    /// all ([`NoPersistence`]) override this with their own path.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    fn batched_store(&self, node: &NodeHandle, loc: Loc, v: u64) -> OpResult<()> {
        node.lstore(loc, v)?;
        node.aflush(loc)
    }

    /// The batch-flush entry point: retires every store the current
    /// combined batch deferred, in one sync. A combiner must call this
    /// after applying a batch via [`Persistence::batched_store`] and
    /// **before** acknowledging any of the batch's operations — the
    /// acknowledgement is what promises durability. The default retires
    /// the `AFlush`es the default `batched_store` enqueued with one
    /// `Barrier`; no-op for strategies whose `batched_store` is
    /// synchronous.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    fn flush_batch(&self, node: &NodeHandle) -> OpResult<()> {
        node.barrier()?;
        Ok(())
    }
}

/// How a strategy flushes a just-written line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushPolicy {
    /// `RFlush` always (Alg. 2).
    RemoteAlways,
    /// `LFlush` when the issuer owns the line, `RFlush` otherwise (§6.1).
    LocalWhenOwner,
    /// `LFlush` always (the x86 FliT ported without adaptation — unsound
    /// under partial crashes).
    LocalAlways,
}

fn flush_with(policy: FlushPolicy, node: &NodeHandle, loc: Loc) -> OpResult<()> {
    match policy {
        FlushPolicy::RemoteAlways => node.rflush(loc),
        FlushPolicy::LocalWhenOwner => {
            if node.machine() == loc.owner {
                node.lflush(loc)
            } else {
                node.rflush(loc)
            }
        }
        FlushPolicy::LocalAlways => node.lflush(loc),
    }
}

/// Shared implementation of the three FliT-shaped strategies.
#[derive(Debug)]
struct FlitCore {
    table: FlitTable,
    policy: FlushPolicy,
    name: &'static str,
}

impl FlitCore {
    fn shared_load(&self, node: &NodeHandle, loc: Loc, pflag: bool) -> OpResult<u64> {
        let val = node.load(loc)?;
        if pflag && self.table.in_flight(loc) {
            flush_with(self.policy, node, loc)?;
        }
        Ok(val)
    }

    fn shared_store(&self, node: &NodeHandle, loc: Loc, v: u64, pflag: bool) -> OpResult<()> {
        if pflag {
            self.table.enter(loc);
            let result = node.lstore(loc, v).and_then(|()| {
                flush_with(self.policy, node, loc)?;
                // The strategy now considers `loc` persisted: the checker
                // compares that belief against the shadow cell state.
                node.ack_persist(loc);
                Ok(())
            });
            self.table.exit(loc);
            result
        } else {
            node.lstore(loc, v)
        }
    }

    fn private_store(&self, node: &NodeHandle, loc: Loc, v: u64, pflag: bool) -> OpResult<()> {
        node.lstore(loc, v)?;
        if pflag {
            flush_with(self.policy, node, loc)?;
            node.ack_persist(loc);
        }
        Ok(())
    }

    fn shared_cas(
        &self,
        node: &NodeHandle,
        loc: Loc,
        old: u64,
        new: u64,
        pflag: bool,
    ) -> OpResult<Result<u64, u64>> {
        if !pflag {
            return node.cas(StoreKind::Local, loc, old, new);
        }
        self.table.enter(loc);
        let result = node.cas(StoreKind::Local, loc, old, new).and_then(|r| {
            // Success: persist the installed value. Failure: the CAS acted
            // as a p-load; help persist the observed value like a
            // shared_load would (condition 3 of the P-V interface).
            flush_with(self.policy, node, loc)?;
            if r.is_ok() {
                node.ack_persist(loc);
            }
            Ok(r)
        });
        self.table.exit(loc);
        result
    }

    fn shared_faa(&self, node: &NodeHandle, loc: Loc, delta: u64, pflag: bool) -> OpResult<u64> {
        if !pflag {
            return node.faa(StoreKind::Local, loc, delta);
        }
        self.table.enter(loc);
        let result = node.faa(StoreKind::Local, loc, delta).and_then(|old| {
            flush_with(self.policy, node, loc)?;
            node.ack_persist(loc);
            Ok(old)
        });
        self.table.exit(loc);
        result
    }
}

macro_rules! delegate_to_core {
    () => {
        fn name(&self) -> &'static str {
            self.core.name
        }
        fn shared_load(&self, node: &NodeHandle, loc: Loc, pflag: bool) -> OpResult<u64> {
            self.core.shared_load(node, loc, pflag)
        }
        fn shared_store(&self, node: &NodeHandle, loc: Loc, v: u64, pflag: bool) -> OpResult<()> {
            self.core.shared_store(node, loc, v, pflag)
        }
        fn private_load(&self, node: &NodeHandle, loc: Loc) -> OpResult<u64> {
            node.load(loc)
        }
        fn private_store(&self, node: &NodeHandle, loc: Loc, v: u64, pflag: bool) -> OpResult<()> {
            self.core.private_store(node, loc, v, pflag)
        }
        fn shared_cas(
            &self,
            node: &NodeHandle,
            loc: Loc,
            old: u64,
            new: u64,
            pflag: bool,
        ) -> OpResult<Result<u64, u64>> {
            self.core.shared_cas(node, loc, old, new, pflag)
        }
        fn shared_faa(
            &self,
            node: &NodeHandle,
            loc: Loc,
            delta: u64,
            pflag: bool,
        ) -> OpResult<u64> {
            self.core.shared_faa(node, loc, delta, pflag)
        }
    };
}

/// Algorithm 2: FliT adapted to CXL0 (`LStore` + `RFlush` + counters).
#[derive(Debug)]
pub struct FlitCxl0 {
    core: FlitCore,
}

impl FlitCxl0 {
    /// Creates the transformation with a counter table of `stripes`.
    pub fn new(stripes: usize) -> Self {
        FlitCxl0 {
            core: FlitCore {
                table: FlitTable::new(stripes),
                policy: FlushPolicy::RemoteAlways,
                name: "flit-cxl0",
            },
        }
    }
}

impl FlitCxl0 {
    /// Testing hook: raises the FliT counter for `loc` as an in-flight
    /// writer would.
    #[doc(hidden)]
    pub fn raise_counter(&self, loc: Loc) {
        self.core.table.enter(loc);
    }

    /// Testing hook: lowers the FliT counter for `loc`.
    #[doc(hidden)]
    pub fn lower_counter(&self, loc: Loc) {
        self.core.table.exit(loc);
    }
}

impl Default for FlitCxl0 {
    fn default() -> Self {
        FlitCxl0::new(1024)
    }
}

impl Persistence for FlitCxl0 {
    delegate_to_core!();
}

/// §6.1's optimisation: `RFlush` replaced by `LFlush` for lines the
/// writing machine owns (an owner's `LFlush` already reaches memory).
#[derive(Debug)]
pub struct FlitOwnerOpt {
    core: FlitCore,
}

impl FlitOwnerOpt {
    /// Creates the optimised transformation.
    pub fn new(stripes: usize) -> Self {
        FlitOwnerOpt {
            core: FlitCore {
                table: FlitTable::new(stripes),
                policy: FlushPolicy::LocalWhenOwner,
                name: "flit-owner-opt",
            },
        }
    }
}

impl Default for FlitOwnerOpt {
    fn default() -> Self {
        FlitOwnerOpt::new(1024)
    }
}

impl Persistence for FlitOwnerOpt {
    delegate_to_core!();
}

/// Algorithm 1 ported *without* adaptation: flushes are local (they model
/// x86 `CLFLUSHOPT`, which under CXL0 only reaches the line owner's
/// cache). **Deliberately unsound** under partial crashes — used to
/// demonstrate why the adaptation is necessary (the §6 motivating
/// example).
#[derive(Debug)]
pub struct FlitX86 {
    core: FlitCore,
}

impl FlitX86 {
    /// Creates the unadapted transformation.
    pub fn new(stripes: usize) -> Self {
        FlitX86 {
            core: FlitCore {
                table: FlitTable::new(stripes),
                policy: FlushPolicy::LocalAlways,
                name: "flit-x86",
            },
        }
    }
}

impl Default for FlitX86 {
    fn default() -> Self {
        FlitX86::new(1024)
    }
}

impl Persistence for FlitX86 {
    delegate_to_core!();
}

/// The naive transformation of §6.1: every store is an `MStore` (correct
/// even without cache coherence, but pays the full memory round trip on
/// every write).
#[derive(Debug, Default)]
pub struct NaiveMStore;

impl Persistence for NaiveMStore {
    fn name(&self) -> &'static str {
        "naive-mstore"
    }

    fn shared_load(&self, node: &NodeHandle, loc: Loc, _pflag: bool) -> OpResult<u64> {
        node.load(loc)
    }

    fn shared_store(&self, node: &NodeHandle, loc: Loc, v: u64, pflag: bool) -> OpResult<()> {
        if pflag {
            node.mstore(loc, v)
        } else {
            node.lstore(loc, v)
        }
    }

    fn private_load(&self, node: &NodeHandle, loc: Loc) -> OpResult<u64> {
        node.load(loc)
    }

    fn private_store(&self, node: &NodeHandle, loc: Loc, v: u64, pflag: bool) -> OpResult<()> {
        self.shared_store(node, loc, v, pflag)
    }

    fn shared_cas(
        &self,
        node: &NodeHandle,
        loc: Loc,
        old: u64,
        new: u64,
        pflag: bool,
    ) -> OpResult<Result<u64, u64>> {
        let kind = if pflag {
            StoreKind::Memory
        } else {
            StoreKind::Local
        };
        node.cas(kind, loc, old, new)
    }

    fn shared_faa(&self, node: &NodeHandle, loc: Loc, delta: u64, pflag: bool) -> OpResult<u64> {
        let kind = if pflag {
            StoreKind::Memory
        } else {
            StoreKind::Local
        };
        node.faa(kind, loc, delta)
    }
}

/// No durability at all: plain `LStore`s and loads. The linearizable-but-
/// not-durable baseline.
#[derive(Debug, Default)]
pub struct NoPersistence;

impl Persistence for NoPersistence {
    fn name(&self) -> &'static str {
        "none"
    }

    fn shared_load(&self, node: &NodeHandle, loc: Loc, _pflag: bool) -> OpResult<u64> {
        node.load(loc)
    }

    fn shared_store(&self, node: &NodeHandle, loc: Loc, v: u64, _pflag: bool) -> OpResult<()> {
        node.lstore(loc, v)
    }

    fn private_load(&self, node: &NodeHandle, loc: Loc) -> OpResult<u64> {
        node.load(loc)
    }

    fn private_store(&self, node: &NodeHandle, loc: Loc, v: u64, _pflag: bool) -> OpResult<()> {
        node.lstore(loc, v)
    }

    fn shared_cas(
        &self,
        node: &NodeHandle,
        loc: Loc,
        old: u64,
        new: u64,
        _pflag: bool,
    ) -> OpResult<Result<u64, u64>> {
        node.cas(StoreKind::Local, loc, old, new)
    }

    fn shared_faa(&self, node: &NodeHandle, loc: Loc, delta: u64, _pflag: bool) -> OpResult<u64> {
        node.faa(StoreKind::Local, loc, delta)
    }

    // Promising no durability, the batched path owes none either: plain
    // cached stores, nothing to retire.
    fn defers_batches(&self) -> bool {
        false
    }

    fn batched_store(&self, node: &NodeHandle, loc: Loc, v: u64) -> OpResult<()> {
        node.lstore(loc, v)
    }

    fn flush_batch(&self, node: &NodeHandle) -> OpResult<()> {
        let _ = node;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimFabric;
    use cxl0_model::{MachineId, SystemConfig};

    const M0: MachineId = MachineId(0);
    const MEM: MachineId = MachineId(1);

    fn setup() -> (std::sync::Arc<SimFabric>, NodeHandle, Loc) {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 8));
        let node = f.node(M0);
        (f, node, Loc::new(MEM, 0))
    }

    #[test]
    fn flit_cxl0_store_is_immediately_persistent() {
        let (f, node, x) = setup();
        let p = FlitCxl0::default();
        p.shared_store(&node, x, 9, true).unwrap();
        assert_eq!(f.peek_memory(x), 9);
    }

    #[test]
    fn flit_cxl0_unflagged_store_is_not_persistent() {
        let (f, node, x) = setup();
        let p = FlitCxl0::default();
        p.shared_store(&node, x, 9, false).unwrap();
        assert_eq!(f.peek_memory(x), 0);
    }

    #[test]
    fn flit_x86_store_is_not_persistent_for_remote_lines() {
        let (f, node, x) = setup();
        let p = FlitX86::default();
        p.shared_store(&node, x, 9, true).unwrap();
        // LFlush only moved the line to the owner's cache — memory stale.
        assert_eq!(f.peek_memory(x), 0);
        assert!(f.is_cached(x));
    }

    #[test]
    fn owner_opt_persists_owned_lines_via_lflush() {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 8));
        let node = f.node(MEM); // issuer owns the line
        let x = Loc::new(MEM, 0);
        let p = FlitOwnerOpt::default();
        p.shared_store(&node, x, 5, true).unwrap();
        assert_eq!(f.peek_memory(x), 5);
        // And it used an LFlush, not an RFlush:
        let s = f.stats().snapshot();
        assert_eq!(s.lflushes, 1);
        assert_eq!(s.rflushes, 0);
    }

    #[test]
    fn naive_mstore_persists_without_flushes() {
        let (f, node, x) = setup();
        let p = NaiveMStore;
        p.shared_store(&node, x, 3, true).unwrap();
        assert_eq!(f.peek_memory(x), 3);
        assert_eq!(f.stats().snapshot().flushes(), 0);
        assert_eq!(f.stats().snapshot().mstores, 1);
    }

    #[test]
    fn reader_helps_when_counter_positive() {
        let (f, node, x) = setup();
        let p = FlitCxl0::default();
        // Simulate an in-flight store: counter raised, value unflushed.
        p.core.table.enter(x);
        node.lstore(x, 7).unwrap();
        let v = p.shared_load(&node, x, true).unwrap();
        assert_eq!(v, 7);
        // The reader flushed on our behalf.
        assert_eq!(f.peek_memory(x), 7);
        p.core.table.exit(x);
        // Counter back at zero: subsequent loads don't flush.
        let before = f.stats().snapshot().rflushes;
        p.shared_load(&node, x, true).unwrap();
        assert_eq!(f.stats().snapshot().rflushes, before);
    }

    #[test]
    fn shared_cas_persists_installed_value() {
        let (f, node, x) = setup();
        let p = FlitCxl0::default();
        assert_eq!(p.shared_cas(&node, x, 0, 4, true).unwrap(), Ok(0));
        assert_eq!(f.peek_memory(x), 4);
        assert_eq!(p.shared_cas(&node, x, 0, 5, true).unwrap(), Err(4));
    }

    #[test]
    fn shared_faa_persists_and_returns_previous() {
        let (f, node, x) = setup();
        let p = FlitCxl0::default();
        assert_eq!(p.shared_faa(&node, x, 2, true).unwrap(), 0);
        assert_eq!(p.shared_faa(&node, x, 2, true).unwrap(), 2);
        assert_eq!(f.peek_memory(x), 4);
    }

    #[test]
    fn flit_table_striping_aliases() {
        let t = FlitTable::new(1);
        assert_eq!(t.stripes(), 1);
        let a = Loc::new(MachineId(0), 0);
        let b = Loc::new(MachineId(1), 7);
        t.enter(a);
        // With a single stripe, b aliases a:
        assert!(t.in_flight(b));
        t.exit(a);
        assert!(!t.in_flight(b));
    }

    #[test]
    fn complete_op_is_a_no_op_for_cxl0_flit() {
        let (_f, node, _x) = setup();
        let p = FlitCxl0::default();
        assert!(p.complete_op(&node).is_ok());
    }

    #[test]
    fn strategies_report_names() {
        assert_eq!(FlitCxl0::default().name(), "flit-cxl0");
        assert_eq!(FlitOwnerOpt::default().name(), "flit-owner-opt");
        assert_eq!(FlitX86::default().name(), "flit-x86");
        assert_eq!(NaiveMStore.name(), "naive-mstore");
        assert_eq!(NoPersistence.name(), "none");
    }
}
