//! GPF-based snapshots — the one algorithmic use the paper grants the
//! Global Persistent Flush (§3.2): "a carefully designed algorithm may
//! still employ GPF for snapshots, thanks to its global and blocking
//! properties."
//!
//! [`take_gpf_snapshot`] issues a `GPF` (draining *every* cache in the
//! coherence domain to its backing memory) and then reads each location's
//! memory image. Because the GPF is global and blocking, the result is a
//! consistent cut of the whole system at the GPF point: it contains every
//! store that completed before the GPF, on any machine, and a crash
//! immediately after the snapshot loses nothing the snapshot holds (for
//! non-volatile memories).

use std::collections::BTreeMap;
use std::fmt;

use cxl0_model::Loc;

use crate::backend::NodeHandle;
use crate::error::OpResult;

/// A consistent image of every shared location's persistent state, taken
/// at a GPF point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemorySnapshot {
    values: BTreeMap<Loc, u64>,
}

impl MemorySnapshot {
    /// The snapshotted value of `loc`, if `loc` exists in the system.
    pub fn get(&self, loc: Loc) -> Option<u64> {
        self.values.get(&loc).copied()
    }

    /// Number of locations captured.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the system has no shared locations.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterator over `(location, value)` pairs in location order.
    pub fn iter(&self) -> impl Iterator<Item = (Loc, u64)> + '_ {
        self.values.iter().map(|(&l, &v)| (l, v))
    }

    /// Locations whose value differs between the two snapshots, with
    /// `(self value, other value)`.
    pub fn diff(&self, other: &MemorySnapshot) -> Vec<(Loc, u64, u64)> {
        self.values
            .iter()
            .filter_map(|(&loc, &v)| {
                let w = other.get(loc)?;
                (v != w).then_some((loc, v, w))
            })
            .collect()
    }

    /// Locations with non-zero values (the "interesting" part of a mostly
    /// untouched address space).
    pub fn nonzero(&self) -> Vec<(Loc, u64)> {
        self.iter().filter(|&(_, v)| v != 0).collect()
    }
}

impl fmt::Display for MemorySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot{{")?;
        for (i, (loc, v)) in self.nonzero().into_iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{loc}={v}")?;
        }
        write!(f, "}}")
    }
}

/// Drains all caches with a `GPF` and captures every location's memory
/// image. Blocking and global, as §3.2 describes; expensive, intended for
/// planned checkpoints rather than per-operation durability.
///
/// # Errors
///
/// Fails if the issuing machine has crashed.
pub fn take_gpf_snapshot(node: &NodeHandle) -> OpResult<MemorySnapshot> {
    let _span = node.trace_span(crate::trace::OpKind::GpfSnapshot);
    node.gpf()?;
    let mut values = BTreeMap::new();
    for loc in node.fabric().config().all_locations() {
        // After the GPF no cache holds any line, so each load is a
        // LOAD-from-M and leaves the state unchanged.
        values.insert(loc, node.load(loc)?);
    }
    Ok(MemorySnapshot { values })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimFabric;
    use cxl0_model::{MachineId, SystemConfig};

    const M0: MachineId = MachineId(0);
    const M1: MachineId = MachineId(1);

    fn x(o: usize, a: u32) -> Loc {
        Loc::new(MachineId(o), a)
    }

    #[test]
    fn snapshot_sees_cached_stores_after_drain() {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 4));
        let n0 = f.node(M0);
        n0.lstore(x(1, 0), 7).unwrap(); // only in m0's cache
        n0.lstore(x(0, 1), 8).unwrap();
        let snap = take_gpf_snapshot(&n0).unwrap();
        assert_eq!(snap.get(x(1, 0)), Some(7));
        assert_eq!(snap.get(x(0, 1)), Some(8));
        // The GPF drained them into memory for real:
        assert_eq!(f.peek_memory(x(1, 0)), 7);
    }

    #[test]
    fn crash_right_after_snapshot_loses_nothing() {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 4));
        let n0 = f.node(M0);
        n0.lstore(x(1, 0), 7).unwrap();
        let snap = take_gpf_snapshot(&n0).unwrap();
        f.crash(M1);
        f.crash(M0);
        f.recover(M0);
        f.recover(M1);
        for (loc, v) in snap.iter() {
            assert_eq!(f.peek_memory(loc), v, "{loc} diverged from the snapshot");
        }
    }

    #[test]
    fn diff_reports_changes_between_checkpoints() {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 4));
        let n0 = f.node(M0);
        n0.mstore(x(0, 0), 1).unwrap();
        let a = take_gpf_snapshot(&n0).unwrap();
        n0.lstore(x(0, 0), 2).unwrap();
        n0.lstore(x(1, 3), 9).unwrap();
        let b = take_gpf_snapshot(&n0).unwrap();
        let d = a.diff(&b);
        assert_eq!(d, vec![(x(0, 0), 1, 2), (x(1, 3), 0, 9)]);
        assert!(a.diff(&a).is_empty());
    }

    #[test]
    fn snapshot_accessors() {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 2));
        let n0 = f.node(M0);
        n0.mstore(x(1, 1), 5).unwrap();
        let snap = take_gpf_snapshot(&n0).unwrap();
        assert_eq!(snap.len(), 4);
        assert!(!snap.is_empty());
        assert_eq!(snap.nonzero(), vec![(x(1, 1), 5)]);
        assert_eq!(snap.get(Loc::new(MachineId(5), 0)), None);
        assert!(snap.to_string().contains("x[m1:a1]=5"));
    }

    #[test]
    fn volatile_memory_snapshot_does_not_survive_its_owner() {
        // The snapshot is only as durable as the media backing it —
        // GPF gives consistency, not non-volatility.
        let f = SimFabric::new(SystemConfig::symmetric_volatile(2, 2));
        let n0 = f.node(M0);
        n0.lstore(x(1, 0), 7).unwrap();
        let snap = take_gpf_snapshot(&n0).unwrap();
        assert_eq!(snap.get(x(1, 0)), Some(7));
        f.crash(M1);
        f.recover(M1);
        assert_eq!(f.peek_memory(x(1, 0)), 0);
    }
}
