//! [`Session`]: the per-node programming context — a [`NodeHandle`]
//! bundled with the cluster's heap, durability strategy and named-root
//! registry, so application code creates, opens and drives durable
//! structures without threading any of those through every call.

use std::sync::Arc;

use cxl0_model::{Loc, MachineId};

use crate::alloc::Allocator;
use crate::api::cluster::Cluster;
use crate::api::error::{ApiError, ApiResult};
use crate::api::registry::{truncate_type_tag, RootInfo, RootKind, RootRecord};
use crate::api::word::Word;
use crate::backend::{AsNode, NodeHandle, StatsSnapshot};
use crate::ds::{
    CombinedQueue, CombinedStack, DurableCounter, DurableList, DurableLog, DurableMap,
    DurableQueue, DurableRegister, DurableStack,
};
use crate::flit::Persistence;
use crate::heap::SharedHeap;
use crate::smr::SmrDomain;
use crate::trace::RecoveryPhase;

/// A per-machine context over a [`Cluster`].
///
/// Data-structure operations accept a session wherever they accept a raw
/// node handle (both implement [`AsNode`]), so `q.enqueue(&session, v)`
/// is the whole calling convention. Sessions are cheap to clone and one
/// per worker thread is the intended pattern.
///
/// # Examples
///
/// ```
/// use cxl0_runtime::api::Cluster;
/// use cxl0_model::MachineId;
///
/// let cluster = Cluster::symmetric(2, 4096)?;
/// let session = cluster.session(MachineId(0));
/// let q = session.create_queue::<u64>("jobs")?;
/// q.enqueue(&session, 7)?;
///
/// // The memory node crashes; NVM survives, caches do not.
/// cluster.crash(cluster.memory_node());
/// cluster.recover(cluster.memory_node());
///
/// // Reattach by name — no header locations replayed through volatile
/// // state — and repair the tail.
/// let q = session.open_queue::<u64>("jobs")?;
/// q.recover(&session)?;
/// assert_eq!(q.dequeue(&session)?, Some(7));
/// # Ok::<(), cxl0_runtime::api::ApiError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Session {
    cluster: Arc<Cluster>,
    node: NodeHandle,
    entered: StatsSnapshot,
}

impl AsNode for Session {
    fn as_node(&self) -> &NodeHandle {
        &self.node
    }
}

impl Session {
    pub(crate) fn new(cluster: Arc<Cluster>, node: NodeHandle) -> Self {
        let entered = cluster.stats_snapshot();
        Session {
            cluster,
            node,
            entered,
        }
    }

    /// The machine this session issues from.
    pub fn machine(&self) -> MachineId {
        self.node.machine()
    }

    /// The raw per-machine handle (low-level escape hatch: primitives
    /// like `mstore`/`rflush`/`aflush` live there).
    pub fn node(&self) -> &NodeHandle {
        &self.node
    }

    /// The owning cluster.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// The cluster's raw bump heap (cells taken here bypass the
    /// allocator and are never reclaimed).
    pub fn heap(&self) -> &Arc<SharedHeap> {
        self.cluster.heap()
    }

    /// The cluster's crash-consistent allocator.
    pub fn allocator(&self) -> &Arc<Allocator> {
        self.cluster.allocator()
    }

    /// The cluster's durability strategy.
    pub fn persistence(&self) -> &Arc<dyn Persistence> {
        self.cluster.persistence()
    }

    /// The cluster's epoch-based reclamation domain (see
    /// [`crate::smr`]): what the traversal structures opened through
    /// this session pin and retire through.
    pub fn smr(&self) -> &Arc<SmrDomain> {
        self.cluster.smr()
    }

    /// Fabric *and allocator* statistics accumulated since this session
    /// was created — the snapshot-on-entry + diff dance every benchmark
    /// used to hand-roll. Alongside the primitive counters, the delta
    /// reports memory behavior: `allocs`, `frees`, `freelist_hits`
    /// (diffed) and the `live_cells`/`hw_cells` gauges (current values).
    ///
    /// Note the counters are fabric-wide: with concurrent sessions the
    /// delta covers everyone's operations in the window. Counters are
    /// striped over per-thread stripes internally, so each snapshot is
    /// an aggregation: exact for operations on threads that have been
    /// joined (or otherwise happen-before the call), like any relaxed
    /// counter read for still-running ones.
    pub fn stats_delta(&self) -> StatsSnapshot {
        self.cluster.stats_snapshot().since(&self.entered)
    }

    /// Under [`PersistMode::Buffered`](crate::api::PersistMode::Buffered),
    /// commits an epoch (see [`BufferedEpoch::sync`]); returns the new
    /// epoch number, or `None` when the cluster runs a strict strategy.
    ///
    /// [`BufferedEpoch::sync`]: crate::buffered::BufferedEpoch::sync
    ///
    /// # Errors
    ///
    /// Fails if this machine has crashed.
    pub fn sync(&self) -> ApiResult<Option<u64>> {
        match self.cluster.buffered() {
            Some(epoch) => Ok(Some(epoch.sync(&self.node)?)),
            None => Ok(None),
        }
    }

    /// Every committed named root, in registry order.
    ///
    /// # Errors
    ///
    /// Fails if this machine has crashed.
    pub fn roots(&self) -> ApiResult<Vec<RootInfo>> {
        Ok(self.cluster.directory().roots(&self.node)?)
    }

    /// Post-crash repair of the shared durable plumbing, in order:
    /// replays the buffered epoch's recovery (when the cluster runs
    /// [`PersistMode::Buffered`](crate::api::PersistMode::Buffered)),
    /// runs the allocator's recovery sweep
    /// ([`Allocator::recover`]: torn claims reverted, latched
    /// alloc/free intents sealed, orphaned blocks pushed back onto
    /// their free lists), sweeps the reclamation domain's volatile
    /// limbo bags back to the free lists
    /// ([`SmrDomain::recover`](crate::smr::SmrDomain::recover): retired
    /// blocks are already durably unlinked, so post-crash they are
    /// plain free memory), and seals registry entries left *pending* by
    /// creators that crashed between claim and commit, making those
    /// names creatable again. Must run quiesced (no concurrent
    /// operations), like the structures' own `recover` methods.
    ///
    /// Returns the number of sealed registry entries.
    ///
    /// # Errors
    ///
    /// Fails if this machine has crashed.
    pub fn recover_roots(&self) -> ApiResult<usize> {
        // Each phase is timed unconditionally (even when it has nothing
        // to do) so the tracer's recovery breakdown always carries all
        // four rows — a stable schema for dashboards and the bench.
        self.node.trace_begin_recovery();
        {
            let _t = self.node.trace_phase(RecoveryPhase::BufferedReplay);
            if let Some(epoch) = self.cluster.buffered() {
                epoch.recover(&self.node)?;
            }
        }
        {
            let _t = self.node.trace_phase(RecoveryPhase::AllocatorSweep);
            self.cluster.allocator().recover(&self.node)?;
        }
        {
            let _t = self.node.trace_phase(RecoveryPhase::SmrDrain);
            self.cluster.smr().recover(&self.node)?;
        }
        let _t = self.node.trace_phase(RecoveryPhase::RegistrySeal);
        Ok(self.cluster.directory().recover(&self.node)?)
    }

    /// The shared create flow: **claim the name first** (so a routine
    /// conflict — exists/pending/registry full — is side-effect-free and
    /// leaks no heap cells), then allocate and initialize the structure,
    /// then commit. A crash between claim and commit leaves a pending
    /// entry that [`Session::recover_roots`] seals; an allocation
    /// failure aborts the claim explicitly.
    fn create_root<S>(
        &self,
        name: &str,
        kind: RootKind,
        tag: u64,
        make: impl FnOnce() -> ApiResult<Option<(S, Loc, u32)>>,
    ) -> ApiResult<S> {
        let dir = self.cluster.directory();
        let claim = dir.claim(&self.node, name)?;
        let (structure, header, aux) = match make() {
            Ok(Some(made)) => made,
            Ok(None) => {
                dir.abort(&self.node, &claim)?;
                return Err(ApiError::HeapExhausted);
            }
            // Crashed mid-init: the pending claim is sealed by recovery,
            // like any other torn create.
            Err(e) => return Err(e),
        };
        dir.commit(
            &self.node,
            &claim,
            name,
            RootRecord {
                kind,
                header,
                aux,
                type_tag: tag,
            },
        )?;
        Ok(structure)
    }

    fn lookup(&self, name: &str, kind: RootKind, tag: u64) -> ApiResult<RootInfo> {
        let info = self.cluster.directory().lookup(&self.node, name)?;
        if info.kind != kind {
            return Err(ApiError::KindMismatch {
                name: name.to_string(),
                expected: kind,
                found: info.kind,
            });
        }
        if info.type_tag != truncate_type_tag(tag) {
            return Err(ApiError::TypeMismatch {
                name: name.to_string(),
            });
        }
        Ok(info)
    }

    /// Creates and registers a durable register under `name`.
    ///
    /// # Errors
    ///
    /// [`ApiError::AlreadyExists`] if the name is taken,
    /// [`ApiError::HeapExhausted`], registry and crash errors.
    pub fn create_register<T: Word>(&self, name: &str) -> ApiResult<DurableRegister<T>> {
        self.create_root(name, RootKind::Register, T::TAG, || {
            Ok(
                DurableRegister::<T>::create(self.heap(), Arc::clone(self.persistence()))
                    .map(|r| (r.cell(), r))
                    .map(|(c, r)| (r, c, 0)),
            )
        })
    }

    /// Reattaches to the durable register committed under `name`.
    ///
    /// # Errors
    ///
    /// [`ApiError::NotFound`], [`ApiError::KindMismatch`],
    /// [`ApiError::TypeMismatch`], crash errors.
    pub fn open_register<T: Word>(&self, name: &str) -> ApiResult<DurableRegister<T>> {
        let info = self.lookup(name, RootKind::Register, T::TAG)?;
        Ok(DurableRegister::attach(
            info.header,
            Arc::clone(self.persistence()),
        ))
    }

    /// Creates and registers a durable counter under `name`.
    ///
    /// # Errors
    ///
    /// As [`Session::create_register`].
    pub fn create_counter(&self, name: &str) -> ApiResult<DurableCounter> {
        self.create_root(name, RootKind::Counter, u64::TAG, || {
            Ok(
                DurableCounter::create(self.heap(), Arc::clone(self.persistence()))
                    .map(|c| (c.cell(), c))
                    .map(|(cell, c)| (c, cell, 0)),
            )
        })
    }

    /// Reattaches to the durable counter committed under `name`.
    ///
    /// # Errors
    ///
    /// As [`Session::open_register`].
    pub fn open_counter(&self, name: &str) -> ApiResult<DurableCounter> {
        let info = self.lookup(name, RootKind::Counter, u64::TAG)?;
        Ok(DurableCounter::attach(
            info.header,
            Arc::clone(self.persistence()),
        ))
    }

    /// Creates, initializes and registers a durable queue under `name`.
    ///
    /// # Errors
    ///
    /// As [`Session::create_register`].
    pub fn create_queue<T: Word>(&self, name: &str) -> ApiResult<DurableQueue<T>> {
        self.create_root(name, RootKind::Queue, T::TAG, || {
            let Some(q) = DurableQueue::<T>::create(self.allocator(), &self.node)? else {
                return Ok(None);
            };
            let header = q.header_cell();
            Ok(Some((q, header, 0)))
        })
    }

    /// Reattaches to the durable queue committed under `name`. Call
    /// [`DurableQueue::recover`] afterwards when reattaching post-crash.
    ///
    /// # Errors
    ///
    /// As [`Session::open_register`].
    pub fn open_queue<T: Word>(&self, name: &str) -> ApiResult<DurableQueue<T>> {
        let info = self.lookup(name, RootKind::Queue, T::TAG)?;
        Ok(DurableQueue::attach(
            info.header,
            Arc::clone(self.allocator()),
        ))
    }

    /// Creates and registers a durable stack under `name`.
    ///
    /// # Errors
    ///
    /// As [`Session::create_register`].
    pub fn create_stack<T: Word>(&self, name: &str) -> ApiResult<DurableStack<T>> {
        self.create_root(name, RootKind::Stack, T::TAG, || {
            Ok(DurableStack::<T>::create(self.allocator(), &self.node)?
                .map(|s| (s.top_cell(), s))
                .map(|(top, s)| (s, top, 0)))
        })
    }

    /// Reattaches to the durable stack committed under `name`.
    ///
    /// # Errors
    ///
    /// As [`Session::open_register`].
    pub fn open_stack<T: Word>(&self, name: &str) -> ApiResult<DurableStack<T>> {
        let info = self.lookup(name, RootKind::Stack, T::TAG)?;
        Ok(DurableStack::attach(
            info.header,
            Arc::clone(self.allocator()),
        ))
    }

    /// Creates a durable queue under `name` and wraps it in the
    /// cluster's shared combining front ([`crate::ds::combine`]): all
    /// mutations go through per-thread announcement slots and an
    /// elected combiner that batches the ops' persistence. Orthogonal to
    /// the cluster's `PersistMode`; the structure itself (and its
    /// recovery) is a plain [`DurableQueue`].
    ///
    /// # Errors
    ///
    /// As [`Session::create_register`].
    pub fn create_queue_combined<T: Word>(&self, name: &str) -> ApiResult<CombinedQueue<T>> {
        Ok(self.cluster.combined(self.create_queue(name)?))
    }

    /// Reattaches to the queue committed under `name`, behind the
    /// cluster's shared combining front. Call
    /// [`CombinedQueue::recover`](crate::ds::CombinedQueue) afterwards
    /// when reattaching post-crash.
    ///
    /// # Errors
    ///
    /// As [`Session::open_register`].
    pub fn open_queue_combined<T: Word>(&self, name: &str) -> ApiResult<CombinedQueue<T>> {
        Ok(self.cluster.combined(self.open_queue(name)?))
    }

    /// Creates a durable stack under `name` behind the cluster's shared
    /// combining front (see [`Session::create_queue_combined`]); stack
    /// fronts additionally annihilate concurrent push/pop pairs by
    /// elimination.
    ///
    /// # Errors
    ///
    /// As [`Session::create_register`].
    pub fn create_stack_combined<T: Word>(&self, name: &str) -> ApiResult<CombinedStack<T>> {
        Ok(self.cluster.combined(self.create_stack(name)?))
    }

    /// Reattaches to the stack committed under `name`, behind the
    /// cluster's shared combining front.
    ///
    /// # Errors
    ///
    /// As [`Session::open_register`].
    pub fn open_stack_combined<T: Word>(&self, name: &str) -> ApiResult<CombinedStack<T>> {
        Ok(self.cluster.combined(self.open_stack(name)?))
    }

    /// Creates and registers a durable hash map with `capacity` slots
    /// (rounded up to a power of two) under `name`.
    ///
    /// The registry records both key and value fingerprints (combined),
    /// so `open_map` with swapped `K`/`V` is a type mismatch.
    ///
    /// # Errors
    ///
    /// As [`Session::create_register`].
    pub fn create_map<K: Word, V: Word>(
        &self,
        name: &str,
        capacity: u32,
    ) -> ApiResult<DurableMap<K, V>> {
        self.create_root(name, RootKind::Map, map_tag::<K, V>(), || {
            Ok(
                DurableMap::<K, V>::create(self.smr(), &self.node, capacity)?.map(|m| {
                    let (header, rounded) = m.layout();
                    (m, header, rounded)
                }),
            )
        })
    }

    /// Reattaches to the durable map committed under `name`.
    ///
    /// # Errors
    ///
    /// As [`Session::open_register`].
    pub fn open_map<K: Word, V: Word>(&self, name: &str) -> ApiResult<DurableMap<K, V>> {
        let info = self.lookup(name, RootKind::Map, map_tag::<K, V>())?;
        Ok(DurableMap::attach(
            info.header,
            info.aux,
            Arc::clone(self.smr()),
        ))
    }

    /// Creates and registers a durable shared log with `capacity` slots
    /// under `name`.
    ///
    /// # Errors
    ///
    /// As [`Session::create_register`].
    pub fn create_log<T: Word>(&self, name: &str, capacity: u32) -> ApiResult<DurableLog<T>> {
        self.create_root(name, RootKind::Log, T::TAG, || {
            Ok(
                DurableLog::<T>::create(self.heap(), capacity, Arc::clone(self.persistence())).map(
                    |log| {
                        let tail = log.tail_cell();
                        (log, tail, capacity)
                    },
                ),
            )
        })
    }

    /// Reattaches to the durable log committed under `name`. Call
    /// [`DurableLog::recover`] afterwards to seal crashed writers' holes.
    ///
    /// # Errors
    ///
    /// As [`Session::open_register`].
    pub fn open_log<T: Word>(&self, name: &str) -> ApiResult<DurableLog<T>> {
        let info = self.lookup(name, RootKind::Log, T::TAG)?;
        Ok(DurableLog::attach(
            info.header,
            info.aux,
            Arc::clone(self.persistence()),
        ))
    }

    /// Creates and registers a durable sorted set under `name`.
    ///
    /// # Errors
    ///
    /// As [`Session::create_register`].
    pub fn create_list<K: Word>(&self, name: &str) -> ApiResult<DurableList<K>> {
        self.create_root(name, RootKind::List, K::TAG, || {
            Ok(DurableList::<K>::create(self.smr(), &self.node)?
                .map(|l| (l.head_cell(), l))
                .map(|(head, l)| (l, head, 0)))
        })
    }

    /// Reattaches to the durable sorted set committed under `name`.
    ///
    /// # Errors
    ///
    /// As [`Session::open_register`].
    pub fn open_list<K: Word>(&self, name: &str) -> ApiResult<DurableList<K>> {
        let info = self.lookup(name, RootKind::List, K::TAG)?;
        Ok(DurableList::attach(info.header, Arc::clone(self.smr())))
    }

    /// Testing hook: claim `name` in the registry without committing —
    /// the state a creator crashing between claim and commit leaves
    /// behind. Sealed by [`Session::recover_roots`].
    #[doc(hidden)]
    pub fn simulate_torn_create(&self, name: &str) -> ApiResult<()> {
        self.cluster.directory().claim(&self.node, name).map(|_| ())
    }
}

/// Combined fingerprint for a map's key and value types.
fn map_tag<K: Word, V: Word>() -> u64 {
    K::TAG.rotate_left(1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ V::TAG
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::cluster::PersistMode;
    use cxl0_model::SystemConfig;

    fn cluster() -> Arc<Cluster> {
        Cluster::builder(SystemConfig::symmetric_nvm(3, 1 << 14))
            .build()
            .unwrap()
    }

    #[test]
    fn create_open_round_trip_all_kinds() {
        let c = cluster();
        let s = c.session(MachineId(0));

        let reg = s.create_register::<u64>("reg").unwrap();
        reg.write(&s, 5).unwrap();
        let ctr = s.create_counter("ctr").unwrap();
        ctr.add(&s, 3).unwrap();
        let q = s.create_queue::<u64>("q").unwrap();
        q.enqueue(&s, 1).unwrap();
        let st = s.create_stack::<u64>("st").unwrap();
        st.push(&s, 2).unwrap();
        let m = s.create_map::<u64, u64>("m", 16).unwrap();
        m.insert(&s, 7, 70).unwrap();
        let log = s.create_log::<u64>("log", 8).unwrap();
        log.append(&s, 9).unwrap();
        let l = s.create_list::<u64>("l").unwrap();
        l.insert(&s, 4).unwrap();

        // Reattach every kind by name, from a different machine.
        let s2 = c.session(MachineId(1));
        assert_eq!(
            s2.open_register::<u64>("reg").unwrap().read(&s2).unwrap(),
            5
        );
        assert_eq!(s2.open_counter("ctr").unwrap().get(&s2).unwrap(), 3);
        assert_eq!(
            s2.open_queue::<u64>("q").unwrap().dequeue(&s2).unwrap(),
            Some(1)
        );
        assert_eq!(
            s2.open_stack::<u64>("st").unwrap().pop(&s2).unwrap(),
            Some(2)
        );
        assert_eq!(
            s2.open_map::<u64, u64>("m").unwrap().get(&s2, 7).unwrap(),
            Some(70)
        );
        assert_eq!(
            s2.open_log::<u64>("log").unwrap().scan(&s2).unwrap(),
            vec![(0, 9)]
        );
        assert!(s2.open_list::<u64>("l").unwrap().contains(&s2, 4).unwrap());
        assert_eq!(s2.roots().unwrap().len(), 7);
    }

    #[test]
    fn duplicate_names_and_missing_names_error() {
        let c = cluster();
        let s = c.session(MachineId(0));
        s.create_counter("x").unwrap();
        assert_eq!(
            s.create_counter("x").err(),
            Some(ApiError::AlreadyExists("x".into()))
        );
        assert_eq!(
            s.open_counter("y").err(),
            Some(ApiError::NotFound("y".into()))
        );
    }

    #[test]
    fn kind_and_type_mismatches_are_rejected() {
        let c = cluster();
        let s = c.session(MachineId(0));
        s.create_queue::<u64>("jobs").unwrap();
        assert!(matches!(
            s.open_stack::<u64>("jobs").err(),
            Some(ApiError::KindMismatch { .. })
        ));
        assert_eq!(
            s.open_queue::<i64>("jobs").err(),
            Some(ApiError::TypeMismatch {
                name: "jobs".into()
            })
        );
        s.create_map::<u64, u32>("idx", 8).unwrap();
        assert!(s.open_map::<u64, u32>("idx").is_ok());
        assert!(matches!(
            s.open_map::<u32, u64>("idx").err(),
            Some(ApiError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn torn_create_blocks_the_name_until_sealed() {
        let c = cluster();
        let s = c.session(MachineId(0));
        s.simulate_torn_create("jobs").unwrap();
        assert_eq!(
            s.create_queue::<u64>("jobs").err(),
            Some(ApiError::PendingRoot("jobs".into()))
        );
        assert_eq!(
            s.open_queue::<u64>("jobs").err(),
            Some(ApiError::NotFound("jobs".into()))
        );
        assert_eq!(s.recover_roots().unwrap(), 1);
        let q = s.create_queue::<u64>("jobs").unwrap();
        q.enqueue(&s, 1).unwrap();
        assert_eq!(
            s.open_queue::<u64>("jobs").unwrap().dequeue(&s).unwrap(),
            Some(1)
        );
    }

    #[test]
    fn failed_creates_leak_no_heap_cells() {
        let c = cluster();
        let s = c.session(MachineId(0));
        s.create_map::<u64, u64>("idx", 64).unwrap();
        let free = c.heap().remaining();
        // Name conflicts are detected before allocation: the claim-first
        // flow keeps routine failures side-effect-free.
        assert!(s.create_map::<u64, u64>("idx", 64).is_err());
        assert!(s.create_queue::<u64>("idx").is_err());
        s.simulate_torn_create("stuck").unwrap();
        assert!(s.create_counter("stuck").is_err());
        assert_eq!(c.heap().remaining(), free);
    }

    #[test]
    fn roots_survive_memory_node_crash() {
        let c = cluster();
        let mem = c.memory_node();
        let s = c.session(MachineId(0));
        let reg = s.create_register::<bool>("flag").unwrap();
        reg.write(&s, true).unwrap();
        c.crash(mem);
        assert!(matches!(
            c.session(mem).roots().err(),
            Some(ApiError::Crashed(_))
        ));
        c.recover(mem);
        assert_eq!(s.recover_roots().unwrap(), 0);
        let reg = s.open_register::<bool>("flag").unwrap();
        assert!(reg.read(&s).unwrap());
    }

    #[test]
    fn stats_delta_counts_only_since_entry() {
        let c = cluster();
        let warm = c.session(MachineId(0));
        let reg = warm.create_register::<u64>("r").unwrap();
        reg.write(&warm, 1).unwrap();
        let fresh = c.session(MachineId(0));
        assert_eq!(fresh.stats_delta().total_ops(), 0);
        reg.write(&fresh, 2).unwrap();
        let d = fresh.stats_delta();
        assert!(d.total_ops() > 0);
        assert!(warm.stats_delta().total_ops() > d.total_ops());
    }

    #[test]
    fn buffered_session_sync_and_rollback() {
        let c = Cluster::builder(SystemConfig::symmetric_nvm(2, 1 << 12))
            .persist(PersistMode::Buffered {
                capacity: 64,
                sync_interval: 0,
            })
            .build()
            .unwrap();
        let mem = c.memory_node();
        let s = c.session(MachineId(0));
        let reg = s.create_register::<u64>("r").unwrap();
        reg.write(&s, 1).unwrap();
        assert!(s.sync().unwrap().is_some()); // checkpoint: 1 durable
        reg.write(&s, 2).unwrap(); // not yet durable
        c.crash(mem);
        c.recover(mem);
        s.recover_roots().unwrap(); // replays the committed epoch
        let reg = s.open_register::<u64>("r").unwrap();
        assert_eq!(reg.read(&s).unwrap(), 1);
    }

    #[test]
    fn strict_session_sync_is_none() {
        let c = cluster();
        let s = c.session(MachineId(0));
        assert_eq!(s.sync().unwrap(), None);
    }
}
