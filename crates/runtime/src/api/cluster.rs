//! [`ClusterBuilder`] → [`Cluster`]: one value that owns the whole
//! deployment — topology, model variant, cost model, durability strategy
//! and the named-root registry — so application code never hand-assembles
//! fabric + heap + persistence again.

use std::collections::HashMap;
use std::sync::Arc;

use cxl0_model::{Loc, MachineId, ModelVariant, SystemConfig};
use parking_lot::Mutex;

use crate::alloc::{Allocator, META_CELLS};
use crate::api::error::{ApiError, ApiResult};
use crate::api::registry::{RootDirectory, ENTRY_CELLS};
use crate::api::session::Session;
use crate::backend::{SimFabric, Stats, StatsSnapshot};
use crate::buffered::BufferedEpoch;
use crate::check::{CheckConfig, Checker};
use crate::cost::CostModel;
use crate::ds::combine::{Combinable, CombineBoard, CombineStats, Combined};
use crate::flit::{FlitCxl0, FlitOwnerOpt, FlitX86, NaiveMStore, NoPersistence, Persistence};
use crate::flit_async::FlitAsync;
use crate::heap::SharedHeap;
use crate::smr::SmrDomain;
use crate::trace::{TraceConfig, Tracer};

/// Which durability strategy a [`Cluster`] wires its structures to —
/// choosing one is a one-line configuration change instead of a type
/// swap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistMode {
    /// FliT adapted to CXL0 (Algorithm 2): every flagged access is
    /// durable before its operation returns. The recommended default.
    FlitCxl0,
    /// [`PersistMode::FlitCxl0`] with the §6.1 owner-flush optimisation.
    OwnerOpt,
    /// The *unadapted* x86 FliT — **deliberately unsound** under partial
    /// crashes; kept for the §6 motivating comparison.
    FlitX86,
    /// FliT's Algorithm 1 on the `CXL0_AF` asynchronous-flush extension:
    /// helping flushes defer to one overlapped barrier per operation.
    FlitAsync,
    /// Every flagged store is an `MStore`: correct without flushes, but
    /// pays the memory round trip on every write.
    NaiveMStore,
    /// No durability at all: plain linearizable objects.
    None,
    /// Buffered durability (§8): flush-free fast path, epoch syncs with a
    /// redo log, rollback recovery — *buffered* durably linearizable.
    Buffered {
        /// Distinct tracked cells per epoch (snapshot region size).
        capacity: u32,
        /// Auto-[`sync`](BufferedEpoch::sync) every this many completed
        /// operations (`0` = manual syncs only).
        sync_interval: usize,
    },
}

impl PersistMode {
    /// The strategy's report name (matches
    /// [`Persistence::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            PersistMode::FlitCxl0 => "flit-cxl0",
            PersistMode::OwnerOpt => "flit-owner-opt",
            PersistMode::FlitX86 => "flit-x86",
            PersistMode::FlitAsync => "flit-async",
            PersistMode::NaiveMStore => "naive-mstore",
            PersistMode::None => "none",
            PersistMode::Buffered { .. } => "buffered",
        }
    }

    /// The standard strategy-comparison lineup, in report order: baseline
    /// first, then the unsound port, the sound transformations, and the
    /// naive one.
    pub fn comparison_set() -> Vec<PersistMode> {
        vec![
            PersistMode::None,
            PersistMode::FlitX86,
            PersistMode::FlitCxl0,
            PersistMode::OwnerOpt,
            PersistMode::FlitAsync,
            PersistMode::NaiveMStore,
        ]
    }

    /// True if a completed operation is guaranteed durable before it
    /// returns (the strict, per-operation durability modes).
    pub fn is_strict(&self) -> bool {
        matches!(
            self,
            PersistMode::FlitCxl0
                | PersistMode::OwnerOpt
                | PersistMode::FlitAsync
                | PersistMode::NaiveMStore
        )
    }
}

/// Configures and builds a [`Cluster`].
///
/// # Examples
///
/// ```
/// use cxl0_runtime::api::{Cluster, PersistMode};
/// use cxl0_model::{ModelVariant, SystemConfig};
///
/// let cluster = Cluster::builder(SystemConfig::symmetric_nvm(3, 4096))
///     .variant(ModelVariant::Base)
///     .persist(PersistMode::FlitCxl0)
///     .build()?;
/// assert_eq!(cluster.memory_node().index(), 2);
/// # Ok::<(), cxl0_runtime::api::ApiError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    cfg: SystemConfig,
    variant: ModelVariant,
    cost: CostModel,
    mode: PersistMode,
    memory_node: Option<MachineId>,
    root_capacity: u32,
    checker: Option<CheckConfig>,
    tracing: Option<TraceConfig>,
}

impl ClusterBuilder {
    /// Starts from a topology. Defaults: base variant, Figure-5 cost
    /// model, [`PersistMode::FlitCxl0`], the highest-indexed machine with
    /// shared locations as the memory node, 32 registry entries.
    pub fn new(cfg: SystemConfig) -> Self {
        ClusterBuilder {
            cfg,
            variant: ModelVariant::Base,
            cost: CostModel::figure5(),
            mode: PersistMode::FlitCxl0,
            memory_node: None,
            root_capacity: 32,
            checker: None,
            tracing: None,
        }
    }

    /// Sets the model variant (`Base`, `Psn`, `Lwb`).
    pub fn variant(mut self, variant: ModelVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Sets the simulated-latency cost model.
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the durability strategy.
    pub fn persist(mut self, mode: PersistMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides which machine hosts the shared heap and the named-root
    /// registry.
    pub fn memory_node(mut self, m: MachineId) -> Self {
        self.memory_node = Some(m);
        self
    }

    /// Sets the named-root registry size, in entries. `0` disables the
    /// registry (no segment cells reserved; `create_*`/`open_*` with
    /// names will fail with [`ApiError::RegistryFull`]).
    pub fn root_capacity(mut self, entries: u32) -> Self {
        self.root_capacity = entries;
        self
    }

    /// Arms the persistency sanitizer ([`crate::check`]) with an explicit
    /// configuration. Without this call, setting `CXL0_SANITIZE=1` in the
    /// environment arms a mode-derived configuration instead (durability
    /// races only under strict modes; fail-fast except under the
    /// deliberately unsound [`PersistMode::FlitX86`]).
    pub fn with_checker(mut self, cfg: CheckConfig) -> Self {
        self.checker = Some(cfg);
        self
    }

    /// Arms the runtime tracer ([`crate::trace`]) with an explicit
    /// configuration. Without this call, setting `CXL0_TRACE=<path>` in
    /// the environment arms a default-configured tracer exporting to
    /// `<path>` when the cluster drops (`CXL0_TRACE=1` arms it with no
    /// export path — percentiles and breakdowns stay queryable
    /// in-process). Untraced clusters pay nothing: the hooks are a
    /// single `OnceLock` load.
    pub fn with_tracing(mut self, cfg: TraceConfig) -> Self {
        self.tracing = Some(cfg);
        self
    }

    /// Builds the cluster: fabric, crash-consistent allocator (with the
    /// registry and the allocator's metadata carved out of the memory
    /// node's segment, starting at offset 0) and persistence strategy.
    ///
    /// # Errors
    ///
    /// [`ApiError::NoMemoryNode`] if no machine owns shared locations;
    /// [`ApiError::RegistryTooLarge`] if the registry plus the
    /// allocator's metadata (plus, in buffered mode, the epoch
    /// machinery) does not fit the segment.
    ///
    /// # Panics
    ///
    /// Panics if the topology has more than 64 machines (a fabric limit).
    pub fn build(self) -> ApiResult<Arc<Cluster>> {
        let memory_node = match self.memory_node {
            Some(m) => m,
            Option::None => self
                .cfg
                .machines()
                .filter(|m| self.cfg.machine(*m).locations > 0)
                .last()
                .ok_or(ApiError::NoMemoryNode)?,
        };
        let available = self.cfg.machine(memory_node).locations;
        if available == 0 {
            return Err(ApiError::NoMemoryNode);
        }
        // The registry and the allocator's metadata must both fit, with
        // at least one block-area cell to spare. (Saturating arithmetic
        // keeps the overflow case inside the same error path.)
        let needed = self
            .root_capacity
            .saturating_mul(ENTRY_CELLS)
            .saturating_add(META_CELLS);
        if needed >= available {
            return Err(ApiError::RegistryTooLarge { needed, available });
        }
        let registry_cells = self.root_capacity * ENTRY_CELLS;

        let fabric = SimFabric::with_options(self.cfg.clone(), self.variant, self.cost);
        // Arm the sanitizer before any traffic (the allocator format
        // below must already be mirrored). An explicit `with_checker`
        // wins; otherwise `CXL0_SANITIZE=1` arms a mode-derived
        // configuration: durability races only under strict modes
        // (buffered modes legally persist out of publication order),
        // fail-fast except under the deliberately unsound FlitX86.
        let check_cfg = self.checker.or_else(|| {
            std::env::var("CXL0_SANITIZE")
                .ok()
                .filter(|v| !v.is_empty() && v != "0")
                .map(|_| CheckConfig {
                    durability_races: self.mode.is_strict(),
                    unpersisted_reads: true,
                    use_after_retire: true,
                    fail_fast: !matches!(self.mode, PersistMode::FlitX86),
                })
        });
        let checker = check_cfg.map(|cfg| Arc::new(Checker::new(cfg)));
        if let Some(ck) = &checker {
            fabric.install_checker(Arc::clone(ck));
        }
        // Arm the tracer the same way: explicit `with_tracing` wins,
        // otherwise `CXL0_TRACE=<path>` (or `=1` for no export) arms a
        // default configuration.
        let trace_cfg = self.tracing.or_else(|| {
            std::env::var("CXL0_TRACE")
                .ok()
                .filter(|v| !v.is_empty() && v != "0")
                .map(|v| TraceConfig {
                    export_path: (v != "1").then_some(v),
                    ..TraceConfig::default()
                })
        });
        let tracer = trace_cfg.map(|cfg| Arc::new(Tracer::new(cfg)));
        if let Some(tr) = &tracer {
            fabric.install_tracer(Arc::clone(tr));
            if let Some(ck) = &checker {
                ck.install_trace_sink(Arc::clone(tr));
            }
        }
        let heap = Arc::new(SharedHeap::with_range(
            fabric.config(),
            memory_node,
            registry_cells,
            available - registry_cells,
        ));

        let mut buffered = Option::None;
        let persist: Arc<dyn Persistence> = match self.mode {
            PersistMode::FlitCxl0 => Arc::new(FlitCxl0::default()),
            PersistMode::OwnerOpt => Arc::new(FlitOwnerOpt::default()),
            PersistMode::FlitX86 => Arc::new(FlitX86::default()),
            PersistMode::FlitAsync => Arc::new(FlitAsync::default()),
            PersistMode::NaiveMStore => Arc::new(NaiveMStore),
            PersistMode::None => Arc::new(NoPersistence),
            PersistMode::Buffered {
                capacity,
                sync_interval,
            } => {
                let epoch = Arc::new(BufferedEpoch::create(&heap, capacity, sync_interval).ok_or(
                    ApiError::RegistryTooLarge {
                        needed: registry_cells + META_CELLS + 4 * capacity + 1,
                        available,
                    },
                )?);
                buffered = Some(Arc::clone(&epoch));
                epoch
            }
        };

        // The allocator sits right after the registry (and, in buffered
        // mode, the epoch machinery bump-allocated just above): its
        // metadata cells come off the front of the heap's range and the
        // rest of the segment is its block area. In buffered mode the
        // epoch cells were not part of the up-front size check, so this
        // allocation can still fail — as an error, not a panic.
        let alloc_base = heap.alloc(META_CELLS).ok_or(ApiError::RegistryTooLarge {
            needed: match self.mode {
                PersistMode::Buffered { capacity, .. } => needed + 4 * capacity + 1,
                _ => needed,
            },
            available,
        })?;
        let allocator = Arc::new(Allocator::with_meta(
            memory_node,
            alloc_base.addr.0,
            available,
            Arc::clone(&heap),
            Arc::clone(&persist),
        ));
        allocator
            .format(&fabric.node(memory_node))
            .expect("a freshly built machine cannot be crashed");

        let registry_base = cxl0_model::Loc::new(memory_node, 0);
        let directory = RootDirectory::new(registry_base, self.root_capacity, Arc::clone(&persist));
        // One reclamation domain per cluster: every session handle of
        // every traversal structure shares these epochs, which is what
        // makes grace periods sound across handles.
        let smr = Arc::new(SmrDomain::new(Arc::clone(&allocator)));
        if let Some(ck) = &checker {
            // pin/unpin never touch the fabric, so the domain carries
            // its own handle to the same checker.
            smr.install_checker(Arc::clone(ck));
        }

        Ok(Arc::new(Cluster {
            fabric,
            heap,
            allocator,
            smr,
            persist,
            buffered,
            mode: self.mode,
            memory_node,
            directory,
            checker,
            tracer,
            combine_stats: Arc::new(CombineStats::default()),
            combine_boards: Mutex::new(HashMap::new()),
        }))
    }
}

/// A fully-wired CXL0 deployment: the fabric, the memory node's shared
/// heap, one durability strategy and the durable named-root registry.
///
/// Obtain per-machine contexts with [`Cluster::session`]; the low-level
/// pieces stay reachable ([`Cluster::fabric`], [`Cluster::heap`],
/// [`Cluster::persistence`]) for code that needs the escape hatch.
#[derive(Debug)]
pub struct Cluster {
    fabric: Arc<SimFabric>,
    heap: Arc<SharedHeap>,
    allocator: Arc<Allocator>,
    /// The cluster-wide epoch-based reclamation domain (one per
    /// allocator; shared by every traversal-structure handle).
    smr: Arc<SmrDomain>,
    persist: Arc<dyn Persistence>,
    buffered: Option<Arc<BufferedEpoch>>,
    mode: PersistMode,
    memory_node: MachineId,
    directory: RootDirectory,
    /// The persistency sanitizer, when armed (see
    /// [`ClusterBuilder::with_checker`]).
    checker: Option<Arc<Checker>>,
    /// The runtime tracer, when armed (see
    /// [`ClusterBuilder::with_tracing`]).
    tracer: Option<Arc<Tracer>>,
    /// Cluster-wide combining counters (all fronts share one set).
    combine_stats: Arc<CombineStats>,
    /// Volatile announcement boards, keyed by structure root cell so
    /// every session's handle of one structure shares one board.
    combine_boards: Mutex<HashMap<Loc, Arc<CombineBoard>>>,
}

impl Cluster {
    /// Starts configuring a cluster over `cfg`.
    pub fn builder(cfg: SystemConfig) -> ClusterBuilder {
        ClusterBuilder::new(cfg)
    }

    /// A ready-made cluster: `compute` compute nodes plus one NVM memory
    /// node of `cells` locations, under [`PersistMode::FlitCxl0`] — the
    /// paper's canonical deployment.
    ///
    /// # Errors
    ///
    /// Propagates [`ClusterBuilder::build`] failures.
    pub fn symmetric(compute: usize, cells: u32) -> ApiResult<Arc<Cluster>> {
        let mut machines = vec![cxl0_model::MachineConfig::compute_only(); compute];
        machines.push(cxl0_model::MachineConfig::non_volatile(cells));
        Cluster::builder(SystemConfig::new(machines)).build()
    }

    /// A per-machine [`Session`].
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn session(self: &Arc<Self>, m: MachineId) -> Session {
        Session::new(Arc::clone(self), self.fabric.node(m))
    }

    /// The underlying fabric (low-level escape hatch).
    pub fn fabric(&self) -> &Arc<SimFabric> {
        &self.fabric
    }

    /// The memory node's raw bump heap (low-level escape hatch; cells
    /// taken here bypass the allocator and are never reclaimed).
    pub fn heap(&self) -> &Arc<SharedHeap> {
        &self.heap
    }

    /// The crash-consistent allocator the durable structures allocate
    /// and reclaim their nodes through.
    pub fn allocator(&self) -> &Arc<Allocator> {
        &self.allocator
    }

    /// The durability strategy in force.
    pub fn persistence(&self) -> &Arc<dyn Persistence> {
        &self.persist
    }

    /// The cluster-wide epoch-based reclamation domain the traversal
    /// structures (list, map) retire through (see [`crate::smr`]).
    pub fn smr(&self) -> &Arc<SmrDomain> {
        &self.smr
    }

    /// The buffered-epoch machinery, when built with
    /// [`PersistMode::Buffered`].
    pub fn buffered(&self) -> Option<&Arc<BufferedEpoch>> {
        self.buffered.as_ref()
    }

    /// The persistency sanitizer, when armed (via
    /// [`ClusterBuilder::with_checker`] or `CXL0_SANITIZE=1`).
    pub fn checker(&self) -> Option<&Arc<Checker>> {
        self.checker.as_ref()
    }

    /// The runtime tracer, when armed (via
    /// [`ClusterBuilder::with_tracing`] or `CXL0_TRACE=<path>`). Query
    /// it for latency histograms, recovery breakdowns and exports.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Exports the trace to `path` now (`.jsonl` → JSONL, otherwise
    /// Chrome trace-event JSON), independent of any configured
    /// drop-time export path.
    ///
    /// # Errors
    ///
    /// [`ApiError::NoTracer`] when no tracer is armed;
    /// [`ApiError::TraceExport`] on an I/O failure.
    pub fn export_trace(&self, path: &str) -> ApiResult<()> {
        let tracer = self.tracer.as_ref().ok_or(ApiError::NoTracer)?;
        tracer
            .write_to(path)
            .map_err(|e| ApiError::TraceExport(e.to_string()))
    }

    /// The configured durability mode.
    pub fn mode(&self) -> PersistMode {
        self.mode
    }

    /// The machine hosting the heap and the registry.
    pub fn memory_node(&self) -> MachineId {
        self.memory_node
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        self.fabric.config()
    }

    /// Fabric-wide operation counters and simulated time (striped over
    /// per-thread stripes internally; [`Stats::snapshot`] aggregates).
    pub fn stats(&self) -> &Stats {
        self.fabric.stats()
    }

    /// One merged snapshot of the fabric counters, the allocator's
    /// memory counters, the combining-front counters *and* the
    /// reclamation-domain counters — what [`Session::stats_delta`]
    /// diffs.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let mut snap = self.fabric.stats().snapshot();
        let mem = self.allocator.stats();
        snap.allocs = mem.allocs;
        snap.frees = mem.frees;
        snap.freelist_hits = mem.freelist_hits;
        snap.live_cells = mem.live_cells;
        snap.hw_cells = mem.hw_cells;
        let cmb = &self.combine_stats;
        snap.combine_batches = cmb.batches();
        snap.combine_ops = cmb.ops();
        snap.combine_eliminations = cmb.eliminations();
        snap.combine_elections = cmb.elections();
        snap.combine_barriers_saved = cmb.barriers_saved();
        snap.combine_spare_reuses = cmb.spare_reuses();
        let smr = self.smr.stats();
        snap.smr_pins = smr.pins;
        snap.smr_retires = smr.retires;
        snap.smr_reclaims = smr.reclaims;
        snap.smr_advances = smr.advances;
        snap.smr_epoch = smr.epoch;
        snap.smr_limbo = smr.limbo;
        if let Some(ck) = &self.checker {
            snap.check_durability_races = ck.durability_races();
            snap.check_unpersisted_reads = ck.unpersisted_reads();
            snap.check_use_after_retire = ck.use_after_retire();
        }
        if let Some(tr) = &self.tracer {
            snap.trace_events = tr.events_recorded();
            snap.trace_dropped = tr.events_dropped();
            let h = tr.merged_histogram();
            snap.trace_p50_sim_ns = h.p50();
            snap.trace_p99_sim_ns = h.p99();
            snap.trace_p999_sim_ns = h.p999();
        }
        snap
    }

    /// The cluster-wide combining counters (shared by every combined
    /// front; also overlaid onto [`Cluster::stats_snapshot`]).
    pub fn combine_stats(&self) -> &Arc<CombineStats> {
        &self.combine_stats
    }

    /// Wraps `inner` in the cluster's shared combining front for its
    /// root cell: every handle of one structure — across sessions and
    /// machines — shares one volatile announcement board.
    pub(crate) fn combined<S: Combinable>(&self, inner: S) -> Combined<S> {
        let board = Arc::clone(
            self.combine_boards
                .lock()
                .entry(inner.root_cell())
                .or_insert_with(|| Arc::new(CombineBoard::new(Arc::clone(&self.combine_stats)))),
        );
        Combined::attach(inner, board)
    }

    /// Crashes machine `m` (stop-the-world; NVM survives, caches and
    /// volatile memory do not).
    pub fn crash(&self, m: MachineId) {
        self.fabric.crash(m);
    }

    /// Recovers machine `m`: new sessions may run on it again.
    pub fn recover(&self, m: MachineId) {
        self.fabric.recover(m);
    }

    /// True if machine `m` is currently crashed.
    pub fn is_crashed(&self, m: MachineId) -> bool {
        self.fabric.is_crashed(m)
    }

    pub(crate) fn directory(&self) -> &RootDirectory {
        &self.directory
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // The `CXL0_TRACE=<path>` contract: the trace lands on disk when
        // the deployment winds down, without the program opting in at
        // every exit path. Failures are reported, not propagated — drop
        // cannot return and must not panic.
        if let Some(tr) = &self.tracer {
            if let Some(path) = tr.config().export_path.clone() {
                if let Err(e) = tr.write_to(&path) {
                    eprintln!("cxl0: trace export to {path} failed: {e}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_reserves_registry_then_allocator_metadata() {
        let cluster = Cluster::builder(SystemConfig::symmetric_nvm(3, 4096))
            .root_capacity(16)
            .build()
            .unwrap();
        // The block area starts right after 16 * ENTRY_CELLS registry
        // cells plus the allocator's metadata.
        let first = cluster.heap().alloc(1).unwrap();
        assert_eq!(first.addr.0, 16 * ENTRY_CELLS + META_CELLS);
        assert_eq!(first.owner, cluster.memory_node());
    }

    #[test]
    fn memory_node_defaults_to_last_machine_with_locations() {
        let cfg = SystemConfig::new(vec![
            cxl0_model::MachineConfig::compute_only(),
            cxl0_model::MachineConfig::non_volatile(512),
            cxl0_model::MachineConfig::compute_only(),
        ]);
        let cluster = Cluster::builder(cfg).build().unwrap();
        assert_eq!(cluster.memory_node(), MachineId(1));
    }

    #[test]
    fn compute_only_topology_is_rejected() {
        let cfg = SystemConfig::new(vec![cxl0_model::MachineConfig::compute_only()]);
        assert_eq!(
            Cluster::builder(cfg).build().err(),
            Some(ApiError::NoMemoryNode)
        );
    }

    #[test]
    fn oversized_registry_is_rejected() {
        let err = Cluster::builder(SystemConfig::symmetric_nvm(2, 64))
            .root_capacity(64)
            .build()
            .err();
        assert!(matches!(err, Some(ApiError::RegistryTooLarge { .. })));
    }

    #[test]
    fn buffered_epoch_squeezing_out_the_allocator_errors_not_panics() {
        // The up-front check covers registry + allocator metadata; the
        // buffered epoch's 4*capacity+1 cells are only discovered when
        // the metadata is carved out — that path must error too.
        let err = Cluster::builder(SystemConfig::symmetric_nvm(2, 1000))
            .root_capacity(0)
            .persist(PersistMode::Buffered {
                capacity: 230, // 921 epoch cells leave < META_CELLS free
                sync_interval: 0,
            })
            .build()
            .err();
        assert!(matches!(err, Some(ApiError::RegistryTooLarge { .. })));
    }

    #[test]
    fn mode_names_match_strategy_names() {
        for mode in PersistMode::comparison_set() {
            let cluster = Cluster::builder(SystemConfig::symmetric_nvm(2, 4096))
                .persist(mode)
                .build()
                .unwrap();
            assert_eq!(cluster.persistence().name(), mode.name());
        }
        let buffered = Cluster::builder(SystemConfig::symmetric_nvm(2, 4096))
            .persist(PersistMode::Buffered {
                capacity: 32,
                sync_interval: 0,
            })
            .build()
            .unwrap();
        assert!(buffered.buffered().is_some());
        assert_eq!(buffered.mode().name(), "buffered");
    }
}
