//! The **named-root registry**: a small durable directory at a well-known
//! offset of the memory node's segment, mapping names to structure
//! headers.
//!
//! Without it, recovering a durable structure means replaying its header
//! [`Loc`] through volatile application state — exactly the boilerplate a
//! programming model should absorb. With it, post-crash code reattaches
//! with `session.open_queue::<u64>("jobs")`.
//!
//! ## Layout and crash consistency
//!
//! The registry occupies the first `capacity * ENTRY_CELLS` cells of the
//! memory node's shared segment (a well-known offset: recovery needs no
//! volatile state to find it). Each entry is [`ENTRY_CELLS`] cells:
//!
//! | cell | contents |
//! |---|---|
//! | 0 | name hash; claimed as `hash \| PENDING` by CAS, commit clears the bit |
//! | 1 | name length in bytes (≤ [`MAX_NAME_BYTES`]) |
//! | 2–5 | name bytes, packed little-endian |
//! | 6 | payload: `aux << 32 \| (header addr + 1)` |
//! | 7 | kind tag (low 8 bits, `kind + 1`) and [`Word::TAG`] fingerprint (high 56 bits) |
//!
//! All writes go through the cluster's [`Persistence`] strategy, so the
//! directory inherits whatever durability the cluster was built with.
//! `create` **claims** an entry by CAS on cell 0 (first claimant wins),
//! writes cells 1–7 as persistent private stores (nobody can observe the
//! entry before commit), then **commits** by storing the hash without the
//! `PENDING` bit. Committing is the linearization point of creation: a
//! crash before it leaves a *pending* entry that lookups skip and that
//! registry recovery (`Session::recover_roots`) seals back to empty (the
//! structure's cells are leaked, consistent with the heap's
//! monotonic-bump crash philosophy).
//!
//! Sealing a pending entry back to empty can punch a hole into a linear
//! probe chain, so probes never early-stop at an empty slot: `create` and
//! `open` scan the whole directory (at most `capacity` head-cell loads —
//! the directory is a small fixed table) before concluding absence or
//! claiming a slot.
//!
//! [`Word::TAG`]: crate::api::Word::TAG

use std::fmt;
use std::sync::Arc;

use cxl0_model::Loc;

use crate::api::error::{ApiError, ApiResult};
use crate::backend::NodeHandle;
use crate::error::OpResult;
use crate::flit::Persistence;

/// Cells per registry entry.
pub const ENTRY_CELLS: u32 = 8;
/// Maximum root-name length, in bytes (4 name cells × 8 bytes).
pub const MAX_NAME_BYTES: usize = 32;

/// Claim marker in an entry's hash cell: set while a `create` is between
/// claim and commit.
const PENDING: u64 = 1 << 63;

/// What kind of durable structure a committed root points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RootKind {
    /// A [`DurableRegister`](crate::ds::DurableRegister).
    Register,
    /// A [`DurableCounter`](crate::ds::DurableCounter).
    Counter,
    /// A [`DurableQueue`](crate::ds::DurableQueue).
    Queue,
    /// A [`DurableStack`](crate::ds::DurableStack).
    Stack,
    /// A [`DurableMap`](crate::ds::DurableMap).
    Map,
    /// A [`DurableLog`](crate::ds::DurableLog).
    Log,
    /// A [`DurableList`](crate::ds::DurableList).
    List,
}

impl RootKind {
    const ALL: [RootKind; 7] = [
        RootKind::Register,
        RootKind::Counter,
        RootKind::Queue,
        RootKind::Stack,
        RootKind::Map,
        RootKind::Log,
        RootKind::List,
    ];

    fn tag(self) -> u64 {
        self as u64 + 1
    }

    fn from_tag(tag: u64) -> Option<RootKind> {
        RootKind::ALL.get(tag.checked_sub(1)? as usize).copied()
    }
}

impl fmt::Display for RootKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RootKind::Register => "register",
            RootKind::Counter => "counter",
            RootKind::Queue => "queue",
            RootKind::Stack => "stack",
            RootKind::Map => "map",
            RootKind::Log => "log",
            RootKind::List => "list",
        };
        f.write_str(s)
    }
}

/// A committed root's registry record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootInfo {
    /// The root's name.
    pub name: String,
    /// The structure kind.
    pub kind: RootKind,
    /// The structure's header location.
    pub header: Loc,
    /// Kind-specific auxiliary word (capacity for maps and logs).
    pub aux: u32,
    /// The element type's [`Word::TAG`](crate::api::Word::TAG)
    /// fingerprint, truncated to the 56 bits the entry stores.
    pub type_tag: u64,
}

/// 56-bit truncation of a [`Word::TAG`](crate::api::Word::TAG) as stored
/// in an entry's kind cell.
pub(crate) fn truncate_type_tag(tag: u64) -> u64 {
    tag >> 8
}

fn name_hash(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Clear the PENDING bit and avoid the empty sentinel 0.
    (hash & !PENDING) | 1
}

fn pack_name(name: &str) -> [u64; 4] {
    let mut cells = [0u64; 4];
    for (i, chunk) in name.as_bytes().chunks(8).enumerate() {
        let mut bytes = [0u8; 8];
        bytes[..chunk.len()].copy_from_slice(chunk);
        cells[i] = u64::from_le_bytes(bytes);
    }
    cells
}

fn unpack_name(len: u64, cells: [u64; 4]) -> Option<String> {
    let len = usize::try_from(len).ok()?;
    if len > MAX_NAME_BYTES {
        return None;
    }
    let mut bytes = Vec::with_capacity(len);
    for cell in cells {
        bytes.extend_from_slice(&cell.to_le_bytes());
    }
    bytes.truncate(len);
    String::from_utf8(bytes).ok()
}

/// A claimed-but-uncommitted registry entry, handed from
/// [`RootDirectory::claim`] to [`RootDirectory::commit`] /
/// [`RootDirectory::abort`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct RootClaim {
    entry: u32,
    hash: u64,
}

/// What one `create` attempt should publish.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RootRecord {
    pub kind: RootKind,
    pub header: Loc,
    pub aux: u32,
    pub type_tag: u64,
}

/// The durable name → header directory. One per [`Cluster`]; all methods
/// take the issuing node explicitly, like the data structures themselves.
///
/// [`Cluster`]: crate::api::Cluster
#[derive(Debug, Clone)]
pub(crate) struct RootDirectory {
    /// First cell of the registry region (well-known offset 0 of the
    /// memory node's segment).
    base: Loc,
    /// Number of entries.
    capacity: u32,
    persist: Arc<dyn Persistence>,
}

impl RootDirectory {
    pub(crate) fn new(base: Loc, capacity: u32, persist: Arc<dyn Persistence>) -> Self {
        RootDirectory {
            base,
            capacity,
            persist,
        }
    }

    fn cell(&self, entry: u32, field: u32) -> Loc {
        debug_assert!(field < ENTRY_CELLS);
        Loc::new(
            self.base.owner,
            self.base.addr.0 + entry * ENTRY_CELLS + field,
        )
    }

    fn check_name(name: &str) -> ApiResult<u64> {
        if name.is_empty() {
            return Err(ApiError::NameEmpty);
        }
        if name.len() > MAX_NAME_BYTES {
            return Err(ApiError::NameTooLong {
                name: name.to_string(),
                max: MAX_NAME_BYTES,
            });
        }
        Ok(name_hash(name))
    }

    /// Reads entry `e`'s committed record, if committed and decodable.
    fn read_committed(&self, node: &NodeHandle, e: u32) -> OpResult<Option<RootInfo>> {
        let len = self.persist.shared_load(node, self.cell(e, 1), true)?;
        let mut name_cells = [0u64; 4];
        for (i, c) in name_cells.iter_mut().enumerate() {
            *c = self
                .persist
                .shared_load(node, self.cell(e, 2 + i as u32), true)?;
        }
        let payload = self.persist.shared_load(node, self.cell(e, 6), true)?;
        let meta = self.persist.shared_load(node, self.cell(e, 7), true)?;
        let Some(kind) = RootKind::from_tag(meta & 0xff) else {
            return Ok(None);
        };
        let Some(name) = unpack_name(len, name_cells) else {
            return Ok(None);
        };
        let addr_plus_one = (payload & 0xffff_ffff) as u32;
        if addr_plus_one == 0 {
            return Ok(None);
        }
        Ok(Some(RootInfo {
            name,
            kind,
            header: Loc::new(self.base.owner, addr_plus_one - 1),
            aux: (payload >> 32) as u32,
            type_tag: meta >> 8,
        }))
    }

    /// Publishes `name → record`. Claims an entry (CAS, first claimant
    /// wins) and returns a [`RootClaim`] to [`RootDirectory::commit`]
    /// or [`RootDirectory::abort`]. No structure memory is touched, so a
    /// failed claim is side-effect-free. Errors: `AlreadyExists`,
    /// `PendingRoot`, `RegistryFull`, `NameEmpty`/`NameTooLong`,
    /// `Crashed`.
    pub(crate) fn claim(&self, node: &NodeHandle, name: &str) -> ApiResult<RootClaim> {
        let result = self.claim_inner(node, name);
        // Close the operation on every path (under FliT-async,
        // complete_op's barrier retires this operation's helping
        // flushes; the ds/* methods uphold the same invariant).
        self.persist.complete_op(node)?;
        result
    }

    fn claim_inner(&self, node: &NodeHandle, name: &str) -> ApiResult<RootClaim> {
        let hash = Self::check_name(name)?;
        if self.capacity == 0 {
            return Err(ApiError::RegistryFull);
        }
        let start = hash % u64::from(self.capacity);
        'retry: loop {
            // Phase 1: scan the whole probe chain for the name. Sealed
            // entries leave holes, so absence needs the full scan — an
            // empty slot proves nothing.
            let mut first_free = None;
            for probe in 0..self.capacity {
                let e = ((start + u64::from(probe)) % u64::from(self.capacity)) as u32;
                let head = self.persist.shared_load(node, self.cell(e, 0), true)?;
                if head == 0 {
                    if first_free.is_none() {
                        first_free = Some(e);
                    }
                    continue;
                }
                self.head_conflicts(node, e, head, hash, name)?;
            }
            // Phase 2: claim the first free slot; on a lost race, rescan
            // (the winner may have been creating this very name).
            let Some(e) = first_free else {
                return Err(ApiError::RegistryFull);
            };
            if self
                .persist
                .shared_cas(node, self.cell(e, 0), 0, hash | PENDING, true)?
                .is_err()
            {
                continue 'retry;
            }
            return Ok(RootClaim { entry: e, hash });
        }
    }

    /// Fills a claimed entry and commits it. The commit store is the
    /// linearization point of creation.
    pub(crate) fn commit(
        &self,
        node: &NodeHandle,
        claim: &RootClaim,
        name: &str,
        record: RootRecord,
    ) -> OpResult<()> {
        let e = claim.entry;
        // Ours alone until commit: persistent private stores suffice.
        let name_cells = pack_name(name);
        self.persist
            .private_store(node, self.cell(e, 1), name.len() as u64, true)?;
        for (i, c) in name_cells.iter().enumerate() {
            self.persist
                .private_store(node, self.cell(e, 2 + i as u32), *c, true)?;
        }
        let payload = (u64::from(record.aux) << 32) | u64::from(record.header.addr.0 + 1);
        self.persist
            .private_store(node, self.cell(e, 6), payload, true)?;
        let meta = (truncate_type_tag(record.type_tag) << 8) | record.kind.tag();
        self.persist
            .private_store(node, self.cell(e, 7), meta, true)?;
        // Commit: clear PENDING.
        self.persist
            .shared_store(node, self.cell(e, 0), claim.hash, true)?;
        // The named structure is durably reachable from here on: seed the
        // sanitizer's reachability from its header block.
        node.check_add_root(record.header);
        self.persist.complete_op(node)
    }

    /// Releases an uncommitted claim (e.g. the structure allocation
    /// failed), making the entry empty again.
    pub(crate) fn abort(&self, node: &NodeHandle, claim: &RootClaim) -> OpResult<()> {
        self.persist
            .shared_store(node, self.cell(claim.entry, 0), 0, true)?;
        self.persist.complete_op(node)
    }

    /// Errors out if entry `e` (whose hash cell reads `head`) holds or is
    /// claiming `name`; returns `Ok(())` when the probe may move on.
    fn head_conflicts(
        &self,
        node: &NodeHandle,
        e: u32,
        head: u64,
        hash: u64,
        name: &str,
    ) -> ApiResult<()> {
        if head == hash | PENDING {
            return Err(ApiError::PendingRoot(name.to_string()));
        }
        if head == hash {
            if let Some(info) = self.read_committed(node, e)? {
                if info.name == name {
                    return Err(ApiError::AlreadyExists(name.to_string()));
                }
            }
        }
        Ok(())
    }

    /// Looks up the committed root under `name`.
    pub(crate) fn lookup(&self, node: &NodeHandle, name: &str) -> ApiResult<RootInfo> {
        let result = self.lookup_inner(node, name);
        self.persist.complete_op(node)?;
        result
    }

    fn lookup_inner(&self, node: &NodeHandle, name: &str) -> ApiResult<RootInfo> {
        let hash = Self::check_name(name)?;
        let start = if self.capacity == 0 {
            0
        } else {
            hash % u64::from(self.capacity)
        };
        for probe in 0..self.capacity {
            let e = ((start + u64::from(probe)) % u64::from(self.capacity)) as u32;
            let head = self.persist.shared_load(node, self.cell(e, 0), true)?;
            if head != hash {
                // Empty (possibly a sealed hole), pending, or another
                // name: keep scanning — the table is small.
                continue;
            }
            if let Some(info) = self.read_committed(node, e)? {
                if info.name == name {
                    node.check_add_root(info.header);
                    return Ok(info);
                }
            }
        }
        Err(ApiError::NotFound(name.to_string()))
    }

    /// Every committed root, in entry order.
    pub(crate) fn roots(&self, node: &NodeHandle) -> OpResult<Vec<RootInfo>> {
        let mut out = Vec::new();
        for e in 0..self.capacity {
            let head = self.persist.shared_load(node, self.cell(e, 0), true)?;
            if head == 0 || head & PENDING != 0 {
                continue;
            }
            if let Some(info) = self.read_committed(node, e)? {
                node.check_add_root(info.header);
                out.push(info);
            }
        }
        self.persist.complete_op(node)?;
        Ok(out)
    }

    /// Post-crash repair: seals every *pending* entry (claimed by a
    /// creator that never committed) back to empty, making the name
    /// creatable again. The claimed structure cells are leaked, exactly
    /// like heap cells of any crashed operation.
    ///
    /// Must run quiesced (no concurrent `create_*`), like the data
    /// structures' own `recover` methods. Returns the number of entries
    /// sealed.
    pub(crate) fn recover(&self, node: &NodeHandle) -> OpResult<usize> {
        let mut sealed = 0;
        for e in 0..self.capacity {
            let head = self.persist.shared_load(node, self.cell(e, 0), true)?;
            if head & PENDING != 0 {
                self.persist.shared_store(node, self.cell(e, 0), 0, true)?;
                sealed += 1;
            }
        }
        self.persist.complete_op(node)?;
        Ok(sealed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_packing_round_trips() {
        for name in ["a", "jobs", "a-name-of-exactly-32-bytes-here!", "λλλ"] {
            let cells = pack_name(name);
            assert_eq!(unpack_name(name.len() as u64, cells).as_deref(), Some(name));
        }
    }

    #[test]
    fn oversized_or_garbage_lengths_decode_to_none() {
        assert_eq!(unpack_name(33, [0; 4]), None);
        assert_eq!(unpack_name(u64::MAX, [0; 4]), None);
    }

    #[test]
    fn hashes_are_nonzero_and_unpoisoned() {
        for name in ["", "x", "jobs", "queue-17"] {
            let h = name_hash(name);
            assert_ne!(h, 0);
            assert_eq!(h & PENDING, 0);
        }
    }

    #[test]
    fn kind_tags_round_trip() {
        for k in RootKind::ALL {
            assert_eq!(RootKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(RootKind::from_tag(0), None);
        assert_eq!(RootKind::from_tag(99), None);
    }
}
