//! # The `Cluster`/`Session` programming model — the recommended API
//!
//! The paper's point is a *programming model*: applications should write
//! against simple durable primitives, not against fabric plumbing. This
//! module is that layer. Instead of hand-assembling
//! [`SimFabric`](crate::SimFabric) + [`SharedHeap`](crate::SharedHeap) +
//! `Arc<dyn Persistence>` and threading header [`Loc`](cxl0_model::Loc)s
//! through volatile state for recovery, code does:
//!
//! ```
//! use cxl0_runtime::api::{Cluster, PersistMode};
//! use cxl0_model::{MachineId, SystemConfig};
//!
//! // Topology, model variant, cost model and durability strategy in one
//! // builder; swapping strategies is a one-line change.
//! let cluster = Cluster::builder(SystemConfig::symmetric_nvm(3, 4096))
//!     .persist(PersistMode::FlitCxl0)
//!     .build()?;
//!
//! // A session is a per-machine context: handle + heap + persistence.
//! let session = cluster.session(MachineId(0));
//! let jobs = session.create_queue::<u64>("jobs")?;
//! jobs.enqueue(&session, 7)?;
//!
//! // The memory node crashes. Post-crash code reattaches *by name*
//! // through the durable named-root registry — nothing volatile needed.
//! cluster.crash(cluster.memory_node());
//! cluster.recover(cluster.memory_node());
//! let jobs = session.open_queue::<u64>("jobs")?;
//! jobs.recover(&session)?;
//! assert_eq!(jobs.dequeue(&session)?, Some(7));
//! # Ok::<(), cxl0_runtime::api::ApiError>(())
//! ```
//!
//! Four pieces:
//!
//! * [`ClusterBuilder`] → [`Cluster`] — owns topology, variant, cost
//!   model and a [`PersistMode`];
//! * [`Session`] — the per-node context every operation takes;
//! * [`Word`] — typed values over the 64-bit cells, with registry-checked
//!   type fingerprints (see [`durable_word!`](crate::durable_word) for
//!   newtypes);
//! * the **named-root registry** ([`registry`]) — a durable directory at
//!   a well-known offset of the memory node's segment, itself written
//!   against the cluster's [`Persistence`](crate::Persistence) strategy.
//!
//! The low-level layer ([`backend`](crate::backend), [`heap`](crate::heap),
//! [`flit`](crate::flit)) stays public for tests and experiments that
//! need primitives; [`Session::node`] is the escape hatch from here to
//! there.

mod cluster;
mod error;
pub mod registry;
mod session;
mod word;

pub use cluster::{Cluster, ClusterBuilder, PersistMode};
pub use error::{ApiError, ApiResult};
pub use registry::{RootInfo, RootKind};
pub use session::Session;
pub use word::{word_type_tag, Word};
