//! The [`Word`] trait: typed values over the fabric's 64-bit cells.
//!
//! Every shared location holds one `u64`; the durable data structures are
//! generic over any value type that round-trips through that cell width.
//! The trait also carries a compile-time *type fingerprint* ([`Word::TAG`])
//! that the named-root registry records on `create_*` and verifies on
//! `open_*`, so reattaching a durable structure under the wrong element
//! type is an error instead of silent reinterpretation.

/// A value type storable in one 64-bit fabric cell.
///
/// Implementations must round-trip: `from_word(v.to_word()) == v` for
/// every `v`. Structures with zero-sentinels ([`DurableMap`] keys/values,
/// [`DurableList`] keys) additionally require the *encoded* word to be
/// non-zero — e.g. `false` encodes to `0` and is not a valid map value.
///
/// Use [`durable_word!`](crate::durable_word) to derive an implementation
/// for a `u64`-family newtype.
///
/// [`DurableMap`]: crate::ds::DurableMap
/// [`DurableList`]: crate::ds::DurableList
pub trait Word: Copy + std::fmt::Debug + Send + Sync + 'static {
    /// Type fingerprint recorded in the named-root registry. Two types
    /// that encode values differently must have different tags; derive it
    /// from the type name with [`word_type_tag`].
    const TAG: u64;

    /// Encodes the value into a cell word.
    fn to_word(self) -> u64;

    /// Decodes a cell word written by [`Word::to_word`].
    fn from_word(w: u64) -> Self;
}

/// FNV-1a fingerprint of a type name, usable in `const` contexts — the
/// conventional way to produce [`Word::TAG`].
pub const fn word_type_tag(name: &str) -> u64 {
    let bytes = name.as_bytes();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        i += 1;
    }
    hash
}

macro_rules! impl_word_unsigned {
    ($($t:ty),*) => {$(
        impl Word for $t {
            const TAG: u64 = word_type_tag(stringify!($t));
            fn to_word(self) -> u64 {
                self as u64
            }
            fn from_word(w: u64) -> Self {
                w as $t
            }
        }
    )*};
}
impl_word_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_word_signed {
    ($($t:ty as $u:ty),*) => {$(
        impl Word for $t {
            const TAG: u64 = word_type_tag(stringify!($t));
            fn to_word(self) -> u64 {
                // Bit pattern via the same-width unsigned type: no sign
                // extension surprises for negatives.
                self as $u as u64
            }
            fn from_word(w: u64) -> Self {
                w as $u as $t
            }
        }
    )*};
}
impl_word_signed!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl Word for bool {
    const TAG: u64 = word_type_tag("bool");
    fn to_word(self) -> u64 {
        u64::from(self)
    }
    fn from_word(w: u64) -> Self {
        w != 0
    }
}

impl Word for char {
    const TAG: u64 = word_type_tag("char");
    fn to_word(self) -> u64 {
        u64::from(u32::from(self))
    }
    fn from_word(w: u64) -> Self {
        char::from_u32(w as u32).unwrap_or('\u{FFFD}')
    }
}

/// Implements [`Word`] for a single-field tuple newtype whose inner type
/// already implements it, giving the newtype its own registry fingerprint:
///
/// ```
/// use cxl0_runtime::durable_word;
///
/// #[derive(Debug, Clone, Copy, PartialEq, Eq)]
/// pub struct JobId(pub u64);
/// durable_word!(JobId(u64));
///
/// use cxl0_runtime::api::Word;
/// assert_eq!(JobId::from_word(JobId(7).to_word()), JobId(7));
/// assert_ne!(JobId::TAG, u64::TAG); // distinct fingerprint
/// ```
#[macro_export]
macro_rules! durable_word {
    ($name:ident($inner:ty)) => {
        impl $crate::api::Word for $name {
            const TAG: u64 = $crate::api::word_type_tag(stringify!($name));
            fn to_word(self) -> u64 {
                <$inner as $crate::api::Word>::to_word(self.0)
            }
            fn from_word(w: u64) -> Self {
                $name(<$inner as $crate::api::Word>::from_word(w))
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(u64::from_word(u64::MAX.to_word()), u64::MAX);
        assert_eq!(u32::from_word(7u32.to_word()), 7);
        assert_eq!(i64::from_word((-3i64).to_word()), -3);
        assert_eq!(i32::from_word((-1i32).to_word()), -1);
        assert!(bool::from_word(true.to_word()));
        assert!(!bool::from_word(false.to_word()));
        assert_eq!(char::from_word('λ'.to_word()), 'λ');
    }

    #[test]
    fn negative_small_ints_do_not_sign_extend() {
        // -1i32 must occupy only the low 32 bits of the cell.
        assert_eq!((-1i32).to_word(), u64::from(u32::MAX));
    }

    #[test]
    fn tags_distinguish_types() {
        let tags = [
            u8::TAG,
            u16::TAG,
            u32::TAG,
            u64::TAG,
            i64::TAG,
            bool::TAG,
            char::TAG,
        ];
        for (i, a) in tags.iter().enumerate() {
            for b in &tags[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Offset(i64);
    durable_word!(Offset(i64));

    #[test]
    fn newtype_macro_round_trips_with_distinct_tag() {
        assert_eq!(Offset::from_word(Offset(-9).to_word()), Offset(-9));
        assert_ne!(Offset::TAG, i64::TAG);
    }
}
