//! Errors of the high-level `Cluster`/`Session` API.

use std::fmt;

use crate::api::registry::RootKind;
use crate::error::Crashed;

/// Everything that can go wrong at the session layer.
///
/// Low-level data-structure operations fail only with [`Crashed`]; the
/// session layer adds configuration, allocation and naming failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// The issuing machine has crashed (see [`Crashed`]).
    Crashed(Crashed),
    /// The chosen memory node owns no shared locations (or the cluster
    /// has no machine with memory at all).
    NoMemoryNode,
    /// The named-root registry does not fit in the memory node's segment.
    RegistryTooLarge {
        /// Cells the registry needs.
        needed: u32,
        /// Cells the memory node owns.
        available: u32,
    },
    /// The shared heap cannot satisfy the allocation.
    HeapExhausted,
    /// The root name exceeds the registry's name limit.
    NameTooLong {
        /// The offending name.
        name: String,
        /// Maximum name length in bytes.
        max: usize,
    },
    /// Root names must be non-empty.
    NameEmpty,
    /// `create_*` found the name already committed in the registry.
    AlreadyExists(String),
    /// The name is claimed by an in-flight (or crashed) `create_*` that
    /// has not committed; run recovery to seal it, or retry later.
    PendingRoot(String),
    /// `open_*` found no committed root under the name.
    NotFound(String),
    /// The committed root under this name is a different structure kind.
    KindMismatch {
        /// The name looked up.
        name: String,
        /// The kind the caller asked for.
        expected: RootKind,
        /// The kind the registry recorded.
        found: RootKind,
    },
    /// The committed root was created with a different element type
    /// (mismatching [`Word::TAG`](crate::api::Word::TAG) fingerprint).
    TypeMismatch {
        /// The name looked up.
        name: String,
    },
    /// Every registry slot is taken.
    RegistryFull,
    /// [`Cluster::export_trace`](crate::api::Cluster::export_trace) was
    /// called but tracing was never armed (no
    /// [`with_tracing`](crate::api::ClusterBuilder::with_tracing) and no
    /// `CXL0_TRACE`).
    NoTracer,
    /// Writing the trace export file failed (I/O error text attached).
    TraceExport(String),
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::Crashed(c) => c.fmt(f),
            ApiError::NoMemoryNode => write!(f, "no machine with shared memory to host the heap"),
            ApiError::RegistryTooLarge { needed, available } => write!(
                f,
                "named-root registry needs {needed} cells but the memory node owns {available}"
            ),
            ApiError::HeapExhausted => write!(f, "shared heap exhausted"),
            ApiError::NameTooLong { name, max } => {
                write!(f, "root name {name:?} exceeds {max} bytes")
            }
            ApiError::NameEmpty => write!(f, "root names must be non-empty"),
            ApiError::AlreadyExists(name) => write!(f, "root {name:?} already exists"),
            ApiError::PendingRoot(name) => write!(
                f,
                "root {name:?} has an uncommitted create in flight (recover to seal it)"
            ),
            ApiError::NotFound(name) => write!(f, "no committed root named {name:?}"),
            ApiError::KindMismatch {
                name,
                expected,
                found,
            } => write!(f, "root {name:?} is a {found}, not a {expected}"),
            ApiError::TypeMismatch { name } => {
                write!(f, "root {name:?} was created with a different element type")
            }
            ApiError::RegistryFull => write!(f, "named-root registry is full"),
            ApiError::NoTracer => write!(
                f,
                "tracing is not armed (use ClusterBuilder::with_tracing or CXL0_TRACE)"
            ),
            ApiError::TraceExport(e) => write!(f, "trace export failed: {e}"),
        }
    }
}

impl std::error::Error for ApiError {}

impl From<Crashed> for ApiError {
    fn from(c: Crashed) -> Self {
        ApiError::Crashed(c)
    }
}

/// Result alias for session-layer operations.
pub type ApiResult<T> = Result<T, ApiError>;
