//! # `cxl0-runtime` — an executable CXL0 runtime with the FliT
//! transformation
//!
//! This crate makes the paper's §6 runnable:
//!
//! * [`api`] — **the recommended programming model**: [`Cluster`] /
//!   [`Session`], typed durable structures over the [`Word`] trait, a
//!   [`PersistMode`] switch for the durability strategy, and a durable
//!   **named-root registry** so post-crash code reattaches by name.
//! * [`backend`] — [`SimFabric`], a thread-safe, multi-machine
//!   implementation of the CXL0 semantics with crash injection, eviction
//!   (`τ`) simulation, per-primitive statistics and a simulated-latency
//!   cost model. Each operation is an atomic application of one model
//!   transition; `tests/backend_vs_model.rs` checks the refinement against
//!   `cxl0-model` mechanically.
//! * [`flit`] — the FliT transformation adapted to CXL0 (Algorithm 2,
//!   [`FlitCxl0`]), the §6.1 owner-flush optimisation ([`FlitOwnerOpt`]),
//!   the *unadapted* x86 FliT ([`FlitX86`], deliberately unsound under
//!   partial crashes), the naive all-`MStore` transformation
//!   ([`NaiveMStore`]) and a no-durability baseline ([`NoPersistence`]) —
//!   all behind the [`Persistence`] trait.
//! * [`flit_async`] — [`FlitAsync`], the original Algorithm 1 transplanted
//!   onto the `CXL0_AF` asynchronous-flush extension (`AFlush`/`Barrier` on
//!   [`NodeHandle`]): deferred helping flushes, synchronous store
//!   persistence.
//! * [`buffered`] — [`BufferedEpoch`], the §8 durability relaxation:
//!   flush-free fast path, ping-pong snapshot syncs, rollback recovery;
//!   *buffered* durably linearizable (`cxl0-dlcheck::buffered`).
//! * [`ds`] — durable data structures written once against
//!   [`Persistence`]: register, counter, Treiber stack, Michael–Scott
//!   queue, hash map — allocating and **reclaiming** their nodes through
//!   the crash-consistent allocator.
//! * [`alloc`] — the crash-consistent size-class allocator over the
//!   memory node's durable segment: per-class free lists, durable
//!   allocation intents, generation-tagged (ABA-safe) pointers and a
//!   recovery sweep.
//! * [`smr`] — epoch-based safe memory reclamation between the
//!   allocator and the traversal structures: traversals pin the global
//!   epoch, unlinked blocks retire into volatile per-epoch limbo bags,
//!   and reclamation waits out a grace period instead of quiescence.
//! * [`check`] — the **persistency sanitizer**: an opt-in shadow-state
//!   analysis under the [`Persistence`] strategies that detects
//!   durability races, unpersisted reads at recovery and use-after-retire
//!   with thread/op provenance (`docs/SANITIZER.md`).
//! * [`trace`] — the **runtime tracer**: opt-in per-thread op spans with
//!   wall/simulated time and persist amplification, log2 latency
//!   histograms (p50/p99/p999), recovery-phase timing and Chrome
//!   trace-event / JSONL exporters (`docs/OBSERVABILITY.md`).
//! * [`heap`] — the raw bump tail the allocator builds on.
//! * [`cost`] — simulated per-primitive latencies (Figure-5 shaped).
//!
//! ## Quick example
//!
//! ```
//! use cxl0_runtime::api::Cluster;
//! use cxl0_model::MachineId;
//!
//! // Two compute nodes + one NVM memory node, FliT-CXL0 durability.
//! let cluster = Cluster::symmetric(2, 1024)?;
//! let session = cluster.session(MachineId(0));
//! let queue = session.create_queue::<u64>("jobs")?;
//! queue.enqueue(&session, 7)?;
//!
//! // The memory node crashes; NVM contents survive, caches do not —
//! // but FliT persisted the enqueue before it returned. Reattach by
//! // name through the durable named-root registry.
//! cluster.crash(cluster.memory_node());
//! cluster.recover(cluster.memory_node());
//! let queue = session.open_queue::<u64>("jobs")?;
//! queue.recover(&session)?;
//! assert_eq!(queue.dequeue(&session)?, Some(7));
//! # Ok::<(), cxl0_runtime::api::ApiError>(())
//! ```
//!
//! The low-level layer (`SimFabric` + `SharedHeap` + a
//! [`Persistence`] strategy, with structures taking a raw
//! [`NodeHandle`]) remains public — see [`backend`] — for tests and
//! experiments that need primitive-level control.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod alloc;
pub mod api;
pub mod backend;
pub mod buffered;
pub mod check;
pub mod cost;
pub mod ds;
pub mod error;
pub mod flit;
pub mod flit_async;
pub mod heap;
pub mod smr;
pub mod snapshot;
pub mod trace;

pub use alloc::{AllocStats, Allocator, BlockRef, FreeError};
pub use api::{ApiError, ApiResult, Cluster, ClusterBuilder, PersistMode, Session, Word};
pub use backend::{AsNode, NodeHandle, SimFabric, Stats, StatsSnapshot};
pub use buffered::BufferedEpoch;
pub use check::{CheckConfig, Checker, Violation, ViolationClass};
pub use cost::CostModel;
pub use ds::{
    Combinable, CombineStats, Combined, CombinedQueue, CombinedStack, DurableCounter, DurableList,
    DurableLog, DurableMap, DurableQueue, DurableRegister, DurableStack, Elimination, SlotState,
};
pub use error::{Crashed, OpResult};
pub use flit::{
    FlitCxl0, FlitOwnerOpt, FlitTable, FlitX86, NaiveMStore, NoPersistence, Persistence,
};
pub use flit_async::FlitAsync;
pub use heap::{decode_ptr, encode_ptr, SharedHeap, NULL_PTR};
pub use smr::{SmrDomain, SmrGuard, SmrStats};
pub use snapshot::{take_gpf_snapshot, MemorySnapshot};
pub use trace::{
    LatencyHistogram, OpKind, PhaseTiming, RecoveryPhase, TraceConfig, TraceEvent, Tracer,
};
