//! The crash-consistent size-class allocator. See the module docs in
//! [`crate::alloc`] for the protocol walkthrough.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use cxl0_model::{Loc, MachineId, SystemConfig};

use crate::alloc::layout::{
    decode_addr, decode_gen, head_slot, head_top, head_ver, head_word, header_class, header_gen,
    header_next, header_state, header_word, intent_block, null_word, op_class, op_kind, op_word,
    popping_word, ptr_word, seed_gen, GEN_MASK, HUGE_CLASS, OP_ALLOC, OP_FREE, ST_ALLOCATED,
    ST_FREE, ST_FREEING,
};
use crate::backend::{AsNode, NodeHandle};
use crate::error::OpResult;
use crate::flit::Persistence;
use crate::heap::SharedHeap;

/// Number of size classes: powers of two from 1 cell to
/// [`MAX_CLASS_CELLS`].
pub const NUM_CLASSES: usize = 15;

/// Largest reclaimable payload, in cells (`1 << 14`). Bigger requests
/// are served exact-fit from the bump tail and cannot be freed.
pub const MAX_CLASS_CELLS: u32 = 1 << (NUM_CLASSES - 1);

/// Durable allocation-intent slots. Each in-flight `alloc`/`free` leases
/// one; a crash mid-operation leaves its intent latched for the recovery
/// sweep.
pub const INTENT_SLOTS: usize = 32;

/// Region-header cells: magic, geometry, data base, extent limit.
const HEADER_META_CELLS: u32 = 4;

/// Durable metadata cells the allocator reserves at the start of its
/// range: region header + one free-list head per class + two cells per
/// intent slot.
pub const META_CELLS: u32 = HEADER_META_CELLS + NUM_CLASSES as u32 + 2 * INTENT_SLOTS as u32;

/// Region-header magic ("CXL0ALOC", little-endian-ish).
const MAGIC: u64 = 0x4358_4c30_414c_4f43;

/// The size class serving a `cells`-cell payload, or `None` when the
/// request is oversize (exact-fit, unreclaimable).
fn class_for(cells: u32) -> Option<usize> {
    debug_assert!(cells > 0);
    if cells > MAX_CLASS_CELLS {
        None
    } else {
        Some(cells.next_power_of_two().trailing_zeros() as usize)
    }
}

/// Payload cells reserved by size class `c`.
fn class_cells(c: usize) -> u32 {
    1 << c
}

/// A handle to one allocated block: the payload location plus the
/// block's reuse generation.
///
/// The generation is what makes pointer words ABA-safe: encode it into
/// every stored reference with [`Allocator::encode`], and a CAS against
/// a stale reference to a reclaimed-and-recycled block cannot
/// spuriously succeed (the recycled block's generation differs — up to
/// the 20-bit wrap bound discussed in [`crate::alloc`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRef {
    /// First payload cell. The block header lives at `loc.addr - 1`.
    pub loc: Loc,
    /// The block's reuse generation (bumped on every free).
    pub gen: u64,
    /// Whether the block was served from a free list. Recycled payload
    /// cells retain their previous contents; fresh bump-tail cells are
    /// guaranteed zero — callers that need a zeroed payload (the hash
    /// map's table) can skip the zeroing for fresh blocks.
    pub recycled: bool,
}

/// Why a [`Allocator::free`] was refused (the block is left untouched).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreeError {
    /// The location is outside the allocator's range or its header does
    /// not describe a block.
    NotABlock,
    /// The block is already free or already being freed.
    DoubleFree,
    /// The block is an oversize exact-fit allocation; those are served
    /// from the bump tail and cannot be reclaimed.
    Oversize,
}

impl std::fmt::Display for FreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FreeError::NotABlock => write!(f, "location is not an allocated block"),
            FreeError::DoubleFree => write!(f, "block is already free (double free)"),
            FreeError::Oversize => write!(f, "oversize blocks cannot be reclaimed"),
        }
    }
}

impl std::error::Error for FreeError {}

/// A point-in-time copy of the allocator's volatile counters.
///
/// Counters (`allocs`, `frees`, `freelist_hits`) are monotonic;
/// `live_cells`/`hw_cells` are gauges. All are process-local
/// approximations: a crash torn mid-operation can leave them off by one
/// block until the workload quiesces (the durable state, by contrast,
/// is exact — that is what [`Allocator::recover`] reconciles).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Successful allocations (free-list hits + bump allocations).
    pub allocs: u64,
    /// Successful frees.
    pub frees: u64,
    /// Allocations served by reusing a reclaimed block.
    pub freelist_hits: u64,
    /// Payload cells currently allocated.
    pub live_cells: u64,
    /// High-water mark of `live_cells`.
    pub hw_cells: u64,
}

/// What one [`Allocator::recover`] sweep did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocRecovery {
    /// Free-list heads reverted out of a torn `POPPING` claim.
    pub reverted_pops: usize,
    /// Intent slots found latched and sealed.
    pub sealed_intents: usize,
    /// Blocks pushed back onto their free lists (torn mid-alloc or
    /// mid-free; without the sweep they would be lost).
    pub restored_blocks: usize,
}

/// Tear points of an allocation pop, for crash-consistency tests.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornAlloc {
    /// After the `POPPING` claim CAS, before the intent records the
    /// block. The head is left claimed; only recovery unsticks it.
    Claimed,
    /// After the intent records the popped block, before the head swings.
    Recorded,
    /// After the head swings past the block, before its header is marked
    /// allocated.
    Swung,
    /// After the header is marked allocated, before the intent clears.
    Marked,
}

/// Tear points of a free, for crash-consistency tests.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornFree {
    /// After the intent latches, before the header claim CAS.
    Latched,
    /// After the header claim CAS (state `FREEING`), before the push.
    Claimed,
    /// After the header links into the free list, before the head CAS.
    Linked,
    /// After the push completes, before the intent clears.
    Pushed,
}

/// Volatile lease pool over the durable intent slots.
#[derive(Debug, Default)]
struct SlotPool {
    mask: AtomicU32,
}

impl SlotPool {
    /// Leases a free slot, spinning if all are in flight.
    fn acquire(&self) -> usize {
        let mut spins = 0u32;
        loop {
            let cur = self.mask.load(Ordering::Relaxed);
            let free = !cur;
            if free != 0 {
                let idx = free.trailing_zeros();
                if self
                    .mask
                    .compare_exchange_weak(
                        cur,
                        cur | (1 << idx),
                        Ordering::Acquire,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    return idx as usize;
                }
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            }
        }
    }

    fn release(&self, idx: usize) {
        self.mask.fetch_and(!(1u32 << idx), Ordering::Release);
    }

    /// Post-crash reset: every lease is void (leases torn off by a crash
    /// are deliberately *not* released in-line, so their latched intents
    /// survive untouched until the sweep).
    fn reset(&self) {
        self.mask.store(0, Ordering::Release);
    }
}

/// What a free-list pop attempt concluded (drives slot-lease cleanup).
enum PopOutcome {
    /// The class free list is empty; fall back to the bump tail.
    Empty,
    /// Got a reclaimed block.
    Got(BlockRef),
    /// A torn-operation hook stopped mid-protocol (intent left latched,
    /// lease leaked on purpose).
    Torn(Loc),
}

/// Outcome of the free protocol body.
enum FreeOutcome {
    Done,
    Refused(FreeError),
    Torn,
}

/// A crash-consistent size-class allocator over the durable shared
/// segment of one memory node.
///
/// Allocation is satisfied from per-class intrusive free lists first and
/// from the wrapped [`SharedHeap`] bump tail otherwise; `free` pushes
/// blocks back for reuse, so churn workloads run in bounded memory.
/// Every durable mutation flows through the configured
/// [`Persistence`] strategy, and every alloc/free records a durable
/// *intent* first, so a crash at any instant loses no block and hands
/// none out twice — [`Allocator::recover`] seals torn intents and
/// reconciles the free lists. See [`crate::alloc`] for the full
/// protocol.
#[derive(Debug)]
pub struct Allocator {
    region: MachineId,
    /// First metadata cell (region header, heads, intent slots).
    meta_base: u32,
    /// First cell of the block area (`meta_base + META_CELLS`).
    data_base: u32,
    /// One past the last cell of the allocator's range.
    limit: u32,
    heap: Arc<SharedHeap>,
    persist: Arc<dyn Persistence>,
    slots: SlotPool,
    allocs: AtomicU64,
    frees: AtomicU64,
    freelist_hits: AtomicU64,
    live_cells: AtomicU64,
    hw_cells: AtomicU64,
}

impl Allocator {
    /// An allocator over the sub-range `[base, base + len)` of machine
    /// `region`'s shared segment: [`META_CELLS`] metadata cells followed
    /// by the block area (a [`SharedHeap`] bump tail).
    ///
    /// Fresh fabric memory is all-zero, which is a valid initial state
    /// (empty free lists, idle intents); call [`Allocator::format`] once
    /// to stamp the region header.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the region or leaves no block area.
    pub fn with_range(
        cfg: &SystemConfig,
        region: MachineId,
        base: u32,
        len: u32,
        persist: Arc<dyn Persistence>,
    ) -> Self {
        assert!(
            len > META_CELLS,
            "allocator range must exceed {META_CELLS} metadata cells"
        );
        let heap = Arc::new(SharedHeap::with_range(
            cfg,
            region,
            base + META_CELLS,
            len - META_CELLS,
        ));
        Self::with_meta(region, base, base + len, heap, persist)
    }

    /// An allocator whose [`META_CELLS`] metadata cells start at
    /// `meta_base` of a **shared** bump heap: other fixed-footprint
    /// users (registers, the buffered-epoch machinery, …) may
    /// interleave their own bump allocations in the same block area.
    /// The caller must have reserved `[meta_base, meta_base +
    /// META_CELLS)` off the heap already; `limit` is one past the last
    /// cell of the region.
    pub(crate) fn with_meta(
        region: MachineId,
        meta_base: u32,
        limit: u32,
        heap: Arc<SharedHeap>,
        persist: Arc<dyn Persistence>,
    ) -> Self {
        Allocator {
            region,
            meta_base,
            data_base: meta_base + META_CELLS,
            limit,
            heap,
            persist,
            slots: SlotPool::default(),
            allocs: AtomicU64::new(0),
            frees: AtomicU64::new(0),
            freelist_hits: AtomicU64::new(0),
            live_cells: AtomicU64::new(0),
            hw_cells: AtomicU64::new(0),
        }
    }

    /// An allocator over all of machine `region`'s shared locations —
    /// the low-level counterpart of `SharedHeap::new` for code that
    /// assembles the fabric by hand.
    pub fn over_region(
        cfg: &SystemConfig,
        region: MachineId,
        persist: Arc<dyn Persistence>,
    ) -> Self {
        Self::with_range(cfg, region, 0, cfg.machine(region).locations, persist)
    }

    /// The machine whose memory this allocator carves up.
    pub fn region(&self) -> MachineId {
        self.region
    }

    /// The bump tail serving free-list misses (and the low-level
    /// escape hatch for never-reclaimed allocations).
    pub fn heap(&self) -> &Arc<SharedHeap> {
        &self.heap
    }

    /// The durability strategy every allocator mutation flows through.
    pub fn persistence(&self) -> &Arc<dyn Persistence> {
        &self.persist
    }

    /// Cells in the block area (the allocator's range minus metadata) —
    /// also a safe upper bound on any free-list or structure walk.
    pub fn block_area_cells(&self) -> u32 {
        self.limit - self.data_base
    }

    /// A copy of the volatile counters.
    pub fn stats(&self) -> AllocStats {
        AllocStats {
            allocs: self.allocs.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            freelist_hits: self.freelist_hits.load(Ordering::Relaxed),
            live_cells: self.live_cells.load(Ordering::Relaxed),
            hw_cells: self.hw_cells.load(Ordering::Relaxed),
        }
    }

    // ---- durable cell addressing ---------------------------------------

    fn head_cell(&self, class: usize) -> Loc {
        Loc::new(
            self.region,
            self.meta_base + HEADER_META_CELLS + class as u32,
        )
    }

    fn op_cell(&self, slot: usize) -> Loc {
        Loc::new(
            self.region,
            self.meta_base + HEADER_META_CELLS + NUM_CLASSES as u32 + 2 * slot as u32,
        )
    }

    fn block_cell(&self, slot: usize) -> Loc {
        Loc::new(self.op_cell(slot).owner, self.op_cell(slot).addr.0 + 1)
    }

    fn header_cell(&self, payload: u32) -> Loc {
        Loc::new(self.region, payload - 1)
    }

    /// Stamps the persistent region header (magic, geometry, extent).
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn format(&self, at: &impl AsNode) -> OpResult<()> {
        let node = at.as_node();
        let base = self.meta_base;
        let geometry = ((NUM_CLASSES as u64) << 8) | INTENT_SLOTS as u64;
        for (i, v) in [
            MAGIC,
            geometry,
            u64::from(self.data_base),
            u64::from(self.limit),
        ]
        .into_iter()
        .enumerate()
        {
            self.persist
                .private_store(node, Loc::new(self.region, base + i as u32), v, true)?;
        }
        self.persist.complete_op(node)
    }

    // ---- pointer encoding ----------------------------------------------

    /// Encodes a block reference as a pointer word for storage in shared
    /// cells (generation-tagged; bit 63 left clear for structure marks).
    pub fn encode(block: BlockRef) -> u64 {
        ptr_word(block.loc.addr.0, block.gen)
    }

    /// A null pointer word carrying `gen`: link cells of a block are
    /// initialized with their block's generation so a stale CAS against
    /// a recycled block's null never matches.
    pub fn null_ptr(gen: u64) -> u64 {
        null_word(gen & GEN_MASK)
    }

    /// The generation carried by a pointer word (null or not). Paired
    /// with [`Allocator::null_ptr`], this lets a structure CAS against
    /// *the incarnation it believes in* — e.g. the queue's append
    /// expects the null of its observed tail's generation, never a raw
    /// null it read (which could belong to a recycled incarnation).
    pub fn ptr_gen(raw: u64) -> u64 {
        decode_gen(raw)
    }

    /// Decodes a pointer word, rejecting nulls **and any address outside
    /// this allocator's block area** — a stale or corrupted word can
    /// never alias allocator metadata or a foreign range.
    pub fn decode(&self, raw: u64) -> Option<Loc> {
        let addr = decode_addr(raw)?;
        if addr > self.data_base && addr < self.limit {
            Some(Loc::new(self.region, addr))
        } else {
            None
        }
    }

    // ---- allocation -----------------------------------------------------

    /// Allocates a block with at least `cells` payload cells (rounded up
    /// to the size class; requests above [`MAX_CLASS_CELLS`] are served
    /// exact-fit and are unreclaimable). Returns `None` when both the
    /// class free list and the bump tail are exhausted.
    ///
    /// Recycled payload cells contain their previous contents — callers
    /// must initialize every cell they rely on before publication.
    ///
    /// # Panics
    ///
    /// Panics if `cells` is zero.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn alloc(&self, at: &impl AsNode, cells: u32) -> OpResult<Option<BlockRef>> {
        assert!(cells > 0, "zero-cell allocations are meaningless");
        let node = at.as_node();
        let result = self.alloc_inner(node, cells, None)?;
        self.persist.complete_op(node)?;
        Ok(result)
    }

    fn alloc_inner(
        &self,
        node: &NodeHandle,
        cells: u32,
        stop: Option<TornAlloc>,
    ) -> OpResult<Option<BlockRef>> {
        let (payload_cells, class_tag) = match class_for(cells) {
            Some(class) => {
                match self.pop(node, class, stop)? {
                    PopOutcome::Got(block) => {
                        self.freelist_hits.fetch_add(1, Ordering::Relaxed);
                        self.note_alloc(class_cells(class));
                        return Ok(Some(block));
                    }
                    PopOutcome::Torn(_) => return Ok(None),
                    PopOutcome::Empty => {}
                }
                (class_cells(class), class as u64)
            }
            None => (cells, HUGE_CLASS),
        };
        // Bump fallback. A crash between the (volatile, process-local)
        // bump advance and the header store leaks the cells, exactly
        // like the pre-allocator monotonic heap.
        let Some(block) = self.heap.alloc(payload_cells + 1) else {
            return Ok(None);
        };
        let payload = block.addr.0 + 1;
        // Fresh blocks start at a per-address *seed* generation (nonzero,
        // odd — see `seed_gen`) rather than zero: pointer words into a
        // brand-new block are already distinguishable from application
        // scalars and from any other block's words.
        let gen = seed_gen(payload);
        self.persist.private_store(
            node,
            self.header_cell(payload),
            header_word(ST_ALLOCATED, class_tag, gen, None),
            true,
        )?;
        self.note_alloc(payload_cells);
        node.check_alloc(Loc::new(self.region, payload), payload_cells, gen);
        Ok(Some(BlockRef {
            loc: Loc::new(self.region, payload),
            gen,
            recycled: false,
        }))
    }

    fn note_alloc(&self, cells: u32) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        let live = self
            .live_cells
            .fetch_add(u64::from(cells), Ordering::Relaxed)
            + u64::from(cells);
        self.hw_cells.fetch_max(live, Ordering::Relaxed);
    }

    /// The two-phase crash-consistent pop:
    ///
    /// 1. **Claim**: CAS the class head from plain to `POPPING(slot)`.
    ///    The claim commits the pop to this intent slot.
    /// 2. **Record**: persist the claimed block (+ its generation) into
    ///    the slot's intent cells.
    /// 3. **Swing**: CAS the head past the block (anyone who observes
    ///    the recorded intent may help).
    /// 4. Mark the header `ALLOCATED` and clear the intent.
    ///
    /// The record (2) strictly follows the claim (1), so a latched
    /// intent block always names a block this slot really popped — a
    /// stale intent can never cause recovery to free someone else's
    /// live block.
    fn pop(
        &self,
        node: &NodeHandle,
        class: usize,
        stop: Option<TornAlloc>,
    ) -> OpResult<PopOutcome> {
        // Cheap peek before leasing a slot and latching an intent.
        let head = self
            .persist
            .shared_load(node, self.head_cell(class), true)?;
        if head_top(head).is_none() {
            return Ok(PopOutcome::Empty);
        }
        let slot = self.slots.acquire();
        let outcome = self.pop_with_slot(node, class, slot, stop);
        match &outcome {
            // A crash error or a deliberate tear leaves the lease
            // leaked: the latched durable intent must survive untouched
            // until the recovery sweep resets the pool.
            Err(_) | Ok(PopOutcome::Torn(_)) => {}
            Ok(_) => self.slots.release(slot),
        }
        outcome
    }

    fn pop_with_slot(
        &self,
        node: &NodeHandle,
        class: usize,
        slot: usize,
        stop: Option<TornAlloc>,
    ) -> OpResult<PopOutcome> {
        let head_cell = self.head_cell(class);
        // Latch the intent: zero the block cell first so a crash between
        // the two stores can never expose a stale block reference.
        self.persist
            .private_store(node, self.block_cell(slot), 0, true)?;
        self.persist.private_store(
            node,
            self.op_cell(slot),
            op_word(OP_ALLOC, class as u64),
            true,
        )?;
        loop {
            let head = self.persist.shared_load(node, head_cell, true)?;
            if head_slot(head).is_some() {
                self.help(node, class, head)?;
                continue;
            }
            let Some(top) = head_top(head) else {
                // Emptied while we latched: unlatch and fall back.
                self.persist
                    .private_store(node, self.op_cell(slot), 0, true)?;
                return Ok(PopOutcome::Empty);
            };
            // (1) claim
            if self
                .persist
                .shared_cas(node, head_cell, head, popping_word(head, slot), true)?
                .is_err()
            {
                continue;
            }
            let payload = Loc::new(self.region, top);
            if stop == Some(TornAlloc::Claimed) {
                return Ok(PopOutcome::Torn(payload));
            }
            // The claim made the top block ours: its header is stable.
            let hdr = self
                .persist
                .shared_load(node, self.header_cell(top), true)?;
            debug_assert_eq!(header_state(hdr), ST_FREE, "claimed top must be free");
            let gen = header_gen(hdr);
            // (2) record
            self.persist.private_store(
                node,
                self.block_cell(slot),
                intent_block(top, gen),
                true,
            )?;
            if stop == Some(TornAlloc::Recorded) {
                return Ok(PopOutcome::Torn(payload));
            }
            // (3) swing (a helper may have done it already)
            let swung = head_word(header_next(hdr), head_ver(head).wrapping_add(2));
            let _ =
                self.persist
                    .shared_cas(node, head_cell, popping_word(head, slot), swung, true)?;
            if stop == Some(TornAlloc::Swung) {
                return Ok(PopOutcome::Torn(payload));
            }
            // (4) hand out
            self.persist.private_store(
                node,
                self.header_cell(top),
                header_word(ST_ALLOCATED, class as u64, gen, None),
                true,
            )?;
            if stop == Some(TornAlloc::Marked) {
                return Ok(PopOutcome::Torn(payload));
            }
            self.persist
                .private_store(node, self.op_cell(slot), 0, true)?;
            node.check_alloc(payload, class_cells(class), gen);
            return Ok(PopOutcome::Got(BlockRef {
                loc: payload,
                gen,
                recycled: true,
            }));
        }
    }

    /// Resolves an observed `POPPING` head: once the claiming slot's
    /// intent records the claimed block, anyone can complete the swing.
    /// Until it does, we wait (the window is two private stores wide; a
    /// machine that crashes inside it stalls this class until
    /// [`Allocator::recover`], which reverts the claim).
    fn help(&self, node: &NodeHandle, class: usize, observed: u64) -> OpResult<()> {
        let head_cell = self.head_cell(class);
        let slot = head_slot(observed).expect("help is only called on POPPING heads");
        let top = head_top(observed).expect("a POPPING head always has a top");
        let mut spins = 0u32;
        loop {
            let cur = self.persist.shared_load(node, head_cell, true)?;
            if cur != observed {
                return Ok(());
            }
            let recorded = self
                .persist
                .shared_load(node, self.block_cell(slot), true)?;
            if decode_addr(recorded) == Some(top) {
                let hdr = self
                    .persist
                    .shared_load(node, self.header_cell(top), true)?;
                let swung = head_word(header_next(hdr), head_ver(observed).wrapping_add(1));
                let _ = self
                    .persist
                    .shared_cas(node, head_cell, observed, swung, true)?;
                return Ok(());
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            }
        }
    }

    // ---- free -----------------------------------------------------------

    /// Returns `payload`'s block to its class free list for reuse.
    ///
    /// The allocation-intent protocol makes this crash-consistent: once
    /// `free` is invoked, a crash at any instant either leaves the block
    /// allocated-and-intent-latched (recovery completes the free) or
    /// free (recovery deduplicates) — never lost, never on the list
    /// twice. Freeing a block that is already free is detected and
    /// refused; freeing a block another caller still uses is a logic
    /// error the allocator cannot detect (as in C).
    ///
    /// # Errors
    ///
    /// `Err(Crashed)` if the issuing machine has crashed; `Ok(Err(_))`
    /// when the free is refused (see [`FreeError`]).
    pub fn free(&self, at: &impl AsNode, payload: Loc) -> OpResult<Result<(), FreeError>> {
        let node = at.as_node();
        let result = self.free_inner(node, payload, None)?;
        self.persist.complete_op(node)?;
        Ok(match result {
            FreeOutcome::Done => Ok(()),
            FreeOutcome::Refused(e) => Err(e),
            FreeOutcome::Torn => unreachable!("tear hooks only run via torn_free"),
        })
    }

    fn free_inner(
        &self,
        node: &NodeHandle,
        payload: Loc,
        stop: Option<TornFree>,
    ) -> OpResult<FreeOutcome> {
        let addr = payload.addr.0;
        if payload.owner != self.region || addr <= self.data_base || addr >= self.limit {
            return Ok(FreeOutcome::Refused(FreeError::NotABlock));
        }
        let header_cell = self.header_cell(addr);
        let hdr = self.persist.shared_load(node, header_cell, true)?;
        match header_state(hdr) {
            ST_ALLOCATED => {}
            ST_FREE | ST_FREEING => return Ok(FreeOutcome::Refused(FreeError::DoubleFree)),
            _ => return Ok(FreeOutcome::Refused(FreeError::NotABlock)),
        }
        let class = header_class(hdr);
        if class == HUGE_CLASS {
            return Ok(FreeOutcome::Refused(FreeError::Oversize));
        }
        if class as usize >= NUM_CLASSES {
            return Ok(FreeOutcome::Refused(FreeError::NotABlock));
        }

        let slot = self.slots.acquire();
        let outcome = self.free_with_slot(node, payload, hdr, slot, stop);
        match &outcome {
            Err(_) | Ok(FreeOutcome::Torn) => {} // leak the lease (see pop)
            Ok(_) => self.slots.release(slot),
        }
        if matches!(outcome, Ok(FreeOutcome::Done)) {
            node.check_free(payload);
            self.frees.fetch_add(1, Ordering::Relaxed);
            let cells = u64::from(class_cells(class as usize));
            let _ = self
                .live_cells
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                    Some(v.saturating_sub(cells))
                });
        }
        outcome
    }

    fn free_with_slot(
        &self,
        node: &NodeHandle,
        payload: Loc,
        hdr: u64,
        slot: usize,
        stop: Option<TornFree>,
    ) -> OpResult<FreeOutcome> {
        let addr = payload.addr.0;
        let class = header_class(hdr);
        let gen = header_gen(hdr);
        // Latch the intent (block before op: the op word is the latch).
        self.persist
            .private_store(node, self.block_cell(slot), intent_block(addr, gen), true)?;
        self.persist
            .private_store(node, self.op_cell(slot), op_word(OP_FREE, class), true)?;
        if stop == Some(TornFree::Latched) {
            return Ok(FreeOutcome::Torn);
        }
        // Claim: exactly one concurrent free of this incarnation wins.
        if self
            .persist
            .shared_cas(
                node,
                self.header_cell(addr),
                hdr,
                header_word(ST_FREEING, class, gen, None),
                true,
            )?
            .is_err()
        {
            self.persist
                .private_store(node, self.op_cell(slot), 0, true)?;
            return Ok(FreeOutcome::Refused(FreeError::DoubleFree));
        }
        if stop == Some(TornFree::Claimed) {
            return Ok(FreeOutcome::Torn);
        }
        let new_gen = gen.wrapping_add(1) & GEN_MASK;
        if self
            .push(node, class as usize, addr, new_gen, stop)?
            .is_some()
        {
            return Ok(FreeOutcome::Torn);
        }
        self.persist
            .private_store(node, self.op_cell(slot), 0, true)?;
        Ok(FreeOutcome::Done)
    }

    /// Links `addr` (generation already bumped to `new_gen`) onto its
    /// class free list. Returns `Some(loc)` when a tear hook stopped.
    fn push(
        &self,
        node: &NodeHandle,
        class: usize,
        addr: u32,
        new_gen: u64,
        stop: Option<TornFree>,
    ) -> OpResult<Option<Loc>> {
        let head_cell = self.head_cell(class);
        loop {
            let head = self.persist.shared_load(node, head_cell, true)?;
            if head_slot(head).is_some() {
                self.help(node, class, head)?;
                continue;
            }
            // The block is exclusively ours until the head CAS publishes
            // it: a persistent private store suffices for the link.
            self.persist.private_store(
                node,
                self.header_cell(addr),
                header_word(ST_FREE, class as u64, new_gen, head_top(head)),
                true,
            )?;
            if stop == Some(TornFree::Linked) {
                return Ok(Some(Loc::new(self.region, addr)));
            }
            if self
                .persist
                .shared_cas(
                    node,
                    head_cell,
                    head,
                    head_word(Some(addr), head_ver(head).wrapping_add(1)),
                    true,
                )?
                .is_ok()
            {
                if stop == Some(TornFree::Pushed) {
                    return Ok(Some(Loc::new(self.region, addr)));
                }
                return Ok(None);
            }
        }
    }

    // ---- recovery -------------------------------------------------------

    /// Post-crash sweep. Must run quiesced (no concurrent allocator
    /// traffic), like every `recover` in this crate. In order:
    ///
    /// 1. reverts free-list heads stuck in a torn `POPPING` claim;
    /// 2. seals every latched intent: a block named by an intent whose
    ///    recorded generation still matches the block's header is
    ///    guaranteed unreachable by the application (the operation never
    ///    returned), so if it is not on its free list it is pushed back —
    ///    stale intents (generation moved on) are ignored, so a live
    ///    block is never freed;
    /// 3. resets the volatile intent-slot pool.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn recover(&self, at: &impl AsNode) -> OpResult<AllocRecovery> {
        let node = at.as_node();
        let mut report = AllocRecovery::default();
        // (1) torn POPPING claims: the claimed block is still linked
        // (the swing never happened once the intent stayed empty, and if
        // it did happen the head no longer carries the claim), so
        // reverting to a plain head restores the list. Recorded-intent
        // pops are also reverted: their block is back on top and step
        // (2) will find it present.
        for class in 0..NUM_CLASSES {
            let cell = self.head_cell(class);
            let head = self.persist.shared_load(node, cell, true)?;
            if head_slot(head).is_some() {
                let reverted = head_word(head_top(head), head_ver(head).wrapping_add(1));
                self.persist.private_store(node, cell, reverted, true)?;
                report.reverted_pops += 1;
            }
        }
        // (2) latched intents.
        let mut restored: Vec<u32> = Vec::new();
        for slot in 0..INTENT_SLOTS {
            let op = self.persist.shared_load(node, self.op_cell(slot), true)?;
            if op == 0 {
                continue;
            }
            report.sealed_intents += 1;
            let kind = op_kind(op);
            let class = op_class(op) as usize;
            let recorded = self
                .persist
                .shared_load(node, self.block_cell(slot), true)?;
            if let Some(addr) = decode_addr(recorded) {
                let expected_gen = decode_gen(recorded);
                if class < NUM_CLASSES
                    && addr > self.data_base
                    && addr < self.limit
                    && !restored.contains(&addr)
                    && self.intent_needs_push(node, kind, class, addr, expected_gen)?
                {
                    let new_gen = expected_gen.wrapping_add(1) & GEN_MASK;
                    self.push(node, class, addr, new_gen, None)?;
                    restored.push(addr);
                    report.restored_blocks += 1;
                }
            }
            self.persist
                .private_store(node, self.op_cell(slot), 0, true)?;
        }
        // (3) void all leases.
        self.slots.reset();
        self.persist.complete_op(node)?;
        Ok(report)
    }

    /// Decides whether a latched intent's block must be pushed back.
    /// The generation check is what rejects *stale* intents: if the
    /// block's header generation moved past what the intent recorded,
    /// some later operation completed on this block and the intent is a
    /// leftover of an op that lost its race — pushing would free a block
    /// that may be live.
    fn intent_needs_push(
        &self,
        node: &NodeHandle,
        kind: u64,
        class: usize,
        addr: u32,
        expected_gen: u64,
    ) -> OpResult<bool> {
        let hdr = self
            .persist
            .shared_load(node, self.header_cell(addr), true)?;
        let state = header_state(hdr);
        let gen = header_gen(hdr);
        let bumped = expected_gen.wrapping_add(1) & GEN_MASK;
        let needs = match kind {
            // A recorded alloc intent means this slot really popped the
            // block and the caller never received it. Present on the
            // list (claim reverted) → done; otherwise push it back.
            OP_ALLOC => {
                gen == expected_gen
                    && matches!(state, ST_FREE | ST_ALLOCATED)
                    && !self.list_contains(node, class, addr)?
            }
            // A free intent: complete it unless the push already
            // happened (or the intent is stale).
            OP_FREE => match state {
                ST_ALLOCATED | ST_FREEING if gen == expected_gen => true,
                ST_FREE if gen == bumped => !self.list_contains(node, class, addr)?,
                _ => false,
            },
            _ => false,
        };
        Ok(needs)
    }

    /// Walks class `class`'s free list looking for `addr` (recovery
    /// only; bounded by the block area size against corrupted links).
    fn list_contains(&self, node: &NodeHandle, class: usize, addr: u32) -> OpResult<bool> {
        let head = self
            .persist
            .shared_load(node, self.head_cell(class), true)?;
        let mut cur = head_top(head);
        let mut steps = self.limit - self.data_base;
        while let Some(a) = cur {
            if a == addr {
                return Ok(true);
            }
            if steps == 0 || a <= self.data_base || a >= self.limit {
                return Ok(false);
            }
            steps -= 1;
            let hdr = self.persist.shared_load(node, self.header_cell(a), true)?;
            cur = header_next(hdr);
        }
        Ok(false)
    }

    // ---- test hooks -----------------------------------------------------

    /// Testing hook: run an allocation pop and stop at `stage`, leaving
    /// the durable state exactly as a crash at that instant would.
    /// Returns the affected block's payload, or `None` when the class
    /// free list was empty (nothing to tear). The intent slot stays
    /// leased until [`Allocator::recover`].
    #[doc(hidden)]
    pub fn torn_alloc(
        &self,
        at: &impl AsNode,
        cells: u32,
        stage: TornAlloc,
    ) -> OpResult<Option<Loc>> {
        let node = at.as_node();
        let result = self.alloc_torn_inner(node, cells, stage)?;
        self.persist.complete_op(node)?;
        Ok(result)
    }

    fn alloc_torn_inner(
        &self,
        node: &NodeHandle,
        cells: u32,
        stage: TornAlloc,
    ) -> OpResult<Option<Loc>> {
        let Some(class) = class_for(cells) else {
            return Ok(None);
        };
        match self.pop(node, class, Some(stage))? {
            PopOutcome::Torn(loc) => Ok(Some(loc)),
            PopOutcome::Got(b) => {
                // Raced past the tear point is impossible single-threaded;
                // treat a completed pop as "nothing torn" defensively.
                let _ = self.free_inner(node, b.loc, None)?;
                Ok(None)
            }
            PopOutcome::Empty => Ok(None),
        }
    }

    /// Testing hook: run a free and stop at `stage` (see
    /// [`Allocator::torn_alloc`]). Returns the refusal, if any.
    #[doc(hidden)]
    pub fn torn_free(
        &self,
        at: &impl AsNode,
        payload: Loc,
        stage: TornFree,
    ) -> OpResult<Result<(), FreeError>> {
        let node = at.as_node();
        let outcome = self.free_inner(node, payload, Some(stage))?;
        self.persist.complete_op(node)?;
        Ok(match outcome {
            FreeOutcome::Torn | FreeOutcome::Done => Ok(()),
            FreeOutcome::Refused(e) => Err(e),
        })
    }

    /// Testing hook: the blocks on class-of-`cells`'s free list, top
    /// first.
    #[doc(hidden)]
    pub fn debug_free_list(&self, at: &impl AsNode, cells: u32) -> OpResult<Vec<Loc>> {
        let node = at.as_node();
        let class = class_for(cells).expect("debug_free_list takes a reclaimable size");
        let mut out = Vec::new();
        let head = self
            .persist
            .shared_load(node, self.head_cell(class), true)?;
        let mut cur = head_top(head);
        let mut steps = self.limit - self.data_base;
        while let (Some(a), true) = (cur, steps > 0) {
            out.push(Loc::new(self.region, a));
            steps -= 1;
            let hdr = self.persist.shared_load(node, self.header_cell(a), true)?;
            cur = header_next(hdr);
        }
        self.persist.complete_op(node)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimFabric;
    use crate::flit::FlitCxl0;
    use cxl0_model::SystemConfig;

    fn setup(cells: u32) -> (Arc<SimFabric>, Arc<Allocator>) {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, cells));
        let persist: Arc<dyn Persistence> = Arc::new(FlitCxl0::default());
        let a = Arc::new(Allocator::over_region(f.config(), MachineId(1), persist));
        (f, a)
    }

    #[test]
    fn classes_round_up_to_powers_of_two() {
        assert_eq!(class_for(1), Some(0));
        assert_eq!(class_for(2), Some(1));
        assert_eq!(class_for(3), Some(2));
        assert_eq!(class_for(16384), Some(14));
        assert_eq!(class_for(16385), None);
    }

    #[test]
    fn alloc_free_alloc_reuses_the_block_with_a_new_generation() {
        let (f, a) = setup(1024);
        let node = f.node(MachineId(0));
        let b1 = a.alloc(&node, 2).unwrap().unwrap();
        assert_ne!(b1.gen, 0, "fresh blocks carry a nonzero seed generation");
        a.free(&node, b1.loc).unwrap().unwrap();
        let b2 = a.alloc(&node, 2).unwrap().unwrap();
        assert_eq!(b2.loc, b1.loc, "freed block is reused");
        assert_eq!(
            b2.gen,
            b1.gen.wrapping_add(1) & GEN_MASK,
            "reuse bumps the generation"
        );
        assert_ne!(Allocator::encode(b1), Allocator::encode(b2));
        let s = a.stats();
        assert_eq!((s.allocs, s.frees, s.freelist_hits), (2, 1, 1));
    }

    #[test]
    fn different_classes_use_different_lists() {
        let (f, a) = setup(1024);
        let node = f.node(MachineId(0));
        let small = a.alloc(&node, 2).unwrap().unwrap();
        let big = a.alloc(&node, 5).unwrap().unwrap(); // class 8
        a.free(&node, small.loc).unwrap().unwrap();
        a.free(&node, big.loc).unwrap().unwrap();
        let again = a.alloc(&node, 8).unwrap().unwrap();
        assert_eq!(again.loc, big.loc);
        let again = a.alloc(&node, 1).unwrap().unwrap();
        assert_ne!(again.loc, small.loc, "class-1 list is separate");
    }

    #[test]
    fn double_free_and_garbage_are_refused() {
        let (f, a) = setup(1024);
        let node = f.node(MachineId(0));
        let b = a.alloc(&node, 2).unwrap().unwrap();
        a.free(&node, b.loc).unwrap().unwrap();
        assert_eq!(a.free(&node, b.loc).unwrap(), Err(FreeError::DoubleFree));
        // A payload cell that is not a block start.
        let inner = Loc::new(b.loc.owner, b.loc.addr.0 + 1);
        assert!(a.free(&node, inner).unwrap().is_err());
        // Out of extent entirely.
        assert_eq!(
            a.free(&node, Loc::new(MachineId(1), 3)).unwrap(),
            Err(FreeError::NotABlock)
        );
    }

    #[test]
    fn oversize_blocks_are_exact_fit_and_unreclaimable() {
        let (f, a) = setup(META_CELLS + MAX_CLASS_CELLS + 200);
        let node = f.node(MachineId(0));
        let huge = a.alloc(&node, MAX_CLASS_CELLS + 1).unwrap().unwrap();
        assert_eq!(a.free(&node, huge.loc).unwrap(), Err(FreeError::Oversize));
    }

    #[test]
    fn reuse_survives_exhaustion_of_the_bump_tail() {
        // Room for ~4 three-cell blocks after metadata.
        let (f, a) = setup(META_CELLS + 13);
        let node = f.node(MachineId(0));
        // Churn far past the bump capacity: only reuse can sustain this.
        let mut last = None;
        for _ in 0..50 {
            let b = a.alloc(&node, 2).unwrap().expect("reuse sustains churn");
            if let Some(prev) = last {
                a.free(&node, prev).unwrap().unwrap();
            }
            last = Some(b.loc);
        }
    }

    #[test]
    fn decode_rejects_out_of_extent_words() {
        let (f, a) = setup(1024);
        let node = f.node(MachineId(0));
        let b = a.alloc(&node, 2).unwrap().unwrap();
        assert_eq!(a.decode(Allocator::encode(b)), Some(b.loc));
        assert_eq!(a.decode(0), None);
        assert_eq!(a.decode(Allocator::null_ptr(7)), None);
        // Metadata and out-of-region addresses never decode.
        assert_eq!(a.decode(ptr_word(0, 0)), None);
        assert_eq!(a.decode(ptr_word(META_CELLS, 0)), None);
        assert_eq!(a.decode(ptr_word(5000, 0)), None);
    }

    #[test]
    fn recover_on_a_clean_region_is_a_no_op() {
        let (f, a) = setup(1024);
        let node = f.node(MachineId(0));
        a.format(&node).unwrap();
        let b = a.alloc(&node, 2).unwrap().unwrap();
        a.free(&node, b.loc).unwrap().unwrap();
        let r = a.recover(&node).unwrap();
        assert_eq!(r, AllocRecovery::default());
        assert_eq!(a.debug_free_list(&node, 2).unwrap(), vec![b.loc]);
    }

    #[test]
    fn torn_frees_are_completed_exactly_once() {
        for stage in [
            TornFree::Latched,
            TornFree::Claimed,
            TornFree::Linked,
            TornFree::Pushed,
        ] {
            let (f, a) = setup(1024);
            let node = f.node(MachineId(0));
            let b = a.alloc(&node, 2).unwrap().unwrap();
            a.torn_free(&node, b.loc, stage).unwrap().unwrap();
            let r = a.recover(&node).unwrap();
            assert_eq!(r.sealed_intents, 1, "{stage:?}");
            assert_eq!(
                a.debug_free_list(&node, 2).unwrap(),
                vec![b.loc],
                "{stage:?}: block must be free exactly once"
            );
            // And usable again.
            let again = a.alloc(&node, 2).unwrap().unwrap();
            assert_eq!(again.loc, b.loc);
        }
    }

    #[test]
    fn torn_allocs_never_lose_the_block() {
        for stage in [
            TornAlloc::Claimed,
            TornAlloc::Recorded,
            TornAlloc::Swung,
            TornAlloc::Marked,
        ] {
            let (f, a) = setup(1024);
            let node = f.node(MachineId(0));
            let b = a.alloc(&node, 2).unwrap().unwrap();
            a.free(&node, b.loc).unwrap().unwrap();
            let torn = a.torn_alloc(&node, 2, stage).unwrap();
            assert_eq!(torn, Some(b.loc), "{stage:?}");
            a.recover(&node).unwrap();
            assert_eq!(
                a.debug_free_list(&node, 2).unwrap(),
                vec![b.loc],
                "{stage:?}: block must be back on the list exactly once"
            );
        }
    }

    #[test]
    fn concurrent_alloc_free_hands_no_block_out_twice() {
        let (f, a) = setup(1 << 14);
        let mut handles = Vec::new();
        let live = Arc::new(parking_lot::Mutex::new(std::collections::HashSet::new()));
        for t in 0..4usize {
            let a = Arc::clone(&a);
            let node = f.node(MachineId(t % 2));
            let live = Arc::clone(&live);
            handles.push(std::thread::spawn(move || {
                let mut mine = Vec::new();
                for i in 0..300 {
                    if i % 3 != 2 {
                        let b = a.alloc(&node, 2).unwrap().expect("heap fits");
                        assert!(
                            live.lock().insert(b.loc.addr.0),
                            "block handed out while still live"
                        );
                        mine.push(b.loc);
                    } else if let Some(loc) = mine.pop() {
                        assert!(live.lock().remove(&loc.addr.0));
                        a.free(&node, loc).unwrap().unwrap();
                    }
                }
                for loc in mine {
                    assert!(live.lock().remove(&loc.addr.0));
                    a.free(&node, loc).unwrap().unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(live.lock().is_empty());
        let s = a.stats();
        assert_eq!(s.allocs, s.frees);
        assert_eq!(s.live_cells, 0);
        assert!(s.freelist_hits > 0, "churn must exercise reuse");
        assert!(s.hw_cells >= 2);
    }
}
