//! # Crash-consistent memory allocation over the durable segment
//!
//! The paper's programming model assumes long-lived durable structures
//! on the memory node; the original bump [`SharedHeap`](crate::SharedHeap)
//! never reclaims, so every dequeue/remove leaked NVM forever and no
//! churn workload could run at sustained traffic. This module is the
//! missing layer between the heap and the data structures: a
//! **size-class allocator with durable free lists and a recovery
//! sweep**, in the spirit of pooled-CXL allocator subsystems and
//! checkpoint-recovered persistent allocators in the related work.
//!
//! ## Anatomy
//!
//! The allocator owns a range of the memory node's shared segment:
//!
//! ```text
//! [ region header | 15 free-list heads | 32 intent slots | block area … ]
//!   META_CELLS durable metadata cells                      bump tail
//! ```
//!
//! Every block is `1 + payload` cells: a **header** (state, size class,
//! reuse *generation*, intrusive free-list link) followed by the payload
//! the caller sees. Payloads round up to power-of-two size classes
//! (1..=[`MAX_CLASS_CELLS`] cells); larger requests are exact-fit from
//! the bump tail and unreclaimable.
//!
//! All durable mutations flow through the cluster's
//! [`Persistence`](crate::Persistence) strategy, so the allocator
//! inherits whatever durability the cluster was built with — exactly
//! like the named-root registry.
//!
//! ## Crash consistency: intents + two-phase pops
//!
//! A crash must never *lose* a block (reachable from no free list and
//! owned by no one) nor hand one out *twice* (reachable from a free
//! list while live). Both are prevented by durable **allocation
//! intents**:
//!
//! * **free**: latch an intent naming the block and its generation →
//!   claim the header (`ALLOCATED → FREEING`, the only winner of a
//!   racing double free) → link + CAS-push onto the class list → clear
//!   the intent. A crash anywhere in between leaves a latched intent;
//!   recovery completes the push (deduplicating via a list walk).
//! * **alloc**: pops are two-phase. The popper first CASes the list
//!   head into a `POPPING(slot)` *claim*, then records the claimed
//!   block into its intent slot, then swings the head past it. Because
//!   the record strictly follows the claim, a latched alloc intent
//!   always names a block this slot really popped — recovery can push
//!   it back without ever freeing someone else's live block. Competing
//!   operations that observe a claim help complete the swing once the
//!   intent is recorded.
//! * **recovery** ([`Allocator::recover`], run from
//!   [`Session::recover_roots`](crate::api::Session::recover_roots)):
//!   revert torn claims, then seal every latched intent — pushing the
//!   named block back unless it is already on its list or the intent is
//!   stale (the block's header generation moved past the recorded one).
//!
//! ## ABA safety for reclaiming lock-free structures
//!
//! Reusing nodes under CAS-based structures resurrects the classic ABA
//! problem. Every block carries a **generation** bumped on each free,
//! and [`Allocator::encode`] tags pointer words with it (the
//! Michael–Scott counted-pointer technique): a stale CAS against a
//! pointer to a reclaimed-and-recycled block cannot match. (The
//! generation is 20 bits and wraps: like every counted-pointer scheme
//! the guard is probabilistic, defeated only if one block is freed
//! 2^20 times *while a single operation is suspended holding a stale
//! pointer to it* — not a reachable schedule in this simulator's
//! workloads, but worth naming.) Link
//! cells are initialized with [`Allocator::null_ptr`]`(gen)` so even
//! "null" differs across incarnations (nulls carry a tag bit, so none
//! equals a plain zero cell either). Reads of freed cells remain
//! possible (and harmless — the simulated fabric cannot fault); any
//! value read from a freed block is only ever used under a
//! generation-checked CAS that fails.
//!
//! One discipline makes this airtight without type-stable memory: **a
//! cell of a reclaimable block that is ever the target of a CAS must
//! only ever hold generation-tagged words** (encoded pointers or tagged
//! nulls), never application-chosen values — *or* the block's
//! reclamation must be deferred past every operation that could touch
//! it. The counted-pointer structures (queue, stack) follow the first
//! arm: their two-cell nodes keep the link at offset 1 and the value
//! at offset 0, and free unlinked nodes inline. The traversal
//! structures (sorted list, hash map), whose cells do hold
//! application-chosen words, follow the second: they retire blocks
//! through the epoch-based reclamation domain ([`crate::smr`]), which
//! keeps a retired block out of reuse until every operation pinned at
//! retirement has finished — see `docs/RECLAMATION.md` for why each
//! structure sits where it does.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use cxl0_runtime::alloc::Allocator;
//! use cxl0_runtime::{FlitCxl0, Persistence, SimFabric};
//! use cxl0_model::{MachineId, SystemConfig};
//!
//! let fabric = SimFabric::new(SystemConfig::symmetric_nvm(2, 1024));
//! let persist: Arc<dyn Persistence> = Arc::new(FlitCxl0::default());
//! let alloc = Allocator::over_region(fabric.config(), MachineId(1), persist);
//! let node = fabric.node(MachineId(0));
//!
//! let a = alloc.alloc(&node, 2)?.expect("heap fits");
//! alloc.free(&node, a.loc)?.expect("a is allocated");
//! let b = alloc.alloc(&node, 2)?.expect("heap fits");
//! assert_eq!(b.loc, a.loc);     // the block is reused…
//! assert_eq!(b.gen, a.gen + 1); // …under a fresh generation
//! # Ok::<(), cxl0_runtime::Crashed>(())
//! ```
//!
//! Within a [`Cluster`](crate::api::Cluster) the allocator is built
//! automatically (right after the named-root registry) and the durable
//! structures ([`ds`](crate::ds)) allocate and reclaim their nodes
//! through it; its counters surface through
//! [`Session::stats_delta`](crate::api::Session::stats_delta).

mod allocator;
pub(crate) mod layout;

pub use allocator::{
    AllocRecovery, AllocStats, Allocator, BlockRef, FreeError, TornAlloc, TornFree, INTENT_SLOTS,
    MAX_CLASS_CELLS, META_CELLS, NUM_CLASSES,
};
