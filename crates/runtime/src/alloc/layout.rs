//! Bit layouts of the allocator's durable words.
//!
//! Three word shapes live in shared memory:
//!
//! * **pointer words** — what data structures store in their cells to
//!   reference an allocated block: `gen << 34 | (addr + 1)`, with zero
//!   pointer bits meaning *null*. The generation is the block's reuse
//!   counter, so a pointer to a reclaimed-and-recycled block never
//!   compares equal to a pointer to its previous incarnation (the
//!   classic CAS/ABA guard, per the original Michael–Scott counted
//!   pointers). Bit 63 is left clear for structure-level tag bits (the
//!   sorted list's deletion mark).
//! * **block headers** — the cell immediately before every block's
//!   payload: state + size class + generation + an intrusive free-list
//!   `next` link (meaningful only while the block is free).
//! * **free-list heads** — one cell per size class: the top block's
//!   address, a `POPPING` claim (flag + intent-slot index) installed by
//!   the two-phase pop, and a version counter bumped by every successful
//!   CAS so a pushed-back block never re-creates an old head word.

/// Bits of an encoded address (`addr + 1`; `0` = null).
pub(crate) const PTR_BITS: u32 = 34;
pub(crate) const PTR_MASK: u64 = (1 << PTR_BITS) - 1;

/// Block-generation field: bits 34..54 of pointer words and headers.
pub(crate) const GEN_SHIFT: u32 = 34;
pub(crate) const GEN_BITS: u32 = 20;
pub(crate) const GEN_MASK: u64 = (1 << GEN_BITS) - 1;

// ---- block headers ------------------------------------------------------

/// Size-class field of a header: bits 54..59.
const CLASS_SHIFT: u32 = 54;
const CLASS_MASK: u64 = 0x1f;
/// State field of a header: bits 59..62.
const STATE_SHIFT: u32 = 59;
const STATE_MASK: u64 = 0x7;

/// Header state: handed out (or being handed out) to the application.
pub(crate) const ST_ALLOCATED: u64 = 1;
/// Header state: on (or being pushed onto) its class free list.
pub(crate) const ST_FREE: u64 = 2;
/// Header state: claimed by an in-flight `free` (between the claim CAS
/// and the free-list push).
pub(crate) const ST_FREEING: u64 = 3;

/// Class tag of an oversize (exact-fit, unreclaimable) block.
pub(crate) const HUGE_CLASS: u64 = CLASS_MASK;

/// Builds a header word. `next` is the next free block's payload address
/// (`None` = end of list); only meaningful in [`ST_FREE`].
pub(crate) fn header_word(state: u64, class: u64, gen: u64, next: Option<u32>) -> u64 {
    debug_assert!(state <= STATE_MASK && class <= CLASS_MASK && gen <= GEN_MASK);
    (state << STATE_SHIFT)
        | (class << CLASS_SHIFT)
        | (gen << GEN_SHIFT)
        | next.map_or(0, |a| u64::from(a) + 1)
}

pub(crate) fn header_state(hdr: u64) -> u64 {
    (hdr >> STATE_SHIFT) & STATE_MASK
}

pub(crate) fn header_class(hdr: u64) -> u64 {
    (hdr >> CLASS_SHIFT) & CLASS_MASK
}

pub(crate) fn header_gen(hdr: u64) -> u64 {
    (hdr >> GEN_SHIFT) & GEN_MASK
}

/// The free-list successor recorded in a free block's header.
pub(crate) fn header_next(hdr: u64) -> Option<u32> {
    decode_addr(hdr)
}

// ---- pointer words ------------------------------------------------------

/// Encodes a payload address + generation as a pointer word.
pub(crate) fn ptr_word(addr: u32, gen: u64) -> u64 {
    debug_assert!(gen <= GEN_MASK);
    (gen << GEN_SHIFT) | (u64::from(addr) + 1)
}

/// Tag bit marking a null pointer word (bit 62). Without it,
/// `null_word(0)` would encode as plain `0` and a stale CAS expecting a
/// generation-0 null could match the zero-initialized (or recycled)
/// contents of a different block — the tag keeps every link-cell word
/// unique to its block incarnation.
const NULL_TAG: u64 = 1 << 62;

/// The null pointer word carrying a block's generation (used to
/// initialize link cells so a stale CAS against a recycled block's
/// "null" fails — nulls from different incarnations differ, and no
/// null ever equals a plain zero cell).
pub(crate) fn null_word(gen: u64) -> u64 {
    debug_assert!(gen <= GEN_MASK);
    NULL_TAG | (gen << GEN_SHIFT)
}

/// The address carried by a pointer word (also used for header `next`
/// fields and intent block cells). `None` when the pointer bits are 0.
pub(crate) fn decode_addr(raw: u64) -> Option<u32> {
    let p = raw & PTR_MASK;
    if p == 0 {
        None
    } else {
        Some((p - 1) as u32)
    }
}

/// The generation carried by a pointer word or intent block cell.
pub(crate) fn decode_gen(raw: u64) -> u64 {
    (raw >> GEN_SHIFT) & GEN_MASK
}

/// The seed generation of a fresh bump-tail block at payload address
/// `addr`: a per-address hash, always odd (never zero). Two birds: a
/// block's very first pointer words already differ from any
/// application scalar (a small integer's generation bits are zero, so
/// it can never alias a live block's pointer — which is what lets the
/// sanitizer treat a generation-matching word as a real reference),
/// and the first free of a neighbouring recycled block can't collide
/// either (distinct addresses hash to distinct seeds with high
/// probability, and the low bit keeps every seed odd while bumps
/// alternate parity).
pub(crate) fn seed_gen(addr: u32) -> u64 {
    (u64::from(addr).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 44) & GEN_MASK | 1
}

// ---- free-list head words -----------------------------------------------

/// `POPPING` claim flag: bit 34.
const POP_FLAG: u64 = 1 << 34;
/// Intent-slot index of the claiming pop: bits 35..42.
const SLOT_SHIFT: u32 = 35;
const SLOT_MASK: u64 = 0x7f;
/// Head version counter: bits 42..64 (wraps).
const VER_SHIFT: u32 = 42;
const VER_MASK: u64 = (1 << (64 - VER_SHIFT)) - 1;

/// Builds a plain (unclaimed) head word.
pub(crate) fn head_word(top: Option<u32>, ver: u64) -> u64 {
    ((ver & VER_MASK) << VER_SHIFT) | top.map_or(0, |a| u64::from(a) + 1)
}

/// Stamps a `POPPING(slot)` claim onto `head` (which must be plain),
/// bumping the version.
pub(crate) fn popping_word(head: u64, slot: usize) -> u64 {
    debug_assert!(head_slot(head).is_none());
    debug_assert!(slot as u64 <= SLOT_MASK);
    head_word(head_top(head), head_ver(head).wrapping_add(1))
        | POP_FLAG
        | ((slot as u64) << SLOT_SHIFT)
}

/// The top block's payload address (`None` = empty list).
pub(crate) fn head_top(head: u64) -> Option<u32> {
    decode_addr(head)
}

/// The claiming intent slot, when the head is in the `POPPING` state.
pub(crate) fn head_slot(head: u64) -> Option<usize> {
    if head & POP_FLAG != 0 {
        Some(((head >> SLOT_SHIFT) & SLOT_MASK) as usize)
    } else {
        None
    }
}

pub(crate) fn head_ver(head: u64) -> u64 {
    (head >> VER_SHIFT) & VER_MASK
}

// ---- intent slots -------------------------------------------------------

/// Intent opcode: an allocation pop is in flight.
pub(crate) const OP_ALLOC: u64 = 1;
/// Intent opcode: a free is in flight.
pub(crate) const OP_FREE: u64 = 2;

/// Builds an intent op word (`0` = idle slot).
pub(crate) fn op_word(op: u64, class: u64) -> u64 {
    debug_assert!(op == OP_ALLOC || op == OP_FREE);
    (class << 8) | op
}

pub(crate) fn op_kind(word: u64) -> u64 {
    word & 0xff
}

pub(crate) fn op_class(word: u64) -> u64 {
    (word >> 8) & CLASS_MASK
}

/// An intent block cell: the affected block + the generation the op
/// observed, so recovery can tell a live intent from a stale one.
pub(crate) fn intent_block(addr: u32, gen: u64) -> u64 {
    ptr_word(addr, gen)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let h = header_word(ST_FREE, 7, 0xfffff, Some(12345));
        assert_eq!(header_state(h), ST_FREE);
        assert_eq!(header_class(h), 7);
        assert_eq!(header_gen(h), 0xfffff);
        assert_eq!(header_next(h), Some(12345));
        let h = header_word(ST_ALLOCATED, HUGE_CLASS, 0, None);
        assert_eq!(header_state(h), ST_ALLOCATED);
        assert_eq!(header_class(h), HUGE_CLASS);
        assert_eq!(header_next(h), None);
    }

    #[test]
    fn pointer_words_distinguish_generations() {
        let a = ptr_word(42, 3);
        let b = ptr_word(42, 4);
        assert_ne!(a, b);
        assert_eq!(decode_addr(a), Some(42));
        assert_eq!(decode_addr(b), Some(42));
        assert_eq!(decode_gen(a), 3);
        assert_ne!(null_word(3), null_word(4));
        assert_eq!(decode_addr(null_word(3)), None);
        // Even the generation-0 null is distinguishable from a plain
        // zero cell (fresh memory, foreign structures' initial state).
        assert_ne!(null_word(0), 0);
        // Bit 63 stays clear for structure-level marks.
        assert_eq!(ptr_word(u32::MAX, GEN_MASK) >> 63, 0);
        assert_eq!(null_word(GEN_MASK) >> 63, 0);
    }

    #[test]
    fn seed_generations_are_nonzero_and_spread() {
        let mut seen = std::collections::HashSet::new();
        for addr in 0..10_000u32 {
            let g = seed_gen(addr);
            assert_ne!(g, 0);
            assert_eq!(g & 1, 1, "seeds are odd");
            assert!(g <= GEN_MASK);
            seen.insert(g);
        }
        // The hash must actually spread: neighbouring addresses get
        // (mostly) distinct seeds.
        assert!(seen.len() > 9_000, "only {} distinct seeds", seen.len());
    }

    #[test]
    fn head_claim_round_trips() {
        let plain = head_word(Some(7), 9);
        assert_eq!(head_top(plain), Some(7));
        assert_eq!(head_slot(plain), None);
        assert_eq!(head_ver(plain), 9);
        let claimed = popping_word(plain, 5);
        assert_eq!(head_top(claimed), Some(7));
        assert_eq!(head_slot(claimed), Some(5));
        assert_eq!(head_ver(claimed), 10);
        assert_ne!(claimed, plain);
    }

    #[test]
    fn head_version_wraps_without_corrupting_fields() {
        let h = head_word(Some(1), VER_MASK);
        assert_eq!(head_ver(h), VER_MASK);
        let bumped = head_word(Some(1), head_ver(h).wrapping_add(1));
        assert_eq!(head_ver(bumped), 0);
        assert_eq!(head_top(bumped), Some(1));
    }

    #[test]
    fn intent_words_round_trip() {
        let w = op_word(OP_FREE, 11);
        assert_eq!(op_kind(w), OP_FREE);
        assert_eq!(op_class(w), 11);
        let b = intent_block(99, 6);
        assert_eq!(decode_addr(b), Some(99));
        assert_eq!(decode_gen(b), 6);
    }
}
