//! Op-level tracing, latency histograms and recovery-time telemetry.
//!
//! **Naming note:** this is the *runtime* tracer — spans, latency
//! percentiles and recovery phases of a live [`SimFabric`] workload.
//! The similarly named `cxl0_model::trace` module is unrelated: it holds
//! *model execution traces* (sequences of labelled transitions) used by
//! the litmus-test machinery and the protocol explorer. If you are
//! pretty-printing counter-example interleavings you want the model's
//! `Trace`; if you want to know your p99 enqueue latency you are in the
//! right place.
//!
//! ## Design
//!
//! The tracer is always compiled and strictly opt-in, mirroring the
//! [`check`](crate::check) sanitizer: a [`Tracer`] is installed on a
//! [`SimFabric`] once ([`SimFabric::install_tracer`]), usually via
//! [`ClusterBuilder::with_tracing`](crate::api::ClusterBuilder::with_tracing)
//! or the `CXL0_TRACE` environment variable. Without one installed,
//! every hook is a single `OnceLock` load on the hot path and **no new
//! atomic read-modify-write is issued anywhere** — the perf-smoke CI job
//! asserts the untraced 8-thread throughput stays within noise.
//!
//! With a tracer armed:
//!
//! * **Per-thread recorders.** Each leased thread slot (the PR-4 rails;
//!   see `backend.rs`) owns a cache-line-padded slot recorder: a
//!   bounded ring of [`TraceEvent`]s plus per-[`OpKind`] log2 latency
//!   histograms, behind a mutex only its own thread locks on the hot
//!   path (exporters lock from outside). When a ring wraps, the oldest
//!   event is dropped and an explicit drop counter bumps — silent loss
//!   is not an option. Threads beyond the slot count share one overflow
//!   recorder, exactly like the stats rails.
//! * **Spans.** A structure op (`enqueue`, `pop`, `insert`, a combiner
//!   batch, an SMR collect…) opens a [`SpanGuard`] that samples the
//!   thread's stats rail on entry and exit: each event carries wall
//!   *and* simulated time, plus the op's flush/barrier/persist-ack
//!   deltas — the per-op *persist amplification*.
//! * **Histograms.** Latencies (simulated nanoseconds) are recorded in
//!   fixed 64-bucket log2 [`LatencyHistogram`]s, mergeable across
//!   threads; p50/p99/p999 surface through
//!   [`StatsSnapshot`](crate::StatsSnapshot) gauges.
//! * **Crash coherence.** [`SimFabric::crash`] seals the current
//!   *incarnation*: with the world stopped it drains every live ring
//!   into a retired-event buffer, so crashed-incarnation events are
//!   never interleaved into post-recovery spans. Exported events carry
//!   their incarnation (the Chrome `pid`), and histograms accumulate
//!   across crashes.
//! * **Recovery phases.** `Session::recover_roots` wraps each recovery
//!   phase (buffered replay, allocator sweep, SMR limbo drain, registry
//!   seal) in a [`PhaseGuard`]; the resulting [`PhaseTiming`] breakdown
//!   is queryable and exported alongside op spans.
//! * **Violations.** With both a sanitizer and a tracer installed,
//!   every [`Violation`](crate::check::Violation) also lands in the
//!   trace as an instant event with machine/thread provenance.
//!
//! ## Export formats
//!
//! [`Tracer::export_chrome_json`] emits a Chrome trace-event array
//! (load it in Perfetto or `chrome://tracing`): spans are `"ph":"X"`
//! complete events timed in wall microseconds, violations are instant
//! events, `pid` is the crash incarnation and `tid` the thread slot,
//! and each span's `args` carry the simulated-time and persist
//! attribution. [`Tracer::export_jsonl`] emits one self-describing JSON
//! object per line for ad-hoc analysis. [`Tracer::write_to`] picks the
//! format from the file extension (`.jsonl` vs anything else).
//!
//! See `docs/OBSERVABILITY.md` for the full tour, including measured
//! overhead numbers.
//!
//! [`SimFabric`]: crate::backend::SimFabric
//! [`SimFabric::install_tracer`]: crate::backend::SimFabric::install_tracer
//! [`SimFabric::crash`]: crate::backend::SimFabric::crash

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use cxl0_model::{Loc, MachineId};
use parking_lot::Mutex;

use crate::backend::{thread_slot_index, RailProbe, Stats, RAIL_SLOTS};

/// Number of log2 buckets in a [`LatencyHistogram`] (covers the full
/// `u64` nanosecond range).
pub const HIST_BUCKETS: usize = 64;

/// Cap on events preserved from crashed incarnations across all slots;
/// beyond this, further crash-sealed events count as dropped.
const RETIRED_CAP: usize = 1 << 16;

/// Configuration for the runtime tracer.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Events retained per thread slot before the ring wraps (oldest
    /// dropped, counted). Default 4096.
    pub ring_capacity: usize,
    /// Where to export on [`Cluster`](crate::api::Cluster) drop; `None`
    /// keeps the trace queryable in-process only. A `.jsonl` suffix
    /// selects JSONL, anything else Chrome trace-event JSON.
    pub export_path: Option<String>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            ring_capacity: 4096,
            export_path: None,
        }
    }
}

impl TraceConfig {
    /// A config exporting to `path` on cluster drop.
    pub fn to_path(path: impl Into<String>) -> Self {
        TraceConfig {
            export_path: Some(path.into()),
            ..TraceConfig::default()
        }
    }
}

/// Structure-level operation kinds the tracer distinguishes (one latency
/// histogram each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum OpKind {
    /// Queue enqueue (direct or through a combining front).
    Enqueue = 0,
    /// Queue dequeue.
    Dequeue = 1,
    /// Stack push.
    Push = 2,
    /// Stack pop.
    Pop = 3,
    /// List/map insert.
    Insert = 4,
    /// List/map remove.
    Remove = 5,
    /// List/map lookup (`contains`/`get`).
    Get = 6,
    /// One combiner pass applying a batch of announced ops.
    CombineBatch = 7,
    /// One SMR reclamation attempt (epoch scan + limbo hand-back).
    SmrCollect = 8,
    /// A global-persistent-flush snapshot.
    GpfSnapshot = 9,
}

impl OpKind {
    /// Every op kind, in discriminant order.
    pub const ALL: [OpKind; 10] = [
        OpKind::Enqueue,
        OpKind::Dequeue,
        OpKind::Push,
        OpKind::Pop,
        OpKind::Insert,
        OpKind::Remove,
        OpKind::Get,
        OpKind::CombineBatch,
        OpKind::SmrCollect,
        OpKind::GpfSnapshot,
    ];

    /// Stable lower-case name, used in exports.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Enqueue => "enqueue",
            OpKind::Dequeue => "dequeue",
            OpKind::Push => "push",
            OpKind::Pop => "pop",
            OpKind::Insert => "insert",
            OpKind::Remove => "remove",
            OpKind::Get => "get",
            OpKind::CombineBatch => "combine_batch",
            OpKind::SmrCollect => "smr_collect",
            OpKind::GpfSnapshot => "gpf_snapshot",
        }
    }
}

const OP_KINDS: usize = OpKind::ALL.len();

/// The phases of `Session::recover_roots`, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryPhase {
    /// Buffered-durability epoch replay/rollback (`PersistMode::Buffered`;
    /// a no-op phase under the synchronous strategies).
    BufferedReplay,
    /// Allocator recovery sweep (intent scan + free-list rebuild).
    AllocatorSweep,
    /// SMR limbo drain: voiding reservations and handing back retired
    /// blocks from before the crash.
    SmrDrain,
    /// Named-root registry seal: re-reading and validating the durable
    /// directory so roots can be reattached by name.
    RegistrySeal,
}

impl RecoveryPhase {
    /// Every phase, in execution order.
    pub const ALL: [RecoveryPhase; 4] = [
        RecoveryPhase::BufferedReplay,
        RecoveryPhase::AllocatorSweep,
        RecoveryPhase::SmrDrain,
        RecoveryPhase::RegistrySeal,
    ];

    /// Stable lower-case name, used in exports.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryPhase::BufferedReplay => "buffered_replay",
            RecoveryPhase::AllocatorSweep => "allocator_sweep",
            RecoveryPhase::SmrDrain => "smr_drain",
            RecoveryPhase::RegistrySeal => "registry_seal",
        }
    }
}

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A structure-operation span.
    Op(OpKind),
    /// A recovery-phase span.
    Recovery(RecoveryPhase),
    /// A sanitizer violation (instant event; the class name).
    Violation(&'static str),
}

impl EventKind {
    /// Stable event name, used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Op(k) => k.name(),
            EventKind::Recovery(p) => p.name(),
            EventKind::Violation(c) => c,
        }
    }

    /// Export category: `"op"`, `"recovery"` or `"violation"`.
    pub fn category(&self) -> &'static str {
        match self {
            EventKind::Op(_) => "op",
            EventKind::Recovery(_) => "recovery",
            EventKind::Violation(_) => "violation",
        }
    }
}

/// One recorded event: a span (op or recovery phase) or an instant
/// (violation), with wall- and simulated-time stamps and per-op persist
/// attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: EventKind,
    /// The recording thread's leased slot (the export `tid`); the
    /// overflow slot for threads beyond the rail count.
    pub slot: usize,
    /// The machine the op issued from, when known.
    pub machine: Option<MachineId>,
    /// Crash incarnation the event belongs to (0 until the first crash;
    /// the export `pid`). Crashed-incarnation events are sealed by the
    /// crash and never interleave with post-recovery spans.
    pub incarnation: u64,
    /// Wall-clock start, nanoseconds since the tracer was created.
    pub wall_start_ns: u64,
    /// Wall-clock duration in nanoseconds (0 for instants).
    pub wall_dur_ns: u64,
    /// Simulated-time start: the recording rail's cumulative simulated
    /// nanoseconds when the span opened (monotonic per slot).
    pub sim_start_ns: u64,
    /// Simulated nanoseconds charged to this thread during the span.
    pub sim_dur_ns: u64,
    /// Synchronous flushes (`LFlush` + `RFlush`) issued by this thread
    /// during the span — the op's persist amplification.
    pub flushes: u64,
    /// Asynchronous flush requests issued during the span.
    pub aflushes: u64,
    /// Barriers issued during the span.
    pub barriers: u64,
    /// Persistence acknowledgements (strategy-level "this store is now
    /// durable" points) during the span.
    pub persist_acks: u64,
    /// Free-form payload (violation details).
    pub detail: Option<String>,
}

/// A mergeable fixed-bucket log2 latency histogram: bucket 0 holds
/// zero-duration samples, bucket `b ≥ 1` holds durations in
/// `[2^(b-1), 2^b)` nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; HIST_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Adds every bucket of `other` into `self` (merging per-thread
    /// histograms is exact: bucketing is deterministic per sample).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// The inclusive upper edge of bucket `b` in nanoseconds.
    fn bucket_upper(b: usize) -> u64 {
        if b == 0 {
            0
        } else if b >= HIST_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper edge of the bucket
    /// containing it — a ≤ 2× overestimate by construction, which is
    /// the usual trade of log2-bucketed telemetry. Returns 0 on an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_upper(b);
            }
        }
        u64::MAX
    }

    /// Median (see [`LatencyHistogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

/// Timing of one recovery phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTiming {
    /// Which phase.
    pub phase: RecoveryPhase,
    /// Wall-clock duration in nanoseconds.
    pub wall_ns: u64,
    /// Simulated nanoseconds accrued fabric-wide during the phase.
    pub sim_ns: u64,
}

/// One thread slot's recorder: a bounded event ring plus per-op
/// histograms, on its own cache line. The mutex is uncontended on the
/// hot path (only the owning thread records; exporters and crash
/// sealing lock from outside, the latter with the world stopped).
#[repr(align(128))]
#[derive(Debug)]
struct SlotRecorder {
    ring: Mutex<Ring>,
    /// Persist-ack counter sampled by spans. The overflow slot is
    /// multi-writer and uses an atomic RMW; exclusive slots use plain
    /// load + store like the stats rails.
    acks: AtomicU64,
    shared: bool,
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<TraceEvent>,
    cap: usize,
    recorded: u64,
    dropped: u64,
    hist: [LatencyHistogram; OP_KINDS],
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            events: VecDeque::new(),
            cap: cap.max(1),
            recorded: 0,
            dropped: 0,
            hist: [LatencyHistogram::new(); OP_KINDS],
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() >= self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
        self.recorded += 1;
    }
}

/// The runtime tracer. Install one per fabric
/// ([`SimFabric::install_tracer`](crate::backend::SimFabric::install_tracer));
/// the cluster layer does this for you
/// ([`ClusterBuilder::with_tracing`](crate::api::ClusterBuilder::with_tracing)
/// or `CXL0_TRACE`).
#[derive(Debug)]
pub struct Tracer {
    cfg: TraceConfig,
    epoch: Instant,
    /// `slots[RAIL_SLOTS]` is the shared overflow recorder.
    slots: Box<[SlotRecorder]>,
    incarnation: AtomicU64,
    /// Events sealed by crashes, oldest first.
    retired: Mutex<Vec<TraceEvent>>,
    retired_dropped: AtomicU64,
    recovery: Mutex<Vec<PhaseTiming>>,
}

impl Tracer {
    /// Creates a tracer with `cfg`.
    pub fn new(cfg: TraceConfig) -> Self {
        let cap = cfg.ring_capacity;
        Tracer {
            cfg,
            epoch: Instant::now(),
            slots: (0..=RAIL_SLOTS)
                .map(|i| SlotRecorder {
                    ring: Mutex::new(Ring::new(cap)),
                    acks: AtomicU64::new(0),
                    shared: i == RAIL_SLOTS,
                })
                .collect(),
            incarnation: AtomicU64::new(0),
            retired: Mutex::new(Vec::new()),
            retired_dropped: AtomicU64::new(0),
            recovery: Mutex::new(Vec::new()),
        }
    }

    /// The configuration this tracer was created with.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn slot_index() -> usize {
        thread_slot_index().min(RAIL_SLOTS)
    }

    /// Opens an op span on the calling thread. Timing and persist
    /// attribution are sampled from the thread's stats rail; threads on
    /// the shared overflow rail get attribution polluted by their rail
    /// mates (exactly the stats rails' accuracy trade).
    pub(crate) fn span<'a>(
        &'a self,
        kind: OpKind,
        stats: &'a Stats,
        machine: Option<MachineId>,
    ) -> SpanGuard<'a> {
        let slot = Self::slot_index();
        SpanGuard {
            tracer: self,
            stats,
            kind,
            slot,
            machine,
            wall0: self.now_ns(),
            probe0: stats.rail_probe(),
            acks0: self.slots[slot].acks.load(Ordering::Relaxed),
        }
    }

    /// Opens a recovery-phase span (fabric-wide simulated time).
    pub(crate) fn phase<'a>(
        &'a self,
        phase: RecoveryPhase,
        stats: &'a Stats,
        machine: Option<MachineId>,
    ) -> PhaseGuard<'a> {
        PhaseGuard {
            tracer: self,
            stats,
            phase,
            machine,
            wall0: self.now_ns(),
            sim0: stats.sim_nanos(),
        }
    }

    /// Starts a fresh recovery breakdown (called at the top of
    /// `Session::recover_roots`).
    pub(crate) fn begin_recovery(&self) {
        self.recovery.lock().clear();
    }

    /// The persistence strategy acknowledged a store as durable on the
    /// calling thread.
    pub(crate) fn on_persist_ack(&self) {
        let slot = Self::slot_index();
        let rec = &self.slots[slot];
        if rec.shared {
            rec.acks.fetch_add(1, Ordering::Relaxed);
        } else {
            let n = rec.acks.load(Ordering::Relaxed);
            rec.acks.store(n + 1, Ordering::Relaxed);
        }
    }

    /// Seals the current incarnation. Called from
    /// [`SimFabric::crash`](crate::backend::SimFabric::crash) with the
    /// world stopped: every live ring drains into the retired buffer so
    /// crashed-incarnation events never interleave with post-recovery
    /// spans. Histograms are cumulative and survive the crash. A span
    /// still open across the crash (its thread parked at the gate) is
    /// recorded under the next incarnation when it closes.
    pub(crate) fn on_crash(&self) {
        self.incarnation.fetch_add(1, Ordering::Relaxed);
        let mut retired = self.retired.lock();
        for rec in self.slots.iter() {
            let mut ring = rec.ring.lock();
            while let Some(ev) = ring.events.pop_front() {
                if retired.len() < RETIRED_CAP {
                    retired.push(ev);
                } else {
                    self.retired_dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Records a sanitizer violation as an instant event with
    /// provenance.
    pub(crate) fn violation(
        &self,
        class: &'static str,
        loc: Loc,
        who: Option<(MachineId, usize)>,
        detail: &str,
    ) {
        let slot = who
            .map(|(_, s)| s)
            .unwrap_or_else(Self::slot_index)
            .min(RAIL_SLOTS);
        let ev = TraceEvent {
            kind: EventKind::Violation(class),
            slot,
            machine: who.map(|(m, _)| m),
            incarnation: self.incarnation.load(Ordering::Relaxed),
            wall_start_ns: self.now_ns(),
            wall_dur_ns: 0,
            sim_start_ns: 0,
            sim_dur_ns: 0,
            flushes: 0,
            aflushes: 0,
            barriers: 0,
            persist_acks: 0,
            detail: Some(format!("{loc}: {detail}")),
        };
        self.slots[slot].ring.lock().push(ev);
    }

    /// The current crash incarnation (0 until the first crash).
    pub fn incarnation(&self) -> u64 {
        self.incarnation.load(Ordering::Relaxed)
    }

    /// Total events recorded (including ones since dropped by ring
    /// wraps or the retired-buffer cap).
    pub fn events_recorded(&self) -> u64 {
        self.slots.iter().map(|s| s.ring.lock().recorded).sum()
    }

    /// Events lost to ring wraps plus crash-sealed events beyond the
    /// retired-buffer cap.
    pub fn events_dropped(&self) -> u64 {
        let rings: u64 = self.slots.iter().map(|s| s.ring.lock().dropped).sum();
        rings + self.retired_dropped.load(Ordering::Relaxed)
    }

    /// The merged cross-thread latency histogram for `kind` (simulated
    /// nanoseconds; cumulative across crashes).
    pub fn histogram(&self, kind: OpKind) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for rec in self.slots.iter() {
            h.merge(&rec.ring.lock().hist[kind as usize]);
        }
        h
    }

    /// The merged histogram over *all* op kinds.
    pub fn merged_histogram(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for rec in self.slots.iter() {
            let ring = rec.ring.lock();
            for kh in ring.hist.iter() {
                h.merge(kh);
            }
        }
        h
    }

    /// The most recent recovery breakdown (empty if `recover_roots` has
    /// not run since the tracer was installed).
    pub fn recovery_breakdown(&self) -> Vec<PhaseTiming> {
        self.recovery.lock().clone()
    }

    /// Every event currently held (crash-sealed first, then live
    /// rings), sorted by incarnation then wall start.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut evs: Vec<TraceEvent> = self.retired.lock().clone();
        for rec in self.slots.iter() {
            evs.extend(rec.ring.lock().events.iter().cloned());
        }
        evs.sort_by_key(|e| (e.incarnation, e.wall_start_ns, e.slot));
        evs
    }

    /// Exports a Chrome trace-event JSON array (Perfetto /
    /// `chrome://tracing` loadable): `pid` = crash incarnation, `tid` =
    /// thread slot, spans as `"ph":"X"` with wall-µs timestamps,
    /// violations as instant events, simulated-time and persist
    /// attribution under `args`.
    pub fn export_chrome_json(&self) -> String {
        let evs = self.events();
        let mut out = String::with_capacity(evs.len() * 192 + 16);
        out.push('[');
        for (i, e) in evs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            chrome_event(&mut out, e);
        }
        out.push_str("\n]\n");
        out
    }

    /// Exports one self-describing JSON object per line.
    pub fn export_jsonl(&self) -> String {
        let evs = self.events();
        let mut out = String::with_capacity(evs.len() * 224);
        for e in &evs {
            jsonl_event(&mut out, e);
            out.push('\n');
        }
        out
    }

    /// Writes the trace to `path`, picking JSONL for a `.jsonl`
    /// extension and Chrome trace-event JSON otherwise.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_to(&self, path: &str) -> std::io::Result<()> {
        let body = if path.ends_with(".jsonl") {
            self.export_jsonl()
        } else {
            self.export_chrome_json()
        };
        std::fs::write(path, body)
    }
}

/// RAII guard for one op span; recording happens on drop. Opened
/// through the fabric's tracer seam (`NodeHandle::trace_span`), never
/// directly.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    stats: &'a Stats,
    kind: OpKind,
    slot: usize,
    machine: Option<MachineId>,
    wall0: u64,
    probe0: RailProbe,
    acks0: u64,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let wall1 = self.tracer.now_ns();
        let probe1 = self.stats.rail_probe();
        let acks1 = self.tracer.slots[self.slot].acks.load(Ordering::Relaxed);
        let ev = TraceEvent {
            kind: EventKind::Op(self.kind),
            slot: self.slot,
            machine: self.machine,
            incarnation: self.tracer.incarnation.load(Ordering::Relaxed),
            wall_start_ns: self.wall0,
            wall_dur_ns: wall1.saturating_sub(self.wall0),
            sim_start_ns: self.probe0.sim_ns,
            sim_dur_ns: probe1.sim_ns.saturating_sub(self.probe0.sim_ns),
            flushes: probe1.flushes.saturating_sub(self.probe0.flushes),
            aflushes: probe1.aflushes.saturating_sub(self.probe0.aflushes),
            barriers: probe1.barriers.saturating_sub(self.probe0.barriers),
            persist_acks: acks1.saturating_sub(self.acks0),
            detail: None,
        };
        let mut ring = self.tracer.slots[self.slot].ring.lock();
        ring.hist[self.kind as usize].record(ev.sim_dur_ns);
        ring.push(ev);
    }
}

/// RAII guard for one recovery phase; records a [`PhaseTiming`] and a
/// trace event on drop.
#[derive(Debug)]
pub struct PhaseGuard<'a> {
    tracer: &'a Tracer,
    stats: &'a Stats,
    phase: RecoveryPhase,
    machine: Option<MachineId>,
    wall0: u64,
    sim0: u64,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        let wall1 = self.tracer.now_ns();
        let sim1 = self.stats.sim_nanos();
        let timing = PhaseTiming {
            phase: self.phase,
            wall_ns: wall1.saturating_sub(self.wall0),
            sim_ns: sim1.saturating_sub(self.sim0),
        };
        self.tracer.recovery.lock().push(timing);
        let slot = Tracer::slot_index();
        let ev = TraceEvent {
            kind: EventKind::Recovery(self.phase),
            slot,
            machine: self.machine,
            incarnation: self.tracer.incarnation.load(Ordering::Relaxed),
            wall_start_ns: self.wall0,
            wall_dur_ns: timing.wall_ns,
            sim_start_ns: self.sim0,
            sim_dur_ns: timing.sim_ns,
            flushes: 0,
            aflushes: 0,
            barriers: 0,
            persist_acks: 0,
            detail: None,
        };
        self.tracer.slots[slot].ring.lock().push(ev);
    }
}

/// Appends `ns` as a microsecond decimal (`"12.345"`) — the Chrome
/// trace format's `ts`/`dur` unit.
fn push_micros(out: &mut String, ns: u64) {
    use std::fmt::Write;
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

/// Appends `s` JSON-escaped (quotes, backslashes, control characters).
fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn chrome_event(out: &mut String, e: &TraceEvent) {
    use std::fmt::Write;
    let instant = matches!(e.kind, EventKind::Violation(_));
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":",
        e.kind.name(),
        e.kind.category(),
        if instant { "i" } else { "X" },
    );
    push_micros(out, e.wall_start_ns);
    if instant {
        out.push_str(",\"s\":\"t\"");
    } else {
        out.push_str(",\"dur\":");
        push_micros(out, e.wall_dur_ns);
    }
    let _ = write!(out, ",\"pid\":{},\"tid\":{}", e.incarnation, e.slot);
    let _ = write!(
        out,
        ",\"args\":{{\"sim_start_ns\":{},\"sim_dur_ns\":{},\"flushes\":{},\"aflushes\":{},\"barriers\":{},\"persist_acks\":{}",
        e.sim_start_ns, e.sim_dur_ns, e.flushes, e.aflushes, e.barriers, e.persist_acks,
    );
    if let Some(m) = e.machine {
        let _ = write!(out, ",\"machine\":{}", m.index());
    }
    if let Some(d) = &e.detail {
        out.push_str(",\"detail\":\"");
        push_escaped(out, d);
        out.push('"');
    }
    out.push_str("}}");
}

fn jsonl_event(out: &mut String, e: &TraceEvent) {
    use std::fmt::Write;
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"slot\":{},\"incarnation\":{},\
         \"wall_start_ns\":{},\"wall_dur_ns\":{},\"sim_start_ns\":{},\"sim_dur_ns\":{},\
         \"flushes\":{},\"aflushes\":{},\"barriers\":{},\"persist_acks\":{}",
        e.kind.name(),
        e.kind.category(),
        e.slot,
        e.incarnation,
        e.wall_start_ns,
        e.wall_dur_ns,
        e.sim_start_ns,
        e.sim_dur_ns,
        e.flushes,
        e.aflushes,
        e.barriers,
        e.persist_acks,
    );
    if let Some(m) = e.machine {
        let _ = write!(out, ",\"machine\":{}", m.index());
    }
    if let Some(d) = &e.detail {
        out.push_str(",\"detail\":\"");
        push_escaped(out, d);
        out.push('"');
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        h.record(0);
        assert_eq!(h.p50(), 0);
        let mut h = LatencyHistogram::new();
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        // Nine samples of 1 (bucket 1, upper edge 1), one of 1000
        // (bucket 10, upper edge 1023).
        assert_eq!(h.p50(), 1);
        assert_eq!(h.quantile(0.90), 1);
        assert_eq!(h.p99(), 1023);
        assert_eq!(h.quantile(1.0), 1023);
    }

    #[test]
    fn histogram_merge_is_bucketwise_sum() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(5);
        b.record(5);
        b.record(77);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.buckets()[LatencyHistogram::bucket_of(5)], 2);
        assert_eq!(a.buckets()[LatencyHistogram::bucket_of(77)], 1);
    }

    #[test]
    fn bucket_edges_cover_u64() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.p50(), u64::MAX);
    }

    #[test]
    fn ring_wrap_counts_drops() {
        let mut ring = Ring::new(2);
        let ev = |i: u64| TraceEvent {
            kind: EventKind::Op(OpKind::Enqueue),
            slot: 0,
            machine: None,
            incarnation: 0,
            wall_start_ns: i,
            wall_dur_ns: 0,
            sim_start_ns: 0,
            sim_dur_ns: 0,
            flushes: 0,
            aflushes: 0,
            barriers: 0,
            persist_acks: 0,
            detail: None,
        };
        ring.push(ev(1));
        ring.push(ev(2));
        ring.push(ev(3));
        assert_eq!(ring.recorded, 3);
        assert_eq!(ring.dropped, 1);
        assert_eq!(ring.events.len(), 2);
        assert_eq!(ring.events.front().unwrap().wall_start_ns, 2);
    }

    #[test]
    fn escaping_is_json_safe() {
        let mut s = String::new();
        push_escaped(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn exports_are_wellformed_on_empty_tracer() {
        let tr = Tracer::new(TraceConfig::default());
        let chrome = tr.export_chrome_json();
        assert!(chrome.starts_with('['));
        assert!(chrome.trim_end().ends_with(']'));
        assert_eq!(tr.export_jsonl(), "");
    }
}
