//! `SimFabric`: an executable, thread-safe implementation of the CXL0
//! semantics, suitable for running real concurrent workloads with crash
//! injection.
//!
//! ## Correspondence with the abstract model
//!
//! The global cache invariant of §3.3 makes the abstract state
//! *per-location*: for each location there is at most one cached value,
//! held by a set of machines, plus the owner's memory value. `SimFabric`
//! therefore shards the state into one lock per location holding
//! `(holders bitmask, cached value, memory value)`; every CXL0 rule except
//! `GPF` and crash touches exactly one location and is applied atomically
//! under that lock, which makes each operation a linearizable application
//! of one (or, for flushes, a `τ*`-prefixed) transition of the model. The
//! integration test `tests/backend_vs_model.rs` checks this refinement
//! mechanically against `cxl0-model`.
//!
//! *Blocking* primitives (`LFlush`, `RFlush`, `GPF`) are implemented by
//! **forcing** the propagation steps their preconditions wait for — the
//! resulting state is exactly the one the blocking rule unblocks in, so
//! the reachable states are unchanged.
//!
//! ## Crashes
//!
//! `crash(m)` stops the world (write-locks every machine's operation
//! lock), wipes machine `m`'s cache entries and (if volatile) its memory,
//! then marks `m` crashed. Threads "running on" `m` observe [`Crashed`]
//! from their next operation and must stop; `recover(m)` readmits the
//! machine with fresh threads. Stopping the world makes the crash a
//! single atomic transition, as in the model.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use cxl0_model::{Loc, MachineId, MemoryKind, ModelVariant, Primitive, StoreKind, SystemConfig};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cost::CostModel;
use crate::error::{Crashed, OpResult};

/// Per-location sharded state: the model's `(C, M)` restricted to one
/// location, exploiting the global cache invariant.
#[derive(Debug, Default)]
struct LocState {
    /// Bitmask of machines whose cache holds the (unique) cached value.
    holders: u64,
    /// The cached value; meaningful iff `holders != 0`.
    cache_val: u64,
    /// The owner's memory value.
    mem_val: u64,
}

/// Operation counters, per primitive class.
#[derive(Debug, Default)]
pub struct Stats {
    /// Loads issued.
    pub loads: AtomicU64,
    /// `LStore`s issued.
    pub lstores: AtomicU64,
    /// `RStore`s issued.
    pub rstores: AtomicU64,
    /// `MStore`s issued.
    pub mstores: AtomicU64,
    /// `LFlush`es issued.
    pub lflushes: AtomicU64,
    /// `RFlush`es issued.
    pub rflushes: AtomicU64,
    /// RMWs issued (all strengths, successful or failed).
    pub rmws: AtomicU64,
    /// Asynchronous flush requests issued (`CXL0_AF` extension).
    pub aflushes: AtomicU64,
    /// Barriers issued (`CXL0_AF` extension).
    pub barriers: AtomicU64,
    /// Simulated nanoseconds accumulated under the [`CostModel`].
    pub sim_ns: AtomicU64,
}

impl Stats {
    /// Total number of primitive operations recorded.
    pub fn total_ops(&self) -> u64 {
        self.loads.load(Ordering::Relaxed)
            + self.lstores.load(Ordering::Relaxed)
            + self.rstores.load(Ordering::Relaxed)
            + self.mstores.load(Ordering::Relaxed)
            + self.lflushes.load(Ordering::Relaxed)
            + self.rflushes.load(Ordering::Relaxed)
            + self.rmws.load(Ordering::Relaxed)
    }

    /// Simulated time accumulated, in nanoseconds.
    pub fn sim_nanos(&self) -> u64 {
        self.sim_ns.load(Ordering::Relaxed)
    }

    /// A plain-data snapshot of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            loads: self.loads.load(Ordering::Relaxed),
            lstores: self.lstores.load(Ordering::Relaxed),
            rstores: self.rstores.load(Ordering::Relaxed),
            mstores: self.mstores.load(Ordering::Relaxed),
            lflushes: self.lflushes.load(Ordering::Relaxed),
            rflushes: self.rflushes.load(Ordering::Relaxed),
            rmws: self.rmws.load(Ordering::Relaxed),
            aflushes: self.aflushes.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
            sim_ns: self.sim_ns.load(Ordering::Relaxed),
        }
    }
}

/// Copyable snapshot of [`Stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Loads issued.
    pub loads: u64,
    /// `LStore`s issued.
    pub lstores: u64,
    /// `RStore`s issued.
    pub rstores: u64,
    /// `MStore`s issued.
    pub mstores: u64,
    /// `LFlush`es issued.
    pub lflushes: u64,
    /// `RFlush`es issued.
    pub rflushes: u64,
    /// RMWs issued.
    pub rmws: u64,
    /// Asynchronous flush requests issued.
    pub aflushes: u64,
    /// Barriers issued.
    pub barriers: u64,
    /// Simulated nanoseconds.
    pub sim_ns: u64,
}

impl StatsSnapshot {
    /// Total primitives.
    pub fn total_ops(&self) -> u64 {
        self.loads
            + self.lstores
            + self.rstores
            + self.mstores
            + self.lflushes
            + self.rflushes
            + self.rmws
            + self.aflushes
            + self.barriers
    }

    /// Flushes of either kind (synchronous only; see
    /// [`StatsSnapshot::aflushes`] for asynchronous requests).
    pub fn flushes(&self) -> u64 {
        self.lflushes + self.rflushes
    }

    /// Component-wise difference (`self - earlier`).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            loads: self.loads - earlier.loads,
            lstores: self.lstores - earlier.lstores,
            rstores: self.rstores - earlier.rstores,
            mstores: self.mstores - earlier.mstores,
            lflushes: self.lflushes - earlier.lflushes,
            rflushes: self.rflushes - earlier.rflushes,
            rmws: self.rmws - earlier.rmws,
            aflushes: self.aflushes - earlier.aflushes,
            barriers: self.barriers - earlier.barriers,
            sim_ns: self.sim_ns - earlier.sim_ns,
        }
    }
}

/// The concurrent CXL0 shared-memory fabric.
///
/// # Examples
///
/// ```
/// use cxl0_runtime::SimFabric;
/// use cxl0_model::{SystemConfig, MachineId, Loc};
///
/// let fabric = SimFabric::new(SystemConfig::symmetric_nvm(2, 16));
/// let node = fabric.node(MachineId(0));
/// let x = Loc::new(MachineId(1), 3);
/// node.lstore(x, 7)?;
/// node.rflush(x)?;          // persist to machine 1's memory
/// assert_eq!(node.load(x)?, 7);
/// fabric.crash(MachineId(1));
/// fabric.recover(MachineId(1));
/// assert_eq!(node.load(x)?, 7); // survived: NVM + RFlush
/// # Ok::<(), cxl0_runtime::Crashed>(())
/// ```
#[derive(Debug)]
pub struct SimFabric {
    cfg: SystemConfig,
    variant: ModelVariant,
    /// `locs[m][a]` guards the state of `Loc::new(m, a)`.
    locs: Vec<Vec<Mutex<LocState>>>,
    /// Per-machine operation locks: ops take `read`, crash takes `write`.
    op_locks: Vec<RwLock<()>>,
    crashed: Vec<AtomicBool>,
    /// Per-machine persistency buffers of pending `AFlush` requests
    /// (`CXL0_AF` extension; cleared by a crash of the machine).
    pending: Vec<Mutex<std::collections::BTreeSet<Loc>>>,
    stats: Stats,
    cost: CostModel,
}

impl SimFabric {
    /// Creates a fabric over `cfg` with the base variant and the Figure-5
    /// cost model.
    pub fn new(cfg: SystemConfig) -> Arc<Self> {
        Self::with_options(cfg, ModelVariant::Base, CostModel::figure5())
    }

    /// Creates a fabric with an explicit variant and cost model.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` has more than 64 machines (the holder bitmask).
    pub fn with_options(cfg: SystemConfig, variant: ModelVariant, cost: CostModel) -> Arc<Self> {
        assert!(cfg.num_machines() <= 64, "at most 64 machines supported");
        let locs = cfg
            .machines()
            .map(|m| {
                (0..cfg.machine(m).locations)
                    .map(|_| Mutex::new(LocState::default()))
                    .collect()
            })
            .collect();
        Arc::new(SimFabric {
            op_locks: (0..cfg.num_machines()).map(|_| RwLock::new(())).collect(),
            crashed: (0..cfg.num_machines())
                .map(|_| AtomicBool::new(false))
                .collect(),
            pending: (0..cfg.num_machines())
                .map(|_| Mutex::new(std::collections::BTreeSet::new()))
                .collect(),
            cfg,
            variant,
            locs,
            stats: Stats::default(),
            cost,
        })
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The model variant in force (`Base`, `Psn`, or `Lwb`).
    pub fn variant(&self) -> ModelVariant {
        self.variant
    }

    /// Operation counters and simulated time.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// A handle for threads running on machine `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn node(self: &Arc<Self>, m: MachineId) -> NodeHandle {
        assert!(m.index() < self.cfg.num_machines(), "unknown machine {m}");
        NodeHandle {
            fabric: Arc::clone(self),
            machine: m,
        }
    }

    /// True if machine `m` is currently crashed.
    pub fn is_crashed(&self, m: MachineId) -> bool {
        self.crashed[m.index()].load(Ordering::Acquire)
    }

    fn loc_state(&self, loc: Loc) -> &Mutex<LocState> {
        &self.locs[loc.owner.index()][loc.addr.index()]
    }

    fn charge(&self, p: Primitive, by: MachineId, loc: Loc) {
        let local = by == loc.owner;
        let ns = self.cost.cost(p, local);
        if ns > 0 {
            self.stats.sim_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Crashes machine `m`: stop-the-world, wipe `m`'s cache entries
    /// everywhere, reset `m`'s memory if volatile, apply PSN poisoning if
    /// that variant is in force. Machines in `m`'s failure domain crash
    /// together. Idempotent.
    pub fn crash(&self, m: MachineId) {
        // Stop the world so the crash is one atomic transition.
        let _guards: Vec<_> = self.op_locks.iter().map(|l| l.write()).collect();
        for d in self.cfg.failure_domain(m) {
            self.crashed[d.index()].store(true, Ordering::Release);
            // Un-retired asynchronous flush requests die with the machine.
            self.pending[d.index()].lock().clear();
            let bit = 1u64 << d.index();
            for owner in self.cfg.machines() {
                for a in 0..self.cfg.machine(owner).locations {
                    let mut st = self.locs[owner.index()][a as usize].lock();
                    // The crashed machine's cache entries vanish.
                    st.holders &= !bit;
                    if owner == d {
                        if self.cfg.machine(d).memory == MemoryKind::Volatile {
                            st.mem_val = 0;
                        }
                        if self.variant == ModelVariant::Psn {
                            // Poison: every cache entry for a line owned by
                            // the crashed machine is invalidated.
                            st.holders = 0;
                        }
                    }
                }
            }
        }
    }

    /// Recovers machine `m` (and its failure domain): new threads may run
    /// on it again. Its cache is empty; memory contents are whatever the
    /// crash left (NVM kept, volatile zeroed).
    pub fn recover(&self, m: MachineId) {
        for d in self.cfg.failure_domain(m) {
            self.crashed[d.index()].store(false, Ordering::Release);
        }
    }

    /// Performs `n` random propagation (`τ`) steps, as a cache-eviction
    /// daemon would. Useful in tests to exercise propagation
    /// nondeterminism deterministically from a seed.
    pub fn propagate_randomly(&self, seed: u64, n: usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let locs: Vec<Loc> = self.cfg.all_locations().collect();
        if locs.is_empty() {
            return;
        }
        for _ in 0..n {
            let loc = locs[rng.gen_range(0..locs.len())];
            let mut st = self.loc_state(loc).lock();
            if st.holders == 0 {
                continue;
            }
            let owner_bit = 1u64 << loc.owner.index();
            if st.holders & owner_bit != 0 && rng.gen_bool(0.5) {
                // Propagate-C-M: owner's cache → owner's memory.
                st.mem_val = st.cache_val;
                st.holders = 0;
            } else {
                // Propagate-C-C: a random non-owner holder → owner.
                let others = st.holders & !owner_bit;
                if others != 0 {
                    let idx = pick_bit(others, &mut rng);
                    st.holders &= !(1u64 << idx);
                    st.holders |= owner_bit;
                }
            }
        }
    }

    /// Drains every cache to memory (the state change a successful `GPF`
    /// waits for). Exposed for orderly-shutdown scenarios.
    pub fn drain_all(&self) {
        for loc in self.cfg.all_locations() {
            let mut st = self.loc_state(loc).lock();
            if st.holders != 0 {
                st.mem_val = st.cache_val;
                st.holders = 0;
            }
        }
    }

    /// Reads the owner's *memory* value of `loc` directly — the
    /// "post-crash recovery inspection" view, bypassing caches. Intended
    /// for tests and recovery assertions, not for algorithm code.
    pub fn peek_memory(&self, loc: Loc) -> u64 {
        self.loc_state(loc).lock().mem_val
    }

    /// True if some cache currently holds `loc`.
    pub fn is_cached(&self, loc: Loc) -> bool {
        self.loc_state(loc).lock().holders != 0
    }

    /// Number of un-retired `AFlush` requests in machine `m`'s persistency
    /// buffer (`CXL0_AF` extension).
    pub fn pending_flushes(&self, m: MachineId) -> usize {
        self.pending[m.index()].lock().len()
    }
}

fn pick_bit(mask: u64, rng: &mut StdRng) -> u32 {
    debug_assert!(mask != 0);
    let count = mask.count_ones();
    let k = rng.gen_range(0..count);
    let mut m = mask;
    for _ in 0..k {
        m &= m - 1;
    }
    m.trailing_zeros()
}

/// Anything that can issue operations as a machine: a raw [`NodeHandle`]
/// or a higher-level context wrapping one (the `api` module's `Session`).
///
/// The durable data structures accept `&impl AsNode`, so the same
/// structure code works against both layers of the crate.
pub trait AsNode {
    /// The underlying per-machine handle.
    fn as_node(&self) -> &NodeHandle;
}

impl AsNode for NodeHandle {
    fn as_node(&self) -> &NodeHandle {
        self
    }
}

impl<T: AsNode + ?Sized> AsNode for &T {
    fn as_node(&self) -> &NodeHandle {
        (**self).as_node()
    }
}

/// A per-machine handle: the operations a thread running on that machine
/// may issue. Cloning is cheap (an `Arc` bump).
#[derive(Debug, Clone)]
pub struct NodeHandle {
    fabric: Arc<SimFabric>,
    machine: MachineId,
}

impl NodeHandle {
    /// The machine this handle issues from.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> &Arc<SimFabric> {
        &self.fabric
    }

    fn enter(&self) -> OpResult<parking_lot::RwLockReadGuard<'_, ()>> {
        let guard = self.fabric.op_locks[self.machine.index()].read();
        if self.fabric.crashed[self.machine.index()].load(Ordering::Acquire) {
            return Err(Crashed {
                machine: self.machine,
            });
        }
        Ok(guard)
    }

    /// `Load`: returns the value visible at `loc`.
    ///
    /// # Errors
    ///
    /// Fails if this machine has crashed.
    pub fn load(&self, loc: Loc) -> OpResult<u64> {
        let _g = self.enter()?;
        self.fabric.stats.loads.fetch_add(1, Ordering::Relaxed);
        self.fabric.charge(Primitive::Load, self.machine, loc);
        let bit = 1u64 << self.machine.index();
        let mut st = self.fabric.loc_state(loc).lock();
        match self.fabric.variant {
            ModelVariant::Base | ModelVariant::Psn => {
                if st.holders != 0 {
                    // LOAD-from-C: copy into the issuer's cache.
                    st.holders |= bit;
                    Ok(st.cache_val)
                } else {
                    // LOAD-from-M (no copy).
                    Ok(st.mem_val)
                }
            }
            ModelVariant::Lwb => {
                if st.holders & bit != 0 {
                    // Own-cache hit.
                    Ok(st.cache_val)
                } else {
                    if st.holders != 0 {
                        // Blocking until the line drains to memory ≡ force
                        // the drain, then read memory.
                        st.mem_val = st.cache_val;
                        st.holders = 0;
                    }
                    Ok(st.mem_val)
                }
            }
        }
    }

    /// `LStore`: store to this machine's cache.
    ///
    /// # Errors
    ///
    /// Fails if this machine has crashed.
    pub fn lstore(&self, loc: Loc, v: u64) -> OpResult<()> {
        let _g = self.enter()?;
        self.fabric.stats.lstores.fetch_add(1, Ordering::Relaxed);
        self.fabric.charge(Primitive::LStore, self.machine, loc);
        let mut st = self.fabric.loc_state(loc).lock();
        st.cache_val = v;
        st.holders = 1u64 << self.machine.index();
        Ok(())
    }

    /// `RStore`: store to the owner's cache.
    ///
    /// # Errors
    ///
    /// Fails if this machine has crashed.
    pub fn rstore(&self, loc: Loc, v: u64) -> OpResult<()> {
        let _g = self.enter()?;
        self.fabric.stats.rstores.fetch_add(1, Ordering::Relaxed);
        self.fabric.charge(Primitive::RStore, self.machine, loc);
        let mut st = self.fabric.loc_state(loc).lock();
        st.cache_val = v;
        st.holders = 1u64 << loc.owner.index();
        Ok(())
    }

    /// `MStore`: store directly to the owner's memory.
    ///
    /// # Errors
    ///
    /// Fails if this machine has crashed.
    pub fn mstore(&self, loc: Loc, v: u64) -> OpResult<()> {
        let _g = self.enter()?;
        self.fabric.stats.mstores.fetch_add(1, Ordering::Relaxed);
        self.fabric.charge(Primitive::MStore, self.machine, loc);
        let mut st = self.fabric.loc_state(loc).lock();
        st.mem_val = v;
        st.holders = 0;
        Ok(())
    }

    /// Store with a runtime-selected strength.
    ///
    /// # Errors
    ///
    /// Fails if this machine has crashed.
    pub fn store(&self, kind: StoreKind, loc: Loc, v: u64) -> OpResult<()> {
        match kind {
            StoreKind::Local => self.lstore(loc, v),
            StoreKind::Remote => self.rstore(loc, v),
            StoreKind::Memory => self.mstore(loc, v),
        }
    }

    /// `LFlush`: drain this machine's cached copy one level (to the
    /// owner's cache, or to memory when this machine owns the line). The
    /// blocking precondition is satisfied by forcing the propagation.
    ///
    /// # Errors
    ///
    /// Fails if this machine has crashed.
    pub fn lflush(&self, loc: Loc) -> OpResult<()> {
        let _g = self.enter()?;
        self.fabric.stats.lflushes.fetch_add(1, Ordering::Relaxed);
        self.fabric.charge(Primitive::LFlush, self.machine, loc);
        let bit = 1u64 << self.machine.index();
        let owner_bit = 1u64 << loc.owner.index();
        let mut st = self.fabric.loc_state(loc).lock();
        if st.holders & bit != 0 {
            if self.machine == loc.owner {
                // Propagate-C-M.
                st.mem_val = st.cache_val;
                st.holders = 0;
            } else {
                // Propagate-C-C toward the owner.
                st.holders = (st.holders & !bit) | owner_bit;
            }
        }
        Ok(())
    }

    /// `RFlush`: force the line all the way to the owner's memory.
    ///
    /// # Errors
    ///
    /// Fails if this machine has crashed.
    pub fn rflush(&self, loc: Loc) -> OpResult<()> {
        let _g = self.enter()?;
        self.fabric.stats.rflushes.fetch_add(1, Ordering::Relaxed);
        self.fabric.charge(Primitive::RFlush, self.machine, loc);
        let mut st = self.fabric.loc_state(loc).lock();
        if st.holders != 0 {
            st.mem_val = st.cache_val;
            st.holders = 0;
        }
        Ok(())
    }

    /// Flush with a runtime-selected strength.
    ///
    /// # Errors
    ///
    /// Fails if this machine has crashed.
    pub fn flush(&self, kind: cxl0_model::FlushKind, loc: Loc) -> OpResult<()> {
        match kind {
            cxl0_model::FlushKind::Local => self.lflush(loc),
            cxl0_model::FlushKind::Remote => self.rflush(loc),
        }
    }

    /// `GPF`: drain every cache in the system to memory.
    ///
    /// # Errors
    ///
    /// Fails if this machine has crashed.
    pub fn gpf(&self) -> OpResult<()> {
        let _g = self.enter()?;
        self.fabric.drain_all();
        Ok(())
    }

    /// `AFlush` (`CXL0_AF` extension): enqueue an asynchronous flush
    /// request for `loc` into this machine's persistency buffer and return
    /// immediately. The write-back is only guaranteed to have happened
    /// after a subsequent [`NodeHandle::barrier`]; an un-barriered request
    /// is lost if this machine crashes.
    ///
    /// # Errors
    ///
    /// Fails if this machine has crashed.
    pub fn aflush(&self, loc: Loc) -> OpResult<()> {
        let _g = self.enter()?;
        self.fabric.stats.aflushes.fetch_add(1, Ordering::Relaxed);
        let ns = self.fabric.cost.aflush_issue;
        if ns > 0 {
            self.fabric.stats.sim_ns.fetch_add(ns, Ordering::Relaxed);
        }
        self.fabric.pending[self.machine.index()].lock().insert(loc);
        Ok(())
    }

    /// `Barrier` (`CXL0_AF` extension, the `SFENCE` analogue): retire every
    /// pending `AFlush` request of this machine, forcing each line to the
    /// owner's memory. Pending write-backs overlap on the link, so `n`
    /// lines cost one full `RFlush` plus `n-1` pipelined increments
    /// (see [`CostModel::barrier_cost`]) instead of `n` round trips.
    ///
    /// Returns the number of lines retired.
    ///
    /// # Errors
    ///
    /// Fails if this machine has crashed.
    pub fn barrier(&self) -> OpResult<usize> {
        let _g = self.enter()?;
        self.fabric.stats.barriers.fetch_add(1, Ordering::Relaxed);
        let drained = std::mem::take(&mut *self.fabric.pending[self.machine.index()].lock());
        let mut line_costs = Vec::with_capacity(drained.len());
        for &loc in &drained {
            let mut st = self.fabric.loc_state(loc).lock();
            if st.holders != 0 {
                st.mem_val = st.cache_val;
                st.holders = 0;
            }
            let local = self.machine == loc.owner;
            line_costs.push(self.fabric.cost.cost(Primitive::RFlush, local));
        }
        let ns = self.fabric.cost.barrier_cost(&line_costs);
        if ns > 0 {
            self.fabric.stats.sim_ns.fetch_add(ns, Ordering::Relaxed);
        }
        Ok(drained.len())
    }

    /// Compare-and-swap with the given store strength: atomically loads
    /// the visible value and, if it equals `old`, installs `new`.
    ///
    /// Returns `Ok(old)` on success and `Err(actual)` on mismatch (a
    /// failed CAS is equivalent to a plain load).
    ///
    /// # Errors
    ///
    /// Fails with [`Crashed`] if this machine has crashed.
    pub fn cas(&self, kind: StoreKind, loc: Loc, old: u64, new: u64) -> OpResult<Result<u64, u64>> {
        let _g = self.enter()?;
        self.fabric.stats.rmws.fetch_add(1, Ordering::Relaxed);
        let prim = match kind {
            StoreKind::Local => Primitive::LRmw,
            StoreKind::Remote => Primitive::RRmw,
            StoreKind::Memory => Primitive::MRmw,
        };
        self.fabric.charge(prim, self.machine, loc);
        let mut st = self.fabric.loc_state(loc).lock();
        let visible = if st.holders != 0 {
            st.cache_val
        } else {
            st.mem_val
        };
        if visible != old {
            return Ok(Err(visible));
        }
        match kind {
            StoreKind::Local => {
                st.cache_val = new;
                st.holders = 1u64 << self.machine.index();
            }
            StoreKind::Remote => {
                st.cache_val = new;
                st.holders = 1u64 << loc.owner.index();
            }
            StoreKind::Memory => {
                st.mem_val = new;
                st.holders = 0;
            }
        }
        Ok(Ok(old))
    }

    /// Fetch-and-add with the given store strength; returns the previous
    /// value.
    ///
    /// # Errors
    ///
    /// Fails if this machine has crashed.
    pub fn faa(&self, kind: StoreKind, loc: Loc, delta: u64) -> OpResult<u64> {
        let _g = self.enter()?;
        self.fabric.stats.rmws.fetch_add(1, Ordering::Relaxed);
        let prim = match kind {
            StoreKind::Local => Primitive::LRmw,
            StoreKind::Remote => Primitive::RRmw,
            StoreKind::Memory => Primitive::MRmw,
        };
        self.fabric.charge(prim, self.machine, loc);
        let mut st = self.fabric.loc_state(loc).lock();
        let visible = if st.holders != 0 {
            st.cache_val
        } else {
            st.mem_val
        };
        let new = visible.wrapping_add(delta);
        match kind {
            StoreKind::Local => {
                st.cache_val = new;
                st.holders = 1u64 << self.machine.index();
            }
            StoreKind::Remote => {
                st.cache_val = new;
                st.holders = 1u64 << loc.owner.index();
            }
            StoreKind::Memory => {
                st.mem_val = new;
                st.holders = 0;
            }
        }
        Ok(visible)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M0: MachineId = MachineId(0);
    const M1: MachineId = MachineId(1);

    fn fabric2() -> Arc<SimFabric> {
        SimFabric::new(SystemConfig::symmetric_nvm(2, 4))
    }

    fn x(o: usize, a: u32) -> Loc {
        Loc::new(MachineId(o), a)
    }

    #[test]
    fn store_kinds_propagation_depth() {
        let f = fabric2();
        let n0 = f.node(M0);
        n0.lstore(x(1, 0), 1).unwrap();
        assert_eq!(f.peek_memory(x(1, 0)), 0); // still cached
        assert!(f.is_cached(x(1, 0)));
        n0.mstore(x(1, 1), 2).unwrap();
        assert_eq!(f.peek_memory(x(1, 1)), 2);
        assert!(!f.is_cached(x(1, 1)));
        n0.rstore(x(1, 2), 3).unwrap();
        assert_eq!(f.peek_memory(x(1, 2)), 0); // in owner's cache
        assert!(f.is_cached(x(1, 2)));
    }

    #[test]
    fn rflush_persists_lflush_moves_one_level() {
        let f = fabric2();
        let n0 = f.node(M0);
        n0.lstore(x(1, 0), 7).unwrap();
        n0.lflush(x(1, 0)).unwrap();
        // Value moved to owner's cache, not memory.
        assert_eq!(f.peek_memory(x(1, 0)), 0);
        assert!(f.is_cached(x(1, 0)));
        n0.rflush(x(1, 0)).unwrap();
        assert_eq!(f.peek_memory(x(1, 0)), 7);
        assert!(!f.is_cached(x(1, 0)));
    }

    #[test]
    fn owner_lflush_writes_memory() {
        let f = fabric2();
        let n1 = f.node(M1);
        n1.lstore(x(1, 0), 9).unwrap();
        n1.lflush(x(1, 0)).unwrap();
        assert_eq!(f.peek_memory(x(1, 0)), 9);
    }

    #[test]
    fn crash_wipes_cache_keeps_nvm() {
        let f = fabric2();
        let n0 = f.node(M0);
        n0.mstore(x(0, 0), 5).unwrap();
        n0.lstore(x(0, 0), 6).unwrap(); // newer value only in cache
        f.crash(M0);
        assert!(f.is_crashed(M0));
        assert!(n0.load(x(0, 0)).is_err());
        f.recover(M0);
        assert_eq!(n0.load(x(0, 0)).unwrap(), 5); // cache lost, NVM kept
    }

    #[test]
    fn crash_zeroes_volatile_memory() {
        let f = SimFabric::new(SystemConfig::symmetric_volatile(2, 1));
        let n0 = f.node(M0);
        n0.mstore(x(0, 0), 5).unwrap();
        f.crash(M0);
        f.recover(M0);
        assert_eq!(n0.load(x(0, 0)).unwrap(), 0);
    }

    #[test]
    fn remote_cached_copy_survives_owner_crash_base() {
        let f = fabric2();
        let n0 = f.node(M0);
        n0.lstore(x(1, 0), 3).unwrap();
        f.crash(M1);
        f.recover(M1);
        // Base variant: m0's cached copy survives and is visible.
        assert_eq!(n0.load(x(1, 0)).unwrap(), 3);
    }

    #[test]
    fn psn_crash_poisons_remote_copies() {
        let f = SimFabric::with_options(
            SystemConfig::symmetric_nvm(2, 1),
            ModelVariant::Psn,
            CostModel::free(),
        );
        let n0 = f.node(M0);
        n0.lstore(x(1, 0), 3).unwrap();
        f.crash(M1);
        f.recover(M1);
        // PSN: the copy was poisoned; memory value (0) is visible.
        assert_eq!(n0.load(x(1, 0)).unwrap(), 0);
    }

    #[test]
    fn lwb_load_forces_writeback() {
        let f = SimFabric::with_options(
            SystemConfig::symmetric_nvm(2, 1),
            ModelVariant::Lwb,
            CostModel::free(),
        );
        let n0 = f.node(M0);
        let n1 = f.node(M1);
        n0.lstore(x(1, 0), 4).unwrap();
        // m1's load drains the line to its memory first.
        assert_eq!(n1.load(x(1, 0)).unwrap(), 4);
        assert_eq!(f.peek_memory(x(1, 0)), 4);
    }

    #[test]
    fn cas_success_and_failure() {
        let f = fabric2();
        let n0 = f.node(M0);
        assert_eq!(n0.cas(StoreKind::Local, x(1, 0), 0, 10).unwrap(), Ok(0));
        assert_eq!(n0.cas(StoreKind::Local, x(1, 0), 0, 20).unwrap(), Err(10));
        assert_eq!(n0.load(x(1, 0)).unwrap(), 10);
    }

    #[test]
    fn faa_returns_previous() {
        let f = fabric2();
        let n0 = f.node(M0);
        assert_eq!(n0.faa(StoreKind::Memory, x(0, 0), 5).unwrap(), 0);
        assert_eq!(n0.faa(StoreKind::Memory, x(0, 0), 5).unwrap(), 5);
        assert_eq!(f.peek_memory(x(0, 0)), 10);
    }

    #[test]
    fn gpf_drains_everything() {
        let f = fabric2();
        let n0 = f.node(M0);
        n0.lstore(x(0, 0), 1).unwrap();
        n0.lstore(x(1, 0), 2).unwrap();
        n0.gpf().unwrap();
        assert_eq!(f.peek_memory(x(0, 0)), 1);
        assert_eq!(f.peek_memory(x(1, 0)), 2);
    }

    #[test]
    fn stats_count_operations_and_time() {
        let f = fabric2();
        let n0 = f.node(M0);
        n0.lstore(x(1, 0), 1).unwrap();
        n0.load(x(1, 0)).unwrap();
        n0.rflush(x(1, 0)).unwrap();
        let s = f.stats().snapshot();
        assert_eq!(s.lstores, 1);
        assert_eq!(s.loads, 1);
        assert_eq!(s.rflushes, 1);
        assert_eq!(s.total_ops(), 3);
        assert!(s.sim_ns > 0);
    }

    #[test]
    fn propagate_randomly_eventually_persists() {
        let f = fabric2();
        let n0 = f.node(M0);
        n0.lstore(x(1, 0), 8).unwrap();
        f.propagate_randomly(42, 200);
        assert_eq!(f.peek_memory(x(1, 0)), 8);
    }

    #[test]
    fn concurrent_faa_is_atomic() {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 1));
        let mut handles = Vec::new();
        for t in 0..4 {
            let node = f.node(MachineId(t % 2));
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    node.faa(StoreKind::Local, Loc::new(MachineId(0), 0), 1)
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let n = f.node(M0);
        assert_eq!(n.load(Loc::new(MachineId(0), 0)).unwrap(), 4000);
    }

    #[test]
    fn aflush_defers_persistence_until_barrier() {
        let f = fabric2();
        let n0 = f.node(M0);
        n0.lstore(x(1, 0), 7).unwrap();
        n0.aflush(x(1, 0)).unwrap();
        assert_eq!(f.pending_flushes(M0), 1);
        assert_eq!(f.peek_memory(x(1, 0)), 0); // nothing persisted yet
        assert_eq!(n0.barrier().unwrap(), 1);
        assert_eq!(f.pending_flushes(M0), 0);
        assert_eq!(f.peek_memory(x(1, 0)), 7);
        assert!(!f.is_cached(x(1, 0)));
    }

    #[test]
    fn barrier_with_empty_buffer_is_cheap_noop() {
        let f = fabric2();
        let n0 = f.node(M0);
        assert_eq!(n0.barrier().unwrap(), 0);
        let s = f.stats().snapshot();
        assert_eq!(s.barriers, 1);
        assert_eq!(s.aflushes, 0);
    }

    #[test]
    fn barrier_batches_multiple_lines_cheaper_than_sync_flushes() {
        let cfg = SystemConfig::symmetric_nvm(2, 8);
        let batched = SimFabric::new(cfg.clone());
        let n = batched.node(M0);
        for a in 0..4 {
            n.lstore(x(1, a), a as u64 + 1).unwrap();
            n.aflush(x(1, a)).unwrap();
        }
        n.barrier().unwrap();

        let synced = SimFabric::new(cfg);
        let m = synced.node(M0);
        for a in 0..4 {
            m.lstore(x(1, a), a as u64 + 1).unwrap();
            m.rflush(x(1, a)).unwrap();
        }
        for a in 0..4 {
            assert_eq!(batched.peek_memory(x(1, a)), a as u64 + 1);
            assert_eq!(synced.peek_memory(x(1, a)), a as u64 + 1);
        }
        assert!(
            batched.stats().sim_nanos() < synced.stats().sim_nanos(),
            "batched {} !< synced {}",
            batched.stats().sim_nanos(),
            synced.stats().sim_nanos()
        );
    }

    #[test]
    fn crash_discards_pending_aflushes() {
        let f = fabric2();
        let n0 = f.node(M0);
        n0.lstore(x(1, 0), 7).unwrap();
        n0.aflush(x(1, 0)).unwrap();
        f.crash(M0);
        f.recover(M0);
        assert_eq!(f.pending_flushes(M0), 0);
        // The post-crash barrier retires nothing; the store was never
        // persisted (it may still be visible from the owner's cache).
        assert_eq!(n0.barrier().unwrap(), 0);
        assert_eq!(f.peek_memory(x(1, 0)), 0);
    }

    #[test]
    fn duplicate_aflushes_to_one_line_retire_once() {
        let f = fabric2();
        let n0 = f.node(M0);
        n0.lstore(x(1, 0), 5).unwrap();
        n0.aflush(x(1, 0)).unwrap();
        n0.aflush(x(1, 0)).unwrap();
        assert_eq!(f.pending_flushes(M0), 1);
        assert_eq!(n0.barrier().unwrap(), 1);
    }

    #[test]
    fn crash_during_concurrent_ops_is_atomic() {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 8));
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let node = f.node(M1);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if node.lstore(Loc::new(M1, (i % 8) as u32), i).is_err() {
                        break; // machine crashed; thread dies
                    }
                    i += 1;
                }
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        f.crash(M1);
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert!(f.is_crashed(M1));
    }
}
