//! `SimFabric`: an executable, thread-safe implementation of the CXL0
//! semantics, suitable for running real concurrent workloads with crash
//! injection.
//!
//! ## Correspondence with the abstract model
//!
//! The global cache invariant of §3.3 makes the abstract state
//! *per-location*: for each location there is at most one cached value,
//! held by a set of machines, plus the owner's memory value. `SimFabric`
//! therefore shards the state into one cell per location holding
//! `(holders bitmask, cached value, memory value)`; every CXL0 rule except
//! `GPF` and crash touches exactly one location and is applied atomically
//! under that cell's writer lock, which makes each operation a
//! linearizable application of one (or, for flushes, a `τ*`-prefixed)
//! transition of the model. The integration test
//! `tests/backend_vs_model.rs` checks this refinement mechanically against
//! `cxl0-model`.
//!
//! *Blocking* primitives (`LFlush`, `RFlush`, `GPF`) are implemented by
//! **forcing** the propagation steps their preconditions wait for — the
//! resulting state is exactly the one the blocking rule unblocks in, so
//! the reachable states are unchanged.
//!
//! ## Concurrency: how the hot path scales
//!
//! The per-operation path deliberately touches no globally shared
//! mutable cache line:
//!
//! * **Location slab.** All location state lives in one contiguous slab
//!   of cache-line-aligned location cells with precomputed per-machine
//!   offsets (no nested `Vec` indirection). Each cell is a tiny
//!   sequence-locked record of atomics: mutating rules spin on the
//!   cell's sequence word (writer lock), while read-only rules
//!   (`Load`-from-M, a failed CAS, no-op flushes, `peek_memory`)
//!   validate an optimistic snapshot against the sequence word and
//!   issue **no** atomic read-modify-write at all.
//! * **Striped statistics.** Operation counters and simulated time are
//!   recorded on cache-line-padded per-thread *rails* ([`Stats`] owns
//!   one rail per leased thread slot, plus one shared overflow rail).
//!   A rail is written by exactly one live thread, so the common-path
//!   update is a plain load + store pair on a line no other thread
//!   touches; [`Stats::snapshot`] aggregates across rails.
//! * **Epoch-style crash gate.** Instead of a per-machine reader–writer
//!   lock taken on every operation, each rail carries an *active-op*
//!   counter: an operation publishes `active += 1` (sequentially
//!   consistent), checks the fabric's crash word (a halted flag plus a
//!   crashed-machine bitmask on one read-mostly line), and decrements on
//!   completion. [`SimFabric::crash`] flips the halted flag and spins
//!   until every rail drains — the Dekker-style publication order makes
//!   the crash a stop-the-world atomic transition without any
//!   per-operation lock.
//! * **Sharded persistency buffers.** Each machine's pending `AFlush`
//!   set is sharded by location, so asynchronous flushes from unrelated
//!   threads stop serializing on one mutex and `Barrier` drains shard by
//!   shard.
//! * **Opt-in observability.** The persistency sanitizer
//!   ([`crate::check`]) and the runtime tracer ([`crate::trace`]) hang
//!   off the fabric as `OnceLock`s; uninstalled, each seam is a single
//!   load and the hot path issues no extra atomic read-modify-write.
//!   The tracer's per-op attribution rides the same rails: a span
//!   samples its own thread's stripe on entry and exit.
//!
//! ## Crashes
//!
//! `crash(m)` stops the world (halts the epoch gate and waits for every
//! in-flight operation to drain), wipes machine `m`'s cache entries and
//! (if volatile) its memory, then marks `m` crashed and reopens the
//! gate. Threads "running on" `m` observe [`Crashed`] from their next
//! operation and must stop; `recover(m)` readmits the machine with fresh
//! threads. Stopping the world makes the crash a single atomic
//! transition, as in the model.

use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use cxl0_model::{Loc, MachineId, MemoryKind, ModelVariant, Primitive, StoreKind, SystemConfig};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cost::CostModel;
use crate::error::{Crashed, OpResult};

/// Number of exclusive per-thread rails; threads beyond this many alive
/// at once (or counters bumped from TLS teardown) share one overflow
/// rail that falls back to atomic read-modify-writes. Other per-thread
/// slot arrays (the SMR epoch slots, the combining fronts' announcement
/// boards) ride the same leases via [`thread_slot_index`].
pub(crate) const RAIL_SLOTS: usize = 256;

/// Operation classes tracked by [`Stats`], in counter order.
#[derive(Debug, Clone, Copy)]
enum OpClass {
    Loads = 0,
    LStores = 1,
    RStores = 2,
    MStores = 3,
    LFlushes = 4,
    RFlushes = 5,
    Rmws = 6,
    AFlushes = 7,
    Barriers = 8,
}

const OP_CLASSES: usize = 9;

/// Leased process-wide thread slots: a live thread holds a unique slot
/// id for its lifetime and returns it on exit, so slot ids stay bounded
/// by the *concurrent* thread count and exclusive rails stay exclusive.
static NEXT_TID: AtomicUsize = AtomicUsize::new(0);
static FREE_TIDS: std::sync::Mutex<Vec<usize>> = std::sync::Mutex::new(Vec::new());

struct TidLease(usize);

impl Drop for TidLease {
    fn drop(&mut self) {
        // From here on this thread must use the overflow rail: its slot
        // id is about to be handed to some other thread.
        let _ = RAIL_INDEX.try_with(|c| c.set(RAIL_SLOTS));
        if let Ok(mut free) = FREE_TIDS.lock() {
            free.push(self.0);
        }
    }
}

thread_local! {
    /// Hot-path cache of the rail index: const-initialized (no lazy-init
    /// branch or destructor on the access path). `usize::MAX` = not yet
    /// leased.
    static RAIL_INDEX: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    /// The slot lease backing [`RAIL_INDEX`]; touched once per thread.
    static TID: TidLease = TidLease(
        FREE_TIDS
            .lock()
            .ok()
            .and_then(|mut free| free.pop())
            .unwrap_or_else(|| NEXT_TID.fetch_add(1, Ordering::Relaxed)),
    );
}

#[cold]
fn lease_rail_index(cache: &std::cell::Cell<usize>) -> usize {
    let idx = TID.try_with(|t| t.0.min(RAIL_SLOTS)).unwrap_or(RAIL_SLOTS);
    cache.set(idx);
    idx
}

/// The current thread's leased slot index, for other per-thread-slot
/// machinery (the combining fronts' announcement arrays). Indices are
/// dense and exclusive while the thread lives; [`RAIL_SLOTS`] (or any
/// larger value a caller treats as out of range) means "no exclusive
/// slot — use a shared fallback".
pub(crate) fn thread_slot_index() -> usize {
    current_rail_index()
}

/// The current thread's rail index; the overflow rail during TLS
/// teardown or when more than [`RAIL_SLOTS`] threads are alive.
fn current_rail_index() -> usize {
    RAIL_INDEX
        .try_with(|c| {
            let idx = c.get();
            if idx != usize::MAX {
                idx
            } else {
                lease_rail_index(c)
            }
        })
        .unwrap_or(RAIL_SLOTS)
}

/// One cache-line-padded counter stripe: the active-op gate plus the
/// per-class operation counters and simulated time of (usually) one
/// thread. Coupling the gate with the counters means one operation
/// touches one thread-private line for all its bookkeeping.
#[repr(align(128))]
#[derive(Debug)]
struct Rail {
    /// In-flight operations published through this rail (the epoch
    /// gate). Published with sequentially consistent stores so
    /// [`SimFabric::crash`] can drain reliably.
    active: AtomicU64,
    /// Simulated nanoseconds accumulated through this rail.
    sim_ns: AtomicU64,
    /// Per-[`OpClass`] operation counts.
    counts: [AtomicU64; OP_CLASSES],
    /// Overflow rails may be written by several threads at once and must
    /// use atomic read-modify-writes; exclusive rails use cheaper plain
    /// load + store pairs.
    shared: bool,
}

impl Rail {
    fn new(shared: bool) -> Self {
        Rail {
            active: AtomicU64::new(0),
            sim_ns: AtomicU64::new(0),
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            shared,
        }
    }

    /// Publishes one more in-flight operation. Operations must not
    /// nest: an op issued while the same thread already holds an
    /// `OpGuard` would deadlock against a concurrent `crash()` (the
    /// inner `enter()` backs off to active=1 and waits for the reopen,
    /// while the drain waits for active=0). No fabric op calls another
    /// fabric op internally.
    fn begin(&self) {
        if self.shared {
            self.active.fetch_add(1, Ordering::SeqCst);
        } else {
            let n = self.active.load(Ordering::Relaxed);
            self.active.store(n + 1, Ordering::SeqCst);
        }
    }

    /// Retires one in-flight operation.
    fn end(&self) {
        if self.shared {
            self.active.fetch_sub(1, Ordering::Release);
        } else {
            let n = self.active.load(Ordering::Relaxed);
            self.active.store(n - 1, Ordering::Release);
        }
    }

    /// Records one operation of `class` costing `ns` simulated time.
    fn bump(&self, class: OpClass, ns: u64) {
        if self.shared {
            self.counts[class as usize].fetch_add(1, Ordering::Relaxed);
            if ns > 0 {
                self.sim_ns.fetch_add(ns, Ordering::Relaxed);
            }
        } else {
            let c = &self.counts[class as usize];
            c.store(c.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
            if ns > 0 {
                let s = self.sim_ns.load(Ordering::Relaxed);
                self.sim_ns.store(s + ns, Ordering::Relaxed);
            }
        }
    }
}

/// Operation counters and simulated time, striped over
/// cache-line-padded per-thread rails (see the module header). Totals
/// are aggregated on demand; individual per-thread stripes are not part
/// of the public API.
#[derive(Debug)]
pub struct Stats {
    /// `rails[RAIL_SLOTS]` is the shared overflow rail.
    rails: Box<[Rail]>,
}

/// A relaxed sample of the calling thread's own rail, used by the
/// tracer ([`crate::trace`]) to attribute simulated time and
/// flush/barrier counts to an op span. On an exclusive rail the sample
/// is exact; on the shared overflow rail it is polluted by rail mates
/// (the same accuracy trade the rails already make for counters).
#[derive(Debug, Clone, Copy)]
pub(crate) struct RailProbe {
    /// Cumulative simulated nanoseconds charged through this rail.
    pub(crate) sim_ns: u64,
    /// Cumulative synchronous flushes (`LFlush` + `RFlush`).
    pub(crate) flushes: u64,
    /// Cumulative asynchronous flush requests.
    pub(crate) aflushes: u64,
    /// Cumulative barriers.
    pub(crate) barriers: u64,
}

impl Default for Stats {
    fn default() -> Self {
        Stats {
            rails: (0..=RAIL_SLOTS)
                .map(|i| Rail::new(i == RAIL_SLOTS))
                .collect(),
        }
    }
}

impl Stats {
    fn rail(&self) -> &Rail {
        &self.rails[current_rail_index()]
    }

    /// Samples the calling thread's rail for the tracer (relaxed loads
    /// of a line this thread owns — no stores, no RMWs).
    pub(crate) fn rail_probe(&self) -> RailProbe {
        let rail = self.rail();
        RailProbe {
            sim_ns: rail.sim_ns.load(Ordering::Relaxed),
            flushes: rail.counts[OpClass::LFlushes as usize].load(Ordering::Relaxed)
                + rail.counts[OpClass::RFlushes as usize].load(Ordering::Relaxed),
            aflushes: rail.counts[OpClass::AFlushes as usize].load(Ordering::Relaxed),
            barriers: rail.counts[OpClass::Barriers as usize].load(Ordering::Relaxed),
        }
    }

    /// Spins until no operation is in flight on any rail. Callers must
    /// have blocked new entries first (the halted flag), or this may
    /// never terminate.
    fn await_quiescent(&self) {
        for rail in self.rails.iter() {
            spin_until(|| (rail.active.load(Ordering::SeqCst) == 0).then_some(()));
        }
    }

    /// Total number of primitive operations recorded, *including* the
    /// `CXL0_AF` extension's asynchronous flush requests and barriers.
    /// See [`Stats::total_sync_ops`] for the synchronous core only.
    pub fn total_ops(&self) -> u64 {
        self.snapshot().total_ops()
    }

    /// Number of synchronous primitives recorded (loads, stores, flushes
    /// and RMWs) — excludes `AFlush` requests and `Barrier`s, which are
    /// counted separately because one barrier retires many requests.
    pub fn total_sync_ops(&self) -> u64 {
        self.snapshot().total_sync_ops()
    }

    /// Simulated time accumulated, in nanoseconds.
    pub fn sim_nanos(&self) -> u64 {
        self.rails
            .iter()
            .map(|r| r.sim_ns.load(Ordering::Relaxed))
            .sum()
    }

    /// A plain-data snapshot of the counters, aggregated across all
    /// stripes in a single pass over the rail slab.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut counts = [0u64; OP_CLASSES];
        let mut sim_ns = 0u64;
        for rail in self.rails.iter() {
            for (total, slot) in counts.iter_mut().zip(rail.counts.iter()) {
                *total += slot.load(Ordering::Relaxed);
            }
            sim_ns += rail.sim_ns.load(Ordering::Relaxed);
        }
        StatsSnapshot {
            loads: counts[OpClass::Loads as usize],
            lstores: counts[OpClass::LStores as usize],
            rstores: counts[OpClass::RStores as usize],
            mstores: counts[OpClass::MStores as usize],
            lflushes: counts[OpClass::LFlushes as usize],
            rflushes: counts[OpClass::RFlushes as usize],
            rmws: counts[OpClass::Rmws as usize],
            aflushes: counts[OpClass::AFlushes as usize],
            barriers: counts[OpClass::Barriers as usize],
            sim_ns,
            // The fabric knows nothing of the allocator; the cluster
            // layer overlays these (`Cluster::stats_snapshot`).
            ..StatsSnapshot::default()
        }
    }
}

/// Copyable snapshot of [`Stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Loads issued.
    pub loads: u64,
    /// `LStore`s issued.
    pub lstores: u64,
    /// `RStore`s issued.
    pub rstores: u64,
    /// `MStore`s issued.
    pub mstores: u64,
    /// `LFlush`es issued.
    pub lflushes: u64,
    /// `RFlush`es issued.
    pub rflushes: u64,
    /// RMWs issued.
    pub rmws: u64,
    /// Asynchronous flush requests issued.
    pub aflushes: u64,
    /// Barriers issued.
    pub barriers: u64,
    /// Simulated nanoseconds.
    pub sim_ns: u64,
    /// Allocator: successful block allocations. Zero in raw-fabric
    /// snapshots; populated by
    /// [`Cluster::stats_snapshot`](crate::api::Cluster::stats_snapshot)
    /// and [`Session::stats_delta`](crate::api::Session::stats_delta).
    pub allocs: u64,
    /// Allocator: successful block frees (see [`StatsSnapshot::allocs`]).
    pub frees: u64,
    /// Allocator: allocations served by reusing a reclaimed block (see
    /// [`StatsSnapshot::allocs`]).
    pub freelist_hits: u64,
    /// Allocator gauge: payload cells currently live. Unlike the
    /// counters, [`StatsSnapshot::since`] carries gauges over from the
    /// later snapshot rather than subtracting.
    pub live_cells: u64,
    /// Allocator gauge: high-water mark of `live_cells` (see
    /// [`StatsSnapshot::live_cells`]).
    pub hw_cells: u64,
    /// Combining fronts: batches applied (combiner passes that found at
    /// least one announced op). Zero in raw-fabric snapshots; populated
    /// by the cluster layer like the allocator counters.
    pub combine_batches: u64,
    /// Combining fronts: operations completed through a combiner
    /// (applied + eliminated; see [`StatsSnapshot::combine_batches`]).
    pub combine_ops: u64,
    /// Combining fronts: operations annihilated by opposite-op
    /// elimination without touching the durable structure (counted per
    /// op: one push/pop pair adds two).
    pub combine_eliminations: u64,
    /// Combining fronts: combiner-lock acquisitions (elections).
    pub combine_elections: u64,
    /// Combining fronts: per-operation persistence syncs avoided —
    /// batched stores folded under one batch barrier, plus eliminated
    /// ops that skipped persistence entirely.
    pub combine_barriers_saved: u64,
    /// Combining fronts: inserts served from the board's spare-node
    /// cache instead of an allocator round trip.
    pub combine_spare_reuses: u64,
    /// Reclamation domain: traversal pins. Zero in raw-fabric
    /// snapshots; populated by the cluster layer like the allocator
    /// counters.
    pub smr_pins: u64,
    /// Reclamation domain: blocks retired into limbo (see
    /// [`StatsSnapshot::smr_pins`]).
    pub smr_retires: u64,
    /// Reclamation domain: retired blocks handed back to the allocator
    /// after their grace period.
    pub smr_reclaims: u64,
    /// Reclamation domain: successful global-epoch advances.
    pub smr_advances: u64,
    /// Reclamation-domain gauge: the current global epoch (carried, not
    /// diffed, by [`StatsSnapshot::since`]).
    pub smr_epoch: u64,
    /// Reclamation-domain gauge: blocks currently in limbo (see
    /// [`StatsSnapshot::smr_epoch`]).
    pub smr_limbo: u64,
    /// Persistency sanitizer: durability races detected. Zero in
    /// raw-fabric snapshots and when no checker is installed; populated
    /// by the cluster layer from [`Checker`](crate::check::Checker)
    /// counters. A *gauge* for [`StatsSnapshot::since`] purposes: the
    /// running total is what you want to assert on.
    pub check_durability_races: u64,
    /// Persistency sanitizer: unpersisted-read-at-recovery violations
    /// detected (see [`StatsSnapshot::check_durability_races`]).
    pub check_unpersisted_reads: u64,
    /// Persistency sanitizer: use-after-retire violations detected (see
    /// [`StatsSnapshot::check_durability_races`]).
    pub check_use_after_retire: u64,
    /// Runtime tracer: events recorded so far. Zero in raw-fabric
    /// snapshots and when no tracer is installed; populated by the
    /// cluster layer. A *gauge* for [`StatsSnapshot::since`] purposes
    /// (the running total is what you want to assert on), like the
    /// sanitizer counters.
    pub trace_events: u64,
    /// Runtime tracer: events lost to ring wraps or the crash-retired
    /// cap (see [`StatsSnapshot::trace_events`]).
    pub trace_dropped: u64,
    /// Runtime tracer gauge: p50 op latency in simulated nanoseconds,
    /// merged over every thread and op kind (upper bucket edge of the
    /// log2 histogram; see [`crate::trace::LatencyHistogram`]).
    pub trace_p50_sim_ns: u64,
    /// Runtime tracer gauge: p99 op latency (see
    /// [`StatsSnapshot::trace_p50_sim_ns`]).
    pub trace_p99_sim_ns: u64,
    /// Runtime tracer gauge: p99.9 op latency (see
    /// [`StatsSnapshot::trace_p50_sim_ns`]).
    pub trace_p999_sim_ns: u64,
}

impl StatsSnapshot {
    /// Total primitives, *including* asynchronous flush requests and
    /// barriers. See [`StatsSnapshot::total_sync_ops`].
    pub fn total_ops(&self) -> u64 {
        self.total_sync_ops() + self.aflushes + self.barriers
    }

    /// Synchronous primitives only (loads, stores, flushes, RMWs).
    pub fn total_sync_ops(&self) -> u64 {
        self.loads
            + self.lstores
            + self.rstores
            + self.mstores
            + self.lflushes
            + self.rflushes
            + self.rmws
    }

    /// Flushes of either kind (synchronous only; see
    /// [`StatsSnapshot::aflushes`] for asynchronous requests).
    pub fn flushes(&self) -> u64 {
        self.lflushes + self.rflushes
    }

    /// Component-wise difference (`self - earlier`) for the monotonic
    /// counters; the *gauges* (`live_cells`, `hw_cells`, `smr_epoch`,
    /// `smr_limbo`) are carried over from `self` (a "delta" of a level
    /// is meaningless and could underflow).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            loads: self.loads - earlier.loads,
            lstores: self.lstores - earlier.lstores,
            rstores: self.rstores - earlier.rstores,
            mstores: self.mstores - earlier.mstores,
            lflushes: self.lflushes - earlier.lflushes,
            rflushes: self.rflushes - earlier.rflushes,
            rmws: self.rmws - earlier.rmws,
            aflushes: self.aflushes - earlier.aflushes,
            barriers: self.barriers - earlier.barriers,
            sim_ns: self.sim_ns - earlier.sim_ns,
            allocs: self.allocs - earlier.allocs,
            frees: self.frees - earlier.frees,
            freelist_hits: self.freelist_hits - earlier.freelist_hits,
            live_cells: self.live_cells,
            hw_cells: self.hw_cells,
            combine_batches: self.combine_batches - earlier.combine_batches,
            combine_ops: self.combine_ops - earlier.combine_ops,
            combine_eliminations: self.combine_eliminations - earlier.combine_eliminations,
            combine_elections: self.combine_elections - earlier.combine_elections,
            combine_barriers_saved: self.combine_barriers_saved - earlier.combine_barriers_saved,
            combine_spare_reuses: self.combine_spare_reuses - earlier.combine_spare_reuses,
            smr_pins: self.smr_pins - earlier.smr_pins,
            smr_retires: self.smr_retires - earlier.smr_retires,
            smr_reclaims: self.smr_reclaims - earlier.smr_reclaims,
            smr_advances: self.smr_advances - earlier.smr_advances,
            smr_epoch: self.smr_epoch,
            smr_limbo: self.smr_limbo,
            check_durability_races: self.check_durability_races,
            check_unpersisted_reads: self.check_unpersisted_reads,
            check_use_after_retire: self.check_use_after_retire,
            trace_events: self.trace_events,
            trace_dropped: self.trace_dropped,
            trace_p50_sim_ns: self.trace_p50_sim_ns,
            trace_p99_sim_ns: self.trace_p99_sim_ns,
            trace_p999_sim_ns: self.trace_p999_sim_ns,
        }
    }
}

/// One location's model state `(holders bitmask, cached value, memory
/// value)` as a cache-line-aligned sequence-locked record of atomics.
///
/// The sequence word doubles as the writer lock (odd = locked). Mutating
/// rules hold the writer lock; read-only rules take an optimistic
/// snapshot validated against the sequence word, paying no atomic
/// read-modify-write. All field accesses are atomics, so the seqlock is
/// race-free by construction (no torn reads are possible, only
/// inconsistent snapshots, which validation discards).
#[repr(align(64))]
#[derive(Debug)]
struct LocCell {
    seq: AtomicU64,
    holders: AtomicU64,
    cache_val: AtomicU64,
    mem_val: AtomicU64,
}

/// Spins until `attempt` yields a value, backing off to a scheduler
/// yield periodically — essential on single-core hosts, where pure
/// spinning would burn the whole timeslice the lock holder needs.
fn spin_until<T>(mut attempt: impl FnMut() -> Option<T>) -> T {
    let mut spins = 0u32;
    loop {
        if let Some(v) = attempt() {
            return v;
        }
        spins += 1;
        if spins.is_multiple_of(64) {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

impl LocCell {
    fn new() -> Self {
        LocCell {
            seq: AtomicU64::new(0),
            holders: AtomicU64::new(0),
            cache_val: AtomicU64::new(0),
            mem_val: AtomicU64::new(0),
        }
    }

    /// Acquires the writer lock.
    fn lock(&self) -> CellGuard<'_> {
        spin_until(|| {
            let s = self.seq.load(Ordering::Relaxed);
            if s & 1 == 0
                && self
                    .seq
                    .compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                Some(CellGuard {
                    cell: self,
                    unlocked_seq: s + 2,
                })
            } else {
                None
            }
        })
    }

    /// An optimistic consistent snapshot `(holders, cache_val, mem_val)`
    /// (the canonical seqlock read protocol).
    fn read(&self) -> (u64, u64, u64) {
        spin_until(|| {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 0 {
                let h = self.holders.load(Ordering::Relaxed);
                let c = self.cache_val.load(Ordering::Relaxed);
                let m = self.mem_val.load(Ordering::Relaxed);
                fence(Ordering::Acquire);
                if self.seq.load(Ordering::Relaxed) == s1 {
                    return Some((h, c, m));
                }
            }
            None
        })
    }
}

/// Writer-lock guard over one [`LocCell`]. Field loads may be relaxed
/// (the lock's acquire edge orders them); field *stores* are `Release`
/// so the odd sequence word written by the lock CAS is visible before
/// any field mutation — without that, a weakly-ordered machine could
/// publish a field store ahead of the seq-odd store and let an
/// optimistic reader validate a torn snapshot against the stale even
/// sequence value. (`Release` stores are free on x86.)
struct CellGuard<'a> {
    cell: &'a LocCell,
    unlocked_seq: u64,
}

impl CellGuard<'_> {
    fn holders(&self) -> u64 {
        self.cell.holders.load(Ordering::Relaxed)
    }

    fn set_holders(&self, v: u64) {
        self.cell.holders.store(v, Ordering::Release);
    }

    fn cache_val(&self) -> u64 {
        self.cell.cache_val.load(Ordering::Relaxed)
    }

    fn set_cache_val(&self, v: u64) {
        self.cell.cache_val.store(v, Ordering::Release);
    }

    fn mem_val(&self) -> u64 {
        self.cell.mem_val.load(Ordering::Relaxed)
    }

    fn set_mem_val(&self, v: u64) {
        self.cell.mem_val.store(v, Ordering::Release);
    }

    /// The value a load observes: the unique cached value if one exists,
    /// the owner's memory value otherwise.
    fn visible(&self) -> u64 {
        if self.holders() != 0 {
            self.cache_val()
        } else {
            self.mem_val()
        }
    }

    /// `Propagate-C-M`/drain: cached value (if any) to memory.
    fn drain(&self) {
        if self.holders() != 0 {
            self.set_mem_val(self.cache_val());
            self.set_holders(0);
        }
    }
}

impl Drop for CellGuard<'_> {
    fn drop(&mut self) {
        self.cell.seq.store(self.unlocked_seq, Ordering::Release);
    }
}

/// The crash gate's read-mostly control line: a halted flag (nonzero
/// while a crash is draining in-flight operations) and the bitmask of
/// crashed machines.
#[repr(align(64))]
#[derive(Debug)]
struct CrashWord {
    halted: AtomicU64,
    crashed: AtomicU64,
}

/// Shards per machine of the pending-`AFlush` buffer; one mutexed set
/// per shard so unrelated threads stop serializing.
const PENDING_SHARDS: usize = 8;

/// Each shard is a sorted, deduplicated `Vec` (binary-search insert):
/// for the shard sizes a barrier window produces this beats a B-tree set
/// — no per-entry node allocation, and `clear()` retains capacity so the
/// steady state allocates nothing at all. The `nonempty` bitmask (bit
/// per shard) lets `Barrier` visit only occupied shards, so the
/// barrier-per-store pattern (`FlitAsync`) pays one shard lock, and an
/// empty barrier pays none.
#[derive(Debug)]
struct PendingBuf {
    nonempty: AtomicU64,
    shards: [Mutex<Vec<Loc>>; PENDING_SHARDS],
}

impl PendingBuf {
    fn new() -> Self {
        PendingBuf {
            nonempty: AtomicU64::new(0),
            shards: std::array::from_fn(|_| Mutex::new(Vec::new())),
        }
    }

    fn insert(&self, loc: Loc) {
        let s = loc.addr.index() % PENDING_SHARDS;
        let mut set = self.shards[s].lock();
        let was_empty = set.is_empty();
        if let Err(at) = set.binary_search(&loc) {
            set.insert(at, loc);
            if was_empty {
                self.nonempty.fetch_or(1u64 << s, Ordering::Release);
            }
        }
    }

    /// Retires every request shard by shard, calling `f` for each
    /// pending location and clearing as it goes; returns the number
    /// retired. Shard-at-a-time draining means a concurrent insert into
    /// a not-yet-visited shard may or may not be included — exactly the
    /// guarantee a concurrent insert had against the old single-mutex
    /// buffer.
    fn retire(&self, mut f: impl FnMut(Loc)) -> usize {
        let mut mask = self.nonempty.swap(0, Ordering::AcqRel);
        let mut retired = 0;
        while mask != 0 {
            let s = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let mut set = self.shards[s].lock();
            for &loc in set.iter() {
                f(loc);
            }
            retired += set.len();
            set.clear();
        }
        retired
    }

    fn clear(&self) {
        // Only called with the world stopped (no concurrent inserts).
        for shard in &self.shards {
            shard.lock().clear();
        }
        self.nonempty.store(0, Ordering::Release);
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

/// The concurrent CXL0 shared-memory fabric.
///
/// # Examples
///
/// ```
/// use cxl0_runtime::SimFabric;
/// use cxl0_model::{SystemConfig, MachineId, Loc};
///
/// let fabric = SimFabric::new(SystemConfig::symmetric_nvm(2, 16));
/// let node = fabric.node(MachineId(0));
/// let x = Loc::new(MachineId(1), 3);
/// node.lstore(x, 7)?;
/// node.rflush(x)?;          // persist to machine 1's memory
/// assert_eq!(node.load(x)?, 7);
/// fabric.crash(MachineId(1));
/// fabric.recover(MachineId(1));
/// assert_eq!(node.load(x)?, 7); // survived: NVM + RFlush
/// # Ok::<(), cxl0_runtime::Crashed>(())
/// ```
#[derive(Debug)]
pub struct SimFabric {
    cfg: SystemConfig,
    variant: ModelVariant,
    /// Flat slab of every machine's location cells;
    /// `cells[extents[m].0 + a]` guards the state of `Loc::new(m, a)`.
    cells: Box<[LocCell]>,
    /// Per-machine `(base offset, location count)` into `cells`. The
    /// count bounds-checks addresses per machine — without it an
    /// out-of-range address would silently alias the next machine's
    /// cells instead of panicking like the old nested-`Vec` indexing.
    extents: Vec<(usize, u32)>,
    /// The epoch crash gate's control line.
    crash_word: CrashWord,
    /// Serializes concurrent `crash()` calls.
    crash_lock: Mutex<()>,
    /// Per-machine sharded persistency buffers of pending `AFlush`
    /// requests (`CXL0_AF` extension; cleared by a crash of the machine).
    pending: Vec<PendingBuf>,
    stats: Stats,
    cost: CostModel,
    /// The persistency sanitizer, when one is installed
    /// ([`SimFabric::install_checker`]). Hooks are called with the
    /// affected cell's writer lock held; the checker never touches
    /// cells, so the cell → checker lock order is acyclic.
    checker: OnceLock<Arc<crate::check::Checker>>,
    /// The runtime tracer, when one is installed
    /// ([`SimFabric::install_tracer`]). Like the checker, absent by
    /// default: every seam is then a single `OnceLock` load and issues
    /// no atomic read-modify-write.
    tracer: OnceLock<Arc<crate::trace::Tracer>>,
}

impl SimFabric {
    /// Creates a fabric over `cfg` with the base variant and the Figure-5
    /// cost model.
    pub fn new(cfg: SystemConfig) -> Arc<Self> {
        Self::with_options(cfg, ModelVariant::Base, CostModel::figure5())
    }

    /// Creates a fabric with an explicit variant and cost model.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` has more than 64 machines (the holder bitmask).
    pub fn with_options(cfg: SystemConfig, variant: ModelVariant, cost: CostModel) -> Arc<Self> {
        assert!(cfg.num_machines() <= 64, "at most 64 machines supported");
        let mut extents = Vec::with_capacity(cfg.num_machines());
        let mut total = 0usize;
        for m in cfg.machines() {
            let locations = cfg.machine(m).locations;
            extents.push((total, locations));
            total += locations as usize;
        }
        let cells = (0..total).map(|_| LocCell::new()).collect();
        Arc::new(SimFabric {
            crash_word: CrashWord {
                halted: AtomicU64::new(0),
                crashed: AtomicU64::new(0),
            },
            crash_lock: Mutex::new(()),
            pending: (0..cfg.num_machines()).map(|_| PendingBuf::new()).collect(),
            cfg,
            variant,
            cells,
            extents,
            stats: Stats::default(),
            cost,
            checker: OnceLock::new(),
            tracer: OnceLock::new(),
        })
    }

    /// Installs the persistency sanitizer on this fabric. At most one
    /// checker per fabric; later calls are ignored. Prefer
    /// [`ClusterBuilder::with_checker`](crate::api::ClusterBuilder::with_checker),
    /// which also wires the allocator, SMR domain and root registry.
    pub fn install_checker(&self, checker: Arc<crate::check::Checker>) {
        let _ = self.checker.set(checker);
    }

    /// The installed persistency sanitizer, if any.
    pub fn checker(&self) -> Option<&Arc<crate::check::Checker>> {
        self.checker.get()
    }

    /// Installs the runtime tracer ([`crate::trace`]) on this fabric.
    /// At most one tracer per fabric; later calls are ignored. Prefer
    /// [`ClusterBuilder::with_tracing`](crate::api::ClusterBuilder::with_tracing),
    /// which also wires the sanitizer's violation sink and the
    /// snapshot-level percentile gauges.
    pub fn install_tracer(&self, tracer: Arc<crate::trace::Tracer>) {
        let _ = self.tracer.set(tracer);
    }

    /// The installed runtime tracer, if any.
    pub fn tracer(&self) -> Option<&Arc<crate::trace::Tracer>> {
        self.tracer.get()
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The model variant in force (`Base`, `Psn`, or `Lwb`).
    pub fn variant(&self) -> ModelVariant {
        self.variant
    }

    /// Operation counters and simulated time.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// A handle for threads running on machine `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn node(self: &Arc<Self>, m: MachineId) -> NodeHandle {
        assert!(m.index() < self.cfg.num_machines(), "unknown machine {m}");
        NodeHandle {
            fabric: Arc::clone(self),
            machine: m,
        }
    }

    /// True if machine `m` is currently crashed.
    pub fn is_crashed(&self, m: MachineId) -> bool {
        self.crash_word.crashed.load(Ordering::Acquire) & (1u64 << m.index()) != 0
    }

    fn cell(&self, loc: Loc) -> &LocCell {
        let (base, count) = self.extents[loc.owner.index()];
        assert!(
            loc.addr.index() < count as usize,
            "address {} out of range for machine {} ({} locations)",
            loc.addr.index(),
            loc.owner,
            count
        );
        &self.cells[base + loc.addr.index()]
    }

    /// Crashes machine `m`: stop-the-world, wipe `m`'s cache entries
    /// everywhere, reset `m`'s memory if volatile, apply PSN poisoning if
    /// that variant is in force. Machines in `m`'s failure domain crash
    /// together. Idempotent.
    pub fn crash(&self, m: MachineId) {
        // Stop the world so the crash is one atomic transition: halt the
        // gate, then wait for every in-flight operation to retire.
        let _serial = self.crash_lock.lock();
        self.crash_word.halted.store(1, Ordering::SeqCst);
        self.stats.await_quiescent();
        let mut crashed_bits = 0u64;
        let mut zeroed_bits = 0u64;
        for d in self.cfg.failure_domain(m) {
            self.crash_word
                .crashed
                .fetch_or(1u64 << d.index(), Ordering::SeqCst);
            // Un-retired asynchronous flush requests die with the machine.
            self.pending[d.index()].clear();
            let bit = 1u64 << d.index();
            crashed_bits |= bit;
            if self.cfg.machine(d).memory == MemoryKind::Volatile {
                zeroed_bits |= bit;
            }
            for owner in self.cfg.machines() {
                for a in 0..self.cfg.machine(owner).locations {
                    let st = self.cells[self.extents[owner.index()].0 + a as usize].lock();
                    // The crashed machine's cache entries vanish.
                    st.set_holders(st.holders() & !bit);
                    if owner == d {
                        if self.cfg.machine(d).memory == MemoryKind::Volatile {
                            st.set_mem_val(0);
                        }
                        if self.variant == ModelVariant::Psn {
                            // Poison: every cache entry for a line owned by
                            // the crashed machine is invalidated.
                            st.set_holders(0);
                        }
                    }
                }
            }
        }
        if let Some(ck) = self.checker.get() {
            // The world is stopped: the shadow sees the same atomic
            // transition the fabric just performed.
            ck.on_crash(crashed_bits, zeroed_bits, self.variant == ModelVariant::Psn);
        }
        if let Some(tr) = self.tracer.get() {
            // Seal the incarnation while the world is still stopped:
            // every buffered event drains to the retired set, so
            // crashed-incarnation spans cannot interleave with
            // post-recovery ones.
            tr.on_crash();
        }
        self.crash_word.halted.store(0, Ordering::SeqCst);
    }

    /// Recovers machine `m` (and its failure domain): new threads may run
    /// on it again. Its cache is empty; memory contents are whatever the
    /// crash left (NVM kept, volatile zeroed).
    pub fn recover(&self, m: MachineId) {
        for d in self.cfg.failure_domain(m) {
            self.crash_word
                .crashed
                .fetch_and(!(1u64 << d.index()), Ordering::SeqCst);
        }
    }

    /// Performs `n` random propagation (`τ`) steps, as a cache-eviction
    /// daemon would. Useful in tests to exercise propagation
    /// nondeterminism deterministically from a seed.
    pub fn propagate_randomly(&self, seed: u64, n: usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let locs: Vec<Loc> = self.cfg.all_locations().collect();
        if locs.is_empty() {
            return;
        }
        for _ in 0..n {
            let loc = locs[rng.gen_range(0..locs.len())];
            let st = self.cell(loc).lock();
            if st.holders() == 0 {
                continue;
            }
            let owner_bit = 1u64 << loc.owner.index();
            if st.holders() & owner_bit != 0 && rng.gen_bool(0.5) {
                // Propagate-C-M: owner's cache → owner's memory.
                st.drain();
            } else {
                // Propagate-C-C: a random non-owner holder → owner.
                let others = st.holders() & !owner_bit;
                if others != 0 {
                    let idx = pick_bit(others, &mut rng);
                    st.set_holders((st.holders() & !(1u64 << idx)) | owner_bit);
                }
            }
            if let Some(ck) = self.checker.get() {
                ck.on_mutate(None, loc, st.holders(), st.cache_val(), st.mem_val());
            }
        }
    }

    /// Drains every cache to memory (the state change a successful `GPF`
    /// waits for). Exposed for orderly-shutdown scenarios.
    pub fn drain_all(&self) {
        for owner in self.cfg.machines() {
            let (base, count) = self.extents[owner.index()];
            for a in 0..count {
                let cell = &self.cells[base + a as usize];
                // Cheap optimistic skip: most cells are uncached.
                if cell.read().0 != 0 {
                    let st = cell.lock();
                    st.drain();
                    if let Some(ck) = self.checker.get() {
                        ck.on_mutate(
                            None,
                            Loc::new(owner, a),
                            st.holders(),
                            st.cache_val(),
                            st.mem_val(),
                        );
                    }
                }
            }
        }
    }

    /// Reads the owner's *memory* value of `loc` directly — the
    /// "post-crash recovery inspection" view, bypassing caches. Intended
    /// for tests and recovery assertions, not for algorithm code.
    pub fn peek_memory(&self, loc: Loc) -> u64 {
        self.cell(loc).read().2
    }

    /// True if some cache currently holds `loc`.
    pub fn is_cached(&self, loc: Loc) -> bool {
        self.cell(loc).read().0 != 0
    }

    /// Number of un-retired `AFlush` requests in machine `m`'s persistency
    /// buffer (`CXL0_AF` extension).
    pub fn pending_flushes(&self, m: MachineId) -> usize {
        self.pending[m.index()].len()
    }
}

fn pick_bit(mask: u64, rng: &mut StdRng) -> u32 {
    debug_assert!(mask != 0);
    let count = mask.count_ones();
    let k = rng.gen_range(0..count);
    let mut m = mask;
    for _ in 0..k {
        m &= m - 1;
    }
    m.trailing_zeros()
}

/// Anything that can issue operations as a machine: a raw [`NodeHandle`]
/// or a higher-level context wrapping one (the `api` module's `Session`).
///
/// The durable data structures accept `&impl AsNode`, so the same
/// structure code works against both layers of the crate.
pub trait AsNode {
    /// The underlying per-machine handle.
    fn as_node(&self) -> &NodeHandle;
}

impl AsNode for NodeHandle {
    fn as_node(&self) -> &NodeHandle {
        self
    }
}

impl<T: AsNode + ?Sized> AsNode for &T {
    fn as_node(&self) -> &NodeHandle {
        (**self).as_node()
    }
}

/// In-flight-operation guard: entry through the epoch gate plus the
/// issuing thread's rail, through which the operation records its class
/// and simulated cost.
struct OpGuard<'a> {
    rail: &'a Rail,
}

impl OpGuard<'_> {
    fn charge(&self, class: OpClass, ns: u64) {
        self.rail.bump(class, ns);
    }
}

impl Drop for OpGuard<'_> {
    fn drop(&mut self) {
        self.rail.end();
    }
}

/// A per-machine handle: the operations a thread running on that machine
/// may issue. Cloning is cheap (an `Arc` bump).
#[derive(Debug, Clone)]
pub struct NodeHandle {
    fabric: Arc<SimFabric>,
    machine: MachineId,
}

impl NodeHandle {
    /// The machine this handle issues from.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> &Arc<SimFabric> {
        &self.fabric
    }

    /// Enters the epoch gate: publish the in-flight operation, then check
    /// the crash word — `halted` strictly **before** `crashed`. The
    /// sequentially consistent publish/check order against `crash()`'s
    /// halt/drain order guarantees (Dekker-style) that a crash either
    /// sees this operation and waits for it, or this operation sees the
    /// halt and backs off. The check order matters: reading
    /// `halted == 0` proves this publication either precedes the halt
    /// (so the drain waits for us and the op linearizes before the
    /// crash) or follows the reopen — and in the latter case the
    /// `crashed` bits, stored before the reopen, are guaranteed visible
    /// to the subsequent check. Checking `crashed` first would leave a
    /// window where an op threads between the drain and the bit
    /// publication and mutates a just-crashed machine.
    fn enter(&self) -> OpResult<OpGuard<'_>> {
        let fabric = &*self.fabric;
        let rail = fabric.stats.rail();
        let m_bit = 1u64 << self.machine.index();
        loop {
            rail.begin();
            if fabric.crash_word.halted.load(Ordering::SeqCst) != 0 {
                // A crash is draining: retire our publication and wait
                // for the gate to reopen.
                rail.end();
                spin_until(|| {
                    (fabric.crash_word.halted.load(Ordering::Acquire) == 0).then_some(())
                });
                continue;
            }
            if fabric.crash_word.crashed.load(Ordering::SeqCst) & m_bit != 0 {
                rail.end();
                return Err(Crashed {
                    machine: self.machine,
                });
            }
            return Ok(OpGuard { rail });
        }
    }

    fn op_cost(&self, p: Primitive, loc: Loc) -> u64 {
        self.fabric.cost.cost(p, self.machine == loc.owner)
    }

    /// Sanitizer hook: mirror a settled mutation of `loc` (called with
    /// the cell's writer lock held, so per-cell event order is exact).
    fn check_mutate(&self, loc: Loc, st: &CellGuard<'_>) {
        if let Some(ck) = self.fabric.checker.get() {
            ck.on_mutate(
                Some((self.machine, thread_slot_index())),
                loc,
                st.holders(),
                st.cache_val(),
                st.mem_val(),
            );
        }
    }

    /// Sanitizer hook: an application read of `loc`.
    fn check_load(&self, loc: Loc) {
        if let Some(ck) = self.fabric.checker.get() {
            ck.on_load((self.machine, thread_slot_index()), loc);
        }
    }

    /// Sanitizer + tracer seam for the [`Persistence`](crate::Persistence)
    /// strategies: the strategy just acknowledged its store/RMW on `loc`
    /// as durable. No-op without a checker or tracer.
    pub(crate) fn ack_persist(&self, loc: Loc) {
        if let Some(ck) = self.fabric.checker.get() {
            ck.on_ack(self.machine, loc);
        }
        if let Some(tr) = self.fabric.tracer.get() {
            tr.on_persist_ack();
        }
    }

    /// Tracer seam for the structure layer: opens an op span on the
    /// calling thread, or `None` when no tracer is installed (a single
    /// `OnceLock` load — the untraced hot path stays RMW-free).
    pub(crate) fn trace_span(
        &self,
        kind: crate::trace::OpKind,
    ) -> Option<crate::trace::SpanGuard<'_>> {
        self.fabric
            .tracer
            .get()
            .map(|tr| tr.span(kind, &self.fabric.stats, Some(self.machine)))
    }

    /// Tracer seam for recovery: opens a recovery-phase span (fabric-wide
    /// simulated time), or `None` when no tracer is installed. The first
    /// phase of a recovery pass should be preceded by
    /// [`Tracer::begin_recovery`] via [`NodeHandle::trace_begin_recovery`].
    pub(crate) fn trace_phase(
        &self,
        phase: crate::trace::RecoveryPhase,
    ) -> Option<crate::trace::PhaseGuard<'_>> {
        self.fabric
            .tracer
            .get()
            .map(|tr| tr.phase(phase, &self.fabric.stats, Some(self.machine)))
    }

    /// Resets the tracer's recovery breakdown at the top of a recovery
    /// pass, so [`Tracer::recovery_breakdown`] describes the latest pass
    /// only. No-op when no tracer is installed.
    pub(crate) fn trace_begin_recovery(&self) {
        if let Some(tr) = self.fabric.tracer.get() {
            tr.begin_recovery();
        }
    }

    /// Sanitizer seam for the allocator: the block whose payload starts
    /// at `loc` (spanning `cells` cells, reuse generation `gen`) was
    /// just handed out.
    pub(crate) fn check_alloc(&self, loc: Loc, cells: u32, gen: u64) {
        if let Some(ck) = self.fabric.checker.get() {
            ck.on_alloc(loc, cells, gen);
        }
    }

    /// Sanitizer seam for the allocator: the block at `loc` returned to
    /// its free list.
    pub(crate) fn check_free(&self, loc: Loc) {
        if let Some(ck) = self.fabric.checker.get() {
            ck.on_free(loc);
        }
    }

    /// Sanitizer seam for [`crate::smr`]: the block at `loc` was retired
    /// under global epoch `epoch`.
    pub(crate) fn check_retire(&self, loc: Loc, epoch: u64) {
        if let Some(ck) = self.fabric.checker.get() {
            ck.on_retire(loc, epoch);
        }
    }

    /// Sanitizer seam for [`crate::smr`]: post-crash recovery voided all
    /// reservations and limbo bags.
    pub(crate) fn check_smr_recover(&self) {
        if let Some(ck) = self.fabric.checker.get() {
            ck.on_smr_recover();
        }
    }

    /// Sanitizer seam for the named-root registry: the block holding
    /// `header` became durably reachable by name.
    pub(crate) fn check_add_root(&self, header: Loc) {
        if let Some(ck) = self.fabric.checker.get() {
            ck.add_root(header);
        }
    }

    /// `Load`: returns the value visible at `loc`.
    ///
    /// # Errors
    ///
    /// Fails if this machine has crashed.
    pub fn load(&self, loc: Loc) -> OpResult<u64> {
        // Gateless read-only fast path: a load that needs no state
        // change (LOAD-from-M, or an own-cache hit) linearizes at its
        // seqlock-consistent snapshot, so it skips the epoch gate — it
        // only records its cost and validates the crash word *after*
        // taking the snapshot. The post-snapshot check is what makes
        // this sound: if the snapshot observed any effect of a crash,
        // the cell's release unlock synchronizes the crasher's earlier
        // halted/crashed stores into this thread, so the check is
        // guaranteed to see them and divert to the gated slow path
        // (which waits out the drain and reports `Crashed`). A clean
        // check therefore proves the snapshot is linearizable strictly
        // before any in-flight crash — including the windows where this
        // thread is descheduled around the snapshot while a whole crash
        // (or a crash of another location's wipe) runs to completion.
        let fabric = &*self.fabric;
        let bit = 1u64 << self.machine.index();
        {
            let (h, c, m) = fabric.cell(loc).read();
            let hit = match fabric.variant {
                ModelVariant::Base | ModelVariant::Psn => {
                    if h == 0 {
                        Some(m) // LOAD-from-M (no copy)
                    } else if h & bit != 0 {
                        Some(c) // already a holder: the copy is a no-op
                    } else {
                        None
                    }
                }
                ModelVariant::Lwb => {
                    if h & bit != 0 {
                        Some(c) // own-cache hit
                    } else if h == 0 {
                        Some(m)
                    } else {
                        None
                    }
                }
            };
            // `halted` before `crashed`, as in `enter()`: a clean halted
            // read either proves the snapshot precedes any in-flight
            // crash, or follows a reopen whose earlier `crashed` stores
            // the second check is then guaranteed to observe.
            if let Some(v) = hit {
                if fabric.crash_word.halted.load(Ordering::SeqCst) == 0
                    && fabric.crash_word.crashed.load(Ordering::SeqCst) & bit == 0
                {
                    fabric
                        .stats
                        .rail()
                        .bump(OpClass::Loads, self.op_cost(Primitive::Load, loc));
                    self.check_load(loc);
                    return Ok(v);
                }
            }
        }
        let g = self.enter()?;
        g.charge(OpClass::Loads, self.op_cost(Primitive::Load, loc));
        let cell = self.fabric.cell(loc);
        self.check_load(loc);
        match self.fabric.variant {
            ModelVariant::Base | ModelVariant::Psn => {
                let st = cell.lock();
                if st.holders() != 0 {
                    // LOAD-from-C: copy into the issuer's cache.
                    st.set_holders(st.holders() | bit);
                    // Mirror the holder change only (a load is not a
                    // mutation of the value: no provenance, no
                    // lost-value clobber).
                    if let Some(ck) = self.fabric.checker.get() {
                        ck.on_mutate(None, loc, st.holders(), st.cache_val(), st.mem_val());
                    }
                    Ok(st.cache_val())
                } else {
                    // LOAD-from-M (no copy).
                    Ok(st.mem_val())
                }
            }
            ModelVariant::Lwb => {
                let st = cell.lock();
                if st.holders() & bit != 0 {
                    Ok(st.cache_val())
                } else {
                    // Blocking until the line drains to memory ≡ force
                    // the drain, then read memory.
                    st.drain();
                    if let Some(ck) = self.fabric.checker.get() {
                        ck.on_mutate(None, loc, st.holders(), st.cache_val(), st.mem_val());
                    }
                    Ok(st.mem_val())
                }
            }
        }
    }

    /// `LStore`: store to this machine's cache.
    ///
    /// # Errors
    ///
    /// Fails if this machine has crashed.
    pub fn lstore(&self, loc: Loc, v: u64) -> OpResult<()> {
        let g = self.enter()?;
        g.charge(OpClass::LStores, self.op_cost(Primitive::LStore, loc));
        let st = self.fabric.cell(loc).lock();
        st.set_cache_val(v);
        st.set_holders(1u64 << self.machine.index());
        self.check_mutate(loc, &st);
        Ok(())
    }

    /// `RStore`: store to the owner's cache.
    ///
    /// # Errors
    ///
    /// Fails if this machine has crashed.
    pub fn rstore(&self, loc: Loc, v: u64) -> OpResult<()> {
        let g = self.enter()?;
        g.charge(OpClass::RStores, self.op_cost(Primitive::RStore, loc));
        let st = self.fabric.cell(loc).lock();
        st.set_cache_val(v);
        st.set_holders(1u64 << loc.owner.index());
        self.check_mutate(loc, &st);
        Ok(())
    }

    /// `MStore`: store directly to the owner's memory.
    ///
    /// # Errors
    ///
    /// Fails if this machine has crashed.
    pub fn mstore(&self, loc: Loc, v: u64) -> OpResult<()> {
        let g = self.enter()?;
        g.charge(OpClass::MStores, self.op_cost(Primitive::MStore, loc));
        let st = self.fabric.cell(loc).lock();
        st.set_mem_val(v);
        st.set_holders(0);
        self.check_mutate(loc, &st);
        Ok(())
    }

    /// Store with a runtime-selected strength.
    ///
    /// # Errors
    ///
    /// Fails if this machine has crashed.
    pub fn store(&self, kind: StoreKind, loc: Loc, v: u64) -> OpResult<()> {
        match kind {
            StoreKind::Local => self.lstore(loc, v),
            StoreKind::Remote => self.rstore(loc, v),
            StoreKind::Memory => self.mstore(loc, v),
        }
    }

    /// `LFlush`: drain this machine's cached copy one level (to the
    /// owner's cache, or to memory when this machine owns the line). The
    /// blocking precondition is satisfied by forcing the propagation.
    ///
    /// # Errors
    ///
    /// Fails if this machine has crashed.
    pub fn lflush(&self, loc: Loc) -> OpResult<()> {
        let g = self.enter()?;
        g.charge(OpClass::LFlushes, self.op_cost(Primitive::LFlush, loc));
        let bit = 1u64 << self.machine.index();
        let cell = self.fabric.cell(loc);
        // Fast path: nothing of ours to flush.
        if cell.read().0 & bit == 0 {
            return Ok(());
        }
        let owner_bit = 1u64 << loc.owner.index();
        let st = cell.lock();
        if st.holders() & bit != 0 {
            if self.machine == loc.owner {
                // Propagate-C-M.
                st.drain();
            } else {
                // Propagate-C-C toward the owner.
                st.set_holders((st.holders() & !bit) | owner_bit);
            }
            self.check_mutate(loc, &st);
        }
        Ok(())
    }

    /// `RFlush`: force the line all the way to the owner's memory.
    ///
    /// # Errors
    ///
    /// Fails if this machine has crashed.
    pub fn rflush(&self, loc: Loc) -> OpResult<()> {
        let g = self.enter()?;
        g.charge(OpClass::RFlushes, self.op_cost(Primitive::RFlush, loc));
        let cell = self.fabric.cell(loc);
        // Fast path: an uncached line is already as persistent as it gets.
        if cell.read().0 == 0 {
            return Ok(());
        }
        let st = cell.lock();
        st.drain();
        self.check_mutate(loc, &st);
        Ok(())
    }

    /// Flush with a runtime-selected strength.
    ///
    /// # Errors
    ///
    /// Fails if this machine has crashed.
    pub fn flush(&self, kind: cxl0_model::FlushKind, loc: Loc) -> OpResult<()> {
        match kind {
            cxl0_model::FlushKind::Local => self.lflush(loc),
            cxl0_model::FlushKind::Remote => self.rflush(loc),
        }
    }

    /// `GPF`: drain every cache in the system to memory.
    ///
    /// # Errors
    ///
    /// Fails if this machine has crashed.
    pub fn gpf(&self) -> OpResult<()> {
        let _g = self.enter()?;
        self.fabric.drain_all();
        Ok(())
    }

    /// `AFlush` (`CXL0_AF` extension): enqueue an asynchronous flush
    /// request for `loc` into this machine's persistency buffer and return
    /// immediately. The write-back is only guaranteed to have happened
    /// after a subsequent [`NodeHandle::barrier`]; an un-barriered request
    /// is lost if this machine crashes.
    ///
    /// # Errors
    ///
    /// Fails if this machine has crashed.
    pub fn aflush(&self, loc: Loc) -> OpResult<()> {
        let g = self.enter()?;
        g.charge(OpClass::AFlushes, self.fabric.cost.aflush_issue);
        self.fabric.pending[self.machine.index()].insert(loc);
        Ok(())
    }

    /// `Barrier` (`CXL0_AF` extension, the `SFENCE` analogue): retire every
    /// pending `AFlush` request of this machine, forcing each line to the
    /// owner's memory. Pending write-backs overlap on the link, so `n`
    /// lines cost one full `RFlush` plus `n-1` pipelined increments
    /// (see [`CostModel::barrier_cost`]) instead of `n` round trips.
    ///
    /// Returns the number of lines retired.
    ///
    /// # Errors
    ///
    /// Fails if this machine has crashed.
    pub fn barrier(&self) -> OpResult<usize> {
        let g = self.enter()?;
        // Streaming equivalent of `CostModel::barrier_cost` over the
        // per-line full-RFlush costs: track the slowest line and the
        // count instead of collecting a vector.
        let mut max_line = 0u64;
        // With a checker installed, collect each retired line's
        // post-drain state (under its lock) and report the whole batch
        // at once: persists are mirrored before publication checks, so
        // intra-barrier drain order can never read as a race.
        let checking = self.fabric.checker.get().is_some();
        let mut batch = Vec::new();
        let retired = self.fabric.pending[self.machine.index()].retire(|loc| {
            let cell = self.fabric.cell(loc);
            if cell.read().0 != 0 {
                let st = cell.lock();
                st.drain();
                if checking {
                    batch.push((loc, st.holders(), st.cache_val(), st.mem_val()));
                }
            }
            let local = self.machine == loc.owner;
            max_line = max_line.max(self.fabric.cost.cost(Primitive::RFlush, local));
        });
        if let Some(ck) = self.fabric.checker.get() {
            ck.on_barrier(Some((self.machine, thread_slot_index())), &batch);
        }
        g.charge(
            OpClass::Barriers,
            self.fabric.cost.barrier_cost_of(max_line, retired as u64),
        );
        Ok(retired)
    }

    /// Compare-and-swap with the given store strength: atomically loads
    /// the visible value and, if it equals `old`, installs `new`.
    ///
    /// Returns `Ok(old)` on success and `Err(actual)` on mismatch (a
    /// failed CAS is equivalent to a plain load).
    ///
    /// # Errors
    ///
    /// Fails with [`Crashed`] if this machine has crashed.
    pub fn cas(&self, kind: StoreKind, loc: Loc, old: u64, new: u64) -> OpResult<Result<u64, u64>> {
        let g = self.enter()?;
        let prim = match kind {
            StoreKind::Local => Primitive::LRmw,
            StoreKind::Remote => Primitive::RRmw,
            StoreKind::Memory => Primitive::MRmw,
        };
        g.charge(OpClass::Rmws, self.op_cost(prim, loc));
        let cell = self.fabric.cell(loc);
        // Fast path: a mismatched CAS is a plain load, which the
        // optimistic snapshot already linearizes.
        let (h, c, m) = cell.read();
        let visible = if h != 0 { c } else { m };
        if visible != old {
            self.check_load(loc);
            return Ok(Err(visible));
        }
        let st = cell.lock();
        let visible = st.visible();
        if visible != old {
            self.check_load(loc);
            return Ok(Err(visible));
        }
        match kind {
            StoreKind::Local => {
                st.set_cache_val(new);
                st.set_holders(1u64 << self.machine.index());
            }
            StoreKind::Remote => {
                st.set_cache_val(new);
                st.set_holders(1u64 << loc.owner.index());
            }
            StoreKind::Memory => {
                st.set_mem_val(new);
                st.set_holders(0);
            }
        }
        self.check_mutate(loc, &st);
        Ok(Ok(old))
    }

    /// Fetch-and-add with the given store strength; returns the previous
    /// value.
    ///
    /// # Errors
    ///
    /// Fails if this machine has crashed.
    pub fn faa(&self, kind: StoreKind, loc: Loc, delta: u64) -> OpResult<u64> {
        let g = self.enter()?;
        let prim = match kind {
            StoreKind::Local => Primitive::LRmw,
            StoreKind::Remote => Primitive::RRmw,
            StoreKind::Memory => Primitive::MRmw,
        };
        g.charge(OpClass::Rmws, self.op_cost(prim, loc));
        let st = self.fabric.cell(loc).lock();
        let visible = st.visible();
        let new = visible.wrapping_add(delta);
        match kind {
            StoreKind::Local => {
                st.set_cache_val(new);
                st.set_holders(1u64 << self.machine.index());
            }
            StoreKind::Remote => {
                st.set_cache_val(new);
                st.set_holders(1u64 << loc.owner.index());
            }
            StoreKind::Memory => {
                st.set_mem_val(new);
                st.set_holders(0);
            }
        }
        self.check_mutate(loc, &st);
        Ok(visible)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    const M0: MachineId = MachineId(0);
    const M1: MachineId = MachineId(1);

    fn fabric2() -> Arc<SimFabric> {
        SimFabric::new(SystemConfig::symmetric_nvm(2, 4))
    }

    fn x(o: usize, a: u32) -> Loc {
        Loc::new(MachineId(o), a)
    }

    #[test]
    fn store_kinds_propagation_depth() {
        let f = fabric2();
        let n0 = f.node(M0);
        n0.lstore(x(1, 0), 1).unwrap();
        assert_eq!(f.peek_memory(x(1, 0)), 0); // still cached
        assert!(f.is_cached(x(1, 0)));
        n0.mstore(x(1, 1), 2).unwrap();
        assert_eq!(f.peek_memory(x(1, 1)), 2);
        assert!(!f.is_cached(x(1, 1)));
        n0.rstore(x(1, 2), 3).unwrap();
        assert_eq!(f.peek_memory(x(1, 2)), 0); // in owner's cache
        assert!(f.is_cached(x(1, 2)));
    }

    #[test]
    fn rflush_persists_lflush_moves_one_level() {
        let f = fabric2();
        let n0 = f.node(M0);
        n0.lstore(x(1, 0), 7).unwrap();
        n0.lflush(x(1, 0)).unwrap();
        // Value moved to owner's cache, not memory.
        assert_eq!(f.peek_memory(x(1, 0)), 0);
        assert!(f.is_cached(x(1, 0)));
        n0.rflush(x(1, 0)).unwrap();
        assert_eq!(f.peek_memory(x(1, 0)), 7);
        assert!(!f.is_cached(x(1, 0)));
    }

    #[test]
    fn owner_lflush_writes_memory() {
        let f = fabric2();
        let n1 = f.node(M1);
        n1.lstore(x(1, 0), 9).unwrap();
        n1.lflush(x(1, 0)).unwrap();
        assert_eq!(f.peek_memory(x(1, 0)), 9);
    }

    #[test]
    fn crash_wipes_cache_keeps_nvm() {
        let f = fabric2();
        let n0 = f.node(M0);
        n0.mstore(x(0, 0), 5).unwrap();
        n0.lstore(x(0, 0), 6).unwrap(); // newer value only in cache
        f.crash(M0);
        assert!(f.is_crashed(M0));
        assert!(n0.load(x(0, 0)).is_err());
        f.recover(M0);
        assert_eq!(n0.load(x(0, 0)).unwrap(), 5); // cache lost, NVM kept
    }

    #[test]
    fn crash_zeroes_volatile_memory() {
        let f = SimFabric::new(SystemConfig::symmetric_volatile(2, 1));
        let n0 = f.node(M0);
        n0.mstore(x(0, 0), 5).unwrap();
        f.crash(M0);
        f.recover(M0);
        assert_eq!(n0.load(x(0, 0)).unwrap(), 0);
    }

    #[test]
    fn remote_cached_copy_survives_owner_crash_base() {
        let f = fabric2();
        let n0 = f.node(M0);
        n0.lstore(x(1, 0), 3).unwrap();
        f.crash(M1);
        f.recover(M1);
        // Base variant: m0's cached copy survives and is visible.
        assert_eq!(n0.load(x(1, 0)).unwrap(), 3);
    }

    #[test]
    fn psn_crash_poisons_remote_copies() {
        let f = SimFabric::with_options(
            SystemConfig::symmetric_nvm(2, 1),
            ModelVariant::Psn,
            CostModel::free(),
        );
        let n0 = f.node(M0);
        n0.lstore(x(1, 0), 3).unwrap();
        f.crash(M1);
        f.recover(M1);
        // PSN: the copy was poisoned; memory value (0) is visible.
        assert_eq!(n0.load(x(1, 0)).unwrap(), 0);
    }

    #[test]
    fn lwb_load_forces_writeback() {
        let f = SimFabric::with_options(
            SystemConfig::symmetric_nvm(2, 1),
            ModelVariant::Lwb,
            CostModel::free(),
        );
        let n0 = f.node(M0);
        let n1 = f.node(M1);
        n0.lstore(x(1, 0), 4).unwrap();
        // m1's load drains the line to its memory first.
        assert_eq!(n1.load(x(1, 0)).unwrap(), 4);
        assert_eq!(f.peek_memory(x(1, 0)), 4);
    }

    #[test]
    fn cas_success_and_failure() {
        let f = fabric2();
        let n0 = f.node(M0);
        assert_eq!(n0.cas(StoreKind::Local, x(1, 0), 0, 10).unwrap(), Ok(0));
        assert_eq!(n0.cas(StoreKind::Local, x(1, 0), 0, 20).unwrap(), Err(10));
        assert_eq!(n0.load(x(1, 0)).unwrap(), 10);
    }

    #[test]
    fn faa_returns_previous() {
        let f = fabric2();
        let n0 = f.node(M0);
        assert_eq!(n0.faa(StoreKind::Memory, x(0, 0), 5).unwrap(), 0);
        assert_eq!(n0.faa(StoreKind::Memory, x(0, 0), 5).unwrap(), 5);
        assert_eq!(f.peek_memory(x(0, 0)), 10);
    }

    #[test]
    fn gpf_drains_everything() {
        let f = fabric2();
        let n0 = f.node(M0);
        n0.lstore(x(0, 0), 1).unwrap();
        n0.lstore(x(1, 0), 2).unwrap();
        n0.gpf().unwrap();
        assert_eq!(f.peek_memory(x(0, 0)), 1);
        assert_eq!(f.peek_memory(x(1, 0)), 2);
    }

    #[test]
    fn stats_count_operations_and_time() {
        let f = fabric2();
        let n0 = f.node(M0);
        n0.lstore(x(1, 0), 1).unwrap();
        n0.load(x(1, 0)).unwrap();
        n0.rflush(x(1, 0)).unwrap();
        let s = f.stats().snapshot();
        assert_eq!(s.lstores, 1);
        assert_eq!(s.loads, 1);
        assert_eq!(s.rflushes, 1);
        assert_eq!(s.total_ops(), 3);
        assert_eq!(s.total_sync_ops(), 3);
        assert!(s.sim_ns > 0);
    }

    #[test]
    fn total_ops_includes_async_extension_ops() {
        let f = fabric2();
        let n0 = f.node(M0);
        n0.lstore(x(1, 0), 1).unwrap();
        n0.aflush(x(1, 0)).unwrap();
        n0.barrier().unwrap();
        // Stats and its snapshot agree, and both count the async ops.
        assert_eq!(f.stats().total_ops(), 3);
        assert_eq!(f.stats().total_sync_ops(), 1);
        let s = f.stats().snapshot();
        assert_eq!(s.total_ops(), 3);
        assert_eq!(s.total_sync_ops(), 1);
    }

    #[test]
    fn propagate_randomly_eventually_persists() {
        let f = fabric2();
        let n0 = f.node(M0);
        n0.lstore(x(1, 0), 8).unwrap();
        f.propagate_randomly(42, 200);
        assert_eq!(f.peek_memory(x(1, 0)), 8);
    }

    #[test]
    fn concurrent_faa_is_atomic() {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 1));
        let mut handles = Vec::new();
        for t in 0..4 {
            let node = f.node(MachineId(t % 2));
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    node.faa(StoreKind::Local, Loc::new(MachineId(0), 0), 1)
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let n = f.node(M0);
        assert_eq!(n.load(Loc::new(MachineId(0), 0)).unwrap(), 4000);
    }

    #[test]
    fn concurrent_cas_contention_loses_no_update() {
        // CAS's optimistic fast path must never let two winners through.
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 1));
        let loc = Loc::new(M0, 0);
        let mut handles = Vec::new();
        for t in 0..4 {
            let node = f.node(MachineId(t % 2));
            handles.push(std::thread::spawn(move || {
                let mut wins = 0u64;
                for _ in 0..2000 {
                    let seen = node.load(loc).unwrap();
                    if node
                        .cas(StoreKind::Local, loc, seen, seen + 1)
                        .unwrap()
                        .is_ok()
                    {
                        wins += 1;
                    }
                }
                wins
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let n = f.node(M0);
        assert_eq!(n.load(loc).unwrap(), total);
    }

    #[test]
    fn aflush_defers_persistence_until_barrier() {
        let f = fabric2();
        let n0 = f.node(M0);
        n0.lstore(x(1, 0), 7).unwrap();
        n0.aflush(x(1, 0)).unwrap();
        assert_eq!(f.pending_flushes(M0), 1);
        assert_eq!(f.peek_memory(x(1, 0)), 0); // nothing persisted yet
        assert_eq!(n0.barrier().unwrap(), 1);
        assert_eq!(f.pending_flushes(M0), 0);
        assert_eq!(f.peek_memory(x(1, 0)), 7);
        assert!(!f.is_cached(x(1, 0)));
    }

    #[test]
    fn barrier_with_empty_buffer_is_cheap_noop() {
        let f = fabric2();
        let n0 = f.node(M0);
        assert_eq!(n0.barrier().unwrap(), 0);
        let s = f.stats().snapshot();
        assert_eq!(s.barriers, 1);
        assert_eq!(s.aflushes, 0);
    }

    #[test]
    fn barrier_batches_multiple_lines_cheaper_than_sync_flushes() {
        let cfg = SystemConfig::symmetric_nvm(2, 8);
        let batched = SimFabric::new(cfg.clone());
        let n = batched.node(M0);
        for a in 0..4 {
            n.lstore(x(1, a), a as u64 + 1).unwrap();
            n.aflush(x(1, a)).unwrap();
        }
        n.barrier().unwrap();

        let synced = SimFabric::new(cfg);
        let m = synced.node(M0);
        for a in 0..4 {
            m.lstore(x(1, a), a as u64 + 1).unwrap();
            m.rflush(x(1, a)).unwrap();
        }
        for a in 0..4 {
            assert_eq!(batched.peek_memory(x(1, a)), a as u64 + 1);
            assert_eq!(synced.peek_memory(x(1, a)), a as u64 + 1);
        }
        assert!(
            batched.stats().sim_nanos() < synced.stats().sim_nanos(),
            "batched {} !< synced {}",
            batched.stats().sim_nanos(),
            synced.stats().sim_nanos()
        );
    }

    #[test]
    fn crash_discards_pending_aflushes() {
        let f = fabric2();
        let n0 = f.node(M0);
        n0.lstore(x(1, 0), 7).unwrap();
        n0.aflush(x(1, 0)).unwrap();
        f.crash(M0);
        f.recover(M0);
        assert_eq!(f.pending_flushes(M0), 0);
        // The post-crash barrier retires nothing; the store was never
        // persisted (it may still be visible from the owner's cache).
        assert_eq!(n0.barrier().unwrap(), 0);
        assert_eq!(f.peek_memory(x(1, 0)), 0);
    }

    #[test]
    fn duplicate_aflushes_to_one_line_retire_once() {
        let f = fabric2();
        let n0 = f.node(M0);
        n0.lstore(x(1, 0), 5).unwrap();
        n0.aflush(x(1, 0)).unwrap();
        n0.aflush(x(1, 0)).unwrap();
        assert_eq!(f.pending_flushes(M0), 1);
        assert_eq!(n0.barrier().unwrap(), 1);
    }

    #[test]
    fn pending_buffer_shards_dedupe_and_drain_across_shards() {
        // Locations spread over more addresses than shards: every one is
        // tracked once and retired once.
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 64));
        let n0 = f.node(M0);
        for a in 0..40 {
            n0.lstore(x(1, a), u64::from(a) + 1).unwrap();
            n0.aflush(x(1, a)).unwrap();
            n0.aflush(x(1, a)).unwrap(); // duplicate in the same shard
        }
        assert_eq!(f.pending_flushes(M0), 40);
        assert_eq!(n0.barrier().unwrap(), 40);
        assert_eq!(f.pending_flushes(M0), 0);
        for a in 0..40 {
            assert_eq!(f.peek_memory(x(1, a)), u64::from(a) + 1);
        }
    }

    #[test]
    fn crash_during_concurrent_ops_is_atomic() {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 8));
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let node = f.node(M1);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if node.lstore(Loc::new(M1, (i % 8) as u32), i).is_err() {
                        break; // machine crashed; thread dies
                    }
                    i += 1;
                }
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        f.crash(M1);
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert!(f.is_crashed(M1));
    }

    #[test]
    fn ops_on_other_machines_proceed_after_a_crash() {
        let f = fabric2();
        let n0 = f.node(M0);
        let n1 = f.node(M1);
        n0.mstore(x(0, 0), 3).unwrap();
        f.crash(M1);
        assert!(n1.load(x(1, 0)).is_err());
        // The gate reopened for everyone else.
        assert_eq!(n0.load(x(0, 0)).unwrap(), 3);
        f.recover(M1);
        assert_eq!(n1.load(x(1, 0)).unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_address_panics_instead_of_aliasing() {
        // The flat slab must preserve the nested-Vec behavior: a bad
        // address panics rather than silently hitting the next
        // machine's cells.
        let f = fabric2(); // 4 locations per machine
        let _ = f.node(M0).load(x(0, 7));
    }

    #[test]
    fn crash_is_idempotent_and_serializable() {
        let f = fabric2();
        let n0 = f.node(M0);
        n0.lstore(x(1, 0), 1).unwrap();
        f.crash(M1);
        f.crash(M1); // idempotent
        f.crash(M0); // a second machine, while the first is down
        assert!(f.is_crashed(M0));
        assert!(f.is_crashed(M1));
        f.recover(M0);
        f.recover(M1);
        assert_eq!(f.node(M0).load(x(0, 0)).unwrap(), 0);
    }
}
