//! # Persistency sanitizer: shadow-state durability checking
//!
//! An always-compiled, opt-in analysis that mirrors every store, flush,
//! barrier and crash the [`SimFabric`](crate::SimFabric) executes and
//! reports violations of the discipline §6's durable-linearizability
//! transformation relies on. Where the example-based crash tests can
//! only catch a missing flush if a particular interleaving happens to
//! hit it, the sanitizer turns "this suite passed" into "no durability
//! race occurred on any executed path".
//!
//! ## Shadow state
//!
//! Per **cell** the checker tracks the persist state machine the FliT
//! strategies step through:
//!
//! ```text
//! clean ──store──▶ dirty ──aflush──▶ flush-pending ──barrier/τ──▶ persisted
//!   ▲                │                                               │
//!   └──── flush (LFlush-by-owner / RFlush / MStore) ─────────────────┘
//! ```
//!
//! concretely as a mirror of `(holders, cache, mem)` — a cell is *dirty*
//! while some cache holds a value its owner's memory does not (`holders ≠
//! ∅ ∧ cache ≠ mem`); `aflush` leaves it dirty-but-pending until a
//! barrier or the fabric's background drain (τ) retires it. On top of the
//! mirror sit a *durable-reachability* bit per block — seeded from the
//! named-root registry and propagated through every persisted pointer
//! word — and the SMR lifecycle (live → retired → reclaimed) per
//! allocator block.
//!
//! ## Violation classes
//!
//! * [`ViolationClass::DurabilityRace`] — a block becomes durably
//!   reachable (a link persist publishes it, or a root names it) while
//!   one of its cells is still dirty: a crash at that instant loses
//!   payload that recovery can reach.
//! * [`ViolationClass::UnpersistedReadAtRecovery`] — a persistence
//!   strategy *acknowledged* an operation whose store never physically
//!   reached the owner's memory, the crash destroyed the only cached
//!   copy, and recovery then read the stale cell. This is exactly the §6
//!   unsoundness of the unadapted x86 FliT
//!   ([`FlitX86`](crate::FlitX86)): a local flush by a non-owner only
//!   moves the line to the owner's cache. Sound modes never trip it.
//! * [`ViolationClass::UseAfterRetire`] — a thread touches a block after
//!   [`SmrGuard::retire`](crate::smr::SmrGuard::retire) without being
//!   pinned in a protecting epoch, or touches a *reclaimed* block while
//!   pinned (the epoch domain's grace guarantee was violated — e.g. the
//!   block was freed inline instead of retired).
//!
//! ## Using it
//!
//! Enable per cluster with
//! [`ClusterBuilder::with_checker`](crate::api::ClusterBuilder::with_checker),
//! or globally with `CXL0_SANITIZE=1` in the environment (as CI's
//! `sanitize` job does), which additionally panics on the first violation
//! in sound persist modes. Violation counts surface in
//! [`StatsSnapshot`](crate::StatsSnapshot); full reports via
//! [`Checker::violations`]. See `docs/SANITIZER.md` for the recipe.
//!
//! ## Precision notes
//!
//! The checker holds one mutex and is called with the affected cell's
//! seqlock held (lock order: cell → checker; the checker never touches
//! cells), so per-cell event order is exact. Barrier retirement is
//! reported as one batch and applied persists-first, so intra-barrier
//! drain order cannot fabricate a race. One narrow race remains — a
//! store racing a barrier batch can be mirrored before the batch lands —
//! and it can only mark a cell *clean* early: false negatives at worst,
//! never false positives. Pointer words are recognized by their exact
//! encoding *and* block generation; generations are seeded nonzero per
//! block (see [`crate::alloc`]), so small application scalars can never
//! masquerade as published pointers.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use cxl0_model::{Loc, MachineId};

use crate::alloc::layout::{decode_addr, decode_gen};
use crate::backend::RAIL_SLOTS;

/// Which checks are armed and how violations are delivered.
///
/// [`ClusterBuilder::build`](crate::api::ClusterBuilder::build) derives
/// the right configuration from the cluster's
/// [`PersistMode`](crate::api::PersistMode); construct one directly only
/// to override that (e.g. to record violations a test expects).
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Detect durability races (publication of a dirty block). Arm only
    /// under strict per-operation persistence: buffered modes legally
    /// persist whole epochs out of publication order.
    pub durability_races: bool,
    /// Detect reads of cells whose acknowledged persist was lost in a
    /// crash. Driven purely by strategy acknowledgements, so it is safe
    /// to arm everywhere: strategies that promise nothing trip nothing.
    pub unpersisted_reads: bool,
    /// Detect accesses to retired/reclaimed blocks outside a protecting
    /// epoch pin.
    pub use_after_retire: bool,
    /// Panic on the first violation instead of only recording it. What
    /// `CXL0_SANITIZE=1` sets for sound modes so suites fail loudly.
    pub fail_fast: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            durability_races: true,
            unpersisted_reads: true,
            use_after_retire: true,
            fail_fast: false,
        }
    }
}

/// The three violation classes the sanitizer reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationClass {
    /// A block became durably reachable while one of its cells was dirty.
    DurabilityRace,
    /// Recovery read a cell whose acknowledged persist never completed.
    UnpersistedReadAtRecovery,
    /// A block was accessed after retirement outside a protecting epoch.
    UseAfterRetire,
}

impl fmt::Display for ViolationClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationClass::DurabilityRace => write!(f, "durability-race"),
            ViolationClass::UnpersistedReadAtRecovery => {
                write!(f, "unpersisted-read-at-recovery")
            }
            ViolationClass::UseAfterRetire => write!(f, "use-after-retire"),
        }
    }
}

/// One recorded violation, with thread/op provenance where known.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The violation class.
    pub class: ViolationClass,
    /// The cell the violation was detected at.
    pub loc: Loc,
    /// The machine whose operation tripped the check (`None` for fabric
    /// background activity such as the τ drain).
    pub machine: Option<MachineId>,
    /// The issuing thread's rail slot (`None` for background activity).
    pub thread_slot: Option<usize>,
    /// Human-readable description of what happened.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] at {}", self.class, self.loc)?;
        match (self.machine, self.thread_slot) {
            (Some(m), Some(t)) => write!(f, " by {m} (thread slot {t})")?,
            (Some(m), None) => write!(f, " by {m}")?,
            _ => write!(f, " by fabric background activity")?,
        }
        write!(f, ": {}", self.detail)
    }
}

/// Mirror of one cell: the fabric's `(holders, cache, mem)` plus the
/// persist bookkeeping layered on top.
#[derive(Debug, Clone, Copy, Default)]
struct CellShadow {
    holders: u64,
    cache: u64,
    mem: u64,
    /// An acknowledged persist that had not physically completed when
    /// acknowledged: the value the strategy promised durable.
    at_risk: Option<u64>,
    /// A crash destroyed the only copy of an acknowledged value; the
    /// next read of this cell is an unpersisted-read-at-recovery.
    lost: Option<u64>,
}

impl CellShadow {
    fn dirty(&self) -> bool {
        self.holders != 0 && self.cache != self.mem
    }
}

/// SMR lifecycle of an allocator block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum BlockState {
    Live,
    Retired,
    Freed,
}

/// Shadow of one allocator block, keyed by its payload base address.
#[derive(Debug, Clone, Copy)]
struct BlockShadow {
    cells: u32,
    gen: u64,
    state: BlockState,
    /// Durably reachable from a named root (sticky until freed).
    reach: bool,
    retire_epoch: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct PinShadow {
    depth: u32,
    epoch: u64,
}

/// Mutex-protected shadow of the whole fabric.
#[derive(Debug, Default)]
struct Shadow {
    cells: HashMap<Loc, CellShadow>,
    /// Blocks by payload base address (single allocator region).
    blocks: BTreeMap<u32, BlockShadow>,
    /// The machine hosting the allocator region, learned at first alloc.
    region: Option<MachineId>,
    pins: Vec<PinShadow>,
}

/// Cap on retained full violation reports (counters keep exact totals).
const MAX_REPORTS: usize = 64;

/// The shadow-state persistency checker. See the [module docs](self).
///
/// Created by
/// [`ClusterBuilder::with_checker`](crate::api::ClusterBuilder::with_checker)
/// (or `CXL0_SANITIZE=1`) and shared by the fabric, the allocator, the
/// SMR domain and the root registry. All hook methods are crate-internal;
/// the public surface is configuration and reporting.
pub struct Checker {
    cfg: CheckConfig,
    shadow: Mutex<Shadow>,
    races: AtomicU64,
    unpersisted: AtomicU64,
    uar: AtomicU64,
    reports: Mutex<Vec<Violation>>,
    /// The runtime tracer, when one is co-installed: every report also
    /// lands in the trace as an instant event with provenance.
    trace: OnceLock<Arc<crate::trace::Tracer>>,
}

impl fmt::Debug for Checker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Checker")
            .field("cfg", &self.cfg)
            .field("durability_races", &self.durability_races())
            .field("unpersisted_reads", &self.unpersisted_reads())
            .field("use_after_retire", &self.use_after_retire())
            .finish_non_exhaustive()
    }
}

impl Checker {
    /// Creates a checker with the given configuration.
    pub fn new(cfg: CheckConfig) -> Self {
        Checker {
            cfg,
            shadow: Mutex::new(Shadow {
                pins: vec![PinShadow::default(); RAIL_SLOTS + 1],
                ..Shadow::default()
            }),
            races: AtomicU64::new(0),
            unpersisted: AtomicU64::new(0),
            uar: AtomicU64::new(0),
            reports: Mutex::new(Vec::new()),
            trace: OnceLock::new(),
        }
    }

    /// Mirrors every future violation into `tracer` as an instant trace
    /// event with machine/thread provenance. At most one sink; later
    /// calls are ignored. The cluster layer wires this automatically
    /// when both a checker and a tracer are installed.
    pub fn install_trace_sink(&self, tracer: Arc<crate::trace::Tracer>) {
        let _ = self.trace.set(tracer);
    }

    /// The active configuration.
    pub fn config(&self) -> CheckConfig {
        self.cfg
    }

    /// Number of durability races detected.
    pub fn durability_races(&self) -> u64 {
        self.races.load(Ordering::Relaxed)
    }

    /// Number of unpersisted-read-at-recovery violations detected.
    pub fn unpersisted_reads(&self) -> u64 {
        self.unpersisted.load(Ordering::Relaxed)
    }

    /// Number of use-after-retire violations detected.
    pub fn use_after_retire(&self) -> u64 {
        self.uar.load(Ordering::Relaxed)
    }

    /// Total violations across all classes.
    pub fn total_violations(&self) -> u64 {
        self.durability_races() + self.unpersisted_reads() + self.use_after_retire()
    }

    /// The recorded violation reports (the first `MAX_REPORTS` of them;
    /// counters keep exact totals beyond that).
    pub fn violations(&self) -> Vec<Violation> {
        self.reports.lock().clone()
    }

    /// A deterministic digest of the persist-relevant shadow state:
    /// per-cell `(mem, dirty, at-risk, lost)` and per-block lifecycle +
    /// reachability. Two execution points with equal fingerprints are
    /// indistinguishable to a crash, which is what the crash-point
    /// enumerator deduplicates on.
    pub fn fingerprint(&self) -> u64 {
        let g = self.shadow.lock();
        let mut h = std::collections::hash_map::DefaultHasher::new();
        let mut cells: Vec<_> = g
            .cells
            .iter()
            .map(|(l, c)| {
                (
                    l.owner.index(),
                    l.addr.0,
                    c.mem,
                    c.dirty(),
                    c.at_risk,
                    c.lost,
                )
            })
            .collect();
        cells.sort_unstable();
        cells.hash(&mut h);
        for (base, b) in &g.blocks {
            (base, b.gen, b.state, b.reach).hash(&mut h);
        }
        h.finish()
    }

    fn report(
        &self,
        class: ViolationClass,
        loc: Loc,
        who: Option<(MachineId, usize)>,
        detail: String,
    ) {
        match class {
            ViolationClass::DurabilityRace => &self.races,
            ViolationClass::UnpersistedReadAtRecovery => &self.unpersisted,
            ViolationClass::UseAfterRetire => &self.uar,
        }
        .fetch_add(1, Ordering::Relaxed);
        let v = Violation {
            class,
            loc,
            machine: who.map(|(m, _)| m),
            thread_slot: who.map(|(_, t)| t),
            detail,
        };
        let mut reports = self.reports.lock();
        if reports.len() < MAX_REPORTS {
            reports.push(v.clone());
        }
        drop(reports);
        if let Some(tr) = self.trace.get() {
            let name = match class {
                ViolationClass::DurabilityRace => "durability-race",
                ViolationClass::UnpersistedReadAtRecovery => "unpersisted-read-at-recovery",
                ViolationClass::UseAfterRetire => "use-after-retire",
            };
            tr.violation(name, loc, who, &v.detail);
        }
        if self.cfg.fail_fast {
            panic!("persistency sanitizer: {v}");
        }
    }

    // ---- fabric hooks ---------------------------------------------------

    /// An application read of `loc` (no state transfer mirrored: loads
    /// never change a cell's persist state, and the gateless fast path
    /// must not write the mirror out of order).
    pub(crate) fn on_load(&self, who: (MachineId, usize), loc: Loc) {
        let mut g = self.shadow.lock();
        self.check_retire(&g, Some(who), loc, "load");
        if let Some(cell) = g.cells.get_mut(&loc) {
            if let Some(v) = cell.lost.take() {
                if self.cfg.unpersisted_reads {
                    let mem = cell.mem;
                    drop(g);
                    self.report(
                        ViolationClass::UnpersistedReadAtRecovery,
                        loc,
                        Some(who),
                        format!(
                            "read of a cell whose acknowledged persist (value {v}) was lost \
                             in a crash; memory still holds {mem}"
                        ),
                    );
                }
            }
        }
    }

    /// A mutation of `loc` settled: mirror the post-state. Called with
    /// the cell's seqlock held for stores, RMWs, flush drains and τ
    /// moves alike; `who` is `None` for fabric background activity.
    pub(crate) fn on_mutate(
        &self,
        who: Option<(MachineId, usize)>,
        loc: Loc,
        holders: u64,
        cache: u64,
        mem: u64,
    ) {
        let mut g = self.shadow.lock();
        if let Some(w) = who {
            self.check_retire(&g, Some(w), loc, "store");
        }
        let cell = g.cells.entry(loc).or_default();
        let mem_changed = mem != cell.mem;
        cell.holders = holders;
        cell.cache = cache;
        cell.mem = mem;
        // Any settled mutation supersedes a crash-lost ghost value.
        cell.lost = None;
        if !cell.dirty() {
            cell.at_risk = None;
        }
        if mem_changed {
            self.publish_word(&mut g, who, loc, mem);
        }
    }

    /// A barrier retired a batch of pending flushes. Persists are
    /// mirrored first and publications evaluated against the post-batch
    /// state, so the drain order *within* one barrier can never be
    /// observed as a race.
    pub(crate) fn on_barrier(
        &self,
        who: Option<(MachineId, usize)>,
        items: &[(Loc, u64, u64, u64)],
    ) {
        let mut g = self.shadow.lock();
        let mut changed = Vec::new();
        for &(loc, holders, cache, mem) in items {
            let cell = g.cells.entry(loc).or_default();
            if mem != cell.mem {
                changed.push((loc, mem));
            }
            cell.holders = holders;
            cell.cache = cache;
            cell.mem = mem;
            cell.lost = None;
            if !cell.dirty() {
                cell.at_risk = None;
            }
        }
        for (loc, mem) in changed {
            self.publish_word(&mut g, who, loc, mem);
        }
    }

    /// A persistence strategy acknowledged an operation on `loc` as
    /// durable. If the mirror shows the cell still dirty, the promised
    /// value is recorded *at risk*: a crash that destroys the cached
    /// copy before it drains turns it into a lost value.
    pub(crate) fn on_ack(&self, _machine: MachineId, loc: Loc) {
        if !self.cfg.unpersisted_reads {
            return;
        }
        let mut g = self.shadow.lock();
        let cell = g.cells.entry(loc).or_default();
        cell.at_risk = if cell.dirty() { Some(cell.cache) } else { None };
    }

    /// Machines crashed (stop-the-world, called with the fabric halted):
    /// mirror the holder wipe/memory zeroing and resolve at-risk cells.
    ///
    /// `crashed` is the bitmask of crashed machines, `zeroed` the subset
    /// whose (volatile) shared memory was zeroed, `psn_wipe` true when
    /// the PSN variant clears *all* holders of crashed owners' cells.
    pub(crate) fn on_crash(&self, crashed: u64, zeroed: u64, psn_wipe: bool) {
        let mut g = self.shadow.lock();
        for (loc, cell) in g.cells.iter_mut() {
            let owner_bit = 1u64 << loc.owner.index();
            cell.holders &= !crashed;
            if zeroed & owner_bit != 0 {
                cell.mem = 0;
            }
            if psn_wipe && crashed & owner_bit != 0 {
                cell.holders = 0;
            }
            if let Some(v) = cell.at_risk {
                if cell.mem == v {
                    // Persisted after all (e.g. a τ drain beat the crash).
                    cell.at_risk = None;
                } else if cell.holders != 0 && cell.cache == v {
                    // A surviving cache still holds it; it may yet drain.
                } else {
                    cell.at_risk = None;
                    cell.lost = Some(v);
                }
            }
        }
    }

    // ---- allocator / registry hooks -------------------------------------

    /// A block was handed out: (re)register its span and generation.
    pub(crate) fn on_alloc(&self, loc: Loc, cells: u32, gen: u64) {
        let mut g = self.shadow.lock();
        g.region.get_or_insert(loc.owner);
        g.blocks.insert(
            loc.addr.0,
            BlockShadow {
                cells,
                gen,
                state: BlockState::Live,
                reach: false,
                retire_epoch: 0,
            },
        );
    }

    /// A block returned to its free list (directly or via SMR reclaim).
    pub(crate) fn on_free(&self, loc: Loc) {
        let mut g = self.shadow.lock();
        if let Some(b) = g.blocks.get_mut(&loc.addr.0) {
            b.state = BlockState::Freed;
            b.reach = false;
        }
    }

    /// A block entered the SMR limbo list at `epoch`.
    pub(crate) fn on_retire(&self, loc: Loc, epoch: u64) {
        let mut g = self.shadow.lock();
        if let Some(b) = g.blocks.get_mut(&loc.addr.0) {
            if b.state == BlockState::Live {
                b.state = BlockState::Retired;
                b.retire_epoch = epoch;
            }
        }
    }

    /// A named root was committed or looked up: the block holding
    /// `header` is durably reachable, as is everything its persisted
    /// payload points to.
    pub(crate) fn add_root(&self, header: Loc) {
        let mut g = self.shadow.lock();
        if g.blocks.contains_key(&header.addr.0) {
            self.publish_block(&mut g, None, header, header.addr.0);
        }
    }

    // ---- SMR hooks ------------------------------------------------------

    /// Thread in rail `slot` pinned the epoch domain at `epoch` (the
    /// epoch recorded in the slot word — for the shared overflow slot,
    /// the first joiner's).
    pub(crate) fn on_pin(&self, slot: usize, epoch: u64) {
        let mut g = self.shadow.lock();
        let p = &mut g.pins[slot.min(RAIL_SLOTS)];
        if p.depth == 0 {
            p.epoch = epoch;
        }
        p.depth += 1;
    }

    /// Thread in rail `slot` released its pin.
    pub(crate) fn on_unpin(&self, slot: usize) {
        let mut g = self.shadow.lock();
        let p = &mut g.pins[slot.min(RAIL_SLOTS)];
        p.depth = p.depth.saturating_sub(1);
    }

    /// The SMR domain recovered after a crash: every pin died with its
    /// thread.
    pub(crate) fn on_smr_recover(&self) {
        let mut g = self.shadow.lock();
        for p in g.pins.iter_mut() {
            *p = PinShadow::default();
        }
    }

    // ---- internals ------------------------------------------------------

    /// Use-after-retire rules for an application access to `loc`.
    ///
    /// Header cells are exempt (the allocator's free-list links live
    /// there); so are unpinned accesses to freed blocks (the
    /// counted-pointer structures read freed cells and discard the value
    /// under a generation-checked CAS — see [`crate::alloc`]). What must
    /// never happen: touching a *retired* block without a pin old enough
    /// to protect it, or touching a *freed* block while pinned — the
    /// epoch domain's grace guarantee says a pinned thread can still
    /// hold references only to blocks whose reclamation is deferred.
    fn check_retire(&self, g: &Shadow, who: Option<(MachineId, usize)>, loc: Loc, what: &str) {
        if !self.cfg.use_after_retire {
            return;
        }
        let Some(w) = who else { return };
        if g.region != Some(loc.owner) {
            return;
        }
        let Some((&base, b)) = g.blocks.range(..=loc.addr.0).next_back() else {
            return;
        };
        if loc.addr.0 < base || loc.addr.0 >= base + b.cells {
            return;
        }
        let pin = g.pins[w.1.min(RAIL_SLOTS)];
        match b.state {
            BlockState::Live => {}
            BlockState::Retired => {
                if pin.depth == 0 || pin.epoch > b.retire_epoch + 1 {
                    self.report(
                        ViolationClass::UseAfterRetire,
                        loc,
                        who,
                        format!(
                            "{what} of block @{base} (gen {}) retired at epoch {} by a \
                             thread {}",
                            b.gen,
                            b.retire_epoch,
                            if pin.depth == 0 {
                                "holding no epoch pin".to_string()
                            } else {
                                format!("pinned too late (epoch {})", pin.epoch)
                            }
                        ),
                    );
                }
            }
            BlockState::Freed => {
                if pin.depth > 0 {
                    self.report(
                        ViolationClass::UseAfterRetire,
                        loc,
                        who,
                        format!(
                            "{what} of reclaimed block @{base} (gen {}) by a thread pinned \
                             at epoch {} — the block was reclaimed before its grace period",
                            b.gen, pin.epoch
                        ),
                    );
                }
            }
        }
    }

    /// `loc`'s memory value settled to `word`: if `loc` sits in a
    /// durably-reachable block and `word` is a current-generation pointer
    /// to a live unreached block, that block just got published.
    fn publish_word(&self, g: &mut Shadow, who: Option<(MachineId, usize)>, loc: Loc, word: u64) {
        if !self.cfg.durability_races || g.region != Some(loc.owner) {
            return;
        }
        let in_reach = g
            .blocks
            .range(..=loc.addr.0)
            .next_back()
            .is_some_and(|(&base, b)| loc.addr.0 >= base && loc.addr.0 < base + b.cells && b.reach);
        if !in_reach {
            return;
        }
        if let Some(base) = Self::pointee(g, word) {
            self.publish_block(g, who, loc, base);
        }
    }

    /// The payload base `word` points to, iff `word` is exactly a
    /// current-generation pointer to a live block. Generations are
    /// seeded nonzero per block, so application scalars (whose bits
    /// 34..54 are zero for any value < 2³⁴) never alias. Bits 62/63
    /// (null tag, deletion mark) disqualify a word: a marked link never
    /// publishes anything its unmarked predecessor didn't.
    fn pointee(g: &Shadow, word: u64) -> Option<u32> {
        if word >> 62 != 0 {
            return None;
        }
        let base = decode_addr(word)?;
        let b = g.blocks.get(&base)?;
        (b.state == BlockState::Live && !b.reach && b.gen == decode_gen(word)).then_some(base)
    }

    /// Marks the block at `base` durably reachable, reports any dirty
    /// cell in it (the durability race), and chases persisted pointer
    /// words in its payload.
    fn publish_block(
        &self,
        g: &mut Shadow,
        who: Option<(MachineId, usize)>,
        source: Loc,
        base: u32,
    ) {
        let Some(region) = g.region else { return };
        let mut work = vec![base];
        while let Some(base) = work.pop() {
            let Some(b) = g.blocks.get_mut(&base) else {
                continue;
            };
            if b.reach || b.state == BlockState::Freed {
                continue;
            }
            b.reach = true;
            let (cells, gen) = (b.cells, b.gen);
            for a in base..base + cells {
                let loc = Loc::new(region, a);
                let Some(cell) = g.cells.get(&loc) else {
                    continue;
                };
                if self.cfg.durability_races && cell.dirty() {
                    self.report(
                        ViolationClass::DurabilityRace,
                        loc,
                        who,
                        format!(
                            "block @{base} (gen {gen}) became durably reachable via {source} \
                             while this cell is dirty (cache {} vs memory {}): a crash here \
                             loses acknowledged payload that recovery can reach",
                            cell.cache, cell.mem
                        ),
                    );
                }
                let word = cell.mem;
                if let Some(next) = Self::pointee(g, word) {
                    work.push(next);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: MachineId = MachineId(1);

    fn loc(a: u32) -> Loc {
        Loc::new(M, a)
    }

    fn checker() -> Checker {
        Checker::new(CheckConfig::default())
    }

    /// A publication of a fully-persisted block is silent; the same
    /// publication with one dirty cell is a durability race.
    #[test]
    fn publication_of_dirty_block_is_a_race() {
        let ck = checker();
        // Root block (header) @10, 2 cells; node block @20, 2 cells.
        ck.on_alloc(loc(10), 2, 5);
        ck.on_alloc(loc(20), 2, 7);
        // Node payload: value persisted, link persisted.
        ck.on_mutate(Some((M, 0)), loc(20), 0, 42, 42);
        ck.on_mutate(Some((M, 0)), loc(21), 0, 9, 9);
        // Root registered: reach seeds from the header block.
        ck.add_root(loc(10));
        assert_eq!(ck.durability_races(), 0);
        // Link in the root block persists a pointer to the node: clean.
        let p = crate::alloc::layout::ptr_word(20, 7);
        ck.on_mutate(Some((M, 0)), loc(10), 0, p, p);
        assert_eq!(ck.durability_races(), 0);

        // Now a second node whose value never persisted...
        let ck = checker();
        ck.on_alloc(loc(10), 2, 5);
        ck.on_alloc(loc(20), 2, 7);
        // Dirty value: held in a cache, memory stale.
        ck.on_mutate(Some((M, 0)), loc(20), 1 << 1, 42, 0);
        ck.add_root(loc(10));
        let p = crate::alloc::layout::ptr_word(20, 7);
        ck.on_mutate(Some((M, 0)), loc(10), 0, p, p);
        assert_eq!(ck.durability_races(), 1);
        assert_eq!(ck.violations()[0].class, ViolationClass::DurabilityRace);
    }

    /// Scalars whose generation bits are zero never alias a pointer
    /// (generations are seeded nonzero), and stale-generation pointers
    /// do not publish.
    #[test]
    fn scalars_and_stale_pointers_do_not_publish() {
        let ck = checker();
        ck.on_alloc(loc(10), 1, 3);
        ck.on_alloc(loc(20), 2, 7);
        ck.on_mutate(Some((M, 0)), loc(20), 1 << 1, 1, 0); // dirty
        ck.add_root(loc(10));
        // A scalar that happens to decode to address 20 but carries gen 0.
        ck.on_mutate(Some((M, 0)), loc(10), 0, 21, 21);
        assert_eq!(ck.durability_races(), 0);
        // A stale-generation pointer to the same block.
        let stale = crate::alloc::layout::ptr_word(20, 6);
        ck.on_mutate(Some((M, 0)), loc(10), 0, stale, stale);
        assert_eq!(ck.durability_races(), 0);
    }

    /// An acknowledged-but-unpersisted value whose only cached copy dies
    /// in the crash fires on the next read; a drained value does not.
    #[test]
    fn lost_ack_fires_on_recovery_read() {
        let ck = checker();
        // Store settles into machine 1's cache only (the FlitX86 shape).
        ck.on_mutate(Some((M, 0)), loc(5), 1 << 1, 7, 0);
        ck.on_ack(M, loc(5));
        // Crash machine 1; its memory is NVM (not zeroed).
        ck.on_crash(1 << 1, 0, false);
        ck.on_load((MachineId(0), 0), loc(5));
        assert_eq!(ck.unpersisted_reads(), 1);
        // Fires once per lost value.
        ck.on_load((MachineId(0), 0), loc(5));
        assert_eq!(ck.unpersisted_reads(), 1);

        let ck = checker();
        ck.on_mutate(Some((M, 0)), loc(5), 1 << 1, 7, 0);
        // Drain before the ack: clean, nothing at risk.
        ck.on_mutate(None, loc(5), 1 << 1, 7, 7);
        ck.on_ack(M, loc(5));
        ck.on_crash(1 << 1, 0, false);
        ck.on_load((MachineId(0), 0), loc(5));
        assert_eq!(ck.unpersisted_reads(), 0);
    }

    /// Retired blocks may only be touched under a protecting pin; freed
    /// blocks never by a pinned thread.
    #[test]
    fn retire_lifecycle_rules() {
        let ck = checker();
        ck.on_alloc(loc(30), 2, 4);
        ck.on_retire(loc(30), 10);
        // Unpinned access to a retired block: violation.
        ck.on_load((M, 3), loc(31));
        assert_eq!(ck.use_after_retire(), 1);
        // Access under a protecting pin (epoch ≤ retire + 1): fine.
        ck.on_pin(4, 10);
        ck.on_load((M, 4), loc(31));
        assert_eq!(ck.use_after_retire(), 1);
        ck.on_unpin(4);
        // Freed block touched by a pinned thread: the seeded inline-free
        // bug's signature.
        ck.on_free(loc(30));
        ck.on_pin(5, 12);
        ck.on_load((M, 5), loc(30));
        assert_eq!(ck.use_after_retire(), 2);
        // Unpinned read of a freed cell is the counted-pointer
        // structures' legal pattern.
        ck.on_load((M, 6), loc(30));
        assert_eq!(ck.use_after_retire(), 2);
    }

    /// Barrier batches apply persists before publication checks, so a
    /// link and its payload draining in the same barrier are race-free
    /// regardless of drain order.
    #[test]
    fn barrier_batch_orders_persists_before_publications() {
        let ck = checker();
        ck.on_alloc(loc(10), 1, 3);
        ck.on_alloc(loc(20), 2, 7);
        ck.add_root(loc(10));
        // Cache writes: value and the root's link, all pending.
        ck.on_mutate(Some((M, 0)), loc(20), 1 << 1, 42, 0);
        ck.on_mutate(Some((M, 0)), loc(21), 1 << 1, 9, 9);
        let p = crate::alloc::layout::ptr_word(20, 7);
        ck.on_mutate(Some((M, 0)), loc(10), 1 << 1, p, 0);
        // One barrier retires both — link first in the batch.
        ck.on_barrier(Some((M, 0)), &[(loc(10), 0, p, p), (loc(20), 0, 42, 42)]);
        assert_eq!(ck.durability_races(), 0);
    }

    #[test]
    fn fingerprint_distinguishes_persist_states() {
        let ck = checker();
        let f0 = ck.fingerprint();
        ck.on_mutate(Some((M, 0)), loc(5), 1 << 1, 7, 0);
        let f1 = ck.fingerprint();
        assert_ne!(f0, f1);
        ck.on_mutate(None, loc(5), 1 << 1, 7, 7);
        let f2 = ck.fingerprint();
        assert_ne!(f1, f2);
    }

    #[test]
    #[should_panic(expected = "persistency sanitizer")]
    fn fail_fast_panics() {
        let ck = Checker::new(CheckConfig {
            fail_fast: true,
            ..CheckConfig::default()
        });
        ck.on_alloc(loc(30), 1, 4);
        ck.on_retire(loc(30), 1);
        ck.on_load((M, 0), loc(30));
    }
}
