//! Flat-combining/elimination fronts with **batched persistence** for
//! the durable queue and stack.
//!
//! A plain [`DurableQueue`]/[`DurableStack`] op fights a CAS war on one
//! or two hot cells *and* pays its own persistence sync. Both costs are
//! per-op; neither needs to be. A [`Combined`] front turns N concurrent
//! ops into one sequential pass by a single *combiner*, and — under a
//! deferring strategy such as [`FlitAsync`](crate::FlitAsync) — covers
//! the whole batch's persistence with ~one barrier.
//!
//! # The announcement-slot protocol
//!
//! Every front owns a volatile *board*: [`COMBINE_SLOTS`]
//! cache-line-padded slots, indexed by the same leased thread-slot ids
//! that back the stats rails (PR 4), so a live thread has an exclusive
//! slot and never contends on announcement. One operation is a slot
//! round-trip:
//!
//! 1. **Announce.** The caller writes its argument and publishes the
//!    slot as `PENDING_INSERT`/`PENDING_REMOVE` (release store), then
//!    spins (with scheduler yields) on its own slot only.
//! 2. **Elect.** While still pending, the caller repeatedly tries the
//!    board's combiner lock (a single CAS). Exactly one waiter wins and
//!    becomes the combiner; everyone else keeps spinning on their slot.
//! 3. **Combine.** The combiner claims every pending slot with a CAS
//!    `PENDING → TAKEN`, then applies the claimed ops *sequentially* to
//!    the durable structure. Holding the lock makes it the structure's
//!    sole mutator, so each op is applied with plain loads and
//!    [`Persistence::batched_store`]s — no CAS retries, no FliT counter
//!    traffic — and a deferring strategy may postpone every sync to one
//!    [`Persistence::flush_batch`].
//! 4. **Eliminate.** A concurrent insert/remove pair may be linearized
//!    back-to-back and annihilate: the remove returns the insert's
//!    value and neither touches the structure or NVM at all. For the
//!    LIFO stack any pair qualifies ([`Elimination::Always`]); for the
//!    FIFO queue a pair is state-neutral only at a moment the queue is
//!    *empty* ([`Elimination::WhenEmpty`]) — an enqueue immediately
//!    followed by a dequeue at an empty queue hands over its element
//!    and restores emptiness, a valid FIFO serialization of two
//!    concurrent ops. The combiner, being sole mutator, knows exactly
//!    when it is at such a moment.
//! 5. **Acknowledge.** Only *after* the batch flush does the combiner
//!    write results and flip the slots to `DONE_*`; the spinning
//!    callers read their result and reset their slot to `EMPTY`.
//!
//! # The volatile-slot crash contract
//!
//! The board lives in ordinary process memory, never in the simulated
//! (or real) pool — it is rebuilt empty on every restart. That is the
//! whole crash story:
//!
//! - An op is acknowledged only after [`Persistence::flush_batch`]
//!   returned, so an acknowledged op is durable (under a sound
//!   strategy) and linearized.
//! - A crash before acknowledgement loses at most announcements and
//!   unflushed batch work. The combiner applies ops in an order whose
//!   every durable prefix is a consistent structure state (the batched
//!   paths store value → next → link, exactly the plain paths' persist
//!   order), so recovery sees *some* prefix of the batch — never a
//!   half-applied op, never a torn node.
//! - When the combiner's machine crashes mid-batch, the combiner marks
//!   every claimed slot `ABORTED` and each caller gets
//!   [`Crashed`]: outcome unknown, exactly the
//!   ambiguity a crash gives plain ops that were in flight.
//! - Nodes unlinked by a batch are released only after the flush — a
//!   crash can never leave a *persisted* head/top pointing at a block
//!   already handed out again. Released nodes land in the board's
//!   volatile *spare cache* for direct reuse by later inserts (skipping
//!   the allocator round trip); every cached block is durably unlinked
//!   and still allocated, so a restart that loses the cache merely
//!   leaks those blocks — the same exposure as a plain op crashing
//!   between unlink and free — and `recover` returns them to the
//!   allocator instead.
//!
//! Because announcement slots are volatile and all durable writes go
//! through the structure's existing [`Persistence`] strategy, a
//! combined structure recovers through the unchanged
//! [`Session::recover_roots`](crate::api::Session::recover_roots) path,
//! and durable linearizability holds under every sound `PersistMode`.
//!
//! # Sole-mutator contract
//!
//! All mutations of a combined structure must go through its front (the
//! overflow path for threads without an exclusive slot also takes the
//! combiner lock). Mixing plain `enqueue`/`push` calls on the same
//! underlying structure with a live front would violate the combiner's
//! sole-mutator assumption; the session constructors
//! (`create_queue_combined` & co.) hand out only wrapped handles, so
//! this cannot happen by accident. Read-only helpers (`drain`,
//! `recover`) are for quiescent phases — tests and post-crash repair.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use cxl0_model::{Loc, MachineId};
use parking_lot::Mutex;

use crate::alloc::BlockRef;
use crate::api::Word;
use crate::backend::{thread_slot_index, AsNode, NodeHandle};
use crate::ds::queue::DurableQueue;
use crate::ds::stack::DurableStack;
use crate::error::{Crashed, OpResult};
use crate::flit::Persistence;

/// Announcement slots per board. Threads whose leased slot id is out of
/// range (more than this many concurrently live threads) fall back to
/// acquiring the combiner lock and applying a batch of one.
pub const COMBINE_SLOTS: usize = 64;

/// Bound on the board's volatile spare-node cache. Nodes a *flushed*
/// batch unlinked are handed straight back to the next batch's inserts
/// instead of round-tripping through the allocator; past this many the
/// overflow is freed normally. Sized at a few batches' worth — the
/// cache only needs to cover the combiner's own churn.
const SPARE_CAP: usize = 256;

// Slot states. EMPTY ⟶ PENDING_* (caller announce) ⟶ TAKEN (combiner
// claim) ⟶ DONE_*/ABORTED (combiner ack) ⟶ EMPTY (caller reap). The
// only racing transition is PENDING_* ⟶ {TAKEN, EMPTY}: a combiner
// claiming vs. the caller cancelling after its machine crashed — both
// CAS, exactly one wins.
const EMPTY: u64 = 0;
const PENDING_INSERT: u64 = 1;
const PENDING_REMOVE: u64 = 2;
const TAKEN: u64 = 3;
const DONE_OK: u64 = 4;
const DONE_NONE: u64 = 5;
const DONE_FULL: u64 = 6;
const ABORTED: u64 = 7;

/// One announcement slot, padded to its own cache line so a spinning
/// owner never false-shares with its neighbours.
#[repr(align(128))]
#[derive(Debug)]
struct Slot {
    state: AtomicU64,
    arg: AtomicU64,
    result: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            state: AtomicU64::new(EMPTY),
            arg: AtomicU64::new(0),
            result: AtomicU64::new(0),
        }
    }
}

/// The combiner lock, padded away from the slots.
#[repr(align(128))]
#[derive(Debug)]
struct CombinerLock(AtomicU64);

/// Monotonic counters shared by every combining front of a cluster,
/// surfaced through
/// [`Session::stats_delta`](crate::api::Session::stats_delta) so the
/// amortization claim is observable, not asserted.
#[derive(Debug, Default)]
pub struct CombineStats {
    batches: AtomicU64,
    ops: AtomicU64,
    eliminations: AtomicU64,
    elections: AtomicU64,
    barriers_saved: AtomicU64,
    spare_reuses: AtomicU64,
}

impl CombineStats {
    /// Combiner passes that applied or eliminated at least one op.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Operations completed through a combiner (applied + eliminated).
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Operations annihilated by opposite-op elimination (each
    /// insert/remove pair counts two).
    pub fn eliminations(&self) -> u64 {
        self.eliminations.load(Ordering::Relaxed)
    }

    /// Combiner-lock acquisitions.
    pub fn elections(&self) -> u64 {
        self.elections.load(Ordering::Relaxed)
    }

    /// Per-op persistence syncs avoided: batched ops folded under one
    /// batch barrier (when the strategy defers) plus eliminated ops,
    /// which skip persistence entirely.
    pub fn barriers_saved(&self) -> u64 {
        self.barriers_saved.load(Ordering::Relaxed)
    }

    /// Inserts served from the board's spare-node cache — nodes a
    /// flushed batch unlinked, reused directly without an allocator
    /// round trip.
    pub fn spare_reuses(&self) -> u64 {
        self.spare_reuses.load(Ordering::Relaxed)
    }

    /// Mean operations per combined batch (0 when no batch ran yet).
    pub fn ops_per_batch(&self) -> f64 {
        let b = self.batches();
        if b == 0 {
            0.0
        } else {
            self.ops() as f64 / b as f64
        }
    }
}

/// The volatile announcement board of one combined structure. Shared by
/// every [`Combined`] handle of that structure (the cluster keys boards
/// by root cell), rebuilt empty after a restart.
#[derive(Debug)]
pub struct CombineBoard {
    slots: Box<[Slot]>,
    lock: CombinerLock,
    /// One past the highest slot ever announced on: bounds the
    /// combiner's scan.
    watermark: AtomicUsize,
    /// Announcements currently in flight — the contention signal behind
    /// the batch-formation pause in `submit`. With another op in
    /// flight, waiting a beat forms a batch; alone, the announcer
    /// self-elects with no added latency.
    active: AtomicU64,
    /// The spare-node cache: blocks unlinked by *flushed* batches,
    /// awaiting direct reuse by later inserts (capped at [`SPARE_CAP`]).
    /// Only ever touched under the combiner lock; volatile like the
    /// rest of the board — an entry is always a durably-unlinked,
    /// still-allocated block, so losing the list on restart leaks those
    /// blocks (the same exposure as a plain op crashing mid-free) and
    /// [`Combined::recover`] returns them to the allocator instead.
    spare: Mutex<Vec<BlockRef>>,
    stats: Arc<CombineStats>,
}

impl CombineBoard {
    pub(crate) fn new(stats: Arc<CombineStats>) -> Self {
        CombineBoard {
            slots: (0..COMBINE_SLOTS).map(|_| Slot::new()).collect(),
            lock: CombinerLock(AtomicU64::new(0)),
            watermark: AtomicUsize::new(0),
            active: AtomicU64::new(0),
            spare: Mutex::new(Vec::new()),
            stats,
        }
    }

    fn try_lock(&self) -> Option<BoardGuard<'_>> {
        if self.lock.0.load(Ordering::Relaxed) == 0
            && self
                .lock
                .0
                .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        {
            self.stats.elections.fetch_add(1, Ordering::Relaxed);
            Some(BoardGuard(self))
        } else {
            None
        }
    }

    fn lock_blocking(&self) -> BoardGuard<'_> {
        let mut spins = 0u32;
        loop {
            if let Some(g) = self.try_lock() {
                return g;
            }
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

struct BoardGuard<'a>(&'a CombineBoard);

impl Drop for BoardGuard<'_> {
    fn drop(&mut self) {
        self.0.lock.0.store(0, Ordering::Release);
    }
}

/// When a combiner may annihilate a concurrent insert/remove pair
/// without touching the structure (see [`Combinable::ELIMINATION`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Elimination {
    /// Opposite ops never cancel.
    Disabled,
    /// Any insert/remove pair cancels: correct for LIFO structures,
    /// where push;pop linearized back-to-back is state-neutral at any
    /// point.
    Always,
    /// A pair cancels only at a moment the structure is empty: correct
    /// for FIFO structures, where enqueue;dequeue is state-neutral
    /// exactly when there is nothing the dequeue should have returned
    /// first. The combiner discovers such moments for free — a remove
    /// it applies while inserts are still queued behind it comes back
    /// `None` precisely at an empty point.
    WhenEmpty,
}

/// A durable structure that can sit behind a [`Combined`] front: one
/// word in, one word out, applied by a sole mutator.
///
/// The `*_batched` methods are called **only** by a combiner holding
/// the structure's board lock — do not call them directly; they assume
/// exclusive mutation and skip the lock-free algorithms' synchronization
/// entirely.
pub trait Combinable: Clone + Send + Sync + 'static {
    /// How opposite operations in one batch may annihilate. All claimed
    /// ops are concurrent (each was pending when the combiner claimed
    /// it), so the combiner may serialize them in any order that the
    /// structure's sequential spec allows.
    const ELIMINATION: Elimination;

    /// The durable root cell identifying this structure (the cluster's
    /// board-sharing key).
    fn root_cell(&self) -> Loc;

    /// The persistence strategy batched stores go through.
    fn persistence(&self) -> &Arc<dyn Persistence>;

    /// Sole-mutator insert of one word; `Ok(false)` when the node heap
    /// is exhausted. `spare` is the board's spare-node cache: an insert
    /// pops a recycled block from it before falling back to the
    /// allocator. Every spare entry is durably unlinked (it came out of
    /// a flushed batch) and still allocated, so reusing it — keeping
    /// its generation — has exactly the timing of an allocator
    /// free-then-realloc, minus the round trip.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    fn insert_batched(
        &self,
        node: &NodeHandle,
        raw: u64,
        spare: &mut Vec<BlockRef>,
    ) -> OpResult<bool>;

    /// Sole-mutator remove; `Ok(None)` when empty. Unlinked blocks go
    /// onto `frees`; after the batch flush the combiner feeds them to
    /// the spare cache (overflow to [`Combinable::reclaim_batch`]).
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    fn remove_batched(&self, node: &NodeHandle, frees: &mut Vec<BlockRef>)
        -> OpResult<Option<u64>>;

    /// Returns blocks a flushed batch unlinked to the allocator.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    fn reclaim_batch(&self, node: &NodeHandle, frees: &[BlockRef]) -> OpResult<()>;
}

impl<T: Word> Combinable for DurableQueue<T> {
    const ELIMINATION: Elimination = Elimination::WhenEmpty;

    fn root_cell(&self) -> Loc {
        self.header_cell()
    }

    fn persistence(&self) -> &Arc<dyn Persistence> {
        self.persist_handle()
    }

    fn insert_batched(
        &self,
        node: &NodeHandle,
        raw: u64,
        spare: &mut Vec<BlockRef>,
    ) -> OpResult<bool> {
        self.enqueue_batched(node, raw, spare)
    }

    fn remove_batched(
        &self,
        node: &NodeHandle,
        frees: &mut Vec<BlockRef>,
    ) -> OpResult<Option<u64>> {
        self.dequeue_batched(node, frees)
    }

    fn reclaim_batch(&self, node: &NodeHandle, frees: &[BlockRef]) -> OpResult<()> {
        DurableQueue::reclaim_batch(self, node, frees)
    }
}

impl<T: Word> Combinable for DurableStack<T> {
    const ELIMINATION: Elimination = Elimination::Always;

    fn root_cell(&self) -> Loc {
        self.top_cell()
    }

    fn persistence(&self) -> &Arc<dyn Persistence> {
        self.persist_handle()
    }

    fn insert_batched(
        &self,
        node: &NodeHandle,
        raw: u64,
        spare: &mut Vec<BlockRef>,
    ) -> OpResult<bool> {
        self.push_batched(node, raw, spare)
    }

    fn remove_batched(
        &self,
        node: &NodeHandle,
        frees: &mut Vec<BlockRef>,
    ) -> OpResult<Option<u64>> {
        self.pop_batched(node, frees)
    }

    fn reclaim_batch(&self, node: &NodeHandle, frees: &[BlockRef]) -> OpResult<()> {
        DurableStack::reclaim_batch(self, node, frees)
    }
}

/// A flat-combining front over a durable structure (see the [module
/// docs](self) for the protocol and crash contract). Clones share the
/// same board; obtain cluster-wide shared fronts through
/// [`Session::create_queue_combined`](crate::api::Session::create_queue_combined)
/// and friends.
#[derive(Debug, Clone)]
pub struct Combined<S: Combinable> {
    inner: S,
    board: Arc<CombineBoard>,
}

/// A [`DurableQueue`] behind a combining front.
pub type CombinedQueue<T = u64> = Combined<DurableQueue<T>>;

/// A [`DurableStack`] behind a combining front.
pub type CombinedStack<T = u64> = Combined<DurableStack<T>>;

impl<S: Combinable> Combined<S> {
    /// Wraps `inner` with a fresh private board (raw-fabric use and
    /// tests; sessions share boards cluster-wide instead).
    pub fn new(inner: S) -> Self {
        Combined::attach(inner, Arc::new(CombineBoard::new(Arc::default())))
    }

    pub(crate) fn attach(inner: S, board: Arc<CombineBoard>) -> Self {
        Combined { inner, board }
    }

    /// The front's combining counters.
    pub fn stats(&self) -> &Arc<CombineStats> {
        &self.board.stats
    }

    /// Announces one op, spins for its result, and moonlights as the
    /// combiner when the lock is free.
    fn submit(&self, node: &NodeHandle, kind: u64, arg: u64) -> OpResult<(u64, u64)> {
        let idx = thread_slot_index();
        if idx >= COMBINE_SLOTS {
            return self.apply_solo(node, kind, arg);
        }
        let slot = &self.board.slots[idx];
        debug_assert_eq!(
            slot.state.load(Ordering::Relaxed),
            EMPTY,
            "one combined op in flight per thread per structure"
        );
        self.board.active.fetch_add(1, Ordering::AcqRel);
        slot.arg.store(arg, Ordering::Relaxed);
        slot.state.store(kind, Ordering::Release);
        self.board.watermark.fetch_max(idx + 1, Ordering::AcqRel);
        let mut spins = 0u32;
        loop {
            match slot.state.load(Ordering::Acquire) {
                st @ (DONE_OK | DONE_NONE | DONE_FULL) => {
                    let res = slot.result.load(Ordering::Acquire);
                    slot.state.store(EMPTY, Ordering::Release);
                    self.board.active.fetch_sub(1, Ordering::AcqRel);
                    return Ok((st, res));
                }
                ABORTED => {
                    let m = slot.result.load(Ordering::Acquire) as usize;
                    slot.state.store(EMPTY, Ordering::Release);
                    self.board.active.fetch_sub(1, Ordering::AcqRel);
                    return Err(Crashed {
                        machine: MachineId(m),
                    });
                }
                st if st == kind => {
                    spins = spins.wrapping_add(1);
                    if spins <= 1 || (spins <= 4 && self.board.active.load(Ordering::Acquire) > 1) {
                        // Batch-formation pause: yield before trying to
                        // elect ourselves, so an in-flight combiner can
                        // claim this op — and, when cores are scarce,
                        // so *other* announcing threads get scheduled
                        // first. Electing on the very first iteration
                        // would win a free lock instantly and combine a
                        // batch of one, which amortizes nothing. The
                        // first yield is unconditional — with runnable
                        // peers it is what lets their announcements
                        // surface at all (otherwise fast ops serialize
                        // into permanent batches of one); with no peer
                        // it returns immediately, costing a lone
                        // announcer almost nothing. Further yields are
                        // taken only while another announcement is
                        // actually in flight.
                        std::thread::yield_now();
                        continue;
                    }
                    if let Some(guard) = self.board.try_lock() {
                        // We won the election. A combiner-machine crash
                        // surfaces through our own slot (ABORTED), so the
                        // pass's error needs no separate handling here.
                        let _ = self.combine(node);
                        drop(guard);
                        continue;
                    }
                    if spins.is_multiple_of(64) {
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                    // Un-announce if our machine crashed while nobody
                    // claimed us, instead of spinning forever on a board
                    // no combiner may ever visit again.
                    if spins.is_multiple_of(4096)
                        && node.fabric().is_crashed(node.machine())
                        && slot
                            .state
                            .compare_exchange(kind, EMPTY, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                    {
                        self.board.active.fetch_sub(1, Ordering::AcqRel);
                        return Err(Crashed {
                            machine: node.machine(),
                        });
                    }
                }
                _ => {
                    // TAKEN: a combiner owns the op; the ack is coming.
                    spins = spins.wrapping_add(1);
                    if spins.is_multiple_of(64) {
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }
        }
    }

    /// Fallback for threads without an exclusive announcement slot:
    /// take the combiner lock and run a batch of one, preserving the
    /// sole-mutator invariant.
    fn apply_solo(&self, node: &NodeHandle, kind: u64, arg: u64) -> OpResult<(u64, u64)> {
        let guard = self.board.lock_blocking();
        let mut spare = self.board.spare.lock();
        let spare_before = spare.len();
        let mut frees = Vec::new();
        let (st, res) = if kind == PENDING_INSERT {
            let ok = self.inner.insert_batched(node, arg, &mut spare)?;
            if ok {
                (DONE_OK, 1)
            } else {
                (DONE_FULL, 0)
            }
        } else {
            match self.inner.remove_batched(node, &mut frees)? {
                Some(v) => (DONE_OK, v),
                None => (DONE_NONE, 0),
            }
        };
        let reused = (spare_before - spare.len()) as u64;
        self.inner.persistence().flush_batch(node)?;
        self.stash_frees(node, &mut spare, &frees)?;
        let stats = &self.board.stats;
        stats.batches.fetch_add(1, Ordering::Relaxed);
        stats.ops.fetch_add(1, Ordering::Relaxed);
        stats.spare_reuses.fetch_add(reused, Ordering::Relaxed);
        drop(spare);
        drop(guard);
        Ok((st, res))
    }

    /// Post-crash board repair (quiescent phases only): returns every
    /// spare-cache block to the allocator. Spare blocks are always
    /// durably unlinked and still allocated, so freeing them is safe at
    /// any quiescent point; emptying the volatile cache leaves the
    /// board exactly as a real restart would — without leaking the
    /// blocks a restart loses.
    fn drain_spare(&self, node: &NodeHandle) -> OpResult<()> {
        let frees = std::mem::take(&mut *self.board.spare.lock());
        self.inner.reclaim_batch(node, &frees)
    }

    /// Post-flush reclamation: blocks the batch unlinked refill the
    /// spare cache for direct reuse by later inserts; past
    /// [`SPARE_CAP`] the overflow goes back to the allocator.
    fn stash_frees(
        &self,
        node: &NodeHandle,
        spare: &mut Vec<BlockRef>,
        frees: &[BlockRef],
    ) -> OpResult<()> {
        let room = SPARE_CAP.saturating_sub(spare.len()).min(frees.len());
        spare.extend_from_slice(&frees[..room]);
        self.inner.reclaim_batch(node, &frees[room..])
    }

    /// One combining pass; the caller holds the board lock.
    fn combine(&self, node: &NodeHandle) -> OpResult<()> {
        let _span = node.trace_span(crate::trace::OpKind::CombineBatch);
        let board = &*self.board;
        let hi = board.watermark.load(Ordering::Acquire).min(COMBINE_SLOTS);
        let mut claimed: Vec<(usize, u64, u64)> = Vec::with_capacity(hi);
        for (i, slot) in board.slots[..hi].iter().enumerate() {
            let st = slot.state.load(Ordering::Acquire);
            if (st == PENDING_INSERT || st == PENDING_REMOVE)
                && slot
                    .state
                    .compare_exchange(st, TAKEN, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                claimed.push((i, st, slot.arg.load(Ordering::Acquire)));
            }
        }
        if claimed.is_empty() {
            return Ok(());
        }

        // Partition the claimed ops, preserving slot order within each
        // kind. All claimed ops are concurrent (each was pending at
        // claim time), so the combiner may serialize them in any
        // spec-respecting order.
        let mut inserts: VecDeque<(usize, u64)> = VecDeque::new();
        let mut removes: VecDeque<usize> = VecDeque::new();
        for &(i, kind, arg) in &claimed {
            if kind == PENDING_INSERT {
                inserts.push_back((i, arg));
            } else {
                removes.push_back(i);
            }
        }
        let mut acks: Vec<(usize, u64, u64)> = Vec::with_capacity(claimed.len());
        let mut pairs = 0u64;

        // Static elimination: for a LIFO structure every insert/remove
        // pair linearizes back-to-back and annihilates before the
        // structure is touched at all.
        if S::ELIMINATION == Elimination::Always {
            while inserts.front().is_some() && removes.front().is_some() {
                let (ins_i, arg) = inserts.pop_front().expect("front checked");
                let rem_i = removes.pop_front().expect("front checked");
                acks.push((ins_i, DONE_OK, 1));
                acks.push((rem_i, DONE_OK, arg));
                pairs += 1;
            }
        }

        // Sole-mutator application. Removes go first: each either
        // drains an element that predates the batch or comes back
        // `None` at an *empty point*, where a `WhenEmpty` structure
        // cancels it against a still-pending insert instead of
        // touching NVM. Leftover inserts apply at the end, drawing
        // their nodes from the spare cache before the allocator.
        let mut spare = board.spare.lock();
        let spare_before = spare.len();
        let mut frees: Vec<BlockRef> = Vec::new();
        let mut applied = 0u64; // ops that issued batched stores
        let mut err: Option<Crashed> = None;
        'apply: {
            while let Some(&rem_i) = removes.front() {
                match self.inner.remove_batched(node, &mut frees) {
                    Ok(Some(v)) => {
                        applied += 1;
                        acks.push((rem_i, DONE_OK, v));
                    }
                    Ok(None) => {
                        if S::ELIMINATION == Elimination::WhenEmpty {
                            if let Some((ins_i, arg)) = inserts.pop_front() {
                                acks.push((ins_i, DONE_OK, 1));
                                acks.push((rem_i, DONE_OK, arg));
                                pairs += 1;
                                removes.pop_front();
                                continue;
                            }
                        }
                        acks.push((rem_i, DONE_NONE, 0));
                    }
                    Err(e) => {
                        err = Some(e);
                        break 'apply;
                    }
                }
                removes.pop_front();
            }
            while let Some(&(ins_i, arg)) = inserts.front() {
                match self.inner.insert_batched(node, arg, &mut spare) {
                    Ok(true) => {
                        applied += 1;
                        acks.push((ins_i, DONE_OK, 1));
                    }
                    Ok(false) => acks.push((ins_i, DONE_FULL, 0)),
                    Err(e) => {
                        err = Some(e);
                        break 'apply;
                    }
                }
                inserts.pop_front();
            }
        }
        let reused = (spare_before - spare.len()) as u64;
        if err.is_none() && applied > 0 {
            err = self.inner.persistence().flush_batch(node).err();
        }
        if let Some(e) = err {
            // Abort the whole batch: nothing was acknowledged, so every
            // caller sees an error — never a half-applied batch reported
            // as complete. The unlinked blocks are dropped, not cached:
            // with the batch unflushed, the durable structure may still
            // contain them, so they must not be handed out again (they
            // leak, exactly a plain op's mid-free crash exposure).
            for &(i, _, _) in &claimed {
                let slot = &board.slots[i];
                slot.result.store(e.machine.0 as u64, Ordering::Relaxed);
                slot.state.store(ABORTED, Ordering::Release);
            }
            return Err(e);
        }
        // Reclamation strictly after the flush; on a crash here the
        // blocks leak (exactly a plain op's mid-free crash exposure) but
        // the acknowledged results stand.
        let reclaim_err = self.stash_frees(node, &mut spare, &frees).err();
        drop(spare);
        for &(i, st, res) in &acks {
            let slot = &board.slots[i];
            slot.result.store(res, Ordering::Relaxed);
            slot.state.store(st, Ordering::Release);
        }
        let stats = &board.stats;
        stats.batches.fetch_add(1, Ordering::Relaxed);
        stats.ops.fetch_add(claimed.len() as u64, Ordering::Relaxed);
        stats.eliminations.fetch_add(2 * pairs, Ordering::Relaxed);
        stats.spare_reuses.fetch_add(reused, Ordering::Relaxed);
        let mut saved = 2 * pairs;
        if self.inner.persistence().defers_batches() {
            saved += applied.saturating_sub(1);
        }
        stats.barriers_saved.fetch_add(saved, Ordering::Relaxed);
        match reclaim_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl<T: Word> Combined<DurableQueue<T>> {
    /// Enqueues `v` through the combining front. Returns `false` (no
    /// error) if the node heap is exhausted.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed, or if the combiner
    /// serving this op crashed mid-batch (outcome unknown, as for any
    /// op in flight at a crash).
    pub fn enqueue(&self, at: &impl AsNode, v: T) -> OpResult<bool> {
        let _span = at.as_node().trace_span(crate::trace::OpKind::Enqueue);
        let (st, _) = self.submit(at.as_node(), PENDING_INSERT, v.to_word())?;
        Ok(st == DONE_OK)
    }

    /// Dequeues through the combining front; `None` when empty.
    ///
    /// # Errors
    ///
    /// See [`Combined::enqueue`].
    pub fn dequeue(&self, at: &impl AsNode) -> OpResult<Option<T>> {
        let _span = at.as_node().trace_span(crate::trace::OpKind::Dequeue);
        let (st, res) = self.submit(at.as_node(), PENDING_REMOVE, 0)?;
        Ok((st == DONE_OK).then(|| T::from_word(res)))
    }

    /// Post-crash repair (quiescent phases only):
    /// [`DurableQueue::recover`] on the structure, then the board's
    /// spare-node cache goes back to the allocator.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn recover(&self, at: &impl AsNode) -> OpResult<()> {
        self.inner.recover(at)?;
        self.drain_spare(at.as_node())
    }

    /// Drains the queue (quiescent phases only).
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn drain(&self, at: &impl AsNode) -> OpResult<Vec<T>> {
        self.inner.drain(at)
    }

    /// The underlying queue's header cell (for re-attachment).
    pub fn header_cell(&self) -> Loc {
        self.inner.header_cell()
    }
}

impl<T: Word> Combined<DurableStack<T>> {
    /// Pushes `v` through the combining front. Returns `false` (no
    /// error) if the node heap is exhausted.
    ///
    /// # Errors
    ///
    /// See [`Combined::enqueue`].
    pub fn push(&self, at: &impl AsNode, v: T) -> OpResult<bool> {
        let _span = at.as_node().trace_span(crate::trace::OpKind::Push);
        let (st, _) = self.submit(at.as_node(), PENDING_INSERT, v.to_word())?;
        Ok(st == DONE_OK)
    }

    /// Pops through the combining front; `None` when empty. May be
    /// served by elimination against a concurrent push without touching
    /// the durable structure.
    ///
    /// # Errors
    ///
    /// See [`Combined::enqueue`].
    pub fn pop(&self, at: &impl AsNode) -> OpResult<Option<T>> {
        let _span = at.as_node().trace_span(crate::trace::OpKind::Pop);
        let (st, res) = self.submit(at.as_node(), PENDING_REMOVE, 0)?;
        Ok((st == DONE_OK).then(|| T::from_word(res)))
    }

    /// Post-crash repair (quiescent phases only): the stack's list
    /// needs none, but the board's spare-node cache goes back to the
    /// allocator.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn recover(&self, at: &impl AsNode) -> OpResult<()> {
        self.drain_spare(at.as_node())
    }

    /// Drains the stack (quiescent phases only).
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn drain(&self, at: &impl AsNode) -> OpResult<Vec<T>> {
        self.inner.drain(at)
    }

    /// The underlying stack's top cell (for re-attachment).
    pub fn top_cell(&self) -> Loc {
        self.inner.top_cell()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::Allocator;
    use crate::backend::SimFabric;
    use crate::flit::FlitCxl0;
    use crate::flit_async::FlitAsync;
    use cxl0_model::{MachineId, SystemConfig};

    fn setup(persist: Arc<dyn Persistence>) -> (Arc<SimFabric>, CombinedQueue, CombinedStack) {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(3, 1 << 14));
        let alloc = Arc::new(Allocator::over_region(f.config(), MachineId(2), persist));
        let node = f.node(MachineId(0));
        let q = Combined::new(DurableQueue::create(&alloc, &node).unwrap().unwrap());
        let s = Combined::new(DurableStack::create(&alloc, &node).unwrap().unwrap());
        (f, q, s)
    }

    #[test]
    fn fifo_and_lifo_through_the_front() {
        let (f, q, s) = setup(Arc::new(FlitCxl0::default()));
        let node = f.node(MachineId(0));
        for v in 1..=5u64 {
            assert!(q.enqueue(&node, v).unwrap());
            assert!(s.push(&node, v).unwrap());
        }
        for v in 1..=5u64 {
            assert_eq!(q.dequeue(&node).unwrap(), Some(v));
            assert_eq!(s.pop(&node).unwrap(), Some(6 - v));
        }
        assert_eq!(q.dequeue(&node).unwrap(), None);
        assert_eq!(s.pop(&node).unwrap(), None);
    }

    #[test]
    fn batch_of_one_counts_as_batch() {
        let (f, q, _s) = setup(Arc::new(FlitAsync::default()));
        let node = f.node(MachineId(0));
        q.enqueue(&node, 7).unwrap();
        assert_eq!(q.stats().batches(), 1);
        assert_eq!(q.stats().ops(), 1);
        assert!(q.stats().elections() >= 1);
    }

    #[test]
    fn concurrent_ops_conserve_elements_and_batch() {
        let (f, q, _s) = setup(Arc::new(FlitAsync::default()));
        let threads = 8;
        let per = 100u64;
        let mut handles = Vec::new();
        for t in 0..threads as u64 {
            let q = q.clone();
            let node = f.node(MachineId((t % 2) as usize));
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    assert!(q.enqueue(&node, t * 1000 + i).unwrap());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let node = f.node(MachineId(0));
        let got = q.drain(&node).unwrap();
        assert_eq!(got.len() as u64, per * threads as u64);
        // Per-producer FIFO survives combining.
        for t in 0..threads as u64 {
            let mine: Vec<u64> = got.iter().copied().filter(|v| v / 1000 == t).collect();
            let expect: Vec<u64> = (0..per).map(|i| t * 1000 + i).collect();
            assert_eq!(mine, expect);
        }
        let stats = q.stats();
        assert_eq!(stats.ops(), per * threads as u64);
        assert!(
            stats.batches() <= stats.ops(),
            "batches can never exceed ops"
        );
    }

    #[test]
    fn stack_elimination_annihilates_pairs() {
        let (f, _q, s) = setup(Arc::new(FlitAsync::default()));
        let stop = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = s.clone();
            let node = f.node(MachineId((t % 2) as usize));
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut pushed = 0u64;
                let mut popped = 0u64;
                for i in 0..400u64 {
                    if (t + i) % 2 == 0 {
                        assert!(s.push(&node, t * 1000 + i).unwrap());
                        pushed += 1;
                    } else if s.pop(&node).unwrap().is_some() {
                        popped += 1;
                    }
                }
                stop.fetch_add(pushed - popped, Ordering::Relaxed);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let node = f.node(MachineId(0));
        let rest = s.drain(&node).unwrap().len() as u64;
        assert_eq!(rest, stop.load(Ordering::Relaxed));
        // The mixed workload on few cores virtually always combines at
        // least one opposite pair; the counter must be even either way.
        assert!(s.stats().eliminations().is_multiple_of(2));
    }

    #[test]
    fn batched_persistence_saves_barriers_under_flit_async() {
        let (f, q, _s) = setup(Arc::new(FlitAsync::default()));
        let threads = 6;
        // Large enough that a thread's whole loop cannot fit in one
        // scheduler timeslice (combined ops are fast): overlap — and
        // with it batching — then arises on any core count.
        let per = 3000u64;
        let mut handles = Vec::new();
        for t in 0..threads as u64 {
            let q = q.clone();
            let node = f.node(MachineId((t % 2) as usize));
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    q.enqueue(&node, i).unwrap();
                    q.dequeue(&node).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = q.stats();
        assert_eq!(stats.ops(), 2 * per * threads as u64);
        assert!(
            stats.batches() < stats.ops(),
            "single-core contention must combine: {} batches for {} ops",
            stats.batches(),
            stats.ops()
        );
        assert!(stats.barriers_saved() > 0);
    }

    #[test]
    fn contents_survive_memory_crash_and_recover() {
        let (f, q, s) = setup(Arc::new(FlitCxl0::default()));
        let node = f.node(MachineId(0));
        for v in [1u64, 2, 3] {
            q.enqueue(&node, v).unwrap();
            s.push(&node, v).unwrap();
        }
        f.crash(MachineId(2));
        f.recover(MachineId(2));
        q.recover(&node).unwrap();
        assert_eq!(q.drain(&node).unwrap(), vec![1, 2, 3]);
        assert_eq!(s.drain(&node).unwrap(), vec![3, 2, 1]);
    }

    #[test]
    fn churn_through_the_front_reuses_nodes() {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 256));
        let alloc = Arc::new(Allocator::over_region(
            f.config(),
            MachineId(1),
            Arc::new(FlitAsync::default()),
        ));
        let node = f.node(MachineId(0));
        let q: CombinedQueue = Combined::new(DurableQueue::create(&alloc, &node).unwrap().unwrap());
        for i in 0..1000u64 {
            assert!(q.enqueue(&node, i + 1).unwrap(), "op {i}: must not exhaust");
            assert_eq!(q.dequeue(&node).unwrap(), Some(i + 1));
        }
        // Reuse happens in the spare cache (allocator-free) or, for
        // whatever overflows it, on the allocator's free lists; either
        // way the tiny region survives 1000 ops.
        let reused = q.stats().spare_reuses() + alloc.stats().freelist_hits;
        assert!(reused > 900, "churn must reuse nodes (got {reused})");
        assert!(
            q.stats().spare_reuses() > 0,
            "the combiner's own churn must hit the spare cache"
        );
    }

    #[test]
    fn recover_returns_spare_nodes_to_the_allocator() {
        let (f, q, s) = setup(Arc::new(FlitCxl0::default()));
        let node = f.node(MachineId(0));
        // Leave both boards with non-empty spare caches: enqueue/push
        // then dequeue/pop moves the unlinked nodes into spare.
        for v in 1..=4u64 {
            q.enqueue(&node, v).unwrap();
            s.push(&node, v).unwrap();
        }
        for _ in 0..4 {
            q.dequeue(&node).unwrap();
            s.pop(&node).unwrap();
        }
        f.crash(MachineId(2));
        f.recover(MachineId(2));
        q.recover(&node).unwrap();
        s.recover(&node).unwrap();
        // The fronts still work, and durable contents round-trip.
        for v in [7u64, 8] {
            assert!(q.enqueue(&node, v).unwrap());
            assert!(s.push(&node, v).unwrap());
        }
        assert_eq!(q.drain(&node).unwrap(), vec![7, 8]);
        assert_eq!(s.drain(&node).unwrap(), vec![8, 7]);
    }
}
