//! Durable data structures built from linearizable algorithms via the
//! FliT wrappers (§6): every shared memory access goes through a
//! [`Persistence`](crate::flit::Persistence) strategy, so the same
//! algorithm code can run durably (Alg. 2), naively (all-`MStore`),
//! unsoundly (unadapted x86 FliT) or without durability, for comparison.
//!
//! All structures are non-blocking (CAS-based), as FliT assumes for
//! liveness. The pointer-based structures (queue, stack, list, map)
//! allocate — and **reclaim** — their nodes through the
//! crash-consistent allocator ([`crate::alloc`]), so churn workloads
//! run in bounded memory, but they reclaim on two different
//! disciplines: the queue and stack free unlinked nodes *inline*
//! (every CAS they issue compares a generation-tagged word, the
//! Michael–Scott counted-pointer scheme, so recycling under a racing
//! operation is harmless), while the traversal structures — sorted
//! list and hash map — *retire* unlinked blocks through the cluster's
//! epoch-based reclamation domain ([`crate::smr`]) and get them back
//! only after every concurrently pinned operation has finished.
//! `docs/RECLAMATION.md` develops the argument for the split. The
//! fixed-footprint structures (register, counter, log) still carve
//! their cells straight from the bump heap: they are roots, never
//! reclaimed.
//!
//! Element types are generic over [`Word`](crate::api::Word) (default
//! `u64`), and every operation takes `&impl AsNode` — a raw
//! [`NodeHandle`](crate::backend::NodeHandle) or an
//! [`api::Session`](crate::api::Session) — so the same structures serve
//! both API layers. Named creation/reattachment lives on the session
//! (`create_queue`/`open_queue` and friends).

pub mod combine;
pub mod counter;
pub mod list;
pub mod log;
pub mod map;
pub mod queue;
pub mod register;
pub mod stack;

pub use combine::{Combinable, CombineStats, Combined, CombinedQueue, CombinedStack, Elimination};
pub use counter::DurableCounter;
pub use list::DurableList;
pub use log::{DurableLog, SlotState};
pub use map::DurableMap;
pub use queue::DurableQueue;
pub use register::DurableRegister;
pub use stack::DurableStack;
