//! A durable lock-free sorted linked list (set) in the style of Harris:
//! logical deletion via a mark bit in the `next` pointer, physical
//! unlinking by helping traversals — FliT-transformed like the other
//! structures, demonstrating the transformation on a pointer-chasing
//! algorithm with two-phase removal **and node reclamation**.
//!
//! Node layout: `[key, next]`; the `next` cell packs `(pointer, mark)`.
//! Keys must be non-zero and below `2^62` (the allocator's null tag and
//! the mark bit).
//!
//! ## Reclamation: retire now, reclaim at quiescence
//!
//! Unlike the queue and stack — whose CASes always compare a
//! generation-tagged word remembered from the incarnation they mean,
//! and can therefore free unlinked nodes immediately — a Harris list
//! cannot reclaim inline: traversals deref interior nodes without a
//! validating CAS, and `remove`'s logical-delete CAS takes its expected
//! value from a fresh read of the node itself, so an unlink → free →
//! recycle racing an in-flight operation could hand that operation a
//! *different* structure's live cell (the classic reason linked lists
//! need hazard pointers where stacks and queues get by with counted
//! pointers).
//!
//! This list therefore **retires** unlinked nodes into a volatile
//! per-handle quarantine instead of freeing them: a retired node's
//! cells stay frozen (marked), so every in-flight traversal and CAS
//! behaves exactly as in the classic non-reclaiming Harris list.
//! [`DurableList::reclaim`] drains the quarantine into the allocator —
//! it must run *quiesced* (no concurrent operations on this list, like
//! `recover`), the natural point being between workload phases. Churn
//! workloads that reclaim periodically run in bounded memory; nodes
//! retired but not yet reclaimed at a crash are leaked, exactly like
//! cells of any crashed operation.
//!
//! Two generation disciplines keep the *published* state safe under
//! cross-structure reuse of whatever the list does release: every
//! pointer stored in a link cell is generation-tagged, and every null
//! written into a node's link cell carries that node's **own**
//! generation (inserts at the end tag the new node's null with its own
//! generation; unlinks that would store a null tag it with the
//! predecessor's) — so no stale CAS can mistake a recycled cell's null
//! for the incarnation it observed.

use std::marker::PhantomData;
use std::sync::Arc;

use cxl0_model::Loc;

use crate::alloc::Allocator;
use crate::api::Word;
use crate::backend::{AsNode, NodeHandle};
use crate::error::OpResult;
use crate::flit::Persistence;

const MARK: u64 = 1 << 63;

fn is_marked(raw: u64) -> bool {
    raw & MARK != 0
}

fn unmark(raw: u64) -> u64 {
    raw & !MARK
}

/// A durable sorted set of [`Word`] keys (default `u64`), ordered by
/// their encoded word. Keys must encode non-zero and below `2^62` (the
/// mark bit and the allocator's null tag).
///
/// # Examples
///
/// ```
/// use cxl0_runtime::api::Cluster;
/// use cxl0_model::MachineId;
///
/// let cluster = Cluster::symmetric(2, 4096)?;
/// let session = cluster.session(MachineId(0));
/// let list = session.create_list::<u64>("members")?;
/// assert!(list.insert(&session, 5)?);
/// assert!(!list.insert(&session, 5)?); // already present
/// assert!(list.contains(&session, 5)?);
/// assert!(list.remove(&session, 5)?);
/// assert!(!list.contains(&session, 5)?);
/// # Ok::<(), cxl0_runtime::api::ApiError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DurableList<K: Word = u64> {
    /// The head pointer cell (encoded pointer to the first node, or 0).
    head: Loc,
    alloc: Arc<Allocator>,
    persist: Arc<dyn Persistence>,
    /// Volatile quarantine of unlinked nodes awaiting a quiescent
    /// [`DurableList::reclaim`] (shared by clones of this handle).
    retired: Arc<parking_lot::Mutex<Vec<Loc>>>,
    _keys: PhantomData<K>,
}

impl<K: Word> DurableList<K> {
    /// Allocates an empty list (one head cell) through `alloc`;
    /// `Ok(None)` if the heap is exhausted.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn create(alloc: &Arc<Allocator>, at: &impl AsNode) -> OpResult<Option<Self>> {
        let node = at.as_node();
        let persist = Arc::clone(alloc.persistence());
        let Some(head) = alloc.alloc(node, 1)? else {
            return Ok(None);
        };
        // The head block may be recycled memory: empty is a plain zero.
        persist.private_store(node, head.loc, 0, true)?;
        Ok(Some(DurableList {
            head: head.loc,
            alloc: Arc::clone(alloc),
            persist,
            retired: Arc::new(parking_lot::Mutex::new(Vec::new())),
            _keys: PhantomData,
        }))
    }

    /// Attaches to an existing list after recovery (with a fresh, empty
    /// retire quarantine: each handle reclaims what it unlinked). The
    /// durability strategy is the allocator's — the two can never be a
    /// mismatched pair.
    pub fn attach(head: Loc, alloc: Arc<Allocator>) -> Self {
        DurableList {
            head,
            persist: Arc::clone(alloc.persistence()),
            alloc,
            retired: Arc::new(parking_lot::Mutex::new(Vec::new())),
            _keys: PhantomData,
        }
    }

    /// The head cell (for re-attachment).
    pub fn head_cell(&self) -> Loc {
        self.head
    }

    fn key_cell(&self, node: Loc) -> Loc {
        node
    }

    fn next_cell(&self, node: Loc) -> Loc {
        Loc::new(node.owner, node.addr.0 + 1)
    }

    /// Defensive traversal bound: recycled cells can in principle form a
    /// cycle; a traversal exceeding this restarts (mutators) or gives up
    /// (snapshots).
    fn step_cap(&self) -> u32 {
        self.alloc.block_area_cells()
    }

    /// The word an unlink installs in the predecessor: the removed
    /// node's successor, except that a null is re-tagged with the
    /// *predecessor's* generation — a node's link cell only ever holds
    /// nulls of its own incarnation (see the module docs). `pred_gen`
    /// is 0 for the head cell, which is never recycled.
    fn unlink_word(&self, next_raw: u64, pred_gen: u64) -> u64 {
        let clean = unmark(next_raw);
        if self.alloc.decode(clean).is_none() {
            Allocator::null_ptr(pred_gen)
        } else {
            clean
        }
    }

    /// Finds the first node with key ≥ `key`. Returns
    /// `(pred_cell, pred_gen, expected_in_pred, found)` where `found`
    /// is the encoded current node (null at end of list) whose key, if
    /// any node, is ≥ `key`. Helps unlink — and retire — marked nodes
    /// on the way.
    #[allow(clippy::type_complexity)]
    fn search(&self, node: &NodeHandle, key: u64) -> OpResult<(Loc, u64, u64, Option<u64>)> {
        'retry: loop {
            let mut pred_cell = self.head;
            let mut pred_gen = 0u64;
            let mut curr_enc = self.persist.shared_load(node, pred_cell, true)?;
            let mut steps = 0u32;
            loop {
                debug_assert!(!is_marked(curr_enc), "pred link is never marked");
                let Some(curr) = self.alloc.decode(curr_enc) else {
                    return Ok((pred_cell, pred_gen, curr_enc, None));
                };
                let next_raw = self.persist.shared_load(node, self.next_cell(curr), true)?;
                if is_marked(next_raw) {
                    // Help unlink the logically-deleted node; the winner
                    // of the unlink CAS retires it.
                    let replacement = self.unlink_word(next_raw, pred_gen);
                    if self
                        .persist
                        .shared_cas(node, pred_cell, curr_enc, replacement, true)?
                        .is_err()
                    {
                        continue 'retry;
                    }
                    self.retired.lock().push(curr);
                    curr_enc = replacement;
                    continue;
                }
                let k = self.persist.shared_load(node, self.key_cell(curr), true)?;
                if k >= key {
                    return Ok((pred_cell, pred_gen, curr_enc, Some(k)));
                }
                pred_cell = self.next_cell(curr);
                pred_gen = Allocator::ptr_gen(curr_enc);
                curr_enc = next_raw;
                steps += 1;
                if steps > self.step_cap() {
                    continue 'retry;
                }
            }
        }
    }

    /// Inserts `key`; returns `false` if it was already present.
    ///
    /// # Panics
    ///
    /// Panics if `key` is zero or has bit 62/63 set, or if the node
    /// heap is exhausted.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn insert(&self, at: &impl AsNode, key: K) -> OpResult<bool> {
        let node = at.as_node();
        let key = key.to_word();
        assert!(
            key != 0 && key & (MARK | (MARK >> 1)) == 0,
            "key out of range"
        );
        // Lazily allocated, reused across CAS retries, reclaimed on
        // every non-publishing exit (no leaks on contention).
        let mut spare: Option<crate::alloc::BlockRef> = None;
        loop {
            let (pred_cell, _, curr_enc, found) = self.search(node, key)?;
            if found == Some(key) {
                if let Some(n) = spare {
                    // Never published: freeing inline is safe.
                    let _ = self.alloc.free(node, n.loc)?;
                }
                self.persist.complete_op(node)?;
                return Ok(false);
            }
            let n = match spare {
                Some(n) => n,
                None => {
                    let n = self.alloc.alloc(node, 2)?.expect("list heap exhausted");
                    self.persist
                        .private_store(node, self.key_cell(n.loc), key, true)?;
                    n
                }
            };
            // (Re-)link privately; persist before publication. At the
            // end of the list the new node's null carries its *own*
            // generation (never the stale null read from the
            // predecessor) — the link-cell discipline.
            let link = if self.alloc.decode(curr_enc).is_none() {
                Allocator::null_ptr(n.gen)
            } else {
                curr_enc
            };
            self.persist
                .private_store(node, self.next_cell(n.loc), link, true)?;
            if self
                .persist
                .shared_cas(node, pred_cell, curr_enc, Allocator::encode(n), true)?
                .is_ok()
            {
                self.persist.complete_op(node)?;
                return Ok(true);
            }
            spare = Some(n);
        }
    }

    /// Removes `key`; returns `false` if it was not present. The
    /// unlinked node is *retired* (by whoever wins the physical
    /// unlink); a quiesced [`DurableList::reclaim`] returns retirees to
    /// the allocator.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn remove(&self, at: &impl AsNode, key: K) -> OpResult<bool> {
        let node = at.as_node();
        let key = key.to_word();
        loop {
            let (pred_cell, pred_gen, curr_enc, found) = self.search(node, key)?;
            if found != Some(key) {
                self.persist.complete_op(node)?;
                return Ok(false);
            }
            let curr = self.alloc.decode(curr_enc).expect("found implies node");
            let next_raw = self.persist.shared_load(node, self.next_cell(curr), true)?;
            if is_marked(next_raw) {
                continue; // someone else is removing it; retry from search
            }
            // Logical deletion: set the mark (this is the linearization
            // point, persisted by the FliT CAS wrapper). Sound even
            // though the expected value is a fresh read: retire-based
            // reclamation guarantees `curr`'s cells are not recycled
            // while this operation is in flight.
            if self
                .persist
                .shared_cas(node, self.next_cell(curr), next_raw, next_raw | MARK, true)?
                .is_err()
            {
                continue;
            }
            // Best-effort physical unlink; traversals will help if we
            // fail. The unlink winner — us or a helper — retires.
            if self
                .persist
                .shared_cas(
                    node,
                    pred_cell,
                    curr_enc,
                    self.unlink_word(next_raw, pred_gen),
                    true,
                )?
                .is_ok()
            {
                self.retired.lock().push(curr);
            }
            self.persist.complete_op(node)?;
            return Ok(true);
        }
    }

    /// Returns every retired node to the allocator for reuse, giving
    /// back the count. **Must run quiesced**: no concurrent operations
    /// on this list (same contract as the `recover` methods) — an
    /// in-flight traversal may still hold pointers into retired nodes.
    /// Retirees are per-handle (clones share; separate `attach`es do
    /// not); nodes retired but not reclaimed before a crash are leaked,
    /// like any crashed operation's cells.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn reclaim(&self, at: &impl AsNode) -> OpResult<usize> {
        let node = at.as_node();
        let drained: Vec<Loc> = std::mem::take(&mut *self.retired.lock());
        for loc in &drained {
            let freed = self.alloc.free(node, *loc)?;
            debug_assert!(freed.is_ok(), "retired nodes are allocated exactly once");
        }
        self.persist.complete_op(node)?;
        Ok(drained.len())
    }

    /// Membership test. Retire-based reclamation keeps traversals as
    /// safe as the classic non-reclaiming Harris list: retired nodes'
    /// cells stay frozen until a quiesced [`DurableList::reclaim`].
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn contains(&self, at: &impl AsNode, key: K) -> OpResult<bool> {
        let node = at.as_node();
        let key = key.to_word();
        let (_, _, _, found) = self.search(node, key)?;
        self.persist.complete_op(node)?;
        Ok(found == Some(key))
    }

    /// Snapshot of the keys in order (single-threaded helper).
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn keys(&self, at: &impl AsNode) -> OpResult<Vec<K>> {
        let node = at.as_node();
        let mut out = Vec::new();
        let mut curr_enc = unmark(self.persist.shared_load(node, self.head, true)?);
        let mut steps = 0u32;
        while let Some(curr) = self.alloc.decode(curr_enc) {
            let next_raw = self.persist.shared_load(node, self.next_cell(curr), true)?;
            if !is_marked(next_raw) {
                out.push(K::from_word(self.persist.shared_load(
                    node,
                    self.key_cell(curr),
                    true,
                )?));
            }
            curr_enc = unmark(next_raw);
            steps += 1;
            if steps > self.step_cap() {
                break;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimFabric;
    use crate::flit::FlitCxl0;
    use cxl0_model::{MachineId, SystemConfig};

    fn setup() -> (Arc<SimFabric>, DurableList) {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(3, 1 << 14));
        let alloc = Arc::new(Allocator::over_region(
            f.config(),
            MachineId(2),
            Arc::new(FlitCxl0::default()),
        ));
        let l = DurableList::create(&alloc, &f.node(MachineId(0)))
            .unwrap()
            .unwrap();
        (f, l)
    }

    #[test]
    fn sorted_insert_and_lookup() {
        let (f, l) = setup();
        let node = f.node(MachineId(0));
        for k in [5u64, 1, 9, 3, 7] {
            assert!(l.insert(&node, k).unwrap());
        }
        assert_eq!(l.keys(&node).unwrap(), vec![1, 3, 5, 7, 9]);
        assert!(l.contains(&node, 3).unwrap());
        assert!(!l.contains(&node, 4).unwrap());
        assert!(!l.insert(&node, 7).unwrap()); // duplicate
    }

    #[test]
    fn remove_retires_and_reclaim_recycles() {
        let (f, l) = setup();
        let node = f.node(MachineId(0));
        for k in 1..=5u64 {
            l.insert(&node, k).unwrap();
        }
        assert!(l.remove(&node, 3).unwrap());
        assert!(!l.remove(&node, 3).unwrap());
        assert_eq!(l.keys(&node).unwrap(), vec![1, 2, 4, 5]);
        // The unlinked node sits in the quarantine until a quiesced
        // reclaim hands it back for reuse.
        assert_eq!(l.reclaim(&node).unwrap(), 1);
        assert_eq!(l.reclaim(&node).unwrap(), 0);
        assert!(l.insert(&node, 3).unwrap());
        assert_eq!(l.keys(&node).unwrap(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn insert_remove_churn_runs_in_bounded_memory() {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 256));
        let alloc = Arc::new(Allocator::over_region(
            f.config(),
            MachineId(1),
            Arc::new(FlitCxl0::default()),
        ));
        let node = f.node(MachineId(0));
        let l: DurableList = DurableList::create(&alloc, &node).unwrap().unwrap();
        for i in 0..500u64 {
            let k = i % 7 + 1;
            assert!(l.insert(&node, k).unwrap(), "op {i}");
            assert!(l.remove(&node, k).unwrap(), "op {i}");
            // Single-threaded churn is quiescent between ops: reclaim
            // every round, so the region never exhausts.
            assert_eq!(l.reclaim(&node).unwrap(), 1, "op {i}");
        }
        assert!(alloc.stats().freelist_hits > 400);
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let (f, l) = setup();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let l = l.clone();
            let node = f.node(MachineId((t % 2) as usize));
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    assert!(l.insert(&node, t * 1000 + i + 1).unwrap());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let node = f.node(MachineId(0));
        let keys = l.keys(&node).unwrap();
        assert_eq!(keys.len(), 400);
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted");
    }

    #[test]
    fn concurrent_insert_remove_same_keys() {
        let (f, l) = setup();
        let node0 = f.node(MachineId(0));
        for k in 1..=64u64 {
            l.insert(&node0, k).unwrap();
        }
        let mut handles = Vec::new();
        for t in 0..4usize {
            let l = l.clone();
            let node = f.node(MachineId(t % 2));
            handles.push(std::thread::spawn(move || {
                for round in 0..50u64 {
                    let k = (round * 7 + t as u64 * 13) % 64 + 1;
                    if (round + t as u64).is_multiple_of(2) {
                        let _ = l.remove(&node, k).unwrap();
                    } else {
                        let _ = l.insert(&node, k).unwrap();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // The list must still be sorted and duplicate-free, and (now
        // quiescent) the retired nodes reclaim cleanly.
        let keys = l.keys(&node0).unwrap();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "{keys:?}");
        let reclaimed = l.reclaim(&node0).unwrap();
        assert!(reclaimed > 0, "contended churn must have retired nodes");
    }

    #[test]
    fn contents_survive_memory_node_crash() {
        let (f, l) = setup();
        let node = f.node(MachineId(0));
        for k in [2u64, 4, 6] {
            l.insert(&node, k).unwrap();
        }
        l.remove(&node, 4).unwrap();
        f.crash(MachineId(2));
        f.recover(MachineId(2));
        assert_eq!(l.keys(&node).unwrap(), vec![2, 6]);
        assert!(!l.contains(&node, 4).unwrap());
    }

    #[test]
    #[should_panic(expected = "key out of range")]
    fn zero_key_rejected() {
        let (f, l) = setup();
        let node = f.node(MachineId(0));
        let _ = l.insert(&node, 0);
    }
}
