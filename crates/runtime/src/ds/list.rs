//! A durable lock-free sorted linked list (set) in the style of Harris:
//! logical deletion via a mark bit in the `next` pointer, physical
//! unlinking by helping traversals — FliT-transformed like the other
//! structures, demonstrating the transformation on a pointer-chasing
//! algorithm with two-phase removal.
//!
//! Node layout: `[key, next]`; the `next` cell packs `(pointer, mark)`.
//! Keys must be non-zero and below `2^63` (the mark bit).

use std::marker::PhantomData;
use std::sync::Arc;

use cxl0_model::Loc;

use crate::api::Word;
use crate::backend::{AsNode, NodeHandle};
use crate::error::OpResult;
use crate::flit::Persistence;
use crate::heap::{decode_ptr, encode_ptr, SharedHeap, NULL_PTR};

const MARK: u64 = 1 << 63;

fn is_marked(raw: u64) -> bool {
    raw & MARK != 0
}

fn unmark(raw: u64) -> u64 {
    raw & !MARK
}

/// A durable sorted set of [`Word`] keys (default `u64`), ordered by
/// their encoded word. Keys must encode non-zero and below `2^63` (the
/// mark bit).
///
/// # Examples
///
/// ```
/// use cxl0_runtime::api::Cluster;
/// use cxl0_model::MachineId;
///
/// let cluster = Cluster::symmetric(2, 4096)?;
/// let session = cluster.session(MachineId(0));
/// let list = session.create_list::<u64>("members")?;
/// assert!(list.insert(&session, 5)?);
/// assert!(!list.insert(&session, 5)?); // already present
/// assert!(list.contains(&session, 5)?);
/// assert!(list.remove(&session, 5)?);
/// assert!(!list.contains(&session, 5)?);
/// # Ok::<(), cxl0_runtime::api::ApiError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DurableList<K: Word = u64> {
    /// The head pointer cell (encoded pointer to the first node, or 0).
    head: Loc,
    heap: Arc<SharedHeap>,
    persist: Arc<dyn Persistence>,
    _keys: PhantomData<K>,
}

impl<K: Word> DurableList<K> {
    /// Allocates an empty list (one head cell); `None` if the heap is
    /// exhausted.
    pub fn create(heap: &Arc<SharedHeap>, persist: Arc<dyn Persistence>) -> Option<Self> {
        let head = heap.alloc(1)?;
        Some(DurableList {
            head,
            heap: Arc::clone(heap),
            persist,
            _keys: PhantomData,
        })
    }

    /// Attaches to an existing list after recovery.
    pub fn attach(head: Loc, heap: Arc<SharedHeap>, persist: Arc<dyn Persistence>) -> Self {
        DurableList {
            head,
            heap,
            persist,
            _keys: PhantomData,
        }
    }

    /// The head cell (for re-attachment).
    pub fn head_cell(&self) -> Loc {
        self.head
    }

    fn key_cell(&self, node: Loc) -> Loc {
        node
    }

    fn next_cell(&self, node: Loc) -> Loc {
        Loc::new(node.owner, node.addr.0 + 1)
    }

    /// Finds the first node with key ≥ `key`. Returns
    /// `(pred_cell, expected_in_pred, found)` where `found` is the
    /// encoded current node (0 at end of list) whose key, if any node, is
    /// ≥ `key`. Helps unlink marked nodes on the way.
    fn search(&self, node: &NodeHandle, key: u64) -> OpResult<(Loc, u64, Option<u64>)> {
        'retry: loop {
            let mut pred_cell = self.head;
            let mut curr_enc = self.persist.shared_load(node, pred_cell, true)?;
            loop {
                debug_assert!(!is_marked(curr_enc), "pred link is never marked");
                let Some(curr) = decode_ptr(self.heap.region(), curr_enc) else {
                    return Ok((pred_cell, curr_enc, None));
                };
                let next_raw = self.persist.shared_load(node, self.next_cell(curr), true)?;
                if is_marked(next_raw) {
                    // Help unlink the logically-deleted node.
                    if self
                        .persist
                        .shared_cas(node, pred_cell, curr_enc, unmark(next_raw), true)?
                        .is_err()
                    {
                        continue 'retry;
                    }
                    curr_enc = unmark(next_raw);
                    continue;
                }
                let k = self.persist.shared_load(node, self.key_cell(curr), true)?;
                if k >= key {
                    return Ok((pred_cell, curr_enc, Some(k)));
                }
                pred_cell = self.next_cell(curr);
                curr_enc = next_raw;
            }
        }
    }

    /// Inserts `key`; returns `false` if it was already present.
    ///
    /// # Panics
    ///
    /// Panics if `key` is zero or has the mark bit set, or if the node
    /// heap is exhausted.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn insert(&self, at: &impl AsNode, key: K) -> OpResult<bool> {
        let node = at.as_node();
        let key = key.to_word();
        assert!(key != 0 && key & MARK == 0, "key out of range");
        loop {
            let (pred_cell, curr_enc, found) = self.search(node, key)?;
            if found == Some(key) {
                self.persist.complete_op(node)?;
                return Ok(false);
            }
            let n = self.heap.alloc(2).expect("list heap exhausted");
            // Initialize privately; persist before publication.
            self.persist
                .private_store(node, self.key_cell(n), key, true)?;
            self.persist
                .private_store(node, self.next_cell(n), curr_enc, true)?;
            if self
                .persist
                .shared_cas(node, pred_cell, curr_enc, encode_ptr(n), true)?
                .is_ok()
            {
                self.persist.complete_op(node)?;
                return Ok(true);
            }
        }
    }

    /// Removes `key`; returns `false` if it was not present.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn remove(&self, at: &impl AsNode, key: K) -> OpResult<bool> {
        let node = at.as_node();
        let key = key.to_word();
        loop {
            let (pred_cell, curr_enc, found) = self.search(node, key)?;
            if found != Some(key) {
                self.persist.complete_op(node)?;
                return Ok(false);
            }
            let curr = decode_ptr(self.heap.region(), curr_enc).expect("found implies node");
            let next_raw = self.persist.shared_load(node, self.next_cell(curr), true)?;
            if is_marked(next_raw) {
                continue; // someone else is removing it; retry from search
            }
            // Logical deletion: set the mark (this is the linearization
            // point, persisted by the FliT CAS wrapper).
            if self
                .persist
                .shared_cas(node, self.next_cell(curr), next_raw, next_raw | MARK, true)?
                .is_err()
            {
                continue;
            }
            // Best-effort physical unlink; traversals will help if we fail.
            let _ = self
                .persist
                .shared_cas(node, pred_cell, curr_enc, next_raw, true)?;
            self.persist.complete_op(node)?;
            return Ok(true);
        }
    }

    /// Membership test.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn contains(&self, at: &impl AsNode, key: K) -> OpResult<bool> {
        let node = at.as_node();
        let key = key.to_word();
        let (_, curr_enc, found) = self.search(node, key)?;
        let _ = curr_enc;
        self.persist.complete_op(node)?;
        Ok(found == Some(key))
    }

    /// Snapshot of the keys in order (single-threaded helper).
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn keys(&self, at: &impl AsNode) -> OpResult<Vec<K>> {
        let node = at.as_node();
        let mut out = Vec::new();
        let mut curr_enc = unmark(self.persist.shared_load(node, self.head, true)?);
        while curr_enc != NULL_PTR {
            let curr = decode_ptr(self.heap.region(), curr_enc).expect("non-null");
            let next_raw = self.persist.shared_load(node, self.next_cell(curr), true)?;
            if !is_marked(next_raw) {
                out.push(K::from_word(self.persist.shared_load(
                    node,
                    self.key_cell(curr),
                    true,
                )?));
            }
            curr_enc = unmark(next_raw);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimFabric;
    use crate::flit::FlitCxl0;
    use cxl0_model::{MachineId, SystemConfig};

    fn setup() -> (Arc<SimFabric>, DurableList) {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(3, 1 << 14));
        let heap = Arc::new(SharedHeap::new(f.config(), MachineId(2)));
        let l = DurableList::create(&heap, Arc::new(FlitCxl0::default())).unwrap();
        (f, l)
    }

    #[test]
    fn sorted_insert_and_lookup() {
        let (f, l) = setup();
        let node = f.node(MachineId(0));
        for k in [5u64, 1, 9, 3, 7] {
            assert!(l.insert(&node, k).unwrap());
        }
        assert_eq!(l.keys(&node).unwrap(), vec![1, 3, 5, 7, 9]);
        assert!(l.contains(&node, 3).unwrap());
        assert!(!l.contains(&node, 4).unwrap());
        assert!(!l.insert(&node, 7).unwrap()); // duplicate
    }

    #[test]
    fn remove_unlinks_logically_and_physically() {
        let (f, l) = setup();
        let node = f.node(MachineId(0));
        for k in 1..=5u64 {
            l.insert(&node, k).unwrap();
        }
        assert!(l.remove(&node, 3).unwrap());
        assert!(!l.remove(&node, 3).unwrap());
        assert_eq!(l.keys(&node).unwrap(), vec![1, 2, 4, 5]);
        // Re-insert after removal works (fresh node).
        assert!(l.insert(&node, 3).unwrap());
        assert_eq!(l.keys(&node).unwrap(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let (f, l) = setup();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let l = l.clone();
            let node = f.node(MachineId((t % 2) as usize));
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    assert!(l.insert(&node, t * 1000 + i + 1).unwrap());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let node = f.node(MachineId(0));
        let keys = l.keys(&node).unwrap();
        assert_eq!(keys.len(), 400);
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted");
    }

    #[test]
    fn concurrent_insert_remove_same_keys() {
        let (f, l) = setup();
        let node0 = f.node(MachineId(0));
        for k in 1..=64u64 {
            l.insert(&node0, k).unwrap();
        }
        let mut handles = Vec::new();
        for t in 0..4usize {
            let l = l.clone();
            let node = f.node(MachineId(t % 2));
            handles.push(std::thread::spawn(move || {
                for round in 0..50u64 {
                    let k = (round * 7 + t as u64 * 13) % 64 + 1;
                    if (round + t as u64).is_multiple_of(2) {
                        let _ = l.remove(&node, k).unwrap();
                    } else {
                        let _ = l.insert(&node, k).unwrap();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // The list must still be sorted and duplicate-free.
        let keys = l.keys(&node0).unwrap();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "{keys:?}");
    }

    #[test]
    fn contents_survive_memory_node_crash() {
        let (f, l) = setup();
        let node = f.node(MachineId(0));
        for k in [2u64, 4, 6] {
            l.insert(&node, k).unwrap();
        }
        l.remove(&node, 4).unwrap();
        f.crash(MachineId(2));
        f.recover(MachineId(2));
        assert_eq!(l.keys(&node).unwrap(), vec![2, 6]);
        assert!(!l.contains(&node, 4).unwrap());
    }

    #[test]
    #[should_panic(expected = "key out of range")]
    fn zero_key_rejected() {
        let (f, l) = setup();
        let node = f.node(MachineId(0));
        let _ = l.insert(&node, 0);
    }
}
