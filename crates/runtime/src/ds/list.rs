//! A durable lock-free sorted linked list (set) in the style of Harris:
//! logical deletion via a mark bit in the `next` pointer, physical
//! unlinking by helping traversals — FliT-transformed like the other
//! structures, demonstrating the transformation on a pointer-chasing
//! algorithm with two-phase removal **and concurrent node
//! reclamation**.
//!
//! Node layout: `[key, next]`; the `next` cell packs `(pointer, mark)`.
//! Keys must be non-zero and below `2^62` (the allocator's null tag and
//! the mark bit).
//!
//! ## Reclamation: retire inline, reclaim after a grace period
//!
//! Unlike the queue and stack — whose CASes always compare a
//! generation-tagged word remembered from the incarnation they mean,
//! and can therefore free unlinked nodes immediately — a Harris list
//! cannot reclaim inline: traversals deref interior nodes without a
//! validating CAS, and `remove`'s logical-delete CAS takes its expected
//! value from a fresh read of the node itself, so an unlink → free →
//! recycle racing an in-flight operation could hand that operation a
//! *different* structure's live cell (the classic reason linked lists
//! need hazard pointers or epochs where stacks and queues get by with
//! counted pointers).
//!
//! Every operation therefore pins the cluster's epoch-based
//! reclamation domain ([`crate::smr`]) for its duration, and whoever
//! wins an unlink CAS **retires** the node through its
//! [`SmrGuard`]: the node's cells stay frozen
//! (marked) until every traversal pinned at retirement time has
//! finished, then drain back to the allocator automatically — no
//! quiescence, ever. Nodes still in limbo at a crash are swept back to
//! the free lists by
//! [`Session::recover_roots`](crate::api::Session::recover_roots)
//! (retired means durably unlinked, so limbo is volatile by design).
//! The pre-SMR design retired into a per-handle quarantine that only a
//! *quiesced* [`DurableList::reclaim`] could drain; that requirement is
//! gone (see `docs/RECLAMATION.md` for the migration note).
//!
//! Two generation disciplines keep the *published* state safe under
//! cross-structure reuse of whatever the list does release: every
//! pointer stored in a link cell is generation-tagged, and every null
//! written into a node's link cell carries that node's **own**
//! generation (inserts at the end tag the new node's null with its own
//! generation; unlinks that would store a null tag it with the
//! predecessor's) — so no stale CAS can mistake a recycled cell's null
//! for the incarnation it observed.

use std::marker::PhantomData;
use std::sync::Arc;

use cxl0_model::Loc;

use crate::alloc::Allocator;
use crate::api::Word;
use crate::backend::{AsNode, NodeHandle};
use crate::error::OpResult;
use crate::flit::Persistence;
use crate::smr::{SmrDomain, SmrGuard};

const MARK: u64 = 1 << 63;

fn is_marked(raw: u64) -> bool {
    raw & MARK != 0
}

fn unmark(raw: u64) -> u64 {
    raw & !MARK
}

/// A durable sorted set of [`Word`] keys (default `u64`), ordered by
/// their encoded word. Keys must encode non-zero and below `2^62` (the
/// mark bit and the allocator's null tag).
///
/// # Examples
///
/// ```
/// use cxl0_runtime::api::Cluster;
/// use cxl0_model::MachineId;
///
/// let cluster = Cluster::symmetric(2, 4096)?;
/// let session = cluster.session(MachineId(0));
/// let list = session.create_list::<u64>("members")?;
/// assert!(list.insert(&session, 5)?);
/// assert!(!list.insert(&session, 5)?); // already present
/// assert!(list.contains(&session, 5)?);
/// assert!(list.remove(&session, 5)?);
/// assert!(!list.contains(&session, 5)?);
/// # Ok::<(), cxl0_runtime::api::ApiError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DurableList<K: Word = u64> {
    /// The head pointer cell (encoded pointer to the first node, or 0).
    head: Loc,
    /// The reclamation domain removed nodes retire through (shared by
    /// every handle of every traversal structure on this allocator).
    smr: Arc<SmrDomain>,
    alloc: Arc<Allocator>,
    persist: Arc<dyn Persistence>,
    _keys: PhantomData<K>,
}

impl<K: Word> DurableList<K> {
    /// Allocates an empty list (one head cell) through `smr`'s
    /// allocator; `Ok(None)` if the heap is exhausted.
    ///
    /// The list allocates from — and retires removed nodes back through
    /// — the given reclamation domain; all handles of all traversal
    /// structures over one allocator must share one domain (a
    /// [`Cluster`](crate::api::Cluster) guarantees this).
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn create(smr: &Arc<SmrDomain>, at: &impl AsNode) -> OpResult<Option<Self>> {
        let node = at.as_node();
        let alloc = Arc::clone(smr.allocator());
        let persist = Arc::clone(alloc.persistence());
        let Some(head) = alloc.alloc(node, 1)? else {
            return Ok(None);
        };
        // The head block may be recycled memory: empty is a plain zero.
        persist.private_store(node, head.loc, 0, true)?;
        Ok(Some(DurableList {
            head: head.loc,
            smr: Arc::clone(smr),
            alloc,
            persist,
            _keys: PhantomData,
        }))
    }

    /// Attaches to an existing list after recovery. The durability
    /// strategy is the domain's allocator's — the two can never be a
    /// mismatched pair.
    pub fn attach(head: Loc, smr: Arc<SmrDomain>) -> Self {
        DurableList {
            head,
            alloc: Arc::clone(smr.allocator()),
            persist: Arc::clone(smr.persistence()),
            smr,
            _keys: PhantomData,
        }
    }

    /// The head cell (for re-attachment).
    pub fn head_cell(&self) -> Loc {
        self.head
    }

    fn key_cell(&self, node: Loc) -> Loc {
        node
    }

    fn next_cell(&self, node: Loc) -> Loc {
        Loc::new(node.owner, node.addr.0 + 1)
    }

    /// Defensive traversal bound: recycled cells can in principle form a
    /// cycle; a traversal exceeding this restarts (mutators) or gives up
    /// (snapshots).
    fn step_cap(&self) -> u32 {
        self.alloc.block_area_cells()
    }

    /// The word an unlink installs in the predecessor: the removed
    /// node's successor, except that a null is re-tagged with the
    /// *predecessor's* generation — a node's link cell only ever holds
    /// nulls of its own incarnation (see the module docs). `pred_gen`
    /// is 0 for the head cell, which is never recycled.
    fn unlink_word(&self, next_raw: u64, pred_gen: u64) -> u64 {
        let clean = unmark(next_raw);
        if self.alloc.decode(clean).is_none() {
            Allocator::null_ptr(pred_gen)
        } else {
            clean
        }
    }

    /// Finds the first node with key ≥ `key`. Returns
    /// `(pred_cell, pred_gen, expected_in_pred, found)` where `found`
    /// is the encoded current node (null at end of list) whose key, if
    /// any node, is ≥ `key`. Helps unlink marked nodes on the way; the
    /// unlink winner retires them through `guard` (which also keeps
    /// every node this search dereferences out of reuse).
    #[allow(clippy::type_complexity)]
    fn search(
        &self,
        guard: &SmrGuard<'_>,
        node: &NodeHandle,
        key: u64,
    ) -> OpResult<(Loc, u64, u64, Option<u64>)> {
        'retry: loop {
            let mut pred_cell = self.head;
            let mut pred_gen = 0u64;
            let mut curr_enc = self.persist.shared_load(node, pred_cell, true)?;
            let mut steps = 0u32;
            loop {
                debug_assert!(!is_marked(curr_enc), "pred link is never marked");
                let Some(curr) = self.alloc.decode(curr_enc) else {
                    return Ok((pred_cell, pred_gen, curr_enc, None));
                };
                let next_raw = self.persist.shared_load(node, self.next_cell(curr), true)?;
                if is_marked(next_raw) {
                    // Help unlink the logically-deleted node; the winner
                    // of the unlink CAS retires it.
                    let replacement = self.unlink_word(next_raw, pred_gen);
                    if self
                        .persist
                        .shared_cas(node, pred_cell, curr_enc, replacement, true)?
                        .is_err()
                    {
                        continue 'retry;
                    }
                    guard.retire(node, curr)?;
                    curr_enc = replacement;
                    continue;
                }
                let k = self.persist.shared_load(node, self.key_cell(curr), true)?;
                if k >= key {
                    return Ok((pred_cell, pred_gen, curr_enc, Some(k)));
                }
                pred_cell = self.next_cell(curr);
                pred_gen = Allocator::ptr_gen(curr_enc);
                curr_enc = next_raw;
                steps += 1;
                if steps > self.step_cap() {
                    continue 'retry;
                }
            }
        }
    }

    /// Inserts `key`; returns `false` if it was already present.
    ///
    /// # Panics
    ///
    /// Panics if `key` is zero or has bit 62/63 set, or if the node
    /// heap is exhausted even after reclaiming every ripe retired
    /// block.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn insert(&self, at: &impl AsNode, key: K) -> OpResult<bool> {
        let node = at.as_node();
        let _span = node.trace_span(crate::trace::OpKind::Insert);
        let key = key.to_word();
        assert!(
            key != 0 && key & (MARK | (MARK >> 1)) == 0,
            "key out of range"
        );
        // Lazily allocated, reused across CAS retries, reclaimed on
        // every non-publishing exit (no leaks on contention).
        let mut spare: Option<crate::alloc::BlockRef> = None;
        let mut guard = self.smr.pin();
        loop {
            let (pred_cell, _, curr_enc, found) = self.search(&guard, node, key)?;
            if found == Some(key) {
                if let Some(n) = spare {
                    // Never published: freeing inline is safe.
                    let _ = self.alloc.free(node, n.loc)?;
                }
                self.persist.complete_op(node)?;
                return Ok(false);
            }
            let n = match spare {
                Some(n) => n,
                None => {
                    let mut attempts = 0u32;
                    let n = loop {
                        if let Some(n) = self.alloc.alloc(node, 2)? {
                            break n;
                        }
                        // The region may be exhausted only transiently:
                        // retired nodes waiting out their grace period
                        // are not on the free lists yet. Unpin (so the
                        // epoch can fully advance), reclaim — waiting
                        // out concurrent traversals between empty
                        // attempts — then re-pin and retry before
                        // declaring real exhaustion.
                        drop(guard);
                        let freed = self.smr.collect(node)?;
                        attempts += 1;
                        assert!(
                            freed > 0 || attempts < 64,
                            "list heap exhausted (nothing left to reclaim): {:?} {:?}",
                            self.smr.stats(),
                            self.alloc.stats(),
                        );
                        if freed == 0 {
                            crate::smr::exhaustion_backoff(attempts);
                        }
                        guard = self.smr.pin();
                    };
                    self.persist
                        .private_store(node, self.key_cell(n.loc), key, true)?;
                    n
                }
            };
            // (Re-)link privately; persist before publication. At the
            // end of the list the new node's null carries its *own*
            // generation (never the stale null read from the
            // predecessor) — the link-cell discipline.
            let link = if self.alloc.decode(curr_enc).is_none() {
                Allocator::null_ptr(n.gen)
            } else {
                curr_enc
            };
            self.persist
                .private_store(node, self.next_cell(n.loc), link, true)?;
            if self
                .persist
                .shared_cas(node, pred_cell, curr_enc, Allocator::encode(n), true)?
                .is_ok()
            {
                self.persist.complete_op(node)?;
                return Ok(true);
            }
            spare = Some(n);
        }
    }

    /// Removes `key`; returns `false` if it was not present. The
    /// unlinked node is retired (by whoever wins the physical unlink)
    /// through the reclamation domain and returns to the allocator once
    /// every concurrent traversal has finished — no quiescence needed.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn remove(&self, at: &impl AsNode, key: K) -> OpResult<bool> {
        let node = at.as_node();
        let _span = node.trace_span(crate::trace::OpKind::Remove);
        let key = key.to_word();
        let guard = self.smr.pin();
        loop {
            let (pred_cell, pred_gen, curr_enc, found) = self.search(&guard, node, key)?;
            if found != Some(key) {
                self.persist.complete_op(node)?;
                return Ok(false);
            }
            let curr = self.alloc.decode(curr_enc).expect("found implies node");
            let next_raw = self.persist.shared_load(node, self.next_cell(curr), true)?;
            if is_marked(next_raw) {
                continue; // someone else is removing it; retry from search
            }
            // Logical deletion: set the mark (this is the linearization
            // point, persisted by the FliT CAS wrapper). Sound even
            // though the expected value is a fresh read: the epoch pin
            // guarantees `curr`'s cells are not recycled while this
            // operation is in flight.
            if self
                .persist
                .shared_cas(node, self.next_cell(curr), next_raw, next_raw | MARK, true)?
                .is_err()
            {
                continue;
            }
            // Best-effort physical unlink; traversals will help if we
            // fail. The unlink winner — us or a helper — retires.
            if self
                .persist
                .shared_cas(
                    node,
                    pred_cell,
                    curr_enc,
                    self.unlink_word(next_raw, pred_gen),
                    true,
                )?
                .is_ok()
            {
                guard.retire(node, curr)?;
            }
            self.persist.complete_op(node)?;
            return Ok(true);
        }
    }

    /// Runs an explicit reclamation pass on the domain
    /// ([`SmrDomain::collect`]), returning the number of blocks — from
    /// *any* structure on this domain — handed back to the allocator.
    ///
    /// **Deprecated as a requirement**: the pre-SMR quarantine needed a
    /// quiesced `reclaim` call to make churn workloads run in bounded
    /// memory. Retirement now amortizes collection automatically and is
    /// safe under full concurrency, so this is only an optional nudge
    /// (e.g. to ripen everything between workload phases); it no longer
    /// requires quiescence.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn reclaim(&self, at: &impl AsNode) -> OpResult<usize> {
        let node = at.as_node();
        let freed = self.smr.collect(node)?;
        self.persist.complete_op(node)?;
        Ok(freed)
    }

    /// Membership test. The operation's epoch pin keeps every node it
    /// dereferences out of reuse, so traversals are as safe as in the
    /// classic non-reclaiming Harris list — even against fully
    /// concurrent removal and reclamation.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn contains(&self, at: &impl AsNode, key: K) -> OpResult<bool> {
        let node = at.as_node();
        let _span = node.trace_span(crate::trace::OpKind::Get);
        let key = key.to_word();
        let guard = self.smr.pin();
        let (_, _, _, found) = self.search(&guard, node, key)?;
        self.persist.complete_op(node)?;
        Ok(found == Some(key))
    }

    /// Snapshot of the keys in order (single-threaded helper; pinned,
    /// so concurrent reclamation cannot recycle nodes under it).
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn keys(&self, at: &impl AsNode) -> OpResult<Vec<K>> {
        let node = at.as_node();
        let _guard = self.smr.pin();
        let mut out = Vec::new();
        let mut curr_enc = unmark(self.persist.shared_load(node, self.head, true)?);
        let mut steps = 0u32;
        while let Some(curr) = self.alloc.decode(curr_enc) {
            let next_raw = self.persist.shared_load(node, self.next_cell(curr), true)?;
            if !is_marked(next_raw) {
                out.push(K::from_word(self.persist.shared_load(
                    node,
                    self.key_cell(curr),
                    true,
                )?));
            }
            curr_enc = unmark(next_raw);
            steps += 1;
            if steps > self.step_cap() {
                break;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimFabric;
    use crate::flit::FlitCxl0;
    use cxl0_model::{MachineId, SystemConfig};

    fn domain(f: &SimFabric, mem: MachineId) -> Arc<SmrDomain> {
        Arc::new(SmrDomain::new(Arc::new(Allocator::over_region(
            f.config(),
            mem,
            Arc::new(FlitCxl0::default()),
        ))))
    }

    fn setup() -> (Arc<SimFabric>, DurableList) {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(3, 1 << 14));
        let smr = domain(&f, MachineId(2));
        let l = DurableList::create(&smr, &f.node(MachineId(0)))
            .unwrap()
            .unwrap();
        (f, l)
    }

    #[test]
    fn sorted_insert_and_lookup() {
        let (f, l) = setup();
        let node = f.node(MachineId(0));
        for k in [5u64, 1, 9, 3, 7] {
            assert!(l.insert(&node, k).unwrap());
        }
        assert_eq!(l.keys(&node).unwrap(), vec![1, 3, 5, 7, 9]);
        assert!(l.contains(&node, 3).unwrap());
        assert!(!l.contains(&node, 4).unwrap());
        assert!(!l.insert(&node, 7).unwrap()); // duplicate
    }

    #[test]
    fn remove_retires_and_collect_recycles() {
        let (f, l) = setup();
        let node = f.node(MachineId(0));
        for k in 1..=5u64 {
            l.insert(&node, k).unwrap();
        }
        assert!(l.remove(&node, 3).unwrap());
        assert!(!l.remove(&node, 3).unwrap());
        assert_eq!(l.keys(&node).unwrap(), vec![1, 2, 4, 5]);
        // The unlinked node waits out its grace period in limbo; with
        // no traversal in flight one explicit pass ripens it.
        assert_eq!(l.reclaim(&node).unwrap(), 1);
        assert_eq!(l.reclaim(&node).unwrap(), 0);
        assert!(l.insert(&node, 3).unwrap());
        assert_eq!(l.keys(&node).unwrap(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn insert_remove_churn_runs_in_bounded_memory() {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 256));
        let smr = domain(&f, MachineId(1));
        let node = f.node(MachineId(0));
        let l: DurableList = DurableList::create(&smr, &node).unwrap().unwrap();
        // No reclaim calls anywhere: amortized collection alone must
        // keep a tiny region from exhausting.
        for i in 0..500u64 {
            let k = i % 7 + 1;
            assert!(l.insert(&node, k).unwrap(), "op {i}");
            assert!(l.remove(&node, k).unwrap(), "op {i}");
        }
        let stats = smr.allocator().stats();
        assert!(stats.freelist_hits > 400, "hits {}", stats.freelist_hits);
        assert!(smr.limbo_len() < 32, "limbo {}", smr.limbo_len());
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let (f, l) = setup();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let l = l.clone();
            let node = f.node(MachineId((t % 2) as usize));
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    assert!(l.insert(&node, t * 1000 + i + 1).unwrap());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let node = f.node(MachineId(0));
        let keys = l.keys(&node).unwrap();
        assert_eq!(keys.len(), 400);
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted");
    }

    #[test]
    fn concurrent_insert_remove_same_keys() {
        let (f, l) = setup();
        let node0 = f.node(MachineId(0));
        for k in 1..=64u64 {
            l.insert(&node0, k).unwrap();
        }
        let mut handles = Vec::new();
        for t in 0..4usize {
            let l = l.clone();
            let node = f.node(MachineId(t % 2));
            handles.push(std::thread::spawn(move || {
                for round in 0..50u64 {
                    let k = (round * 7 + t as u64 * 13) % 64 + 1;
                    if (round + t as u64).is_multiple_of(2) {
                        let _ = l.remove(&node, k).unwrap();
                    } else {
                        let _ = l.insert(&node, k).unwrap();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // The list must still be sorted and duplicate-free, and the
        // contended churn must have retired (and mostly reclaimed)
        // nodes along the way.
        let keys = l.keys(&node0).unwrap();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "{keys:?}");
        assert!(
            l.smr.stats().retires > 0,
            "contended churn must have retired nodes"
        );
        l.reclaim(&node0).unwrap();
        assert_eq!(l.smr.limbo_len(), 0, "quiescent pass drains limbo");
    }

    #[test]
    fn contents_survive_memory_node_crash() {
        let (f, l) = setup();
        let node = f.node(MachineId(0));
        for k in [2u64, 4, 6] {
            l.insert(&node, k).unwrap();
        }
        l.remove(&node, 4).unwrap();
        f.crash(MachineId(2));
        f.recover(MachineId(2));
        assert_eq!(l.keys(&node).unwrap(), vec![2, 6]);
        assert!(!l.contains(&node, 4).unwrap());
    }

    /// Seeded-bug detection: replay the removal protocol but free the
    /// unlinked node inline instead of retiring it through the epoch
    /// domain — the exact mistake the module docs warn about. A pinned
    /// traversal then touches the reclaimed node, which the sanitizer
    /// reports as a use-after-retire. The sound retire path right
    /// before it must stay silent.
    #[test]
    fn sanitizer_flags_inline_free_instead_of_retire() {
        use crate::check::{CheckConfig, Checker, ViolationClass};
        let f = SimFabric::new(SystemConfig::symmetric_nvm(3, 1 << 14));
        let ck = Arc::new(Checker::new(CheckConfig {
            fail_fast: false,
            ..CheckConfig::default()
        }));
        f.install_checker(Arc::clone(&ck));
        let smr = domain(&f, MachineId(2));
        smr.install_checker(Arc::clone(&ck));
        let node = f.node(MachineId(0));
        let l: DurableList = DurableList::create(&smr, &node).unwrap().unwrap();
        for k in [2u64, 4, 6] {
            l.insert(&node, k).unwrap();
        }
        // Sound removal (unlink + retire) and a traversal over the
        // retired node's grace period: silent.
        assert!(l.remove(&node, 4).unwrap());
        assert!(l.contains(&node, 6).unwrap());
        assert_eq!(ck.use_after_retire(), 0, "retire-based removal is clean");
        // The bug: unlink 6 by hand, then free inline while a pinned
        // traversal (this thread's own guard) is still in flight.
        let guard = l.smr.pin();
        let (pred_cell, pred_gen, curr_enc, found) = l.search(&guard, &node, 6).unwrap();
        assert_eq!(found, Some(6));
        let curr = l.alloc.decode(curr_enc).expect("found implies node");
        let next_raw = l
            .persist
            .shared_load(&node, l.next_cell(curr), true)
            .unwrap();
        l.persist
            .shared_cas(&node, l.next_cell(curr), next_raw, next_raw | MARK, true)
            .unwrap()
            .unwrap();
        l.persist
            .shared_cas(
                &node,
                pred_cell,
                curr_enc,
                l.unlink_word(next_raw, pred_gen),
                true,
            )
            .unwrap()
            .unwrap();
        // Should have been `guard.retire(&node, curr)`.
        l.alloc.free(&node, curr).unwrap().unwrap();
        // The pinned "traversal" dereferences the reclaimed node.
        let _ = l
            .persist
            .shared_load(&node, l.key_cell(curr), true)
            .unwrap();
        drop(guard);
        assert_eq!(
            ck.use_after_retire(),
            1,
            "pinned access to an inline-freed node is a use-after-retire"
        );
        let v = ck.violations().pop().expect("one violation recorded");
        assert_eq!(v.class, ViolationClass::UseAfterRetire);
        assert_eq!(v.loc, l.key_cell(curr), "blamed at the reclaimed cell");
    }

    #[test]
    #[should_panic(expected = "key out of range")]
    fn zero_key_rejected() {
        let (f, l) = setup();
        let node = f.node(MachineId(0));
        let _ = l.insert(&node, 0);
    }
}
