//! A durable fixed-capacity hash map with open addressing **and
//! epoch-protected table recycling**.
//!
//! Slot layout: `[key, value]` pairs in a power-of-two table. Keys are
//! claimed once with CAS (`0` = empty; keys are never unclaimed in
//! place), and each value cell then behaves as a per-key durable
//! register with `0` meaning *absent* — so `insert`, `get` and `remove`
//! all linearize on a single cell access and inherit durable
//! linearizability directly from the FliT-wrapped register operations.
//!
//! ## Header indirection and recycling
//!
//! The durable root of a map is a one-cell **header** holding a
//! generation-tagged pointer to the current table. Operations pin the
//! cluster's epoch-based reclamation domain ([`crate::smr`]), load the
//! header, and work on whatever table it names. That indirection is
//! what makes [`DurableMap::recycle`] possible: compaction copies the
//! live entries into a fresh table, durably swings the header, and
//! *retires* the old table through the domain — it drains back to the
//! allocator only after every operation pinned at retirement time has
//! finished. Before SMR the table pointer was baked into each handle
//! and safety rested on zeroing recycled blocks at creation; zeroing is
//! now merely table initialization (fresh tables must read empty), not
//! a cross-structure safety mechanism.
//!
//! Mutators (`insert`/`remove`) take a **volatile** shared lock that
//! [`DurableMap::recycle`] takes exclusively, so a copy observes a
//! frozen table; lookups ([`DurableMap::get`]) stay lock-free and rely
//! on the epoch pin alone. The lock is per-handle-lineage: handles
//! [`Clone`]d from one [`DurableMap::create`]/[`DurableMap::attach`]
//! share it, but two *independently attached* handles do not — don't
//! run `recycle` from one lineage concurrently with mutators from
//! another (lookups are always safe). The lock being volatile is fine
//! for crashes: a crash mid-recycle leaves either the old header (old
//! table intact, new block swept back by allocator recovery) or the new
//! one (copy complete and durable before the swing).
//!
//! Restrictions (documented API contract): keys and values must be
//! non-zero; capacity is fixed at creation (minimum 2 slots) and
//! preserved across recycles; removals do not free slots in place (the
//! key stays claimed until the next [`DurableMap::recycle`] compacts
//! dead keys away).

use std::marker::PhantomData;
use std::sync::Arc;

use cxl0_model::Loc;
use parking_lot::RwLock;

use crate::alloc::{Allocator, BlockRef};
use crate::api::Word;
use crate::backend::{AsNode, NodeHandle};
use crate::error::OpResult;
use crate::flit::Persistence;
use crate::smr::SmrDomain;

/// Key sentinel for an unclaimed slot.
const EMPTY_KEY: u64 = 0;
/// Value sentinel for "no binding".
const ABSENT: u64 = 0;

/// A durable lock-free hash map over [`Word`] keys and values (default
/// `u64`). Keys and values must *encode* to non-zero words (the
/// sentinels).
///
/// # Examples
///
/// ```
/// use cxl0_runtime::api::Cluster;
/// use cxl0_model::MachineId;
///
/// let cluster = Cluster::symmetric(2, 4096)?;
/// let session = cluster.session(MachineId(0));
/// let map = session.create_map::<u64, u64>("index", 64)?;
/// assert_eq!(map.insert(&session, 5, 50)?, Some(None));
/// assert_eq!(map.get(&session, 5)?, Some(50));
/// assert_eq!(map.remove(&session, 5)?, Some(50));
/// assert_eq!(map.get(&session, 5)?, None);
/// # Ok::<(), cxl0_runtime::api::ApiError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DurableMap<K: Word = u64, V: Word = u64> {
    /// One durable cell holding the encoded pointer to the current table.
    header: Loc,
    capacity: u32,
    smr: Arc<SmrDomain>,
    alloc: Arc<Allocator>,
    persist: Arc<dyn Persistence>,
    /// Volatile mutator/recycler coordination (see the module docs).
    sync: Arc<RwLock<()>>,
    _entries: PhantomData<(K, V)>,
}

impl<K: Word, V: Word> DurableMap<K, V> {
    /// Allocates a map with `capacity` slots (rounded up to a power of
    /// two, minimum 2) through `smr`'s allocator — one header cell plus
    /// the table — and publishes the table in the header; `Ok(None)` if
    /// the heap is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn create(smr: &Arc<SmrDomain>, at: &impl AsNode, capacity: u32) -> OpResult<Option<Self>> {
        assert!(capacity > 0, "capacity must be positive");
        let node = at.as_node();
        let alloc = Arc::clone(smr.allocator());
        let persist = Arc::clone(alloc.persistence());
        let capacity = capacity.next_power_of_two().max(2);
        let Some(header) = alloc.alloc(node, 1)? else {
            return Ok(None);
        };
        let Some(table) = Self::fresh_table(&alloc, &persist, node, capacity)? else {
            let _ = alloc.free(node, header.loc)?;
            return Ok(None);
        };
        persist.private_store(node, header.loc, Allocator::encode(table), true)?;
        Ok(Some(DurableMap {
            header: header.loc,
            capacity,
            smr: Arc::clone(smr),
            alloc,
            persist,
            sync: Arc::new(RwLock::new(())),
            _entries: PhantomData,
        }))
    }

    /// Attaches to an existing map after recovery. The durability
    /// strategy is the domain's allocator's. `capacity` must match the
    /// creation capacity (it is preserved across recycles).
    pub fn attach(header: Loc, capacity: u32, smr: Arc<SmrDomain>) -> Self {
        DurableMap {
            header,
            capacity: capacity.next_power_of_two().max(2),
            alloc: Arc::clone(smr.allocator()),
            persist: Arc::clone(smr.persistence()),
            smr,
            sync: Arc::new(RwLock::new(())),
            _entries: PhantomData,
        }
    }

    /// The header cell and capacity (for re-attachment).
    pub fn layout(&self) -> (Loc, u32) {
        (self.header, self.capacity)
    }

    /// Allocates and zero-initializes a table block. Zeroing is table
    /// *initialization* (both sentinels are zero and recycled blocks
    /// retain their previous contents); it is not what makes reuse
    /// safe — the epoch protocol is.
    fn fresh_table(
        alloc: &Allocator,
        persist: &Arc<dyn Persistence>,
        node: &NodeHandle,
        capacity: u32,
    ) -> OpResult<Option<BlockRef>> {
        let Some(block) = alloc.alloc(node, capacity * 2)? else {
            return Ok(None);
        };
        if block.recycled {
            for cell in 0..capacity * 2 {
                persist.private_store(
                    node,
                    Loc::new(block.loc.owner, block.loc.addr.0 + cell),
                    0,
                    true,
                )?;
            }
        }
        Ok(Some(block))
    }

    /// Loads the current table's base from the header. Callers must be
    /// pinned (the returned pointer is only protected while the epoch
    /// pin that observed it is held).
    fn table(&self, node: &NodeHandle) -> OpResult<Loc> {
        let enc = self.persist.shared_load(node, self.header, true)?;
        Ok(self
            .alloc
            .decode(enc)
            .expect("map header always names a table"))
    }

    fn key_cell(&self, base: Loc, slot: u32) -> Loc {
        Loc::new(base.owner, base.addr.0 + slot * 2)
    }

    fn value_cell(&self, base: Loc, slot: u32) -> Loc {
        Loc::new(base.owner, base.addr.0 + slot * 2 + 1)
    }

    fn hash(&self, key: u64) -> u32 {
        (key.wrapping_mul(0x9E3779B97F4A7C15) >> 33) as u32 & (self.capacity - 1)
    }

    /// Finds the slot for `key` in the table at `base`, claiming one if
    /// `claim` and the key is not yet present. Returns `None` (inside
    /// the crash result) if the table is full or the key is absent and
    /// `claim` is false.
    fn find_slot(
        &self,
        node: &NodeHandle,
        base: Loc,
        key: u64,
        claim: bool,
    ) -> OpResult<Option<u32>> {
        let start = self.hash(key);
        for probe in 0..self.capacity {
            let slot = (start + probe) & (self.capacity - 1);
            let k = self
                .persist
                .shared_load(node, self.key_cell(base, slot), true)?;
            if k == key {
                return Ok(Some(slot));
            }
            if k == EMPTY_KEY {
                if !claim {
                    return Ok(None);
                }
                match self.persist.shared_cas(
                    node,
                    self.key_cell(base, slot),
                    EMPTY_KEY,
                    key,
                    true,
                )? {
                    Ok(_) => return Ok(Some(slot)),
                    Err(actual) if actual == key => return Ok(Some(slot)),
                    Err(_) => continue, // someone claimed it for another key
                }
            }
        }
        Ok(None)
    }

    /// Inserts or updates `key → value`. Returns `Some(previous)` on
    /// success (where `previous` is the prior binding, if any), or `None`
    /// if the table is full (consider [`DurableMap::recycle`] to compact
    /// dead keys, then retry).
    ///
    /// # Panics
    ///
    /// Panics if `key` or `value` is zero (the sentinels).
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn insert(&self, at: &impl AsNode, key: K, value: V) -> OpResult<Option<Option<V>>> {
        let node = at.as_node();
        let _span = node.trace_span(crate::trace::OpKind::Insert);
        let key = key.to_word();
        let value = value.to_word();
        assert_ne!(key, EMPTY_KEY, "key 0 is reserved");
        assert_ne!(value, ABSENT, "value 0 is reserved");
        let _mutating = self.sync.read();
        let _guard = self.smr.pin();
        let base = self.table(node)?;
        let Some(slot) = self.find_slot(node, base, key, true)? else {
            return Ok(None);
        };
        // Swap the value cell atomically to learn the previous binding.
        loop {
            let old = self
                .persist
                .shared_load(node, self.value_cell(base, slot), true)?;
            if self
                .persist
                .shared_cas(node, self.value_cell(base, slot), old, value, true)?
                .is_ok()
            {
                self.persist.complete_op(node)?;
                return Ok(Some(if old == ABSENT {
                    None
                } else {
                    Some(V::from_word(old))
                }));
            }
        }
    }

    /// Looks up `key`. Lock-free: concurrent [`DurableMap::recycle`]
    /// cannot invalidate the table under this operation because the
    /// epoch pin keeps a retired table out of reuse until the lookup
    /// finishes.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn get(&self, at: &impl AsNode, key: K) -> OpResult<Option<V>> {
        let node = at.as_node();
        let _span = node.trace_span(crate::trace::OpKind::Get);
        let key = key.to_word();
        let _guard = self.smr.pin();
        let base = self.table(node)?;
        let Some(slot) = self.find_slot(node, base, key, false)? else {
            self.persist.complete_op(node)?;
            return Ok(None);
        };
        let v = self
            .persist
            .shared_load(node, self.value_cell(base, slot), true)?;
        self.persist.complete_op(node)?;
        Ok(if v == ABSENT {
            None
        } else {
            Some(V::from_word(v))
        })
    }

    /// Removes `key`, returning the removed binding. The slot's key
    /// stays claimed (for cheap re-inserts) until a
    /// [`DurableMap::recycle`] compacts it away.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn remove(&self, at: &impl AsNode, key: K) -> OpResult<Option<V>> {
        let node = at.as_node();
        let _span = node.trace_span(crate::trace::OpKind::Remove);
        let key = key.to_word();
        let _mutating = self.sync.read();
        let _guard = self.smr.pin();
        let base = self.table(node)?;
        let Some(slot) = self.find_slot(node, base, key, false)? else {
            self.persist.complete_op(node)?;
            return Ok(None);
        };
        loop {
            let old = self
                .persist
                .shared_load(node, self.value_cell(base, slot), true)?;
            if old == ABSENT {
                self.persist.complete_op(node)?;
                return Ok(None);
            }
            if self
                .persist
                .shared_cas(node, self.value_cell(base, slot), old, ABSENT, true)?
                .is_ok()
            {
                self.persist.complete_op(node)?;
                return Ok(Some(V::from_word(old)));
            }
        }
    }

    /// Compacts the map into a fresh table — live entries are copied,
    /// dead keys (claimed but absent) are dropped — durably swings the
    /// header, and retires the old table through the reclamation
    /// domain. Returns the number of live entries carried over.
    ///
    /// Excludes mutators for the duration (lookups keep running
    /// lock-free against whichever table they pinned). A crash at any
    /// point leaves a consistent map: the copy is persisted before the
    /// header swing, the swing itself is a single durable CAS, and the
    /// not-yet-retired loser block is swept back to the free lists by
    /// allocator/SMR recovery.
    ///
    /// # Panics
    ///
    /// Panics if the heap cannot supply a fresh table even after full
    /// reclamation (two live tables of this map's class must fit).
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn recycle(&self, at: &impl AsNode) -> OpResult<u32> {
        let node = at.as_node();
        let _exclusive = self.sync.write();
        // Not pinned yet: the table cannot be retired from under us
        // (only recycle/destroy retire tables and we hold the write
        // lock), and staying unpinned lets the collect below ripen a
        // full grace period if the heap is transiently exhausted.
        let old_enc = self.persist.shared_load(node, self.header, true)?;
        let old_base = self
            .alloc
            .decode(old_enc)
            .expect("map header always names a table");
        let mut attempts = 0u32;
        let fresh = loop {
            if let Some(b) = Self::fresh_table(&self.alloc, &self.persist, node, self.capacity)? {
                break b;
            }
            let freed = self.smr.collect(node)?;
            attempts += 1;
            assert!(
                freed > 0 || attempts < 64,
                "map heap exhausted (nothing left to reclaim): {:?} {:?}",
                self.smr.stats(),
                self.alloc.stats(),
            );
            if freed == 0 {
                // Wait out concurrent traversals between empty
                // attempts: they hold the grace period open for their
                // whole (finite) operation.
                crate::smr::exhaustion_backoff(attempts);
            }
        };
        // Copy live entries; the write lock freezes the old table.
        let mut live = 0u32;
        for slot in 0..self.capacity {
            let k = self
                .persist
                .shared_load(node, self.key_cell(old_base, slot), true)?;
            if k == EMPTY_KEY {
                continue;
            }
            let v = self
                .persist
                .shared_load(node, self.value_cell(old_base, slot), true)?;
            if v == ABSENT {
                continue; // dead key: dropped by compaction
            }
            let dst = self
                .rehash_into(node, fresh.loc, k)
                .expect("fresh table has room for every live entry");
            self.persist
                .private_store(node, self.key_cell(fresh.loc, dst), k, true)?;
            self.persist
                .private_store(node, self.value_cell(fresh.loc, dst), v, true)?;
            live += 1;
        }
        // Publish: one durable CAS. No competitor can have swung the
        // header (write lock), so failure would be a logic error.
        self.persist
            .shared_cas(node, self.header, old_enc, Allocator::encode(fresh), true)?
            .expect("recycle is exclusive");
        let guard = self.smr.pin();
        guard.retire(node, old_base)?;
        drop(guard);
        // Recycle is the heavyweight compaction path already; ripen the
        // grace period now (unpinned) so the retired table is promptly
        // reusable instead of waiting for amortized collection.
        self.smr.collect(node)?;
        self.persist.complete_op(node)?;
        Ok(live)
    }

    /// Probes the (private, not yet published) table at `base` for a
    /// free slot for `key`. `None` only if the table is full.
    fn rehash_into(&self, node: &NodeHandle, base: Loc, key: u64) -> Option<u32> {
        // The fresh table is private until the header swing, but reads
        // must still go through the persistence layer so buffered modes
        // observe their own writes; `expect` never fires because the
        // old table held at most `capacity` live keys.
        let start = self.hash(key);
        (0..self.capacity)
            .map(|probe| (start + probe) & (self.capacity - 1))
            .find(|&slot| {
                self.persist
                    .shared_load(node, self.key_cell(base, slot), true)
                    .map(|k| k == EMPTY_KEY)
                    .unwrap_or(false)
            })
    }

    /// Retires the table *and* the header, returning the map's memory
    /// to the allocator (after the grace period). The handle — and any
    /// clone or independently attached handle — must not be used again;
    /// this is the caller's contract, not checked.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn destroy(self, at: &impl AsNode) -> OpResult<()> {
        let node = at.as_node();
        let _exclusive = self.sync.write();
        let base = {
            let _guard = self.smr.pin();
            self.table(node)?
        };
        let guard = self.smr.pin();
        guard.retire(node, base)?;
        guard.retire(node, self.header)?;
        drop(guard);
        self.persist.complete_op(node)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimFabric;
    use crate::flit::FlitCxl0;
    use cxl0_model::{MachineId, SystemConfig};

    fn domain(f: &SimFabric, mem: MachineId) -> Arc<SmrDomain> {
        Arc::new(SmrDomain::new(Arc::new(Allocator::over_region(
            f.config(),
            mem,
            Arc::new(FlitCxl0::default()),
        ))))
    }

    fn setup(cap: u32) -> (Arc<SimFabric>, DurableMap) {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(3, 4096));
        let smr = domain(&f, MachineId(2));
        let m = DurableMap::create(&smr, &f.node(MachineId(0)), cap)
            .unwrap()
            .unwrap();
        (f, m)
    }

    #[test]
    fn recycled_blocks_never_leak_stale_contents() {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 4096));
        let smr = domain(&f, MachineId(1));
        let node = f.node(MachineId(0));
        // Dirty a block of the table's class, then free it so the map's
        // create reuses it for the table.
        let alloc = Arc::clone(smr.allocator());
        let b = alloc.alloc(&node, 8).unwrap().unwrap();
        for cell in 0..8 {
            node.lstore(Loc::new(b.loc.owner, b.loc.addr.0 + cell), 0xdead)
                .unwrap();
        }
        alloc.free(&node, b.loc).unwrap().unwrap();
        let m: DurableMap = DurableMap::create(&smr, &node, 4).unwrap().unwrap();
        assert_eq!(
            m.table(&node).unwrap(),
            b.loc,
            "recycled block backs the table"
        );
        for k in 1..=8u64 {
            assert_eq!(m.get(&node, k).unwrap(), None, "stale contents visible");
        }
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let (f, m) = setup(16);
        let node = f.node(MachineId(0));
        assert_eq!(m.insert(&node, 1, 10).unwrap(), Some(None));
        assert_eq!(m.insert(&node, 1, 20).unwrap(), Some(Some(10)));
        assert_eq!(m.get(&node, 1).unwrap(), Some(20));
        assert_eq!(m.remove(&node, 1).unwrap(), Some(20));
        assert_eq!(m.get(&node, 1).unwrap(), None);
        assert_eq!(m.remove(&node, 1).unwrap(), None);
    }

    #[test]
    fn collisions_probe_linearly() {
        let (f, m) = setup(4);
        let node = f.node(MachineId(0));
        // Insert more keys than distinct hash buckets to force probing.
        for k in 1..=4u64 {
            assert!(m.insert(&node, k, k * 10).unwrap().is_some());
        }
        for k in 1..=4u64 {
            assert_eq!(m.get(&node, k).unwrap(), Some(k * 10));
        }
    }

    #[test]
    fn full_table_reports_none() {
        let (f, m) = setup(2); // rounds to capacity 2
        let node = f.node(MachineId(0));
        assert!(m.insert(&node, 1, 1).unwrap().is_some());
        assert!(m.insert(&node, 2, 2).unwrap().is_some());
        assert_eq!(m.insert(&node, 3, 3).unwrap(), None);
    }

    #[test]
    fn recycle_compacts_dead_keys_and_preserves_live_ones() {
        let (f, m) = setup(4);
        let node = f.node(MachineId(0));
        // Fill the table, then kill half the keys: re-inserting fresh
        // keys fails (slots stay claimed) until a recycle compacts.
        for k in 1..=4u64 {
            assert!(m.insert(&node, k, k * 10).unwrap().is_some());
        }
        m.remove(&node, 1).unwrap();
        m.remove(&node, 3).unwrap();
        assert_eq!(m.insert(&node, 9, 90).unwrap(), None, "table full");
        assert_eq!(m.recycle(&node).unwrap(), 2, "two live entries survive");
        assert_eq!(m.get(&node, 2).unwrap(), Some(20));
        assert_eq!(m.get(&node, 4).unwrap(), Some(40));
        assert_eq!(m.get(&node, 1).unwrap(), None);
        assert!(m.insert(&node, 9, 90).unwrap().is_some(), "room again");
        assert_eq!(m.get(&node, 9).unwrap(), Some(90));
    }

    #[test]
    fn recycle_churn_reuses_tables_in_bounded_memory() {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 512));
        let smr = domain(&f, MachineId(1));
        let node = f.node(MachineId(0));
        let m: DurableMap = DurableMap::create(&smr, &node, 4).unwrap().unwrap();
        // Each round claims all 4 slots with fresh keys, kills them,
        // and recycles — far more tables than the 512-cell region could
        // hold without reuse.
        for round in 0..50u64 {
            for i in 0..4u64 {
                let k = round * 4 + i + 1;
                assert!(m.insert(&node, k, k).unwrap().is_some(), "round {round}");
                m.remove(&node, k).unwrap();
            }
            assert_eq!(m.recycle(&node).unwrap(), 0, "round {round}");
        }
        let stats = smr.allocator().stats();
        assert!(stats.freelist_hits > 40, "hits {}", stats.freelist_hits);
    }

    #[test]
    fn destroy_returns_all_memory() {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 4096));
        let smr = domain(&f, MachineId(1));
        let node = f.node(MachineId(0));
        let alloc = Arc::clone(smr.allocator());
        let before = alloc.stats();
        let m: DurableMap = DurableMap::create(&smr, &node, 8).unwrap().unwrap();
        m.insert(&node, 1, 1).unwrap();
        m.destroy(&node).unwrap();
        let swept = smr.collect(&node).unwrap();
        assert_eq!(swept, 2, "table and header both reclaimed");
        let after = alloc.stats();
        assert_eq!(
            after.allocs - before.allocs,
            after.frees - before.frees,
            "no net allocation survives destroy"
        );
    }

    #[test]
    fn lookups_run_concurrently_with_recycles() {
        let (f, m) = setup(16);
        let node0 = f.node(MachineId(0));
        for k in 1..=8u64 {
            m.insert(&node0, k, k * 10).unwrap();
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..3usize {
            let m = m.clone();
            let node = f.node(MachineId(t % 2));
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut reads = 0u64;
                // Check the flag only after a full sweep so every reader
                // performs at least one, even if the recycler finishes
                // before this thread gets scheduled.
                loop {
                    for k in 1..=8u64 {
                        assert_eq!(m.get(&node, k).unwrap(), Some(k * 10));
                        reads += 1;
                    }
                    if stop.load(std::sync::atomic::Ordering::Relaxed) {
                        break;
                    }
                }
                reads
            }));
        }
        for _ in 0..30 {
            assert_eq!(m.recycle(&node0).unwrap(), 8);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for h in handles {
            assert!(h.join().unwrap() > 0);
        }
        for k in 1..=8u64 {
            assert_eq!(m.get(&node0, k).unwrap(), Some(k * 10));
        }
    }

    #[test]
    fn contents_survive_crash() {
        let (f, m) = setup(16);
        let node = f.node(MachineId(0));
        for k in 1..=8u64 {
            m.insert(&node, k, 100 + k).unwrap();
        }
        m.remove(&node, 3).unwrap();
        f.crash(MachineId(2));
        f.recover(MachineId(2));
        for k in 1..=8u64 {
            let expect = if k == 3 { None } else { Some(100 + k) };
            assert_eq!(m.get(&node, k).unwrap(), expect, "key {k}");
        }
    }

    #[test]
    fn contents_survive_crash_after_recycle() {
        let (f, m) = setup(8);
        let node = f.node(MachineId(0));
        for k in 1..=6u64 {
            m.insert(&node, k, 100 + k).unwrap();
        }
        m.remove(&node, 2).unwrap();
        m.remove(&node, 5).unwrap();
        assert_eq!(m.recycle(&node).unwrap(), 4);
        f.crash(MachineId(2));
        f.recover(MachineId(2));
        for k in 1..=6u64 {
            let expect = if k == 2 || k == 5 {
                None
            } else {
                Some(100 + k)
            };
            assert_eq!(m.get(&node, k).unwrap(), expect, "key {k}");
        }
    }

    #[test]
    fn concurrent_inserts_distinct_keys() {
        let (f, m) = setup(256);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let m = m.clone();
            let node = f.node(MachineId((t % 2) as usize));
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let k = t * 100 + i + 1;
                    m.insert(&node, k, k * 2).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let node = f.node(MachineId(0));
        for t in 0..4u64 {
            for i in 0..50 {
                let k = t * 100 + i + 1;
                assert_eq!(m.get(&node, k).unwrap(), Some(k * 2));
            }
        }
    }

    #[test]
    #[should_panic(expected = "key 0 is reserved")]
    fn zero_key_rejected() {
        let (f, m) = setup(4);
        let node = f.node(MachineId(0));
        let _ = m.insert(&node, 0, 1);
    }
}
