//! A durable fixed-capacity hash map with open addressing.
//!
//! Slot layout: `[key, value]` pairs in a power-of-two table. Keys are
//! claimed once with CAS (`0` = empty; keys are never unclaimed), and each
//! value cell then behaves as a per-key durable register with `0` meaning
//! *absent* — so `insert`, `get` and `remove` all linearize on a single
//! cell access and inherit durable linearizability directly from the
//! FliT-wrapped register operations.
//!
//! Restrictions (documented API contract): keys and values must be
//! non-zero; capacity is fixed at creation (minimum 2 slots, so tables
//! never share a size class with two-cell node blocks — see the
//! reclamation discipline in [`crate::alloc`]); removals do not free
//! slots (the key stays claimed for future re-inserts).
//!
//! The table is allocated through the crash-consistent
//! [`Allocator`] — and therefore zeroed at creation, since a recycled
//! block's payload retains its previous contents and the map's
//! sentinels are zero.

use std::marker::PhantomData;
use std::sync::Arc;

use cxl0_model::Loc;

use crate::alloc::Allocator;
use crate::api::Word;
use crate::backend::{AsNode, NodeHandle};
use crate::error::OpResult;
use crate::flit::Persistence;

/// Key sentinel for an unclaimed slot.
const EMPTY_KEY: u64 = 0;
/// Value sentinel for "no binding".
const ABSENT: u64 = 0;

/// A durable lock-free hash map over [`Word`] keys and values (default
/// `u64`). Keys and values must *encode* to non-zero words (the
/// sentinels).
///
/// # Examples
///
/// ```
/// use cxl0_runtime::api::Cluster;
/// use cxl0_model::MachineId;
///
/// let cluster = Cluster::symmetric(2, 4096)?;
/// let session = cluster.session(MachineId(0));
/// let map = session.create_map::<u64, u64>("index", 64)?;
/// assert_eq!(map.insert(&session, 5, 50)?, Some(None));
/// assert_eq!(map.get(&session, 5)?, Some(50));
/// assert_eq!(map.remove(&session, 5)?, Some(50));
/// assert_eq!(map.get(&session, 5)?, None);
/// # Ok::<(), cxl0_runtime::api::ApiError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DurableMap<K: Word = u64, V: Word = u64> {
    base: Loc,
    capacity: u32,
    persist: Arc<dyn Persistence>,
    _entries: PhantomData<(K, V)>,
}

impl<K: Word, V: Word> DurableMap<K, V> {
    /// Allocates a map with `capacity` slots (rounded up to a power of
    /// two, minimum 2) through `alloc`, zeroing the table; `Ok(None)`
    /// if the heap is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn create(
        alloc: &Arc<Allocator>,
        at: &impl AsNode,
        capacity: u32,
    ) -> OpResult<Option<Self>> {
        assert!(capacity > 0, "capacity must be positive");
        let node = at.as_node();
        let persist = Arc::clone(alloc.persistence());
        let capacity = capacity.next_power_of_two().max(2);
        let Some(block) = alloc.alloc(node, capacity * 2)? else {
            return Ok(None);
        };
        let base = block.loc;
        // A recycled block retains its previous contents; the sentinels
        // are zero, so such a table must be zeroed before anyone can
        // see it. Fresh bump-tail cells are guaranteed zero already.
        if block.recycled {
            for cell in 0..capacity * 2 {
                persist.private_store(node, Loc::new(base.owner, base.addr.0 + cell), 0, true)?;
            }
        }
        Ok(Some(DurableMap {
            base,
            capacity,
            persist,
            _entries: PhantomData,
        }))
    }

    /// Attaches to an existing map after recovery.
    pub fn attach(base: Loc, capacity: u32, persist: Arc<dyn Persistence>) -> Self {
        DurableMap {
            base,
            capacity: capacity.next_power_of_two().max(2),
            persist,
            _entries: PhantomData,
        }
    }

    /// The base cell and capacity (for re-attachment).
    pub fn layout(&self) -> (Loc, u32) {
        (self.base, self.capacity)
    }

    fn key_cell(&self, slot: u32) -> Loc {
        Loc::new(self.base.owner, self.base.addr.0 + slot * 2)
    }

    fn value_cell(&self, slot: u32) -> Loc {
        Loc::new(self.base.owner, self.base.addr.0 + slot * 2 + 1)
    }

    fn hash(&self, key: u64) -> u32 {
        (key.wrapping_mul(0x9E3779B97F4A7C15) >> 33) as u32 & (self.capacity - 1)
    }

    /// Finds the slot for `key`, claiming one if `claim` and the key is
    /// not yet present. Returns `None` (inside the crash result) if the
    /// table is full or the key is absent and `claim` is false.
    fn find_slot(&self, node: &NodeHandle, key: u64, claim: bool) -> OpResult<Option<u32>> {
        let start = self.hash(key);
        for probe in 0..self.capacity {
            let slot = (start + probe) & (self.capacity - 1);
            let k = self.persist.shared_load(node, self.key_cell(slot), true)?;
            if k == key {
                return Ok(Some(slot));
            }
            if k == EMPTY_KEY {
                if !claim {
                    return Ok(None);
                }
                match self
                    .persist
                    .shared_cas(node, self.key_cell(slot), EMPTY_KEY, key, true)?
                {
                    Ok(_) => return Ok(Some(slot)),
                    Err(actual) if actual == key => return Ok(Some(slot)),
                    Err(_) => continue, // someone claimed it for another key
                }
            }
        }
        Ok(None)
    }

    /// Inserts or updates `key → value`. Returns `Some(previous)` on
    /// success (where `previous` is the prior binding, if any), or `None`
    /// if the table is full.
    ///
    /// # Panics
    ///
    /// Panics if `key` or `value` is zero (the sentinels).
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn insert(&self, at: &impl AsNode, key: K, value: V) -> OpResult<Option<Option<V>>> {
        let node = at.as_node();
        let key = key.to_word();
        let value = value.to_word();
        assert_ne!(key, EMPTY_KEY, "key 0 is reserved");
        assert_ne!(value, ABSENT, "value 0 is reserved");
        let Some(slot) = self.find_slot(node, key, true)? else {
            return Ok(None);
        };
        // Swap the value cell atomically to learn the previous binding.
        loop {
            let old = self
                .persist
                .shared_load(node, self.value_cell(slot), true)?;
            if self
                .persist
                .shared_cas(node, self.value_cell(slot), old, value, true)?
                .is_ok()
            {
                self.persist.complete_op(node)?;
                return Ok(Some(if old == ABSENT {
                    None
                } else {
                    Some(V::from_word(old))
                }));
            }
        }
    }

    /// Looks up `key`.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn get(&self, at: &impl AsNode, key: K) -> OpResult<Option<V>> {
        let node = at.as_node();
        let key = key.to_word();
        let Some(slot) = self.find_slot(node, key, false)? else {
            self.persist.complete_op(node)?;
            return Ok(None);
        };
        let v = self
            .persist
            .shared_load(node, self.value_cell(slot), true)?;
        self.persist.complete_op(node)?;
        Ok(if v == ABSENT {
            None
        } else {
            Some(V::from_word(v))
        })
    }

    /// Removes `key`, returning the removed binding.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn remove(&self, at: &impl AsNode, key: K) -> OpResult<Option<V>> {
        let node = at.as_node();
        let key = key.to_word();
        let Some(slot) = self.find_slot(node, key, false)? else {
            self.persist.complete_op(node)?;
            return Ok(None);
        };
        loop {
            let old = self
                .persist
                .shared_load(node, self.value_cell(slot), true)?;
            if old == ABSENT {
                self.persist.complete_op(node)?;
                return Ok(None);
            }
            if self
                .persist
                .shared_cas(node, self.value_cell(slot), old, ABSENT, true)?
                .is_ok()
            {
                self.persist.complete_op(node)?;
                return Ok(Some(V::from_word(old)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimFabric;
    use crate::flit::FlitCxl0;
    use cxl0_model::{MachineId, SystemConfig};

    fn setup(cap: u32) -> (Arc<SimFabric>, DurableMap) {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(3, 4096));
        let alloc = Arc::new(Allocator::over_region(
            f.config(),
            MachineId(2),
            Arc::new(FlitCxl0::default()),
        ));
        let m = DurableMap::create(&alloc, &f.node(MachineId(0)), cap)
            .unwrap()
            .unwrap();
        (f, m)
    }

    #[test]
    fn tables_are_zeroed_even_on_recycled_blocks() {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 4096));
        let alloc = Arc::new(Allocator::over_region(
            f.config(),
            MachineId(1),
            Arc::new(FlitCxl0::default()),
        ));
        let node = f.node(MachineId(0));
        // Dirty a block of the map's class, then free it so the map's
        // create reuses it.
        let b = alloc.alloc(&node, 8).unwrap().unwrap();
        for cell in 0..8 {
            node.lstore(Loc::new(b.loc.owner, b.loc.addr.0 + cell), 0xdead)
                .unwrap();
        }
        alloc.free(&node, b.loc).unwrap().unwrap();
        let m: DurableMap = DurableMap::create(&alloc, &node, 4).unwrap().unwrap();
        assert_eq!(m.layout().0, b.loc, "recycled block backs the table");
        for k in 1..=8u64 {
            assert_eq!(m.get(&node, k).unwrap(), None, "stale contents visible");
        }
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let (f, m) = setup(16);
        let node = f.node(MachineId(0));
        assert_eq!(m.insert(&node, 1, 10).unwrap(), Some(None));
        assert_eq!(m.insert(&node, 1, 20).unwrap(), Some(Some(10)));
        assert_eq!(m.get(&node, 1).unwrap(), Some(20));
        assert_eq!(m.remove(&node, 1).unwrap(), Some(20));
        assert_eq!(m.get(&node, 1).unwrap(), None);
        assert_eq!(m.remove(&node, 1).unwrap(), None);
    }

    #[test]
    fn collisions_probe_linearly() {
        let (f, m) = setup(4);
        let node = f.node(MachineId(0));
        // Insert more keys than distinct hash buckets to force probing.
        for k in 1..=4u64 {
            assert!(m.insert(&node, k, k * 10).unwrap().is_some());
        }
        for k in 1..=4u64 {
            assert_eq!(m.get(&node, k).unwrap(), Some(k * 10));
        }
    }

    #[test]
    fn full_table_reports_none() {
        let (f, m) = setup(2); // rounds to capacity 2
        let node = f.node(MachineId(0));
        assert!(m.insert(&node, 1, 1).unwrap().is_some());
        assert!(m.insert(&node, 2, 2).unwrap().is_some());
        assert_eq!(m.insert(&node, 3, 3).unwrap(), None);
    }

    #[test]
    fn contents_survive_crash() {
        let (f, m) = setup(16);
        let node = f.node(MachineId(0));
        for k in 1..=8u64 {
            m.insert(&node, k, 100 + k).unwrap();
        }
        m.remove(&node, 3).unwrap();
        f.crash(MachineId(2));
        f.recover(MachineId(2));
        for k in 1..=8u64 {
            let expect = if k == 3 { None } else { Some(100 + k) };
            assert_eq!(m.get(&node, k).unwrap(), expect, "key {k}");
        }
    }

    #[test]
    fn concurrent_inserts_distinct_keys() {
        let (f, m) = setup(256);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let m = m.clone();
            let node = f.node(MachineId((t % 2) as usize));
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let k = t * 100 + i + 1;
                    m.insert(&node, k, k * 2).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let node = f.node(MachineId(0));
        for t in 0..4u64 {
            for i in 0..50 {
                let k = t * 100 + i + 1;
                assert_eq!(m.get(&node, k).unwrap(), Some(k * 2));
            }
        }
    }

    #[test]
    #[should_panic(expected = "key 0 is reserved")]
    fn zero_key_rejected() {
        let (f, m) = setup(4);
        let node = f.node(MachineId(0));
        let _ = m.insert(&node, 0, 1);
    }
}
