//! A durable Treiber stack: the classic lock-free stack,
//! FliT-transformed, with node reclamation.
//!
//! Node layout: `[value, next]`. New nodes are initialized with
//! `private_store` (nobody can see them before the publishing CAS; the
//! persistence flag makes them durable *before* publication, as FliT
//! requires), then published with `shared_cas` on the `top` pointer.
//! Popped nodes are returned to the crash-consistent [`Allocator`];
//! the generation-tagged pointer words it hands out are what protect
//! the `top` CAS from ABA under reuse.

use std::marker::PhantomData;
use std::sync::Arc;

use cxl0_model::Loc;

use crate::alloc::{Allocator, BlockRef};
use crate::api::Word;
use crate::backend::AsNode;
use crate::error::OpResult;
use crate::flit::Persistence;

/// A durable lock-free LIFO stack of [`Word`] values (default `u64`).
///
/// # Examples
///
/// ```
/// use cxl0_runtime::api::Cluster;
/// use cxl0_model::MachineId;
///
/// let cluster = Cluster::symmetric(2, 4096)?;
/// let session = cluster.session(MachineId(0));
/// let stack = session.create_stack::<u64>("undo")?;
/// stack.push(&session, 1)?;
/// stack.push(&session, 2)?;
/// assert_eq!(stack.pop(&session)?, Some(2));
/// assert_eq!(stack.pop(&session)?, Some(1));
/// assert_eq!(stack.pop(&session)?, None);
/// # Ok::<(), cxl0_runtime::api::ApiError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DurableStack<T: Word = u64> {
    top: Loc,
    alloc: Arc<Allocator>,
    persist: Arc<dyn Persistence>,
    _values: PhantomData<T>,
}

impl<T: Word> DurableStack<T> {
    /// Allocates an empty stack (one `top` cell) through `alloc`;
    /// `Ok(None)` if the heap is exhausted.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn create(alloc: &Arc<Allocator>, at: &impl AsNode) -> OpResult<Option<Self>> {
        let node = at.as_node();
        let persist = Arc::clone(alloc.persistence());
        let Some(top) = alloc.alloc(node, 1)? else {
            return Ok(None);
        };
        // The top block may be recycled memory: empty is a plain zero.
        persist.private_store(node, top.loc, 0, true)?;
        Ok(Some(DurableStack {
            top: top.loc,
            alloc: Arc::clone(alloc),
            persist,
            _values: PhantomData,
        }))
    }

    /// Attaches to an existing stack after recovery: the `top` cell and
    /// the node heap region are all the state there is. The durability
    /// strategy is the allocator's — the two can never be a mismatched
    /// pair.
    pub fn attach(top: Loc, alloc: Arc<Allocator>) -> Self {
        DurableStack {
            top,
            persist: Arc::clone(alloc.persistence()),
            alloc,
            _values: PhantomData,
        }
    }

    /// The `top` pointer cell (for re-attachment).
    pub fn top_cell(&self) -> Loc {
        self.top
    }

    fn value_cell(&self, node: Loc) -> Loc {
        node
    }

    fn next_cell(&self, node: Loc) -> Loc {
        Loc::new(node.owner, node.addr.0 + 1)
    }

    /// Pushes `v`. Returns `false` (without error) if the node heap is
    /// exhausted.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn push(&self, at: &impl AsNode, v: T) -> OpResult<bool> {
        let node = at.as_node();
        let _span = node.trace_span(crate::trace::OpKind::Push);
        let raw = v.to_word();
        let Some(n) = self.alloc.alloc(node, 2)? else {
            return Ok(false);
        };
        // Initialize privately; persist before publication.
        self.persist
            .private_store(node, self.value_cell(n.loc), raw, true)?;
        let n_enc = Allocator::encode(n);
        loop {
            let top = self.persist.shared_load(node, self.top, true)?;
            self.persist
                .private_store(node, self.next_cell(n.loc), top, true)?;
            match self.persist.shared_cas(node, self.top, top, n_enc, true)? {
                Ok(_) => {
                    self.persist.complete_op(node)?;
                    return Ok(true);
                }
                Err(_) => continue,
            }
        }
    }

    /// Pops the top value, or `None` when empty. The popped node is
    /// reclaimed through the allocator.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn pop(&self, at: &impl AsNode) -> OpResult<Option<T>> {
        let node = at.as_node();
        let _span = node.trace_span(crate::trace::OpKind::Pop);
        loop {
            let top = self.persist.shared_load(node, self.top, true)?;
            let Some(t) = self.alloc.decode(top) else {
                self.persist.complete_op(node)?;
                return Ok(None);
            };
            let next = self.persist.shared_load(node, self.next_cell(t), true)?;
            let v = self.persist.shared_load(node, self.value_cell(t), true)?;
            match self.persist.shared_cas(node, self.top, top, next, true)? {
                Ok(_) => {
                    // The generation-tagged CAS makes us the unique
                    // unlinker of this incarnation: reclaim it.
                    let freed = self.alloc.free(node, t)?;
                    debug_assert!(freed.is_ok(), "pop winner owns the node");
                    self.persist.complete_op(node)?;
                    return Ok(Some(T::from_word(v)));
                }
                Err(_) => continue,
            }
        }
    }

    /// Sole-mutator push for the combining front
    /// ([`crate::ds::combine`]): the caller holds the structure's
    /// combining lock, so the top pointer is updated with a plain
    /// [`Persistence::batched_store`] (no CAS, persistence deferrable to
    /// the batch flush). Store order (value, next, top) keeps every
    /// durable prefix a consistent stack.
    ///
    /// The node comes from the board's `spare` cache when it has one —
    /// a durably-unlinked block from an earlier flushed batch, reused
    /// with its generation unchanged (safe under the front's
    /// sole-mutator contract; see
    /// [`DurableQueue::enqueue_batched`](crate::ds::queue::DurableQueue)).
    pub(crate) fn push_batched(
        &self,
        at: &impl AsNode,
        raw: u64,
        spare: &mut Vec<BlockRef>,
    ) -> OpResult<bool> {
        let node = at.as_node();
        let n = match spare.pop() {
            Some(n) => n,
            None => match self.alloc.alloc(node, 2)? {
                Some(n) => n,
                None => return Ok(false),
            },
        };
        self.persist
            .batched_store(node, self.value_cell(n.loc), raw)?;
        let top = self.persist.private_load(node, self.top)?;
        self.persist
            .batched_store(node, self.next_cell(n.loc), top)?;
        self.persist
            .batched_store(node, self.top, Allocator::encode(n))?;
        Ok(true)
    }

    /// Sole-mutator pop for the combining front (see
    /// [`DurableStack::push_batched`]). The unlinked node goes onto
    /// `frees` for reclamation *after* the batch flush, so a crash can
    /// never leave a persisted top pointing at a reallocated block.
    pub(crate) fn pop_batched(
        &self,
        at: &impl AsNode,
        frees: &mut Vec<BlockRef>,
    ) -> OpResult<Option<u64>> {
        let node = at.as_node();
        let top = self.persist.private_load(node, self.top)?;
        let Some(t) = self.alloc.decode(top) else {
            return Ok(None);
        };
        let next = self.persist.private_load(node, self.next_cell(t))?;
        let v = self.persist.private_load(node, self.value_cell(t))?;
        self.persist.batched_store(node, self.top, next)?;
        frees.push(BlockRef {
            loc: t,
            gen: Allocator::ptr_gen(top),
            recycled: true,
        });
        Ok(Some(v))
    }

    /// Returns nodes a combined batch unlinked to the allocator, once
    /// the batch's top swings are durable.
    pub(crate) fn reclaim_batch(&self, at: &impl AsNode, frees: &[BlockRef]) -> OpResult<()> {
        let node = at.as_node();
        for b in frees {
            let freed = self.alloc.free(node, b.loc)?;
            debug_assert!(freed.is_ok(), "combiner owns the nodes it unlinked");
        }
        Ok(())
    }

    /// The persistence strategy (for the combining front's batch flush).
    pub(crate) fn persist_handle(&self) -> &Arc<dyn Persistence> {
        &self.persist
    }

    /// Drains the stack into a vector (single-threaded helper for tests
    /// and recovery inspection).
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn drain(&self, at: &impl AsNode) -> OpResult<Vec<T>> {
        let mut out = Vec::new();
        while let Some(v) = self.pop(at)? {
            out.push(v);
        }
        Ok(out)
    }

    /// Number of elements (O(n) walk; concurrent-unsafe snapshot).
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn len(&self, at: &impl AsNode) -> OpResult<usize> {
        let node = at.as_node();
        let mut n = 0;
        let mut cur = self.persist.shared_load(node, self.top, true)?;
        while let Some(c) = self.alloc.decode(cur) {
            n += 1;
            cur = self.persist.shared_load(node, self.next_cell(c), true)?;
        }
        Ok(n)
    }

    /// True if the stack is empty.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn is_empty(&self, at: &impl AsNode) -> OpResult<bool> {
        let raw = self.persist.shared_load(at.as_node(), self.top, true)?;
        Ok(self.alloc.decode(raw).is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimFabric;
    use crate::flit::FlitCxl0;
    use cxl0_model::{MachineId, SystemConfig};
    use std::collections::HashSet;

    fn setup() -> (Arc<SimFabric>, DurableStack) {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(3, 4096));
        let alloc = Arc::new(Allocator::over_region(
            f.config(),
            MachineId(2),
            Arc::new(FlitCxl0::default()),
        ));
        let s = DurableStack::create(&alloc, &f.node(MachineId(0)))
            .unwrap()
            .unwrap();
        (f, s)
    }

    #[test]
    fn lifo_order_single_thread() {
        let (f, s) = setup();
        let node = f.node(MachineId(0));
        for v in 1..=5 {
            assert!(s.push(&node, v).unwrap());
        }
        assert_eq!(s.len(&node).unwrap(), 5);
        assert_eq!(s.drain(&node).unwrap(), vec![5, 4, 3, 2, 1]);
        assert!(s.is_empty(&node).unwrap());
    }

    #[test]
    fn concurrent_pushes_all_present() {
        let (f, s) = setup();
        let mut handles = Vec::new();
        for t in 0..3u64 {
            let s = s.clone();
            let node = f.node(MachineId((t % 2) as usize));
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    s.push(&node, t * 1000 + i).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let node = f.node(MachineId(0));
        let got: HashSet<u64> = s.drain(&node).unwrap().into_iter().collect();
        assert_eq!(got.len(), 600);
        for t in 0..3u64 {
            for i in 0..200 {
                assert!(got.contains(&(t * 1000 + i)));
            }
        }
    }

    #[test]
    fn contents_survive_memory_node_crash() {
        let (f, s) = setup();
        let node = f.node(MachineId(0));
        for v in [10, 20, 30] {
            s.push(&node, v).unwrap();
        }
        f.crash(MachineId(2));
        f.recover(MachineId(2));
        assert_eq!(s.drain(&node).unwrap(), vec![30, 20, 10]);
    }

    #[test]
    fn push_pop_churn_reuses_nodes() {
        // Region with room for only a handful of node blocks.
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 256));
        let alloc = Arc::new(Allocator::over_region(
            f.config(),
            MachineId(1),
            Arc::new(FlitCxl0::default()),
        ));
        let node = f.node(MachineId(0));
        let s: DurableStack = DurableStack::create(&alloc, &node).unwrap().unwrap();
        for i in 0..1000u64 {
            assert!(s.push(&node, i + 1).unwrap(), "op {i}: must not exhaust");
            assert_eq!(s.pop(&node).unwrap(), Some(i + 1));
        }
        assert!(alloc.stats().freelist_hits > 900);
    }

    #[test]
    fn heap_exhaustion_reports_false() {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(1, crate::alloc::META_CELLS + 5));
        let alloc = Arc::new(Allocator::over_region(
            f.config(),
            MachineId(0),
            Arc::new(FlitCxl0::default()),
        ));
        let node = f.node(MachineId(0));
        let s: DurableStack = DurableStack::create(&alloc, &node).unwrap().unwrap();
        assert!(s.push(&node, 1).unwrap());
        assert!(!s.push(&node, 2).unwrap()); // out of cells
    }
}
