//! A durable Michael–Scott queue, FliT-transformed.
//!
//! Layout: header `[head, tail]`, nodes `[value, next]`, with a dummy
//! node. The tail may lag one node behind (the usual M&S invariant);
//! every operation helps advance it, and [`DurableQueue::recover`]
//! performs the same helping after a crash.

use std::marker::PhantomData;
use std::sync::Arc;

use cxl0_model::Loc;

use crate::api::Word;
use crate::backend::AsNode;
use crate::error::OpResult;
use crate::flit::Persistence;
use crate::heap::{decode_ptr, encode_ptr, SharedHeap, NULL_PTR};

/// A durable lock-free FIFO queue of [`Word`] values (default `u64`).
///
/// # Examples
///
/// ```
/// use cxl0_runtime::api::Cluster;
/// use cxl0_model::MachineId;
///
/// let cluster = Cluster::symmetric(2, 4096)?;
/// let session = cluster.session(MachineId(0));
/// let q = session.create_queue::<u64>("jobs")?;
/// q.enqueue(&session, 1)?;
/// q.enqueue(&session, 2)?;
/// assert_eq!(q.dequeue(&session)?, Some(1));
/// assert_eq!(q.dequeue(&session)?, Some(2));
/// assert_eq!(q.dequeue(&session)?, None);
/// # Ok::<(), cxl0_runtime::api::ApiError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DurableQueue<T: Word = u64> {
    /// Header: `head` at `header`, `tail` at `header+1`.
    header: Loc,
    heap: Arc<SharedHeap>,
    persist: Arc<dyn Persistence>,
    _values: PhantomData<T>,
}

impl<T: Word> DurableQueue<T> {
    /// Allocates an empty queue (header + dummy node) from `heap`; `None`
    /// if the heap is exhausted.
    ///
    /// `create` must run before any concurrent access; it initializes the
    /// header with persistent private stores.
    pub fn create(heap: &Arc<SharedHeap>, persist: Arc<dyn Persistence>) -> Option<Self> {
        let header = heap.alloc(2)?;
        // The dummy node occupies the two cells right after the header;
        // init() relies on this layout.
        let _dummy = heap.alloc(2)?;
        Some(DurableQueue {
            header,
            heap: Arc::clone(heap),
            persist,
            _values: PhantomData,
        })
    }

    /// Initializes the header and dummy node through `at`. Must be
    /// called exactly once, before any other operation.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn init(&self, at: &impl AsNode) -> OpResult<()> {
        let node = at.as_node();
        // The dummy node is the two cells allocated right after the header.
        let dummy = Loc::new(self.header.owner, self.header.addr.0 + 2);
        self.persist
            .private_store(node, self.next_cell(dummy), NULL_PTR, true)?;
        self.persist
            .private_store(node, self.value_cell(dummy), 0, true)?;
        self.persist
            .private_store(node, self.head_cell(), encode_ptr(dummy), true)?;
        self.persist
            .private_store(node, self.tail_cell(), encode_ptr(dummy), true)?;
        Ok(())
    }

    /// Attaches to an existing queue header after recovery.
    pub fn attach(header: Loc, heap: Arc<SharedHeap>, persist: Arc<dyn Persistence>) -> Self {
        DurableQueue {
            header,
            heap,
            persist,
            _values: PhantomData,
        }
    }

    /// The header cell (for re-attachment).
    pub fn header_cell(&self) -> Loc {
        self.header
    }

    fn head_cell(&self) -> Loc {
        self.header
    }

    fn tail_cell(&self) -> Loc {
        Loc::new(self.header.owner, self.header.addr.0 + 1)
    }

    fn value_cell(&self, node: Loc) -> Loc {
        node
    }

    fn next_cell(&self, node: Loc) -> Loc {
        Loc::new(node.owner, node.addr.0 + 1)
    }

    /// Enqueues `v` at the tail. Returns `false` (no error) if the node
    /// heap is exhausted.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn enqueue(&self, at: &impl AsNode, v: T) -> OpResult<bool> {
        let node = at.as_node();
        let raw = v.to_word();
        let Some(n) = self.heap.alloc(2) else {
            return Ok(false);
        };
        self.persist
            .private_store(node, self.value_cell(n), raw, true)?;
        self.persist
            .private_store(node, self.next_cell(n), NULL_PTR, true)?;
        loop {
            let tail = self.persist.shared_load(node, self.tail_cell(), true)?;
            let t = decode_ptr(self.heap.region(), tail).expect("tail is never null");
            let next = self.persist.shared_load(node, self.next_cell(t), true)?;
            if next == NULL_PTR {
                match self.persist.shared_cas(
                    node,
                    self.next_cell(t),
                    NULL_PTR,
                    encode_ptr(n),
                    true,
                )? {
                    Ok(_) => {
                        // Linearized; help swing the tail.
                        let _ = self.persist.shared_cas(
                            node,
                            self.tail_cell(),
                            tail,
                            encode_ptr(n),
                            true,
                        )?;
                        self.persist.complete_op(node)?;
                        return Ok(true);
                    }
                    Err(_) => continue,
                }
            } else {
                // Tail lagging: help.
                let _ = self
                    .persist
                    .shared_cas(node, self.tail_cell(), tail, next, true)?;
            }
        }
    }

    /// Dequeues from the head, or returns `None` when empty.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn dequeue(&self, at: &impl AsNode) -> OpResult<Option<T>> {
        let node = at.as_node();
        loop {
            let head = self.persist.shared_load(node, self.head_cell(), true)?;
            let tail = self.persist.shared_load(node, self.tail_cell(), true)?;
            let h = decode_ptr(self.heap.region(), head).expect("head is never null");
            let next = self.persist.shared_load(node, self.next_cell(h), true)?;
            if head == tail {
                if next == NULL_PTR {
                    self.persist.complete_op(node)?;
                    return Ok(None);
                }
                // Tail lagging behind a half-finished enqueue: help.
                let _ = self
                    .persist
                    .shared_cas(node, self.tail_cell(), tail, next, true)?;
            } else {
                let nx = decode_ptr(self.heap.region(), next).expect("non-tail next");
                let v = self.persist.shared_load(node, self.value_cell(nx), true)?;
                match self
                    .persist
                    .shared_cas(node, self.head_cell(), head, next, true)?
                {
                    Ok(_) => {
                        self.persist.complete_op(node)?;
                        return Ok(Some(T::from_word(v)));
                    }
                    Err(_) => continue,
                }
            }
        }
    }

    /// Post-crash repair: advance a lagging tail (the only transient
    /// inconsistency a crash can leave; the CAS-published list itself is
    /// always consistent).
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn recover(&self, at: &impl AsNode) -> OpResult<()> {
        let node = at.as_node();
        loop {
            let tail = self.persist.shared_load(node, self.tail_cell(), true)?;
            let t = decode_ptr(self.heap.region(), tail).expect("tail is never null");
            let next = self.persist.shared_load(node, self.next_cell(t), true)?;
            if next == NULL_PTR {
                return Ok(());
            }
            let _ = self
                .persist
                .shared_cas(node, self.tail_cell(), tail, next, true)?;
        }
    }

    /// Drains the queue into a vector (helper for tests/recovery).
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn drain(&self, at: &impl AsNode) -> OpResult<Vec<T>> {
        let mut out = Vec::new();
        while let Some(v) = self.dequeue(at)? {
            out.push(v);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimFabric;
    use crate::flit::FlitCxl0;
    use cxl0_model::{MachineId, SystemConfig};

    fn setup() -> (Arc<SimFabric>, DurableQueue) {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(3, 8192));
        let heap = Arc::new(SharedHeap::new(f.config(), MachineId(2)));
        let q = DurableQueue::create(&heap, Arc::new(FlitCxl0::default())).unwrap();
        q.init(&f.node(MachineId(0))).unwrap();
        (f, q)
    }

    #[test]
    fn fifo_order_single_thread() {
        let (f, q) = setup();
        let node = f.node(MachineId(0));
        for v in 1..=5 {
            assert!(q.enqueue(&node, v).unwrap());
        }
        assert_eq!(q.drain(&node).unwrap(), vec![1, 2, 3, 4, 5]);
        assert_eq!(q.dequeue(&node).unwrap(), None);
    }

    #[test]
    fn typed_queue_round_trips_signed_values() {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 1024));
        let heap = Arc::new(SharedHeap::new(f.config(), MachineId(1)));
        let q: DurableQueue<i64> =
            DurableQueue::create(&heap, Arc::new(FlitCxl0::default())).unwrap();
        let node = f.node(MachineId(0));
        q.init(&node).unwrap();
        q.enqueue(&node, -7).unwrap();
        q.enqueue(&node, i64::MIN).unwrap();
        assert_eq!(q.drain(&node).unwrap(), vec![-7, i64::MIN]);
    }

    #[test]
    fn concurrent_enqueues_preserve_all_elements() {
        let (f, q) = setup();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let q = q.clone();
            let node = f.node(MachineId((t % 2) as usize));
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    q.enqueue(&node, t * 1000 + i).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let node = f.node(MachineId(0));
        let got = q.drain(&node).unwrap();
        assert_eq!(got.len(), 1000);
        // Per-producer FIFO: each thread's values appear in order.
        for t in 0..4u64 {
            let mine: Vec<u64> = got.iter().copied().filter(|v| v / 1000 == t).collect();
            let expect: Vec<u64> = (0..250).map(|i| t * 1000 + i).collect();
            assert_eq!(mine, expect);
        }
    }

    #[test]
    fn concurrent_enqueue_dequeue_no_loss_no_dup() {
        let (f, q) = setup();
        let producers = 2;
        let per = 300u64;
        let mut handles = Vec::new();
        for t in 0..producers as u64 {
            let q = q.clone();
            let node = f.node(MachineId(t as usize % 2));
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    q.enqueue(&node, t * 10_000 + i).unwrap();
                }
            }));
        }
        let consumed = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut consumers = Vec::new();
        for c in 0..2 {
            let q = q.clone();
            let node = f.node(MachineId(c % 2));
            let consumed = std::sync::Arc::clone(&consumed);
            consumers.push(std::thread::spawn(move || loop {
                match q.dequeue(&node).unwrap() {
                    Some(v) => consumed.lock().push(v),
                    None => {
                        if consumed.lock().len() as u64 >= per * producers as u64 {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for c in consumers {
            c.join().unwrap();
        }
        let mut got = consumed.lock().clone();
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len() as u64, per * producers as u64);
    }

    #[test]
    fn contents_survive_crash_and_recover_fixes_tail() {
        let (f, q) = setup();
        let node = f.node(MachineId(0));
        for v in [7, 8, 9] {
            q.enqueue(&node, v).unwrap();
        }
        f.crash(MachineId(2));
        f.recover(MachineId(2));
        q.recover(&node).unwrap();
        assert_eq!(q.drain(&node).unwrap(), vec![7, 8, 9]);
    }
}
