//! A durable Michael–Scott queue, FliT-transformed, with node
//! reclamation.
//!
//! Layout: header block `[head, tail]`, node blocks `[value, next]`,
//! with a dummy node. The tail may lag one node behind (the usual M&S
//! invariant); every operation helps advance it, and
//! [`DurableQueue::recover`] performs the same helping after a crash.
//!
//! Nodes are allocated from — and on dequeue **returned to** — the
//! crash-consistent [`Allocator`], so sustained enqueue/dequeue churn
//! runs in bounded memory. ABA safety under reuse comes from
//! generation-tagged pointers (this is the counted-pointer scheme of the
//! original Michael–Scott free-list formulation): head, tail and `next`
//! cells store [`Allocator::encode`]d words, and a node's `next` is
//! initialized to [`Allocator::null_ptr`] of its own generation, so a
//! CAS against any pointer into a node's previous incarnation fails.

use std::marker::PhantomData;
use std::sync::Arc;

use cxl0_model::Loc;

use crate::alloc::{Allocator, BlockRef};
use crate::api::Word;
use crate::backend::AsNode;
use crate::error::OpResult;
use crate::flit::Persistence;

/// A durable lock-free FIFO queue of [`Word`] values (default `u64`).
///
/// # Examples
///
/// ```
/// use cxl0_runtime::api::Cluster;
/// use cxl0_model::MachineId;
///
/// let cluster = Cluster::symmetric(2, 4096)?;
/// let session = cluster.session(MachineId(0));
/// let q = session.create_queue::<u64>("jobs")?;
/// q.enqueue(&session, 1)?;
/// q.enqueue(&session, 2)?;
/// assert_eq!(q.dequeue(&session)?, Some(1));
/// assert_eq!(q.dequeue(&session)?, Some(2));
/// assert_eq!(q.dequeue(&session)?, None);
/// # Ok::<(), cxl0_runtime::api::ApiError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DurableQueue<T: Word = u64> {
    /// Header: `head` at `header`, `tail` at `header+1`.
    header: Loc,
    alloc: Arc<Allocator>,
    persist: Arc<dyn Persistence>,
    _values: PhantomData<T>,
}

impl<T: Word> DurableQueue<T> {
    /// Allocates and initializes an empty queue (header block + dummy
    /// node) through `alloc`; `Ok(None)` if the heap is exhausted.
    ///
    /// Must run before any concurrent access; the header and dummy are
    /// initialized with persistent private stores.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn create(alloc: &Arc<Allocator>, at: &impl AsNode) -> OpResult<Option<Self>> {
        let node = at.as_node();
        let persist = Arc::clone(alloc.persistence());
        let Some(header) = alloc.alloc(node, 2)? else {
            return Ok(None);
        };
        let Some(dummy) = alloc.alloc(node, 2)? else {
            // Routine failure: hand the header block straight back.
            let _ = alloc.free(node, header.loc)?;
            return Ok(None);
        };
        let q = DurableQueue {
            header: header.loc,
            alloc: Arc::clone(alloc),
            persist,
            _values: PhantomData,
        };
        q.persist
            .private_store(node, q.value_cell(dummy.loc), 0, true)?;
        q.persist.private_store(
            node,
            q.next_cell(dummy.loc),
            Allocator::null_ptr(dummy.gen),
            true,
        )?;
        let dummy_enc = Allocator::encode(dummy);
        q.persist
            .private_store(node, q.head_cell(), dummy_enc, true)?;
        q.persist
            .private_store(node, q.tail_cell(), dummy_enc, true)?;
        Ok(Some(q))
    }

    /// Attaches to an existing queue header after recovery. The
    /// durability strategy is the allocator's — the two can never be a
    /// mismatched pair.
    pub fn attach(header: Loc, alloc: Arc<Allocator>) -> Self {
        DurableQueue {
            header,
            persist: Arc::clone(alloc.persistence()),
            alloc,
            _values: PhantomData,
        }
    }

    /// The header cell (for re-attachment).
    pub fn header_cell(&self) -> Loc {
        self.header
    }

    fn head_cell(&self) -> Loc {
        self.header
    }

    fn tail_cell(&self) -> Loc {
        Loc::new(self.header.owner, self.header.addr.0 + 1)
    }

    fn value_cell(&self, node: Loc) -> Loc {
        node
    }

    fn next_cell(&self, node: Loc) -> Loc {
        Loc::new(node.owner, node.addr.0 + 1)
    }

    /// Enqueues `v` at the tail. Returns `false` (no error) if the node
    /// heap is exhausted.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn enqueue(&self, at: &impl AsNode, v: T) -> OpResult<bool> {
        let node = at.as_node();
        let _span = node.trace_span(crate::trace::OpKind::Enqueue);
        let raw = v.to_word();
        let Some(n) = self.alloc.alloc(node, 2)? else {
            return Ok(false);
        };
        self.persist
            .private_store(node, self.value_cell(n.loc), raw, true)?;
        self.persist.private_store(
            node,
            self.next_cell(n.loc),
            Allocator::null_ptr(n.gen),
            true,
        )?;
        let n_enc = Allocator::encode(n);
        loop {
            let tail = self.persist.shared_load(node, self.tail_cell(), true)?;
            let t = self.alloc.decode(tail).expect("tail is never null");
            let next = self.persist.shared_load(node, self.next_cell(t), true)?;
            // The append CAS must expect the null *of the incarnation we
            // observed as tail* — never the raw null we happened to
            // read, which could belong to a recycled incarnation of `t`
            // (possibly live inside another structure by now). With the
            // generation pinned, the CAS succeeds only while `t` is
            // still our tail's incarnation with no successor.
            let expected_null = Allocator::null_ptr(Allocator::ptr_gen(tail));
            if next == expected_null {
                match self.persist.shared_cas(
                    node,
                    self.next_cell(t),
                    expected_null,
                    n_enc,
                    true,
                )? {
                    Ok(_) => {
                        // Linearized; help swing the tail.
                        let _ =
                            self.persist
                                .shared_cas(node, self.tail_cell(), tail, n_enc, true)?;
                        self.persist.complete_op(node)?;
                        return Ok(true);
                    }
                    Err(_) => continue,
                }
            } else if self.alloc.decode(next).is_some() {
                // Tail lagging: help.
                let _ = self
                    .persist
                    .shared_cas(node, self.tail_cell(), tail, next, true)?;
            }
            // Otherwise: a null of a foreign generation — `t` was
            // recycled under us; the snapshot is garbage, re-read.
        }
    }

    /// Dequeues from the head, or returns `None` when empty. The
    /// retired node (the old dummy) is reclaimed through the allocator.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn dequeue(&self, at: &impl AsNode) -> OpResult<Option<T>> {
        let node = at.as_node();
        let _span = node.trace_span(crate::trace::OpKind::Dequeue);
        loop {
            let head = self.persist.shared_load(node, self.head_cell(), true)?;
            let tail = self.persist.shared_load(node, self.tail_cell(), true)?;
            let h = self.alloc.decode(head).expect("head is never null");
            let next = self.persist.shared_load(node, self.next_cell(h), true)?;
            // The Michael–Scott consistency re-check. Under reclamation
            // it is load-bearing, not an optimization: if `h` was
            // dequeued, freed and recycled while we read `tail`/`next`,
            // `next` belongs to the new incarnation (it can even be a
            // fresh null). The generation-tagged head makes the
            // re-check exact — a recycled `h` cannot masquerade.
            if self.persist.shared_load(node, self.head_cell(), true)? != head {
                continue;
            }
            if head == tail {
                if self.alloc.decode(next).is_none() {
                    self.persist.complete_op(node)?;
                    return Ok(None);
                }
                // Tail lagging behind a half-finished enqueue: help.
                let _ = self
                    .persist
                    .shared_cas(node, self.tail_cell(), tail, next, true)?;
            } else {
                // Validated snapshot with head ≠ tail: the head node has
                // a live successor. (Defensively retry rather than
                // panic if that is ever violated.)
                let Some(nx) = self.alloc.decode(next) else {
                    continue;
                };
                let v = self.persist.shared_load(node, self.value_cell(nx), true)?;
                match self
                    .persist
                    .shared_cas(node, self.head_cell(), head, next, true)?
                {
                    Ok(_) => {
                        // We unlinked the old dummy `h`; no pointer to it
                        // remains in the queue (stale readers only ever
                        // CAS against its retired generation), so
                        // reclaim it for reuse.
                        let freed = self.alloc.free(node, h)?;
                        debug_assert!(freed.is_ok(), "dequeue winner owns the old dummy");
                        self.persist.complete_op(node)?;
                        return Ok(Some(T::from_word(v)));
                    }
                    Err(_) => continue,
                }
            }
        }
    }

    /// Sole-mutator enqueue for the combining front
    /// ([`crate::ds::combine`]): the caller holds the structure's
    /// combining lock, so no CAS retries are needed and every store goes
    /// through [`Persistence::batched_store`] — persistence may be
    /// deferred to the combiner's batch flush. The store order (value,
    /// null next, link, tail) keeps every durable prefix a consistent
    /// queue state, exactly like the plain path's persist order, so an
    /// early partial flush (e.g. a sync op elsewhere on the same machine
    /// draining the persistency buffer) is harmless.
    ///
    /// The node comes from the board's `spare` cache when it has one —
    /// a block some earlier *flushed* batch durably unlinked, reused
    /// here with its generation unchanged. That is safe where it
    /// matters: no pointer to the block survives in the durable list
    /// (its unlink is flushed), and under the front's sole-mutator
    /// contract no concurrent snapshot can be holding its old identity
    /// across the reuse, which is what generation bumps exist to catch.
    pub(crate) fn enqueue_batched(
        &self,
        at: &impl AsNode,
        raw: u64,
        spare: &mut Vec<BlockRef>,
    ) -> OpResult<bool> {
        let node = at.as_node();
        let n = match spare.pop() {
            Some(n) => n,
            None => match self.alloc.alloc(node, 2)? {
                Some(n) => n,
                None => return Ok(false),
            },
        };
        self.persist
            .batched_store(node, self.value_cell(n.loc), raw)?;
        self.persist
            .batched_store(node, self.next_cell(n.loc), Allocator::null_ptr(n.gen))?;
        let n_enc = Allocator::encode(n);
        // Walk to the real tail (it may lag one node, as ever), then
        // link and swing with plain batched stores: as sole mutator we
        // can never observe a foreign-generation null or lose a race.
        let mut tail = self.persist.private_load(node, self.tail_cell())?;
        loop {
            let t = self.alloc.decode(tail).expect("tail is never null");
            let next = self.persist.private_load(node, self.next_cell(t))?;
            if let Some(_succ) = self.alloc.decode(next) {
                tail = next;
                continue;
            }
            self.persist.batched_store(node, self.next_cell(t), n_enc)?;
            self.persist.batched_store(node, self.tail_cell(), n_enc)?;
            return Ok(true);
        }
    }

    /// Sole-mutator dequeue for the combining front (see
    /// [`DurableQueue::enqueue_batched`]). The unlinked node is **not**
    /// freed here: it is pushed onto `frees` (with the generation its
    /// pointer word carried, so the combiner can recycle it directly)
    /// for handling *after* the batch flush — releasing it before the
    /// head swing is durable could let the block be relinked while the
    /// persisted head still points at it.
    pub(crate) fn dequeue_batched(
        &self,
        at: &impl AsNode,
        frees: &mut Vec<BlockRef>,
    ) -> OpResult<Option<u64>> {
        let node = at.as_node();
        let head = self.persist.private_load(node, self.head_cell())?;
        let h = self.alloc.decode(head).expect("head is never null");
        let next = self.persist.private_load(node, self.next_cell(h))?;
        let Some(nx) = self.alloc.decode(next) else {
            return Ok(None);
        };
        let v = self.persist.private_load(node, self.value_cell(nx))?;
        self.persist.batched_store(node, self.head_cell(), next)?;
        frees.push(BlockRef {
            loc: h,
            gen: Allocator::ptr_gen(head),
            recycled: true,
        });
        Ok(Some(v))
    }

    /// Returns nodes a combined batch unlinked to the allocator, once
    /// the batch's head swings are durable.
    pub(crate) fn reclaim_batch(&self, at: &impl AsNode, frees: &[BlockRef]) -> OpResult<()> {
        let node = at.as_node();
        for b in frees {
            let freed = self.alloc.free(node, b.loc)?;
            debug_assert!(freed.is_ok(), "combiner owns the nodes it unlinked");
        }
        Ok(())
    }

    /// The persistence strategy (for the combining front's batch flush).
    pub(crate) fn persist_handle(&self) -> &Arc<dyn Persistence> {
        &self.persist
    }

    /// Post-crash repair: advance a lagging tail (the only transient
    /// inconsistency a crash can leave in the list; a mid-operation
    /// allocator tear is repaired separately by
    /// [`Allocator::recover`], which
    /// [`Session::recover_roots`](crate::api::Session::recover_roots)
    /// runs for you).
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn recover(&self, at: &impl AsNode) -> OpResult<()> {
        let node = at.as_node();
        loop {
            let tail = self.persist.shared_load(node, self.tail_cell(), true)?;
            let t = self.alloc.decode(tail).expect("tail is never null");
            let next = self.persist.shared_load(node, self.next_cell(t), true)?;
            if self.alloc.decode(next).is_none() {
                return Ok(());
            }
            let _ = self
                .persist
                .shared_cas(node, self.tail_cell(), tail, next, true)?;
        }
    }

    /// Drains the queue into a vector (helper for tests/recovery).
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn drain(&self, at: &impl AsNode) -> OpResult<Vec<T>> {
        let mut out = Vec::new();
        while let Some(v) = self.dequeue(at)? {
            out.push(v);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimFabric;
    use crate::flit::FlitCxl0;
    use cxl0_model::{MachineId, SystemConfig};

    fn setup() -> (Arc<SimFabric>, DurableQueue) {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(3, 8192));
        let alloc = Arc::new(Allocator::over_region(
            f.config(),
            MachineId(2),
            Arc::new(FlitCxl0::default()),
        ));
        let q = DurableQueue::create(&alloc, &f.node(MachineId(0)))
            .unwrap()
            .unwrap();
        (f, q)
    }

    #[test]
    fn fifo_order_single_thread() {
        let (f, q) = setup();
        let node = f.node(MachineId(0));
        for v in 1..=5 {
            assert!(q.enqueue(&node, v).unwrap());
        }
        assert_eq!(q.drain(&node).unwrap(), vec![1, 2, 3, 4, 5]);
        assert_eq!(q.dequeue(&node).unwrap(), None);
    }

    #[test]
    fn typed_queue_round_trips_signed_values() {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 1024));
        let alloc = Arc::new(Allocator::over_region(
            f.config(),
            MachineId(1),
            Arc::new(FlitCxl0::default()),
        ));
        let node = f.node(MachineId(0));
        let q: DurableQueue<i64> = DurableQueue::create(&alloc, &node).unwrap().unwrap();
        q.enqueue(&node, -7).unwrap();
        q.enqueue(&node, i64::MIN).unwrap();
        assert_eq!(q.drain(&node).unwrap(), vec![-7, i64::MIN]);
    }

    #[test]
    fn churn_reuses_nodes_in_bounded_memory() {
        // A region with room for only a handful of nodes sustains churn
        // far past its bump capacity because dequeue reclaims.
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 256));
        let alloc = Arc::new(Allocator::over_region(
            f.config(),
            MachineId(1),
            Arc::new(FlitCxl0::default()),
        ));
        let node = f.node(MachineId(0));
        let q: DurableQueue = DurableQueue::create(&alloc, &node).unwrap().unwrap();
        for i in 0..2000u64 {
            assert!(q.enqueue(&node, i + 1).unwrap(), "op {i}: must not exhaust");
            assert_eq!(q.dequeue(&node).unwrap(), Some(i + 1));
        }
        let stats = alloc.stats();
        assert!(stats.freelist_hits > 1500, "churn must reuse nodes");
    }

    #[test]
    fn concurrent_enqueues_preserve_all_elements() {
        let (f, q) = setup();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let q = q.clone();
            let node = f.node(MachineId((t % 2) as usize));
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    q.enqueue(&node, t * 1000 + i).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let node = f.node(MachineId(0));
        let got = q.drain(&node).unwrap();
        assert_eq!(got.len(), 1000);
        // Per-producer FIFO: each thread's values appear in order.
        for t in 0..4u64 {
            let mine: Vec<u64> = got.iter().copied().filter(|v| v / 1000 == t).collect();
            let expect: Vec<u64> = (0..250).map(|i| t * 1000 + i).collect();
            assert_eq!(mine, expect);
        }
    }

    #[test]
    fn concurrent_enqueue_dequeue_no_loss_no_dup() {
        let (f, q) = setup();
        let producers = 2;
        let per = 300u64;
        let mut handles = Vec::new();
        for t in 0..producers as u64 {
            let q = q.clone();
            let node = f.node(MachineId(t as usize % 2));
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    q.enqueue(&node, t * 10_000 + i).unwrap();
                }
            }));
        }
        let consumed = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut consumers = Vec::new();
        for c in 0..2 {
            let q = q.clone();
            let node = f.node(MachineId(c % 2));
            let consumed = std::sync::Arc::clone(&consumed);
            consumers.push(std::thread::spawn(move || loop {
                match q.dequeue(&node).unwrap() {
                    Some(v) => consumed.lock().push(v),
                    None => {
                        if consumed.lock().len() as u64 >= per * producers as u64 {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for c in consumers {
            c.join().unwrap();
        }
        let mut got = consumed.lock().clone();
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len() as u64, per * producers as u64);
    }

    #[test]
    fn concurrent_churn_over_recycled_nodes_stays_consistent() {
        // Regression test for the reclamation races the churn bench
        // caught: without the M&S consistency re-check in dequeue, a
        // recycled old head's fresh null panicked the decode; without
        // the generation-pinned append null, an enqueue could splice
        // into a recycled incarnation. High contention on a small
        // region maximizes recycling.
        let f = SimFabric::new(SystemConfig::symmetric_nvm(3, 512));
        let alloc = Arc::new(Allocator::over_region(
            f.config(),
            MachineId(2),
            Arc::new(FlitCxl0::default()),
        ));
        let q: DurableQueue = DurableQueue::create(&alloc, &f.node(MachineId(0)))
            .unwrap()
            .unwrap();
        let total = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let q = q.clone();
            let node = f.node(MachineId((t % 2) as usize));
            let total = Arc::clone(&total);
            handles.push(std::thread::spawn(move || {
                for i in 0..2500u64 {
                    assert!(q.enqueue(&node, t * 100_000 + i + 1).unwrap());
                    if let Some(v) = q.dequeue(&node).unwrap() {
                        total.fetch_add(v % 100_000, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let node = f.node(MachineId(0));
        let rest: u64 = q.drain(&node).unwrap().iter().map(|v| v % 100_000).sum();
        // Conservation: every enqueued payload is dequeued exactly once.
        let expect: u64 = 4 * (1..=2500u64).sum::<u64>();
        assert_eq!(
            total.load(std::sync::atomic::Ordering::Relaxed) + rest,
            expect
        );
        let s = alloc.stats();
        assert!(s.freelist_hits > 5_000, "churn must recycle heavily");
    }

    /// Seeded-bug detection: replay the enqueue protocol with the value
    /// store's flush deleted. Linking that node publishes a dirty cell
    /// into the durably-reachable queue — exactly the durability race
    /// the sanitizer exists to catch. The sound protocol right before it
    /// must stay silent, so the test also proves the detector is not
    /// trigger-happy.
    #[test]
    fn sanitizer_flags_enqueue_with_the_value_flush_deleted() {
        use crate::check::{CheckConfig, Checker, ViolationClass};
        let f = SimFabric::new(SystemConfig::symmetric_nvm(3, 8192));
        let ck = Arc::new(Checker::new(CheckConfig {
            fail_fast: false,
            ..CheckConfig::default()
        }));
        f.install_checker(Arc::clone(&ck));
        let alloc = Arc::new(Allocator::over_region(
            f.config(),
            MachineId(2),
            Arc::new(FlitCxl0::default()),
        ));
        let node = f.node(MachineId(0));
        let q: DurableQueue = DurableQueue::create(&alloc, &node).unwrap().unwrap();
        // What the registry does for a named structure: seed durable
        // reachability at the header.
        ck.add_root(q.header_cell());
        // The sound protocol is silent.
        assert!(q.enqueue(&node, 1).unwrap());
        assert_eq!(q.dequeue(&node).unwrap(), Some(1));
        assert_eq!(ck.total_violations(), 0, "sound enqueue/dequeue is clean");
        // The bug: value stored without its flush, then linked anyway.
        let n = alloc.alloc(&node, 2).unwrap().unwrap();
        q.persist
            .private_store(&node, q.value_cell(n.loc), 42, false)
            .unwrap();
        q.persist
            .private_store(&node, q.next_cell(n.loc), Allocator::null_ptr(n.gen), true)
            .unwrap();
        let tail = q.persist.shared_load(&node, q.tail_cell(), true).unwrap();
        let t = alloc.decode(tail).expect("tail is never null");
        let expected_null = Allocator::null_ptr(Allocator::ptr_gen(tail));
        q.persist
            .shared_cas(
                &node,
                q.next_cell(t),
                expected_null,
                Allocator::encode(n),
                true,
            )
            .unwrap()
            .unwrap();
        assert_eq!(
            ck.durability_races(),
            1,
            "linking a node with an unflushed value is a durability race"
        );
        let v = &ck.violations()[0];
        assert_eq!(v.class, ViolationClass::DurabilityRace);
        assert_eq!(v.loc, q.value_cell(n.loc), "blamed at the dirty value cell");
        assert_eq!(v.machine, Some(MachineId(0)));
    }

    #[test]
    fn contents_survive_crash_and_recover_fixes_tail() {
        let (f, q) = setup();
        let node = f.node(MachineId(0));
        for v in [7, 8, 9] {
            q.enqueue(&node, v).unwrap();
        }
        f.crash(MachineId(2));
        f.recover(MachineId(2));
        q.recover(&node).unwrap();
        assert_eq!(q.drain(&node).unwrap(), vec![7, 8, 9]);
    }
}
