//! A durable fetch-and-add counter.

use std::sync::Arc;

use cxl0_model::Loc;

use crate::backend::AsNode;
use crate::error::OpResult;
use crate::flit::Persistence;
use crate::heap::SharedHeap;

/// A durable wrapping `u64` counter in one shared cell.
///
/// # Examples
///
/// ```
/// use cxl0_runtime::api::Cluster;
/// use cxl0_model::MachineId;
///
/// let cluster = Cluster::symmetric(2, 4096)?;
/// let session = cluster.session(MachineId(0));
/// let ctr = session.create_counter("requests")?;
/// assert_eq!(ctr.add(&session, 5)?, 0);
/// assert_eq!(ctr.get(&session)?, 5);
/// # Ok::<(), cxl0_runtime::api::ApiError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DurableCounter {
    cell: Loc,
    persist: Arc<dyn Persistence>,
}

impl DurableCounter {
    /// Allocates a counter from `heap`; `None` if exhausted.
    pub fn create(heap: &SharedHeap, persist: Arc<dyn Persistence>) -> Option<Self> {
        Some(DurableCounter {
            cell: heap.alloc(1)?,
            persist,
        })
    }

    /// Attaches to an existing counter cell.
    pub fn attach(cell: Loc, persist: Arc<dyn Persistence>) -> Self {
        DurableCounter { cell, persist }
    }

    /// The backing cell.
    pub fn cell(&self) -> Loc {
        self.cell
    }

    /// Adds `delta`, returning the previous value.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn add(&self, at: &impl AsNode, delta: u64) -> OpResult<u64> {
        let node = at.as_node();
        let old = self.persist.shared_faa(node, self.cell, delta, true)?;
        self.persist.complete_op(node)?;
        Ok(old)
    }

    /// Reads the current value.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn get(&self, at: &impl AsNode) -> OpResult<u64> {
        let node = at.as_node();
        let v = self.persist.shared_load(node, self.cell, true)?;
        self.persist.complete_op(node)?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimFabric;
    use crate::flit::FlitCxl0;
    use cxl0_model::{MachineId, SystemConfig};

    #[test]
    fn concurrent_adds_from_two_machines() {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(3, 4));
        let heap = SharedHeap::new(f.config(), MachineId(2));
        let ctr = DurableCounter::create(&heap, Arc::new(FlitCxl0::default())).unwrap();
        let mut handles = Vec::new();
        for m in 0..2 {
            let node = f.node(MachineId(m));
            let ctr = ctr.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    ctr.add(&node, 1).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let node = f.node(MachineId(0));
        assert_eq!(ctr.get(&node).unwrap(), 1000);
        // Every completed add persisted:
        f.crash(MachineId(2));
        f.recover(MachineId(2));
        assert_eq!(ctr.get(&node).unwrap(), 1000);
    }

    #[test]
    fn add_returns_previous() {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 4));
        let heap = SharedHeap::new(f.config(), MachineId(1));
        let ctr = DurableCounter::create(&heap, Arc::new(FlitCxl0::default())).unwrap();
        let node = f.node(MachineId(0));
        assert_eq!(ctr.add(&node, 3).unwrap(), 0);
        assert_eq!(ctr.add(&node, 4).unwrap(), 3);
        assert_eq!(ctr.get(&node).unwrap(), 7);
    }
}
